// Deterministic random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng, a xoshiro256** engine
// seeded via SplitMix64. Unlike std::mt19937 + std::uniform_*_distribution,
// the output sequence is fully specified here, so experiment tables are
// bit-reproducible across standard library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace reclaim::util {

/// SplitMix64 step; used for seeding and for deriving substreams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo random generator with explicit, portable
/// distributions. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal deviate (Box-Muller, one value per call).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Derives an independent generator for substream `index`; deterministic
  /// in (this stream's seed, index). The parent stream is not advanced.
  [[nodiscard]] Rng substream(std::uint64_t index) const noexcept;

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace reclaim::util
