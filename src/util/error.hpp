// Contract checking and error types shared across the reclaim library.
//
// Following the C++ Core Guidelines (I.5/I.6, E.2/E.3) we express
// preconditions as named check functions that throw typed exceptions;
// there are no assertion macros and no error codes in the public API.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace reclaim {

/// Base class for all errors raised by the reclaim library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, malformed
/// graph, inconsistent mapping, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// The optimization problem has no feasible solution (e.g. the deadline is
/// below the critical-path time at maximum speed).
class Infeasible : public Error {
 public:
  explicit Infeasible(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or detected an ill-posed input
/// (singular matrix, unbounded LP, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace util {

/// Throws InvalidArgument with `message` when `condition` is false.
void require(bool condition, std::string_view message);

/// Throws Infeasible with `message` when `condition` is false.
void require_feasible(bool condition, std::string_view message);

/// Throws NumericalError with `message` when `condition` is false.
void require_numeric(bool condition, std::string_view message);

/// The system error message for `err` (an errno value). Thread-safe,
/// unlike std::strerror's shared static buffer — use this in any code a
/// worker or reader thread may run (clang-tidy's concurrency-mt-unsafe
/// flags strerror for exactly this reason).
[[nodiscard]] std::string errno_string(int err);

}  // namespace util
}  // namespace reclaim
