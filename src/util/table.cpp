#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace reclaim::util {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  require(!columns_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == columns_.size(),
          "Table row width does not match the number of columns");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt(std::size_t value) { return std::to_string(value); }
std::string Table::fmt(int value) { return std::to_string(value); }

std::string Table::fmt_ratio(double value, int precision) {
  return fmt(value, precision) + "x";
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;

  out << '\n' << title_ << '\n';
  out << std::string(total, '-') << '\n';
  out << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << ' ' << std::setw(static_cast<int>(widths[c])) << columns_[c] << " |";
  out << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      out << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    out << '\n';
  }
  out << std::string(total, '-') << '\n';
}

void Table::print_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << columns_[c] << (c + 1 == columns_.size() ? '\n' : ',');
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      out << row[c] << (c + 1 == row.size() ? '\n' : ',');
}

}  // namespace reclaim::util
