#include "util/error.hpp"

#include <system_error>

namespace reclaim::util {

void require(bool condition, std::string_view message) {
  if (!condition) throw InvalidArgument(std::string(message));
}

void require_feasible(bool condition, std::string_view message) {
  if (!condition) throw Infeasible(std::string(message));
}

void require_numeric(bool condition, std::string_view message) {
  if (!condition) throw NumericalError(std::string(message));
}

std::string errno_string(int err) {
  return std::generic_category().message(err);
}

}  // namespace reclaim::util
