#include "util/error.hpp"

namespace reclaim::util {

void require(bool condition, std::string_view message) {
  if (!condition) throw InvalidArgument(std::string(message));
}

void require_feasible(bool condition, std::string_view message) {
  if (!condition) throw Infeasible(std::string(message));
}

void require_numeric(bool condition, std::string_view message) {
  if (!condition) throw NumericalError(std::string(message));
}

}  // namespace reclaim::util
