// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace reclaim::util {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// the samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with quantile queries; keeps all samples.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires a nonempty set.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Geometric mean of a set of strictly positive ratios; the canonical way
/// the experiment tables aggregate per-instance energy ratios.
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

}  // namespace reclaim::util
