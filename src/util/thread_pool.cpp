#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

namespace reclaim::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    require(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions propagate through the packaged_task's future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(begin, end, body);
}

}  // namespace reclaim::util
