// Per-thread bump arena for per-solve scratch.
//
// The hot solve path (engine dispatch -> continuous dispatch -> numeric
// solver) used to heap-allocate a dozen short-lived vectors per instance:
// per-task durations, bounds, objective coefficient arrays, kernel
// staging buffers. Under a sweep workload those allocations dominate the
// cheap closed-form solves and serialize threads on the allocator. The
// arena replaces them with pointer bumps into thread-local blocks that
// are retained across solves: after a brief warm-up no steady-state
// allocation happens at all, which tests/test_batch_kernels.cpp pins by
// watching ArenaStats stay flat across repeated solves.
//
// Usage pattern (always scoped — the arena is a stack, not a free store):
//
//   auto& arena = util::Arena::scratch();
//   const util::Arena::Scope scope(arena);
//   std::span<double> durations = arena.alloc<double>(n);   // zero-filled
//   ...                                // freed wholesale when scope exits
//
// Only trivially copyable/destructible element types are supported (no
// destructors run at rewind). Allocations live until their enclosing
// Scope is destroyed; Scopes nest like stack frames and must unwind in
// LIFO order (enforced in debug via the saved marks).
//
// The arena also recycles std::vector<double> buffers (lease_doubles /
// recycle_doubles) for the few call sites that must hand ownership to an
// API taking vectors (NumericOptions per-task bounds): a leased vector
// keeps its previous capacity, so steady-state refills allocate nothing.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

namespace reclaim::util {

/// Snapshot of one arena's footprint (see Arena::stats()).
struct ArenaStats {
  std::size_t bytes_reserved = 0;  ///< total capacity of all blocks
  std::size_t bytes_used = 0;      ///< currently inside live Scopes
  std::size_t bytes_peak = 0;      ///< high-water mark of bytes_used
  std::size_t blocks = 0;          ///< backing blocks allocated so far
  std::size_t pooled_vectors = 0;  ///< recycled vector<double> buffers
};

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// RAII frame: every allocation made while the Scope is alive is
  /// released when it goes out of scope (a pure pointer rewind).
  class Scope {
   public:
    explicit Scope(Arena& arena)
        : arena_(arena), block_(arena.block_), used_(arena.used_) {}
    ~Scope() { arena_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// `count` value-initialized elements of trivial type T, aligned for T.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena holds trivial types only (nothing is destroyed)");
    T* data = static_cast<T*>(raw_alloc(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) data[i] = T{};
    return {data, count};
  }

  /// A (possibly recycled) empty vector with retained capacity. Pair with
  /// recycle_doubles to make vector-consuming APIs allocation-free in
  /// steady state.
  [[nodiscard]] std::vector<double> lease_doubles();
  void recycle_doubles(std::vector<double>&& v) noexcept;

  [[nodiscard]] ArenaStats stats() const noexcept;

  /// The calling thread's arena (created on first use, lives for the
  /// thread). Every per-solve scratch user shares this one instance, so
  /// its blocks are reused across solvers and across solves.
  [[nodiscard]] static Arena& scratch();

 private:
  struct Block {
    std::vector<char> storage;
  };

  [[nodiscard]] void* raw_alloc(std::size_t bytes, std::size_t align);
  void rewind(std::size_t block, std::size_t used) noexcept;
  [[nodiscard]] std::size_t bytes_used_through(std::size_t block,
                                               std::size_t used) const noexcept;

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< block currently being bumped
  std::size_t used_ = 0;   ///< bytes used inside blocks_[block_]
  std::size_t bytes_peak_ = 0;
  std::size_t first_block_bytes_;
  std::vector<std::vector<double>> double_pool_;
};

}  // namespace reclaim::util
