// A small fixed-size thread pool with a parallel_for helper.
//
// The experiment harness evaluates many independent problem instances; the
// pool partitions index ranges across worker threads (CP.4: prefer tasks to
// raw threads; exceptions thrown by workers are captured and rethrown on
// the caller's thread).
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace reclaim::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `task` and returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks.
  /// Blocks until all iterations finish; rethrows the first exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ RECLAIM_GUARDED_BY(mutex_);
  bool stopping_ RECLAIM_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool for harness sweeps (lazily constructed, sized to the
/// hardware concurrency).
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace reclaim::util
