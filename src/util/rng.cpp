#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace reclaim::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo via rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (-span) % span;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  // Box-Muller; discards the second deviate to keep the stream layout simple.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::substream(std::uint64_t index) const noexcept {
  // Mix (seed, index) through SplitMix64 twice to decorrelate the streams.
  std::uint64_t s = seed_ ^ (0x7f4a7c15ULL + index * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t derived = splitmix64(s) ^ splitmix64(s);
  return Rng(derived);
}

}  // namespace reclaim::util
