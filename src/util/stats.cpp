#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace reclaim::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return min_; }
double RunningStats::max() const noexcept { return max_; }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Samples::mean() const {
  require(!values_.empty(), "Samples::mean on empty sample set");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  require(!values_.empty(), "Samples::stddev on empty sample set");
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  require(!values_.empty(), "Samples::min on empty sample set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  require(!values_.empty(), "Samples::max on empty sample set");
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::quantile(double q) const {
  require(!values_.empty(), "Samples::quantile on empty sample set");
  require(q >= 0.0 && q <= 1.0, "quantile level must lie in [0, 1]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  require(!values.empty(), "geometric_mean of empty vector");
  double log_sum = 0.0;
  for (double v : values) {
    require(v > 0.0, "geometric_mean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace reclaim::util
