// Minimal wall-clock timer for solver diagnostics and benches.
#pragma once

#include <chrono>

namespace reclaim::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed wall time in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace reclaim::util
