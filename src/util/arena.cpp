#include "util/arena.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"

namespace reclaim::util {

namespace {

std::size_t align_up(std::size_t offset, std::size_t align) {
  return (offset + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : first_block_bytes_(std::max<std::size_t>(first_block_bytes, 64)) {
  blocks_.emplace_back();
  blocks_.front().storage.resize(first_block_bytes_);
}

void* Arena::raw_alloc(std::size_t bytes, std::size_t align) {
  require((align & (align - 1)) == 0, "arena alignment must be a power of two");
  for (;;) {
    auto& storage = blocks_[block_].storage;
    const auto base = reinterpret_cast<std::uintptr_t>(storage.data());
    const std::size_t start = align_up(static_cast<std::size_t>(base) + used_, align) -
                              static_cast<std::size_t>(base);
    if (start + bytes <= storage.size()) {
      used_ = start + bytes;
      bytes_peak_ = std::max(bytes_peak_, bytes_used_through(block_, used_));
      return storage.data() + start;
    }
    // Current block is full: move to the next (possibly brand new) block.
    // Blocks double in size so any request eventually fits and the total
    // number of blocks stays logarithmic in peak usage.
    if (block_ + 1 == blocks_.size()) {
      const std::size_t grown = blocks_.back().storage.size() * 2;
      blocks_.emplace_back();
      blocks_.back().storage.resize(std::max(grown, bytes + align));
    }
    ++block_;
    used_ = 0;
  }
}

void Arena::rewind(std::size_t block, std::size_t used) noexcept {
  block_ = block;
  used_ = used;
}

std::size_t Arena::bytes_used_through(std::size_t block, std::size_t used) const noexcept {
  std::size_t total = used;
  for (std::size_t b = 0; b < block; ++b) total += blocks_[b].storage.size();
  return total;
}

std::vector<double> Arena::lease_doubles() {
  if (double_pool_.empty()) return {};
  std::vector<double> v = std::move(double_pool_.back());
  double_pool_.pop_back();
  v.clear();
  return v;
}

void Arena::recycle_doubles(std::vector<double>&& v) noexcept {
  if (v.capacity() == 0) return;
  if (double_pool_.size() >= 16) return;  // bound retained memory
  try {
    double_pool_.push_back(std::move(v));
  } catch (...) {
    // Dropping the buffer is always safe; the pool is an optimization.
  }
}

ArenaStats Arena::stats() const noexcept {
  ArenaStats s;
  for (const auto& b : blocks_) s.bytes_reserved += b.storage.size();
  s.bytes_used = bytes_used_through(block_, used_);
  s.bytes_peak = bytes_peak_;
  s.blocks = blocks_.size();
  s.pooled_vectors = double_pool_.size();
  return s;
}

Arena& Arena::scratch() {
  thread_local Arena arena;
  return arena;
}

}  // namespace reclaim::util
