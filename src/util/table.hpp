// Console table / CSV rendering for the experiment harness.
//
// Every bench binary prints its results through Table so that the output
// resembles the rows/series a paper table would report and stays easy to
// diff between runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace reclaim::util {

/// A simple right-aligned text table with a title and column headers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a pre-formatted row; must match the number of columns.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant-digit fixed notation.
  [[nodiscard]] static std::string fmt(double value, int precision = 4);
  /// Formats an integer-valued cell.
  [[nodiscard]] static std::string fmt(std::size_t value);
  [[nodiscard]] static std::string fmt(int value);
  /// Formats a ratio as e.g. "1.2345x".
  [[nodiscard]] static std::string fmt_ratio(double value, int precision = 4);
  /// Formats a percentage as e.g. "12.3%".
  [[nodiscard]] static std::string fmt_pct(double fraction, int precision = 1);

  /// Renders the table, boxed, to `out`.
  void print(std::ostream& out) const;

  /// Renders the table as CSV (header row + data rows) to `out`.
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reclaim::util
