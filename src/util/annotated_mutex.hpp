// Annotated concurrency primitives: the repo's only blessed mutexes.
//
// Thin wrappers over std::mutex / std::shared_mutex / std::condition_variable
// carrying Clang thread-safety attributes, so the locking discipline that
// PRs 6-7 established in comments ("guarded by the cache lock", "under the
// connection's write lock") is *proved* at compile time: any CI clang build
// runs with -Wthread-safety -Werror=thread-safety, and a read of a
// RECLAIM_GUARDED_BY field without its capability is a build failure, not a
// review comment. GCC compiles the attributes away to nothing.
//
// Usage rules (docs/architecture.md, "Concurrency model"):
//
//   - Concurrent state outside src/util uses these wrappers, never the raw
//     std primitives — tools/check_rules.sh enforces this mechanically.
//   - Every field a lock protects is declared RECLAIM_GUARDED_BY(mutex_);
//     private helpers that assume the lock are RECLAIM_REQUIRES(mutex_).
//   - Lock with the scoped types (MutexLock / ReadLock / WriteLock); the
//     analysis tracks their lifetime. Manual lock()/unlock() pairs are
//     reserved for the wrappers themselves.
//   - CondVar::wait deliberately has no predicate overload: a predicate
//     lambda is analyzed as a separate function that does not hold the
//     capability, so guarded reads inside it would warn. Write the loop at
//     the call site instead, where the analysis sees the lock:
//
//       MutexLock lock(mutex_);
//       while (!ready_) cv_.wait(mutex_);
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang's capability analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); no-ops under
// GCC, which has no -Wthread-safety.
#if defined(__clang__)
#define RECLAIM_TSA(x) __attribute__((x))
#else
#define RECLAIM_TSA(x)  // not Clang: attribute compiled away
#endif

#define RECLAIM_CAPABILITY(x) RECLAIM_TSA(capability(x))
#define RECLAIM_SCOPED_CAPABILITY RECLAIM_TSA(scoped_lockable)
#define RECLAIM_GUARDED_BY(x) RECLAIM_TSA(guarded_by(x))
#define RECLAIM_PT_GUARDED_BY(x) RECLAIM_TSA(pt_guarded_by(x))
#define RECLAIM_ACQUIRED_BEFORE(...) RECLAIM_TSA(acquired_before(__VA_ARGS__))
#define RECLAIM_ACQUIRED_AFTER(...) RECLAIM_TSA(acquired_after(__VA_ARGS__))
#define RECLAIM_REQUIRES(...) RECLAIM_TSA(requires_capability(__VA_ARGS__))
#define RECLAIM_REQUIRES_SHARED(...) \
  RECLAIM_TSA(requires_shared_capability(__VA_ARGS__))
#define RECLAIM_ACQUIRE(...) RECLAIM_TSA(acquire_capability(__VA_ARGS__))
#define RECLAIM_ACQUIRE_SHARED(...) \
  RECLAIM_TSA(acquire_shared_capability(__VA_ARGS__))
#define RECLAIM_RELEASE(...) RECLAIM_TSA(release_capability(__VA_ARGS__))
#define RECLAIM_RELEASE_SHARED(...) \
  RECLAIM_TSA(release_shared_capability(__VA_ARGS__))
#define RECLAIM_TRY_ACQUIRE(...) \
  RECLAIM_TSA(try_acquire_capability(__VA_ARGS__))
#define RECLAIM_EXCLUDES(...) RECLAIM_TSA(locks_excluded(__VA_ARGS__))
#define RECLAIM_RETURN_CAPABILITY(x) RECLAIM_TSA(lock_returned(x))
#define RECLAIM_NO_THREAD_SAFETY_ANALYSIS RECLAIM_TSA(no_thread_safety_analysis)

namespace reclaim::util {

class CondVar;

/// std::mutex as a named capability.
class RECLAIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RECLAIM_ACQUIRE() { raw_.lock(); }
  bool try_lock() RECLAIM_TRY_ACQUIRE(true) { return raw_.try_lock(); }
  void unlock() RECLAIM_RELEASE() { raw_.unlock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// std::shared_mutex as a capability with shared (reader) acquisition.
class RECLAIM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RECLAIM_ACQUIRE() { raw_.lock(); }
  void unlock() RECLAIM_RELEASE() { raw_.unlock(); }
  void lock_shared() RECLAIM_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void unlock_shared() RECLAIM_RELEASE_SHARED() { raw_.unlock_shared(); }

 private:
  std::shared_mutex raw_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard of this layer).
class RECLAIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RECLAIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RECLAIM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class RECLAIM_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mutex) RECLAIM_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriteLock() RECLAIM_RELEASE() { mutex_.unlock(); }

  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class RECLAIM_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mutex) RECLAIM_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  // Generic release: the analysis accepts it for a shared acquisition, and
  // a scoped capability's destructor must release whatever it holds.
  ~ReadLock() RECLAIM_RELEASE() { mutex_.unlock_shared(); }

  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to util::Mutex. wait() takes the Mutex itself
/// (not a lock object) so it can carry RECLAIM_REQUIRES(mutex): callers
/// must already hold the capability, and the analysis verifies it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mutex`, blocks, and re-acquires before
  /// returning. Spurious wakeups happen; loop on the condition at the
  /// call site (see the header comment for why there is no predicate
  /// overload).
  void wait(Mutex& mutex) RECLAIM_REQUIRES(mutex) {
    // Adopt the already-held raw mutex for the wait protocol, then hand
    // ownership back so the caller's scoped lock remains the one owner.
    std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace reclaim::util
