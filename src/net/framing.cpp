#include "net/framing.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "util/error.hpp"

namespace reclaim::net {

namespace {

/// Reads exactly `count` bytes. Returns the bytes actually read, which is
/// short only when the stream hit EOF; retries EINTR.
std::size_t read_exact(int fd, char* out, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t got = ::read(fd, out + done, count - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done;  // EOF
    if (errno == EINTR) continue;
    throw FrameError(FrameError::Kind::kIo,
                     "frame read failed: " + util::errno_string(errno));
  }
  return done;
}

/// Writes all of `count` bytes. Sockets get send(MSG_NOSIGNAL) so a
/// closed peer surfaces as EPIPE instead of killing the process with
/// SIGPIPE; non-socket fds (pipes in --stdio mode) fall back to write().
void write_all(int fd, const char* data, std::size_t count) {
  std::size_t done = 0;
  bool use_send = true;
  while (done < count) {
    ssize_t put;
    if (use_send) {
      put = ::send(fd, data + done, count - done, MSG_NOSIGNAL);
      if (put < 0 && errno == ENOTSOCK) {
        use_send = false;
        continue;
      }
    } else {
      put = ::write(fd, data + done, count - done);
    }
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    throw FrameError(
        FrameError::Kind::kIo,
        "frame write failed: " + (put < 0 ? util::errno_string(errno)
                                          : std::string("zero-byte write")));
  }
}

}  // namespace

bool read_frame(int fd, std::string& payload, std::size_t max_payload) {
  char prefix[4];
  const std::size_t header = read_exact(fd, prefix, sizeof prefix);
  if (header == 0) return false;  // clean EOF at a frame boundary
  if (header < sizeof prefix) {
    throw FrameError(FrameError::Kind::kTruncated,
                     "stream ended inside a frame length prefix");
  }
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof length);
  if (length == 0) {
    throw FrameError(FrameError::Kind::kEmpty, "frame announced an empty payload");
  }
  if (length > max_payload) {
    throw FrameError(FrameError::Kind::kOversized,
                     "frame announced " + std::to_string(length) +
                         " bytes (limit " + std::to_string(max_payload) + ")");
  }
  payload.resize(length);
  const std::size_t body = read_exact(fd, payload.data(), length);
  if (body < length) {
    throw FrameError(FrameError::Kind::kTruncated,
                     "stream ended inside a frame payload (" +
                         std::to_string(body) + " of " + std::to_string(length) +
                         " bytes)");
  }
  return true;
}

void write_frame(int fd, std::string_view payload, std::size_t max_payload) {
  if (payload.empty()) {
    throw FrameError(FrameError::Kind::kEmpty, "refusing to frame an empty payload");
  }
  if (payload.size() > max_payload) {
    throw FrameError(FrameError::Kind::kOversized,
                     "refusing to frame " + std::to_string(payload.size()) +
                         " bytes (limit " + std::to_string(max_payload) + ")");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &length, sizeof length);
  // One write for the prefix, one for the payload: contiguity on the wire
  // is guaranteed by the stream, not by a single syscall.
  write_all(fd, prefix, sizeof prefix);
  write_all(fd, payload.data(), payload.size());
}

}  // namespace reclaim::net
