// ReclaimServer: the solve service around a shared, long-lived engine.
//
// One server owns one ReclaimEngine, so every connection that ever talks
// to it shares the same solution memo and shape cache — the second client
// asking for an instance the first client already solved gets a memo hit,
// which is the entire point of running the solver as a daemon instead of
// re-executing reclaim_cli per sweep (docs/architecture.md, "Long-lived
// caches").
//
// Transport is pluggable at the fd level (docs/serve_protocol.md):
//
//   - serve_unix() binds a Unix-domain socket and accepts clients until
//     shutdown(), one reader thread per connection;
//   - serve_stream() speaks the same protocol over an (in_fd, out_fd)
//     pair — reclaim_serve --stdio, socketpair tests, and the throughput
//     bench all reuse the exact production code path.
//
// Concurrency: the reader thread decodes frames and answers STATS/PING
// inline; SOLVE requests go to the engine's pool via submit(), and the
// worker that finishes writes the RESULT itself under the connection's
// write lock. Responses therefore come back in completion order, tagged
// with the request id — never artificially serialized behind a slow
// solve. A connection's reader drains its in-flight solves before
// returning, so the caller's fds stay valid until the last response.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solve.hpp"
#include "engine/reclaim_engine.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"
#include "util/annotated_mutex.hpp"

namespace reclaim::net {

struct ServerOptions {
  /// The shared engine (threads, memo entry/byte caps, ...).
  engine::EngineOptions engine;
  /// Solver options applied to every request (rel gap, exact cutoff; the
  /// per-request SOLVE body carries its own leakage mode).
  core::SolveOptions solve;
  /// Per-frame payload ceiling; frames announcing more are BAD_FRAME.
  std::size_t max_frame_bytes = kMaxFramePayload;
  /// Period of the one-line stats log (seconds; 0 disables). Needs `log`.
  double stats_log_interval_s = 0.0;
  /// Sink for the periodic stats line (not owned; nullptr disables).
  std::ostream* log = nullptr;
};

class ReclaimServer {
 public:
  explicit ReclaimServer(ServerOptions options = {});
  ~ReclaimServer();

  ReclaimServer(const ReclaimServer&) = delete;
  ReclaimServer& operator=(const ReclaimServer&) = delete;

  /// Serves one already-connected peer over an fd pair (requests read
  /// from `in_fd`, responses written to `out_fd`; they may be the same
  /// socket). Blocks until the peer closes (or desyncs the frame layer)
  /// and every in-flight solve has been answered. Does NOT close the fds
  /// — they belong to the caller. Safe to call from several threads at
  /// once; all connections share the engine.
  void serve_stream(int in_fd, int out_fd);

  /// Binds `socket_path` (unlinking any stale socket first), then accepts
  /// and serves clients until shutdown(). Blocks; returns after the last
  /// connection drains. Throws Error if the socket cannot be bound.
  void serve_unix(const std::string& socket_path);

  /// Asks serve_unix() to stop accepting and return. Async-signal-safe
  /// (an atomic store; the accept loop polls the flag), so a SIGINT
  /// handler may call it directly. Existing connections finish normally;
  /// the loop notices within one poll interval (~200 ms).
  void shutdown();

  /// Live counters (docs/serve_protocol.md, STATS_REPLY): sampled from
  /// the engine's atomics and the cache's lock, callable from any thread
  /// while solves are in flight. Disconnected clients keep their rows.
  [[nodiscard]] StatsReply stats() const;

  /// The stats as the one-line human summary the daemon logs.
  [[nodiscard]] std::string stats_line() const;

  /// The shared engine (tests reach through for cache assertions).
  [[nodiscard]] engine::ReclaimEngine& engine() noexcept { return engine_; }

 private:
  /// Per-client reply counters; shared_ptr'd so worker callbacks and the
  /// stats sampler outlive the connection that spawned them.
  struct ClientCounters {
    std::uint64_t id = 0;
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> results{0};
    std::atomic<std::uint64_t> errors{0};
  };
  struct Connection;

  void handle_connection(int in_fd, int out_fd);
  void handle_message(const std::shared_ptr<Connection>& conn,
                      Message message);
  /// Encodes + frames `message` under the connection's write lock,
  /// counting it as a result or an error; write failures mark the
  /// connection dead instead of throwing into a worker.
  void send_reply(Connection& conn, const Message& message);
  void log_loop();

  ServerOptions options_;
  engine::ReclaimEngine engine_;
  std::chrono::steady_clock::time_point start_;

  mutable util::Mutex clients_mutex_;
  std::vector<std::shared_ptr<ClientCounters>> clients_
      RECLAIM_GUARDED_BY(clients_mutex_);
  std::uint64_t next_client_id_ RECLAIM_GUARDED_BY(clients_mutex_) = 0;
  std::uint64_t clients_active_ RECLAIM_GUARDED_BY(clients_mutex_) = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};

  std::thread log_thread_;
};

}  // namespace reclaim::net
