#include "net/wire.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "sched/schedule.hpp"

namespace reclaim::net {

namespace {

// ------------------------------------------------------------- encoding

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_f64(std::string& out, double v) {
  // NaN cannot round-trip through equality and is forbidden on the wire
  // (docs/serve_protocol.md, "Primitive encodings"); infinities are legal
  // (uncapped speeds, infeasible energies).
  if (std::isnan(v)) {
    throw WireError(ErrorCode::kBadMessage, "NaN is not encodable on the wire");
  }
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::string& out, std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw WireError(ErrorCode::kBadMessage, "string field too long to encode");
  }
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// ------------------------------------------------------------- decoding

/// Bounds-checked cursor over one payload; every under/overrun is a
/// BAD_MESSAGE per the spec ("a field extending past the end of the
/// payload").
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v).data(), sizeof v);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof v).data(), sizeof v);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    if (std::isnan(v)) {
      throw WireError(ErrorCode::kBadMessage, "NaN field on the wire");
    }
    return v;
  }

  std::string str() {
    const std::uint32_t length = u32();
    return std::string(take(length));
  }

  /// MUST be called after the last field: trailing bytes are an error.
  void expect_end() const {
    if (cursor_ < data_.size()) {
      throw WireError(ErrorCode::kBadMessage,
                      "message body has " +
                          std::to_string(data_.size() - cursor_) +
                          " trailing bytes");
    }
  }

 private:
  std::string_view take(std::size_t count) {
    if (data_.size() - cursor_ < count) {
      throw WireError(ErrorCode::kBadMessage,
                      "message body truncated (wanted " + std::to_string(count) +
                          " more bytes, have " +
                          std::to_string(data_.size() - cursor_) + ")");
    }
    const std::string_view view = data_.substr(cursor_, count);
    cursor_ += count;
    return view;
  }

  std::string_view data_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------- body codecs

enum : std::uint8_t {
  kModelContinuous = 1,
  kModelDiscrete = 2,
  kModelVdd = 3,
  kModelIncremental = 4,
};

void put_model(std::string& out, const model::EnergyModel& m) {
  std::visit(
      [&out](const auto& concrete) {
        using M = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          put_u8(out, kModelContinuous);
          put_f64(out, concrete.s_max);
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          put_u8(out, kModelDiscrete);
          put_u32(out, static_cast<std::uint32_t>(concrete.modes.size()));
          for (double s : concrete.modes.speeds()) put_f64(out, s);
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          put_u8(out, kModelVdd);
          put_u32(out, static_cast<std::uint32_t>(concrete.modes.size()));
          for (double s : concrete.modes.speeds()) put_f64(out, s);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          put_u8(out, kModelIncremental);
          put_f64(out, concrete.s_min);
          put_f64(out, concrete.s_max);
          put_f64(out, concrete.delta);
        }
      },
      m);
}

model::EnergyModel read_model(Reader& in) {
  const std::uint8_t kind = in.u8();
  switch (kind) {
    case kModelContinuous:
      return model::ContinuousModel{in.f64()};
    case kModelDiscrete:
    case kModelVdd: {
      const std::uint32_t count = in.u32();
      if (count == 0) {
        throw WireError(ErrorCode::kBadMessage, "mode-based model with 0 modes");
      }
      std::vector<double> speeds;
      speeds.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) speeds.push_back(in.f64());
      // ModeSet validates positivity/finiteness; a well-formed frame with
      // out-of-range values is a semantic (BAD_REQUEST) problem.
      try {
        model::ModeSet modes(std::move(speeds));
        if (kind == kModelDiscrete) return model::DiscreteModel{std::move(modes)};
        return model::VddHoppingModel{std::move(modes)};
      } catch (const Error& e) {
        throw WireError(ErrorCode::kBadRequest,
                        std::string("invalid mode set: ") + e.what());
      }
    }
    case kModelIncremental: {
      const double s_min = in.f64();
      const double s_max = in.f64();
      const double delta = in.f64();
      try {
        return model::IncrementalModel(s_min, s_max, delta);
      } catch (const Error& e) {
        throw WireError(ErrorCode::kBadRequest,
                        std::string("invalid incremental model: ") + e.what());
      }
    }
    default:
      throw WireError(ErrorCode::kBadMessage,
                      "unknown model kind " + std::to_string(kind));
  }
}

void put_solve(std::string& out, const SolveRequest& req) {
  put_f64(out, req.deadline);
  put_model(out, req.model);
  put_u8(out, req.leakage == core::LeakageMode::kExact ? 1 : 0);
  put_u32(out, req.processors);
  put_u32(out, static_cast<std::uint32_t>(req.platform.size()));
  if (req.platform.empty()) {
    put_f64(out, req.alpha);
    put_f64(out, req.p_static);
    put_f64(out, req.sleep.p_idle);
    put_f64(out, req.sleep.p_sleep);
    put_f64(out, req.sleep.e_wake);
  } else {
    for (const model::ProcessorSpec& spec : req.platform) {
      put_f64(out, spec.power.alpha());
      put_f64(out, spec.power.p_static());
      put_f64(out, spec.s_max);
      put_f64(out, spec.power.sleep().p_idle);
      put_f64(out, spec.power.sleep().p_sleep);
      put_f64(out, spec.power.sleep().e_wake);
    }
  }
  put_str(out, req.graph_text);
  put_str(out, req.mapping_text);
}

SolveRequest read_solve(Reader& in) {
  SolveRequest req;
  req.deadline = in.f64();
  req.model = read_model(in);
  const std::uint8_t leakage = in.u8();
  if (leakage > 1) {
    throw WireError(ErrorCode::kBadMessage,
                    "unknown leakage mode " + std::to_string(leakage));
  }
  req.leakage =
      leakage == 1 ? core::LeakageMode::kExact : core::LeakageMode::kReduction;
  req.processors = in.u32();
  const std::uint32_t platform_size = in.u32();
  if (platform_size == 0) {
    req.alpha = in.f64();
    req.p_static = in.f64();
    const double p_idle = in.f64();
    const double p_sleep = in.f64();
    const double e_wake = in.f64();
    req.sleep = model::SleepSpec{p_idle, p_sleep, e_wake};
  } else {
    req.platform.reserve(platform_size);
    for (std::uint32_t p = 0; p < platform_size; ++p) {
      model::ProcessorSpec spec;
      const double alpha = in.f64();
      const double p_static = in.f64();
      spec.s_max = in.f64();
      const double p_idle = in.f64();
      const double p_sleep = in.f64();
      const double e_wake = in.f64();
      try {
        spec.power = model::make_power_model(
            alpha, p_static, model::make_sleep_spec(p_idle, p_sleep, e_wake));
      } catch (const Error& e) {
        throw WireError(ErrorCode::kBadRequest,
                        std::string("invalid processor spec: ") + e.what());
      }
      req.platform.push_back(std::move(spec));
    }
  }
  req.graph_text = in.str();
  req.mapping_text = in.str();
  return req;
}

void put_result(std::string& out, const SolveResult& result) {
  const core::Solution& s = result.solution;
  put_u8(out, s.feasible ? 1 : 0);
  put_f64(out, s.energy);
  put_str(out, s.method);
  put_u64(out, s.iterations);
  put_u32(out, static_cast<std::uint32_t>(s.speeds.size()));
  for (double v : s.speeds) put_f64(out, v);
  put_u32(out, static_cast<std::uint32_t>(s.profiles.size()));
  for (const sched::SpeedProfile& profile : s.profiles) {
    put_u32(out, static_cast<std::uint32_t>(profile.segments.size()));
    for (const auto& segment : profile.segments) {
      put_f64(out, segment.speed);
      put_f64(out, segment.duration);
    }
  }
}

SolveResult read_result(Reader& in) {
  SolveResult result;
  core::Solution& s = result.solution;
  const std::uint8_t feasible = in.u8();
  if (feasible > 1) {
    throw WireError(ErrorCode::kBadMessage,
                    "feasible flag must be 0 or 1, got " + std::to_string(feasible));
  }
  s.feasible = feasible == 1;
  s.energy = in.f64();
  s.method = in.str();
  s.iterations = in.u64();
  const std::uint32_t speeds = in.u32();
  s.speeds.reserve(speeds);
  for (std::uint32_t i = 0; i < speeds; ++i) s.speeds.push_back(in.f64());
  const std::uint32_t profiles = in.u32();
  s.profiles.reserve(profiles);
  for (std::uint32_t p = 0; p < profiles; ++p) {
    sched::SpeedProfile profile;
    const std::uint32_t segments = in.u32();
    profile.segments.reserve(segments);
    for (std::uint32_t g = 0; g < segments; ++g) {
      sched::SpeedProfile::Segment segment;
      segment.speed = in.f64();
      segment.duration = in.f64();
      profile.segments.push_back(segment);
    }
    s.profiles.push_back(std::move(profile));
  }
  return result;
}

void put_error(std::string& out, const ErrorReply& error) {
  put_u8(out, static_cast<std::uint8_t>(error.code));
  put_str(out, error.message);
}

ErrorReply read_error(Reader& in) {
  ErrorReply error;
  const std::uint8_t code = in.u8();
  if (code < 1 || code > 5) {
    throw WireError(ErrorCode::kBadMessage,
                    "unknown error code " + std::to_string(code));
  }
  error.code = static_cast<ErrorCode>(code);
  error.message = in.str();
  return error;
}

void put_stats_reply(std::string& out, const StatsReply& stats) {
  put_u64(out, stats.uptime_ms);
  put_u64(out, stats.clients_connected);
  put_u64(out, stats.clients_active);
  put_u64(out, stats.requests);
  put_u64(out, stats.results);
  put_u64(out, stats.errors);
  put_u64(out, stats.instances);
  put_u64(out, stats.fresh_solves);
  put_u64(out, stats.memo_hits);
  put_u64(out, stats.shape_hits);
  put_u64(out, stats.memo_entries);
  put_u64(out, stats.memo_bytes);
  put_u64(out, stats.memo_evictions);
  put_u64(out, stats.memo_oldest_age_ms);
  put_u64(out, stats.raced_solves);
  put_u64(out, stats.crawl_solves);
  put_u64(out, stats.kernel_solves);
  put_u64(out, stats.warm_solves);
  put_u64(out, stats.kernel_single);
  put_u64(out, stats.kernel_chain);
  put_u64(out, stats.kernel_fork);
  put_u64(out, stats.kernel_tree);
  put_u64(out, stats.kernel_sp);
  put_u64(out, stats.joint_solves);
  put_u64(out, stats.joint_improved);
  put_u32(out, static_cast<std::uint32_t>(stats.clients.size()));
  for (const StatsReply::Client& client : stats.clients) {
    put_u64(out, client.id);
    put_u64(out, client.requests);
    put_u64(out, client.results);
    put_u64(out, client.errors);
  }
}

StatsReply read_stats_reply(Reader& in) {
  StatsReply stats;
  stats.uptime_ms = in.u64();
  stats.clients_connected = in.u64();
  stats.clients_active = in.u64();
  stats.requests = in.u64();
  stats.results = in.u64();
  stats.errors = in.u64();
  stats.instances = in.u64();
  stats.fresh_solves = in.u64();
  stats.memo_hits = in.u64();
  stats.shape_hits = in.u64();
  stats.memo_entries = in.u64();
  stats.memo_bytes = in.u64();
  stats.memo_evictions = in.u64();
  stats.memo_oldest_age_ms = in.u64();
  stats.raced_solves = in.u64();
  stats.crawl_solves = in.u64();
  stats.kernel_solves = in.u64();
  stats.warm_solves = in.u64();
  stats.kernel_single = in.u64();
  stats.kernel_chain = in.u64();
  stats.kernel_fork = in.u64();
  stats.kernel_tree = in.u64();
  stats.kernel_sp = in.u64();
  stats.joint_solves = in.u64();
  stats.joint_improved = in.u64();
  const std::uint32_t clients = in.u32();
  stats.clients.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    StatsReply::Client client;
    client.id = in.u64();
    client.requests = in.u64();
    client.results = in.u64();
    client.errors = in.u64();
    stats.clients.push_back(client);
  }
  return stats;
}

}  // namespace

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame:
      return "BAD_FRAME";
    case ErrorCode::kBadVersion:
      return "BAD_VERSION";
    case ErrorCode::kBadMessage:
      return "BAD_MESSAGE";
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

MessageType type_of(const Message& message) {
  return std::visit(
      [](const auto& body) {
        using B = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<B, SolveRequest>) return MessageType::kSolve;
        if constexpr (std::is_same_v<B, SolveResult>) return MessageType::kResult;
        if constexpr (std::is_same_v<B, ErrorReply>) return MessageType::kError;
        if constexpr (std::is_same_v<B, StatsRequest>) return MessageType::kStats;
        if constexpr (std::is_same_v<B, StatsReply>)
          return MessageType::kStatsReply;
        if constexpr (std::is_same_v<B, Ping>) return MessageType::kPing;
        if constexpr (std::is_same_v<B, Pong>) return MessageType::kPong;
      },
      message.body);
}

std::string encode(const Message& message) {
  std::string out;
  out.reserve(64);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type_of(message)));
  put_u64(out, message.id);
  std::visit(
      [&out](const auto& body) {
        using B = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<B, SolveRequest>) {
          put_solve(out, body);
        } else if constexpr (std::is_same_v<B, SolveResult>) {
          put_result(out, body);
        } else if constexpr (std::is_same_v<B, ErrorReply>) {
          put_error(out, body);
        } else if constexpr (std::is_same_v<B, StatsReply>) {
          put_stats_reply(out, body);
        }
        // StatsRequest / Ping / Pong have empty bodies.
      },
      message.body);
  return out;
}

Message decode(std::string_view payload) {
  Reader in(payload);
  const std::uint8_t version = in.u8();
  const std::uint8_t type = in.u8();
  const std::uint64_t id = in.u64();
  if (version != kWireVersion) {
    throw WireError(ErrorCode::kBadVersion,
                    "unsupported protocol version " + std::to_string(version) +
                        " (this server speaks " + std::to_string(kWireVersion) +
                        ")");
  }
  Message message;
  message.id = id;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kSolve:
      message.body = read_solve(in);
      break;
    case MessageType::kResult:
      message.body = read_result(in);
      break;
    case MessageType::kError:
      message.body = read_error(in);
      break;
    case MessageType::kStats:
      message.body = StatsRequest{};
      break;
    case MessageType::kStatsReply:
      message.body = read_stats_reply(in);
      break;
    case MessageType::kPing:
      message.body = Ping{};
      break;
    case MessageType::kPong:
      message.body = Pong{};
      break;
    default:
      throw WireError(ErrorCode::kBadMessage,
                      "unknown message type " + std::to_string(type));
  }
  in.expect_end();
  return message;
}

std::uint64_t peek_request_id(std::string_view payload) noexcept {
  if (payload.size() < 10) return 0;
  std::uint64_t id;
  std::memcpy(&id, payload.data() + 2, sizeof id);
  return id;
}

}  // namespace reclaim::net
