#include "net/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/annotated_mutex.hpp"
#include "util/error.hpp"

namespace reclaim::net {

ServeClient ServeClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  util::require(path.size() < sizeof(addr.sun_path),
                "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(): " + util::errno_string(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = util::errno_string(errno);
    ::close(fd);
    throw Error("cannot connect to '" + path + "': " + what);
  }
  return ServeClient(fd, fd, /*owns_fds=*/true);
}

ServeClient ServeClient::from_fds(int in_fd, int out_fd, bool owns_fds) {
  return ServeClient(in_fd, out_fd, owns_fds);
}

ServeClient::ServeClient(int in_fd, int out_fd, bool owns_fds)
    : in_fd_(in_fd), out_fd_(out_fd), owns_fds_(owns_fds) {}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : in_fd_(std::exchange(other.in_fd_, -1)),
      out_fd_(std::exchange(other.out_fd_, -1)),
      owns_fds_(std::exchange(other.owns_fds_, false)) {
  // Moving a client that another thread is still sending on is a caller
  // bug, but take the lock anyway: it is free here, and it keeps the id
  // counter's guarded-by contract intact for the analysis.
  const util::MutexLock lock(other.send_mutex_);
  next_id_ = other.next_id_;
}

ServeClient::~ServeClient() {
  if (!owns_fds_) return;
  if (in_fd_ >= 0) ::close(in_fd_);
  if (out_fd_ >= 0 && out_fd_ != in_fd_) ::close(out_fd_);
}

std::uint64_t ServeClient::send_solve(const SolveRequest& request) {
  const util::MutexLock lock(send_mutex_);
  Message message{++next_id_, request};
  const std::string payload = encode(message);
  write_frame(out_fd_, payload);
  return message.id;
}

std::uint64_t ServeClient::send_stats() {
  const util::MutexLock lock(send_mutex_);
  Message message{++next_id_, StatsRequest{}};
  write_frame(out_fd_, encode(message));
  return message.id;
}

std::uint64_t ServeClient::send_ping() {
  const util::MutexLock lock(send_mutex_);
  Message message{++next_id_, Ping{}};
  write_frame(out_fd_, encode(message));
  return message.id;
}

std::optional<Message> ServeClient::read_message() {
  std::string payload;
  const util::MutexLock lock(read_mutex_);
  if (!read_frame(in_fd_, payload)) return std::nullopt;
  return decode(payload);
}

void ServeClient::finish_sending() {
  const util::MutexLock lock(send_mutex_);
  // Sockets get a half-close; a pipe's writer just stops writing (the
  // tool closes the pipe fd itself when it owns one).
  ::shutdown(out_fd_, SHUT_WR);
}

}  // namespace reclaim::net
