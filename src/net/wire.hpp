// Versioned wire messages for the solve service (docs/serve_protocol.md —
// the normative spec; this header implements it).
//
// A Message is a request id plus one typed body; encode() produces the
// exact byte layout of the spec and decode() inverts it, throwing a
// WireError carrying the protocol error code (BAD_VERSION / BAD_MESSAGE /
// BAD_REQUEST) that the server should send back. Encoding is canonical:
// decode(encode(m)) re-encodes to the same bytes, which the round-trip
// tests pin per message type.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/problem.hpp"
#include "core/solve.hpp"
#include "model/energy_model.hpp"
#include "model/platform.hpp"
#include "util/error.hpp"

namespace reclaim::net {

/// Version 4 extends STATS_REPLY with the joint speed/sleep counters
/// (joint_solves/joint_improved). Version 3 added the per-family kernel
/// counters (kernel_single/chain/fork/tree/sp), version 2 the
/// kernel_solves/warm_solves fast-path counters; everything else is
/// unchanged from version 1.
inline constexpr std::uint8_t kWireVersion = 4;

/// Message type byte (docs/serve_protocol.md, "Message types").
enum class MessageType : std::uint8_t {
  kSolve = 0x01,
  kResult = 0x02,
  kError = 0x03,
  kStats = 0x04,
  kStatsReply = 0x05,
  kPing = 0x06,
  kPong = 0x07,
};

/// Protocol error code carried by ERROR replies.
enum class ErrorCode : std::uint8_t {
  kBadFrame = 1,    ///< frame-layer violation; connection closes
  kBadVersion = 2,  ///< unknown protocol version byte
  kBadMessage = 3,  ///< unknown type / malformed body / trailing bytes / NaN
  kBadRequest = 4,  ///< well-formed SOLVE with invalid content
  kInternal = 5,    ///< exception while solving
};

[[nodiscard]] std::string_view to_string(ErrorCode code);

/// A protocol violation found while encoding or decoding, tagged with the
/// ErrorCode the peer should be told.
class WireError : public Error {
 public:
  WireError(ErrorCode code, const std::string& what) : Error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// SOLVE: everything the server needs to rebuild and solve an instance.
/// The graph and mapping ride as the io:: text formats (the same files
/// reclaim_cli reads), so any producer of those files can be a client.
struct SolveRequest {
  double deadline = 0.0;
  model::EnergyModel model = model::ContinuousModel{};
  core::LeakageMode leakage = core::LeakageMode::kReduction;
  /// Processor count for server-side list scheduling; superseded by
  /// `platform` when non-empty (the platform's size is the count).
  std::uint32_t processors = 1;
  /// Heterogeneous platform, one spec per processor; empty means uniform
  /// processors running P(s) = p_static + s^alpha with `sleep` attached.
  std::vector<model::ProcessorSpec> platform;
  double alpha = 3.0;
  double p_static = 0.0;
  model::SleepSpec sleep;
  std::string graph_text;
  /// io:: mapping text; empty = server list-schedules onto `processors`.
  std::string mapping_text;
};

/// RESULT: the solution, verbatim (infeasible is a result, not an error).
struct SolveResult {
  core::Solution solution;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct StatsRequest {};

/// STATS_REPLY: a live sample of the server/engine/cache counters
/// (docs/serve_protocol.md lists each field's meaning).
struct StatsReply {
  std::uint64_t uptime_ms = 0;
  std::uint64_t clients_connected = 0;
  std::uint64_t clients_active = 0;
  std::uint64_t requests = 0;
  std::uint64_t results = 0;
  std::uint64_t errors = 0;
  std::uint64_t instances = 0;
  std::uint64_t fresh_solves = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t shape_hits = 0;
  std::uint64_t memo_entries = 0;
  std::uint64_t memo_bytes = 0;
  std::uint64_t memo_evictions = 0;
  std::uint64_t memo_oldest_age_ms = 0;
  std::uint64_t raced_solves = 0;
  std::uint64_t crawl_solves = 0;
  std::uint64_t kernel_solves = 0;
  std::uint64_t warm_solves = 0;
  /// Per-family split of kernel_solves (which stays the total).
  std::uint64_t kernel_single = 0;
  std::uint64_t kernel_chain = 0;
  std::uint64_t kernel_fork = 0;
  std::uint64_t kernel_tree = 0;
  std::uint64_t kernel_sp = 0;
  /// Joint speed/sleep routing (--joint-sleep): instances that ran the
  /// joint refiner, and the subset that strictly beat the race anchor.
  std::uint64_t joint_solves = 0;
  std::uint64_t joint_improved = 0;

  struct Client {
    std::uint64_t id = 0;
    std::uint64_t requests = 0;
    std::uint64_t results = 0;
    std::uint64_t errors = 0;
  };
  std::vector<Client> clients;

  /// Shared-cache effectiveness: memo hits per solve requested.
  [[nodiscard]] double hit_rate() const noexcept {
    return instances == 0 ? 0.0
                          : static_cast<double>(memo_hits) /
                                static_cast<double>(instances);
  }
};

struct Ping {};
struct Pong {};

struct Message {
  std::uint64_t id = 0;
  std::variant<SolveRequest, SolveResult, ErrorReply, StatsRequest, StatsReply,
               Ping, Pong>
      body;
};

[[nodiscard]] MessageType type_of(const Message& message);

/// Serializes header + body per the spec. Throws WireError{kBadMessage}
/// on unencodable content (NaN fields).
[[nodiscard]] std::string encode(const Message& message);

/// Parses one payload. Throws WireError with kBadVersion (wrong version
/// byte) or kBadMessage (unknown type, malformed/truncated body, trailing
/// bytes, NaN) — the id is still recoverable from the exception-free
/// header probe below whenever the payload had 10 bytes.
[[nodiscard]] Message decode(std::string_view payload);

/// Best-effort request id of a payload (0 when the header is too short):
/// lets the server attribute an ERROR reply to the request that caused a
/// decode failure.
[[nodiscard]] std::uint64_t peek_request_id(std::string_view payload) noexcept;

}  // namespace reclaim::net
