// ServeClient: the client half of the solve service protocol.
//
// Wraps a connected byte stream (Unix socket or an fd pair) in the
// framing + wire codec and hands out request ids: send_* frames a request
// and returns the id it was tagged with; read_message() blocks for the
// next server reply, which — by design — may answer any outstanding id
// (the server responds in completion order, docs/serve_protocol.md).
// Callers that pipeline keep their own id -> request map.
//
// Thread safety: one sender and one reader may run concurrently (send and
// read paths lock independently), which is exactly the pipelined-client
// shape reclaim_client and the throughput bench use. Multiple concurrent
// senders are also fine; multiple concurrent readers would race for
// replies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/framing.hpp"
#include "net/wire.hpp"
#include "util/annotated_mutex.hpp"

namespace reclaim::net {

class ServeClient {
 public:
  /// Connects to a reclaim_serve Unix socket. Throws Error on failure.
  [[nodiscard]] static ServeClient connect_unix(const std::string& path);

  /// Adopts an already-connected pair (socketpair tests, --stdio pipes).
  /// With `owns_fds` the destructor closes them.
  [[nodiscard]] static ServeClient from_fds(int in_fd, int out_fd,
                                            bool owns_fds = false);

  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Frames one SOLVE and returns its request id (monotonic from 1).
  std::uint64_t send_solve(const SolveRequest& request);

  /// Frames a STATS request and returns its id.
  std::uint64_t send_stats();

  /// Frames a PING and returns its id.
  std::uint64_t send_ping();

  /// Blocks for the next reply; nullopt on clean EOF (server closed).
  /// Throws FrameError/WireError if the stream breaks or the reply is
  /// malformed.
  [[nodiscard]] std::optional<Message> read_message();

  /// Half-closes the write direction (sockets only): tells the server
  /// "no more requests" while keeping replies flowing — how a batch
  /// client says goodbye without abandoning in-flight solves.
  void finish_sending();

 private:
  ServeClient(int in_fd, int out_fd, bool owns_fds);

  int in_fd_ = -1;
  int out_fd_ = -1;
  bool owns_fds_ = false;
  util::Mutex send_mutex_;
  util::Mutex read_mutex_;
  std::uint64_t next_id_ RECLAIM_GUARDED_BY(send_mutex_) = 0;
};

}  // namespace reclaim::net
