#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "io/graph_io.hpp"
#include "model/power_model.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"

namespace reclaim::net {

namespace {

/// Rebuilds the MappedInstance a SOLVE body describes, exactly the way
/// reclaim_cli builds it from files: parse the graph, take the supplied
/// mapping or list-schedule one, chain same-processor tasks into the
/// execution graph, attach the platform. Every validation failure throws
/// reclaim::Error, which the caller answers with BAD_REQUEST.
engine::MappedInstance build_mapped_instance(const SolveRequest& request) {
  util::require(std::isfinite(request.deadline) && request.deadline > 0.0,
                "SOLVE: deadline must be positive and finite");
  const graph::Digraph app =
      io::read_task_graph_from_string(request.graph_text);

  std::optional<model::Platform> platform;
  if (!request.platform.empty()) platform.emplace(request.platform);
  const std::size_t processors =
      platform ? platform->size() : request.processors;
  util::require(processors >= 1, "SOLVE: processors must be >= 1");

  sched::Mapping mapping(1);
  if (!request.mapping_text.empty()) {
    mapping = io::read_mapping_from_string(request.mapping_text, app);
  } else {
    mapping = sched::list_schedule(app, processors).mapping;
  }
  graph::Digraph exec = sched::build_execution_graph(app, mapping);

  core::Instance instance =
      platform ? core::make_instance(std::move(exec), request.deadline,
                                     std::move(*platform), mapping)
               : core::make_instance(
                     std::move(exec), request.deadline,
                     model::make_power_model(request.alpha, request.p_static,
                                             request.sleep));
  return {std::move(instance), std::move(mapping)};
}

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

/// Everything one connection's reader and its in-flight workers share.
/// shared_ptr-owned by both, so a worker finishing after the reader broke
/// out of its loop still has a live write lock to take (the reader waits
/// for the flight count to drain before its fds go away).
struct ReclaimServer::Connection {
  int out_fd = -1;
  std::shared_ptr<ClientCounters> counters;
  /// Serializes reply frames onto out_fd; never held together with
  /// flight_mutex (send_reply releases it before the flight accounting).
  util::Mutex write_mutex;
  /// Set on the first write failure: the peer is gone, later replies are
  /// dropped instead of erroring once per in-flight solve.
  std::atomic<bool> dead{false};
  util::Mutex flight_mutex;
  util::CondVar flight_cv;
  std::size_t outstanding RECLAIM_GUARDED_BY(flight_mutex) = 0;
};

ReclaimServer::ReclaimServer(ServerOptions options)
    : options_(options),
      engine_(options.engine),
      start_(std::chrono::steady_clock::now()) {
  if (options_.stats_log_interval_s > 0.0 && options_.log != nullptr) {
    log_thread_ = std::thread([this] { log_loop(); });
  }
}

ReclaimServer::~ReclaimServer() {
  stopping_.store(true, std::memory_order_relaxed);
  if (log_thread_.joinable()) log_thread_.join();
}

void ReclaimServer::log_loop() {
  using namespace std::chrono_literals;
  const auto interval =
      std::chrono::duration<double>(options_.stats_log_interval_s);
  auto next = std::chrono::steady_clock::now() + interval;
  // Polls the stop flag at >= 4 Hz so shutdown() (async-signal-safe, no
  // condition variable to notify) is observed promptly.
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::min<std::chrono::duration<double>>(250ms, interval));
    if (std::chrono::steady_clock::now() < next) continue;
    next += interval;
    *options_.log << stats_line() << std::endl;
  }
}

void ReclaimServer::serve_stream(int in_fd, int out_fd) {
  handle_connection(in_fd, out_fd);
}

void ReclaimServer::serve_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  util::require(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(): " + util::errno_string(errno));
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    const std::string what = util::errno_string(errno);
    ::close(fd);
    throw Error("cannot listen on '" + socket_path + "': " + what);
  }
  listen_fd_.store(fd, std::memory_order_release);

  std::vector<std::thread> readers;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Poll with a timeout instead of blocking in accept(): Linux neither
    // fails accept() when another thread shutdown()s a *listening*
    // socket (ENOTCONN, accept keeps blocking) nor breaks it out for a
    // std::signal handler (SA_RESTART), so the stop flag is the one
    // reliable exit and must be re-checked periodically.
    pollfd waiter{fd, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;
    }
    readers.emplace_back([this, client] {
      handle_connection(client, client);
      ::close(client);
    });
  }
  listen_fd_.store(-1, std::memory_order_release);
  ::close(fd);
  ::unlink(socket_path.c_str());
  for (auto& reader : readers) reader.join();
}

void ReclaimServer::shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblocks accept()
}

void ReclaimServer::handle_connection(int in_fd, int out_fd) {
  const auto conn = std::make_shared<Connection>();
  conn->out_fd = out_fd;
  conn->counters = std::make_shared<ClientCounters>();
  {
    const util::MutexLock lock(clients_mutex_);
    conn->counters->id = ++next_client_id_;
    clients_.push_back(conn->counters);
    ++clients_active_;
  }

  std::string payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(in_fd, payload, options_.max_frame_bytes);
    } catch (const FrameError& e) {
      // The length prefix itself was wrong: the stream is desynchronized
      // and nothing after this point can be parsed. Best-effort BAD_FRAME
      // (id 0 — no request to attribute it to), then close.
      if (e.kind() == FrameError::Kind::kOversized ||
          e.kind() == FrameError::Kind::kEmpty) {
        send_reply(*conn,
                   Message{0, ErrorReply{ErrorCode::kBadFrame, e.what()}});
      }
      break;
    }
    if (!got) break;  // clean EOF at a frame boundary

    Message message;
    try {
      message = decode(payload);
    } catch (const WireError& e) {
      // Payload errors keep the connection: the frame boundary held, so
      // the next frame is still parseable.
      send_reply(*conn, Message{peek_request_id(payload),
                                ErrorReply{e.code(), e.what()}});
      continue;
    }
    handle_message(conn, std::move(message));
  }

  {
    // The peer is gone (or desynced) but workers may still hold requests;
    // the fds must stay valid until the last reply is written or dropped.
    Connection& c = *conn;
    const util::MutexLock lock(c.flight_mutex);
    while (c.outstanding != 0) c.flight_cv.wait(c.flight_mutex);
  }
  const util::MutexLock lock(clients_mutex_);
  --clients_active_;
}

void ReclaimServer::handle_message(const std::shared_ptr<Connection>& conn,
                                   Message message) {
  const std::uint64_t id = message.id;
  if (auto* solve = std::get_if<SolveRequest>(&message.body)) {
    conn->counters->requests.fetch_add(1, std::memory_order_relaxed);
    engine::MappedInstance mapped;
    try {
      mapped = build_mapped_instance(*solve);
    } catch (const Error& e) {
      send_reply(*conn,
                 Message{id, ErrorReply{ErrorCode::kBadRequest, e.what()}});
      return;
    }
    core::SolveOptions options = options_.solve;
    options.leakage = solve->leakage;
    {
      Connection& c = *conn;
      const util::MutexLock lock(c.flight_mutex);
      ++c.outstanding;
    }
    engine_.submit(
        std::move(mapped), std::move(solve->model), options,
        [this, conn, id](core::Solution solution, std::exception_ptr error) {
          if (error) {
            send_reply(*conn, Message{id, ErrorReply{ErrorCode::kInternal,
                                                     describe(error)}});
          } else {
            send_reply(*conn, Message{id, SolveResult{std::move(solution)}});
          }
          Connection& c = *conn;
          const util::MutexLock lock(c.flight_mutex);
          if (--c.outstanding == 0) c.flight_cv.notify_all();
        });
    return;
  }
  if (std::holds_alternative<StatsRequest>(message.body)) {
    send_reply(*conn, Message{id, stats()});
    return;
  }
  if (std::holds_alternative<Ping>(message.body)) {
    send_reply(*conn, Message{id, Pong{}});
    return;
  }
  // RESULT / ERROR / STATS_REPLY / PONG are server-to-client only.
  send_reply(*conn, Message{id, ErrorReply{ErrorCode::kBadMessage,
                                           "unexpected server-to-client "
                                           "message type in a request"}});
}

void ReclaimServer::send_reply(Connection& conn, const Message& message) {
  // Per docs/serve_protocol.md: `results` counts RESULT frames only, so
  // PONG and STATS_REPLY traffic never inflates the solve throughput the
  // stats line reports.
  if (std::holds_alternative<SolveResult>(message.body)) {
    conn.counters->results.fetch_add(1, std::memory_order_relaxed);
  } else if (std::holds_alternative<ErrorReply>(message.body)) {
    conn.counters->errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.dead.load(std::memory_order_relaxed)) return;
  try {
    const std::string payload = encode(message);
    const util::MutexLock lock(conn.write_mutex);
    write_frame(conn.out_fd, payload, options_.max_frame_bytes);
  } catch (const Error&) {
    // Peer vanished mid-reply (or a solution failed to encode): nothing
    // to tell it anymore; drop this connection's remaining replies.
    conn.dead.store(true, std::memory_order_relaxed);
  }
}

StatsReply ReclaimServer::stats() const {
  StatsReply reply;
  reply.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());

  const engine::EngineStats engine = engine_.stats();
  reply.instances = engine.instances;
  reply.fresh_solves = engine.fresh_solves;
  reply.memo_hits = engine.memo_hits;
  reply.shape_hits = engine.shape_hits;
  reply.memo_entries = engine.memo_entries;
  reply.memo_bytes = engine.memo_bytes;
  reply.memo_evictions = engine.memo_evictions;
  reply.memo_oldest_age_ms =
      static_cast<std::uint64_t>(engine.memo_oldest_age_s * 1000.0);
  reply.raced_solves = engine.raced_solves;
  reply.crawl_solves = engine.crawl_solves;
  reply.joint_solves = engine.joint_solves;
  reply.joint_improved = engine.joint_improved;
  reply.kernel_solves = engine.kernel_solves;
  reply.warm_solves = engine.warm_solves;
  reply.kernel_single = engine.kernel_single;
  reply.kernel_chain = engine.kernel_chain;
  reply.kernel_fork = engine.kernel_fork;
  reply.kernel_tree = engine.kernel_tree;
  reply.kernel_sp = engine.kernel_sp;

  const util::MutexLock lock(clients_mutex_);
  reply.clients_connected = next_client_id_;
  reply.clients_active = clients_active_;
  reply.clients.reserve(clients_.size());
  for (const auto& client : clients_) {
    StatsReply::Client row;
    row.id = client->id;
    row.requests = client->requests.load(std::memory_order_relaxed);
    row.results = client->results.load(std::memory_order_relaxed);
    row.errors = client->errors.load(std::memory_order_relaxed);
    reply.requests += row.requests;
    reply.results += row.results;
    reply.errors += row.errors;
    reply.clients.push_back(row);
  }
  return reply;
}

std::string ReclaimServer::stats_line() const {
  const StatsReply s = stats();
  std::ostringstream line;
  line.setf(std::ios::fixed);
  line.precision(1);
  line << "serve: up " << static_cast<double>(s.uptime_ms) / 1000.0 << "s; "
       << s.clients_active << "/" << s.clients_connected << " clients; "
       << s.requests << " requests -> " << s.results << " results + "
       << s.errors << " errors; memo " << s.memo_hits << "/" << s.instances
       << " hits (" << 100.0 * s.hit_rate() << "%), " << s.memo_entries
       << " entries, " << static_cast<double>(s.memo_bytes) / 1024.0
       << " KiB, " << s.memo_evictions << " evictions";
  if (s.memo_entries > 0) {
    line << ", oldest " << static_cast<double>(s.memo_oldest_age_ms) / 1000.0
         << "s";
  }
  if (s.joint_solves > 0) {
    line << "; joint " << s.joint_improved << "/" << s.joint_solves
         << " improved";
  }
  if (s.kernel_solves > 0 || s.warm_solves > 0) {
    line << "; fast path " << s.kernel_solves << " kernel + " << s.warm_solves
         << " warm";
    if (s.kernel_solves > 0) {
      line << " (kernel " << s.kernel_single << " single, " << s.kernel_chain
           << " chain, " << s.kernel_fork << " fork, " << s.kernel_tree
           << " tree, " << s.kernel_sp << " sp)";
    }
  }
  return line.str();
}

}  // namespace reclaim::net
