// Length-prefixed framing over a POSIX byte stream (docs/serve_protocol.md,
// "Framing"): every message travels as a u32 little-endian payload length
// followed by that many payload bytes.
//
// The frame layer knows nothing about message contents — it only
// guarantees that a well-formed stream is cut back into the exact payload
// byte strings the sender framed, and that a malformed stream (oversized
// announcement, EOF mid-frame) surfaces as a typed FrameError instead of a
// desynchronized read. Works over sockets and pipes alike; writes use
// send(MSG_NOSIGNAL) where the fd is a socket so a vanished peer produces
// an error return, never SIGPIPE.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace reclaim::net {

/// Hard ceiling on one frame's payload (docs/serve_protocol.md): large
/// enough for any realistic task graph, small enough that a garbage
/// length prefix cannot make the receiver allocate unbounded memory.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// A violation of the framing contract, tagged with what went wrong so
/// the server can distinguish "reply with BAD_FRAME then close"
/// (kOversized, kEmpty) from "nothing left to reply to" (kTruncated, kIo).
class FrameError : public Error {
 public:
  enum class Kind {
    kEmpty,      ///< frame announced a zero-length payload
    kOversized,  ///< frame announced more than the payload ceiling
    kTruncated,  ///< stream ended in the middle of a frame
    kIo,         ///< read/write syscall failed (or the peer vanished)
  };

  FrameError(Kind kind, const std::string& what) : Error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Reads one frame into `payload`. Returns false on clean EOF at a frame
/// boundary (the peer closed; there is no partial frame), true on
/// success. Throws FrameError on a malformed or truncated stream.
[[nodiscard]] bool read_frame(int fd, std::string& payload,
                              std::size_t max_payload = kMaxFramePayload);

/// Writes one frame (length prefix + payload). Throws FrameError{kIo} if
/// the peer is gone, FrameError{kOversized}/{kEmpty} if the payload
/// violates the size contract (caller bug, but never silently framed).
void write_frame(int fd, std::string_view payload,
                 std::size_t max_payload = kMaxFramePayload);

}  // namespace reclaim::net
