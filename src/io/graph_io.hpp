// Plain-text serialization for task graphs, mappings and solutions, so
// downstream users can drive the solvers without writing C++ (see
// tools/reclaim_cli).
//
// Task-graph format (one directive per line, '#' comments):
//
//   task <name> <weight>
//   edge <from-name> <to-name>
//
// Mapping format (processor lists in execution order):
//
//   proc <task-name> <task-name> ...
//
// Names are unique non-empty tokens without whitespace. Node ids are
// assigned in `task` declaration order.
#pragma once

#include <iosfwd>
#include <string>

#include "core/problem.hpp"
#include "graph/digraph.hpp"
#include "sched/mapping.hpp"

namespace reclaim::io {

/// Parses the task-graph format. Throws InvalidArgument with a line number
/// on malformed input (unknown directive, duplicate name, bad weight,
/// unknown endpoint, duplicate edge).
[[nodiscard]] graph::Digraph read_task_graph(std::istream& in);
[[nodiscard]] graph::Digraph read_task_graph_from_string(const std::string& text);

/// Writes the same format back (tasks in id order, then edges).
void write_task_graph(std::ostream& out, const graph::Digraph& g);

/// Parses a mapping against `g` (task names must exist). Completeness is
/// *not* enforced here — build_execution_graph validates it.
[[nodiscard]] sched::Mapping read_mapping(std::istream& in,
                                          const graph::Digraph& g);
[[nodiscard]] sched::Mapping read_mapping_from_string(const std::string& text,
                                                      const graph::Digraph& g);

void write_mapping(std::ostream& out, const sched::Mapping& mapping,
                   const graph::Digraph& g);

/// Writes a solution as "<task> <speed> <energy>" rows (or per-segment
/// rows for Vdd profiles), followed by a "total <energy>" line.
void write_solution(std::ostream& out, const core::Instance& instance,
                    const core::Solution& solution);

}  // namespace reclaim::io
