#include "io/graph_io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace reclaim::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidArgument("line " + std::to_string(line) + ": " + message);
}

/// Splits a line into tokens, dropping '#' comments.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

double parse_weight(const std::string& token, std::size_t line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail(line, "bad weight '" + token + "'");
  }
  if (consumed != token.size()) fail(line, "bad weight '" + token + "'");
  if (value < 0.0) fail(line, "negative weight");
  return value;
}

std::string display_name(const graph::Digraph& g, graph::NodeId v) {
  return g.name(v).empty() ? "T" + std::to_string(v) : g.name(v);
}

}  // namespace

graph::Digraph read_task_graph(std::istream& in) {
  graph::Digraph g;
  std::map<std::string, graph::NodeId> by_name;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokens_of(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "task") {
      if (tokens.size() != 3) fail(line_number, "expected: task <name> <weight>");
      if (by_name.count(tokens[1])) fail(line_number, "duplicate task '" + tokens[1] + "'");
      const double weight = parse_weight(tokens[2], line_number);
      by_name[tokens[1]] = g.add_node(weight, tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3) fail(line_number, "expected: edge <from> <to>");
      const auto from = by_name.find(tokens[1]);
      const auto to = by_name.find(tokens[2]);
      if (from == by_name.end()) fail(line_number, "unknown task '" + tokens[1] + "'");
      if (to == by_name.end()) fail(line_number, "unknown task '" + tokens[2] + "'");
      try {
        g.add_edge(from->second, to->second);
      } catch (const InvalidArgument& e) {
        fail(line_number, e.what());
      }
    } else {
      fail(line_number, "unknown directive '" + tokens[0] + "'");
    }
  }
  return g;
}

graph::Digraph read_task_graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_task_graph(is);
}

void write_task_graph(std::ostream& out, const graph::Digraph& g) {
  // Full round-trip precision for the weights.
  const auto saved = out.precision(std::numeric_limits<double>::max_digits10);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "task " << display_name(g, v) << ' ' << g.weight(v) << '\n';
  }
  out.precision(saved);
  for (const graph::Edge& e : g.edges()) {
    out << "edge " << display_name(g, e.from) << ' ' << display_name(g, e.to)
        << '\n';
  }
}

sched::Mapping read_mapping(std::istream& in, const graph::Digraph& g) {
  std::map<std::string, graph::NodeId> by_name;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    by_name[display_name(g, v)] = v;

  std::vector<std::vector<graph::NodeId>> lists;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokens_of(line);
    if (tokens.empty()) continue;
    if (tokens[0] != "proc") fail(line_number, "expected: proc <tasks...>");
    std::vector<graph::NodeId> list;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto it = by_name.find(tokens[i]);
      if (it == by_name.end())
        fail(line_number, "unknown task '" + tokens[i] + "'");
      list.push_back(it->second);
    }
    lists.push_back(std::move(list));
  }
  util::require(!lists.empty(), "mapping has no processors");
  return sched::Mapping(std::move(lists));
}

sched::Mapping read_mapping_from_string(const std::string& text,
                                        const graph::Digraph& g) {
  std::istringstream is(text);
  return read_mapping(is, g);
}

void write_mapping(std::ostream& out, const sched::Mapping& mapping,
                   const graph::Digraph& g) {
  for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
    out << "proc";
    for (graph::NodeId v : mapping.tasks_on(p)) out << ' ' << display_name(g, v);
    out << '\n';
  }
}

void write_solution(std::ostream& out, const core::Instance& instance,
                    const core::Solution& solution) {
  if (!solution.feasible) {
    out << "infeasible\n";
    return;
  }
  const auto& g = instance.exec_graph;
  if (solution.uses_profiles()) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      out << display_name(g, v);
      for (const auto& segment : solution.profiles[v].segments)
        out << ' ' << segment.speed << 'x' << segment.duration;
      out << ' ' << solution.profiles[v].energy(instance.power_of(v)) << '\n';
    }
  } else {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      out << display_name(g, v) << ' ' << solution.speeds[v] << ' '
          << instance.power_of(v).task_energy(g.weight(v), solution.speeds[v])
          << '\n';
    }
  }
  out << "total " << solution.energy << '\n';
}

}  // namespace reclaim::io
