// Dense two-phase primal simplex.
//
// Theorem 3 reduces MinEnergy under Vdd-Hopping to a linear program; this
// self-contained solver (Dantzig pricing with a Bland anti-cycling
// fallback, explicit infeasible/unbounded detection) is sized for the
// hundreds-of-variables LPs the experiments generate.
//
// Canonical form: minimize c'x subject to sparse rows a_r x {<=,=,>=} b_r
// and x >= 0.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace reclaim::opt {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct LinearConstraint {
  std::vector<std::pair<std::size_t, double>> terms;  ///< (variable, coefficient)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

class LinearProgram {
 public:
  /// Adds a variable with objective coefficient `cost`; returns its index.
  std::size_t add_variable(double cost);

  void add_constraint(LinearConstraint constraint);

  [[nodiscard]] std::size_t num_variables() const noexcept { return costs_.size(); }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] const std::vector<double>& costs() const noexcept { return costs_; }
  [[nodiscard]] const std::vector<LinearConstraint>& constraints() const noexcept {
    return constraints_;
  }

 private:
  std::vector<double> costs_;
  std::vector<LinearConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;       ///< primal values (valid when optimal)
  double objective = 0.0;      ///< c'x (valid when optimal)
  std::size_t pivots = 0;      ///< total simplex pivots (both phases)
};

struct SimplexOptions {
  double eps = 1e-9;             ///< pivot / feasibility tolerance
  std::size_t max_pivots = 200000;
};

/// Solves the LP; throws NumericalError when the pivot budget is exhausted.
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp,
                                  const SimplexOptions& options = {});

}  // namespace reclaim::opt
