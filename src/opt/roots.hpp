// Scalar root finding on monotone functions (bisection with a secant
// acceleration), used by analysis utilities and tests.
#pragma once

#include <functional>

namespace reclaim::opt {

struct RootOptions {
  double tol = 1e-12;       ///< absolute interval tolerance
  std::size_t max_iter = 200;
};

/// Finds x in [lo, hi] with f(x) ~ 0. Requires f(lo) and f(hi) to have
/// opposite (or zero) signs; throws InvalidArgument otherwise.
[[nodiscard]] double find_root(const std::function<double(double)>& f, double lo,
                               double hi, const RootOptions& options = {});

}  // namespace reclaim::opt
