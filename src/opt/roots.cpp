#include "opt/roots.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::opt {

double find_root(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& options) {
  util::require(lo <= hi, "find_root: empty interval");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  util::require(flo * fhi < 0.0, "find_root: no sign change over the interval");

  for (std::size_t i = 0; i < options.max_iter && hi - lo > options.tol; ++i) {
    // Secant proposal, safeguarded to the middle half of the bracket.
    double mid = lo + (hi - lo) * (-flo) / (fhi - flo);
    const double lo_guard = lo + 0.25 * (hi - lo);
    const double hi_guard = hi - 0.25 * (hi - lo);
    if (!(mid >= lo_guard && mid <= hi_guard)) mid = 0.5 * (lo + hi);

    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (flo * fmid < 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace reclaim::opt
