#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/matrix.hpp"
#include "util/error.hpp"

namespace reclaim::opt {

using util::require;

std::size_t LinearProgram::add_variable(double cost) {
  costs_.push_back(cost);
  return costs_.size() - 1;
}

void LinearProgram::add_constraint(LinearConstraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    require(var < costs_.size(), "constraint references an unknown variable");
    (void)coeff;
  }
  constraints_.push_back(std::move(constraint));
}

namespace {

/// Dense simplex tableau with an attached reduced-cost row.
///
/// Layout: rows 0..m-1 hold the constraints; `rc` holds the reduced costs
/// with rc[cols] == -objective (so a single row elimination updates both).
struct Tableau {
  la::Matrix body;            // m x (cols + 1); last column is the rhs
  std::vector<double> rc;     // cols + 1 entries
  std::vector<std::size_t> basis;
  std::size_t cols = 0;

  [[nodiscard]] double rhs(std::size_t r) const { return body(r, cols); }
  [[nodiscard]] double objective() const { return -rc[cols]; }

  void pivot(std::size_t row, std::size_t col) {
    const double p = body(row, col);
    double* prow = body.row(row);
    const double inv = 1.0 / p;
    for (std::size_t j = 0; j <= cols; ++j) prow[j] *= inv;
    prow[col] = 1.0;  // exact

    for (std::size_t r = 0; r < body.rows(); ++r) {
      if (r == row) continue;
      const double factor = body(r, col);
      if (factor == 0.0) continue;
      double* target = body.row(r);
      for (std::size_t j = 0; j <= cols; ++j) target[j] -= factor * prow[j];
      target[col] = 0.0;  // exact
    }
    const double zfactor = rc[col];
    if (zfactor != 0.0) {
      for (std::size_t j = 0; j <= cols; ++j) rc[j] -= zfactor * prow[j];
      rc[col] = 0.0;
    }
    basis[row] = col;
  }
};

enum class LoopResult { kOptimal, kUnbounded };

/// Runs the pivot loop until optimality/unboundedness. `allowed[j]` gates
/// entering columns. Switches from Dantzig to Bland pricing after a long
/// stall to break degenerate cycles.
LoopResult pivot_loop(Tableau& t, const std::vector<bool>& allowed,
                      const SimplexOptions& options, std::size_t& pivots) {
  const std::size_t m = t.body.rows();
  const double eps = options.eps;
  double last_objective = t.objective();
  std::size_t stall = 0;
  const std::size_t stall_limit = 3 * (m + t.cols) + 64;
  bool bland = false;

  for (;;) {
    // Entering column.
    std::size_t enter = t.cols;  // sentinel: none
    if (bland) {
      for (std::size_t j = 0; j < t.cols; ++j) {
        if (allowed[j] && t.rc[j] < -eps) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -eps;
      for (std::size_t j = 0; j < t.cols; ++j) {
        if (allowed[j] && t.rc[j] < best) {
          best = t.rc[j];
          enter = j;
        }
      }
    }
    if (enter == t.cols) return LoopResult::kOptimal;

    // Ratio test; ties resolved toward the smallest basis index (Bland).
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t.body(r, enter);
      if (a <= eps) continue;
      const double ratio = t.rhs(r) / a;
      if (ratio < best_ratio - eps ||
          (ratio < best_ratio + eps && (leave == m || t.basis[r] < t.basis[leave]))) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == m) return LoopResult::kUnbounded;

    t.pivot(leave, enter);
    ++pivots;
    util::require_numeric(pivots < options.max_pivots,
                          "simplex: pivot budget exhausted");

    const double objective = t.objective();
    if (objective < last_objective - eps * (1.0 + std::abs(last_objective))) {
      last_objective = objective;
      stall = 0;
    } else if (++stall > stall_limit) {
      bland = true;  // anti-cycling from here on
    }
  }
}

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  const std::size_t n = lp.num_variables();
  const std::size_t m = lp.num_constraints();

  // Column layout: structural | slack/surplus | artificial.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const auto& c : lp.constraints()) {
    if (c.relation != Relation::kEqual) ++num_slack;
    // Sign normalization may turn <= into >= and vice versa, so the
    // artificial count is finalized during assembly below.
    (void)num_artificial;
  }
  // Assemble rows first (normalized to rhs >= 0), then lay out columns.
  struct Row {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation relation;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(m);
  for (const auto& c : lp.constraints()) {
    Row row{c.terms, c.relation, c.rhs};
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      if (row.relation == Relation::kLessEqual) {
        row.relation = Relation::kGreaterEqual;
      } else if (row.relation == Relation::kGreaterEqual) {
        row.relation = Relation::kLessEqual;
      }
    }
    // Row equilibration improves pivot tolerance behaviour.
    double scale = std::abs(row.rhs);
    for (const auto& [var, coeff] : row.terms) {
      (void)var;
      scale = std::max(scale, std::abs(coeff));
    }
    if (scale > 0.0) {
      const double inv = 1.0 / scale;
      row.rhs *= inv;
      for (auto& [var, coeff] : row.terms) {
        (void)var;
        coeff *= inv;
      }
    }
    rows.push_back(std::move(row));
  }

  num_slack = 0;
  num_artificial = 0;
  for (const auto& row : rows) {
    if (row.relation != Relation::kEqual) ++num_slack;
    if (row.relation != Relation::kLessEqual) ++num_artificial;
  }

  Tableau t;
  t.cols = n + num_slack + num_artificial;
  t.body = la::Matrix(m, t.cols + 1);
  t.rc.assign(t.cols + 1, 0.0);
  t.basis.assign(m, 0);

  const std::size_t slack_base = n;
  const std::size_t artificial_base = n + num_slack;
  std::size_t next_slack = 0;
  std::size_t next_artificial = 0;
  std::vector<bool> is_artificial(t.cols, false);

  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    for (const auto& [var, coeff] : row.terms) t.body(r, var) += coeff;
    t.body(r, t.cols) = row.rhs;
    switch (row.relation) {
      case Relation::kLessEqual: {
        const std::size_t s = slack_base + next_slack++;
        t.body(r, s) = 1.0;
        t.basis[r] = s;
        break;
      }
      case Relation::kGreaterEqual: {
        const std::size_t s = slack_base + next_slack++;
        t.body(r, s) = -1.0;
        const std::size_t a = artificial_base + next_artificial++;
        t.body(r, a) = 1.0;
        is_artificial[a] = true;
        t.basis[r] = a;
        break;
      }
      case Relation::kEqual: {
        const std::size_t a = artificial_base + next_artificial++;
        t.body(r, a) = 1.0;
        is_artificial[a] = true;
        t.basis[r] = a;
        break;
      }
    }
  }

  LpSolution solution;

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    for (std::size_t j = artificial_base; j < t.cols; ++j) t.rc[j] = 1.0;
    // Price out the artificial basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[t.basis[r]]) continue;
      const double* brow = t.body.row(r);
      for (std::size_t j = 0; j <= t.cols; ++j) t.rc[j] -= brow[j];
    }
    std::vector<bool> allowed(t.cols, true);
    const LoopResult phase1 =
        pivot_loop(t, allowed, options, solution.pivots);
    util::require_numeric(phase1 == LoopResult::kOptimal,
                          "simplex: phase 1 unbounded (bug)");
    if (t.objective() > 1e-7 * static_cast<double>(1 + m)) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive surviving artificials out of the basis where possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[t.basis[r]]) continue;
      for (std::size_t j = 0; j < artificial_base; ++j) {
        if (std::abs(t.body(r, j)) > options.eps) {
          t.pivot(r, j);
          ++solution.pivots;
          break;
        }
      }
      // A fully zero row is redundant; the artificial stays basic at 0.
    }
  }

  // Phase 2: the real objective.
  std::fill(t.rc.begin(), t.rc.end(), 0.0);
  for (std::size_t j = 0; j < n; ++j) t.rc[j] = lp.costs()[j];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis[r];
    if (b >= n) continue;
    const double cost = lp.costs()[b];
    if (cost == 0.0) continue;
    const double* brow = t.body.row(r);
    for (std::size_t j = 0; j <= t.cols; ++j) t.rc[j] -= cost * brow[j];
  }
  std::vector<bool> allowed(t.cols, true);
  for (std::size_t j = 0; j < t.cols; ++j)
    if (is_artificial[j]) allowed[j] = false;

  const LoopResult phase2 = pivot_loop(t, allowed, options, solution.pivots);
  if (phase2 == LoopResult::kUnbounded) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) solution.x[t.basis[r]] = t.rhs(r);
  }
  for (auto& v : solution.x)
    if (v < 0.0 && v > -1e-9) v = 0.0;
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    solution.objective += lp.costs()[j] * solution.x[j];
  return solution;
}

}  // namespace reclaim::opt
