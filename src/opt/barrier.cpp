#include "opt/barrier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/cholesky.hpp"
#include "util/error.hpp"

namespace reclaim::opt {

double SparseInequality::residual(const la::Vector& x) const {
  double r = rhs;
  for (const auto& [var, coeff] : terms) r -= coeff * x[var];
  return r;
}

namespace {

/// phi_t(x) = t * f(x) - sum log(residual_k); +inf outside the domain.
/// Residuals are checked before f is evaluated: line-search candidates may
/// fall outside f's domain (e.g. non-positive durations).
double barrier_value(const ConvexObjective& f,
                     const std::vector<SparseInequality>& ineqs, double t,
                     const la::Vector& x) {
  double log_sum = 0.0;
  for (const auto& ineq : ineqs) {
    const double r = ineq.residual(x);
    if (r <= 0.0) return std::numeric_limits<double>::infinity();
    log_sum += std::log(r);
  }
  return t * f.value(x) - log_sum;
}

}  // namespace

BarrierResult minimize_with_barrier(const ConvexObjective& objective,
                                    const std::vector<SparseInequality>& ineqs,
                                    la::Vector x0, const BarrierOptions& options) {
  const std::size_t dim = x0.size();
  for (const auto& ineq : ineqs) {
    util::require(ineq.residual(x0) > 0.0,
                  "barrier start point is not strictly feasible");
  }

  BarrierResult result;
  result.x = std::move(x0);
  const auto m = static_cast<double>(ineqs.size());

  la::Vector grad(dim);
  la::Vector residuals(ineqs.size());
  la::Matrix hess(dim, dim);
  la::Vector rhs(dim);
  la::Vector candidate(dim);

  double t = options.t0;
  for (std::size_t stage = 0; stage < options.max_stages; ++stage) {
    // Newton centering for phi_t.
    for (std::size_t it = 0; it < options.max_newton_per_stage; ++it) {
      std::fill(grad.begin(), grad.end(), 0.0);
      hess.fill(0.0);

      objective.add_gradient(result.x, grad);
      for (auto& g : grad) g *= t;
      objective.add_hessian(result.x, hess);
      for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c) hess(r, c) *= t;

      for (std::size_t k = 0; k < ineqs.size(); ++k) {
        const double r = ineqs[k].residual(result.x);
        util::require_numeric(r > 0.0, "barrier iterate left the domain");
        residuals[k] = r;
        const double inv = 1.0 / r;
        const double inv2 = inv * inv;
        // grad += a_k / r_k ; hess += a_k a_k^T / r_k^2  (a_k = +coeffs).
        for (const auto& [vi, ci] : ineqs[k].terms) {
          grad[vi] += ci * inv;
          for (const auto& [vj, cj] : ineqs[k].terms) {
            hess(vi, vj) += ci * cj * inv2;
          }
        }
      }

      // Newton direction: hess dx = -grad, with a jitter fallback for
      // nearly singular Hessians.
      la::Vector step;
      {
        const double jitter = 1e-12 * std::max(1.0, hess.max_abs());
        const la::Cholesky chol(hess, jitter);
        for (std::size_t i = 0; i < dim; ++i) rhs[i] = -grad[i];
        step = chol.solve(rhs);
      }

      const double decrement2 = -la::dot(grad, step);
      ++result.newton_steps;
      if (decrement2 * 0.5 <= options.newton_tol) break;

      // Largest step that keeps all residuals positive.
      double step_max = 1.0;
      for (std::size_t k = 0; k < ineqs.size(); ++k) {
        double along = 0.0;
        for (const auto& [vi, ci] : ineqs[k].terms) along += ci * step[vi];
        if (along > 0.0) step_max = std::min(step_max, 0.99 * residuals[k] / along);
      }

      // Backtracking line search on phi_t.
      const double phi0 = barrier_value(objective, ineqs, t, result.x);
      double sigma = step_max;
      for (std::size_t bt = 0; bt < 80; ++bt) {
        for (std::size_t i = 0; i < dim; ++i)
          candidate[i] = result.x[i] + sigma * step[i];
        const double phi = barrier_value(objective, ineqs, t, candidate);
        if (phi <= phi0 - options.armijo * sigma * decrement2) break;
        sigma *= options.backtrack;
      }
      for (std::size_t i = 0; i < dim; ++i) result.x[i] += sigma * step[i];
    }

    result.objective = objective.value(result.x);
    result.gap = m / t;
    if (result.gap <= options.rel_gap * std::max(1.0, std::abs(result.objective)))
      break;
    t *= options.mu;
  }
  return result;
}

}  // namespace reclaim::opt
