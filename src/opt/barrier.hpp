// Log-barrier interior-point method for smooth convex programs with
// sparse linear inequality constraints.
//
// The continuous MinEnergy problem is, in the variables (t_i, d_i), the
// minimization of the convex posynomial-like objective sum w_i^a / d_i^(a-1)
// over a polyhedron — the "geometric programming" observation of the paper
// (Section 2.1, citing Boyd-Vandenberghe). A textbook barrier method with
// Newton centering is exact to the requested duality gap.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "la/matrix.hpp"

namespace reclaim::opt {

/// Smooth convex objective with caller-supplied derivatives. The Hessian
/// contribution is *added* into the KKT matrix so barrier terms can share
/// the same buffer.
class ConvexObjective {
 public:
  virtual ~ConvexObjective() = default;

  [[nodiscard]] virtual double value(const la::Vector& x) const = 0;
  virtual void add_gradient(const la::Vector& x, la::Vector& grad) const = 0;
  virtual void add_hessian(const la::Vector& x, la::Matrix& hess) const = 0;
};

/// One inequality `terms . x <= rhs` with a sparse coefficient list.
struct SparseInequality {
  std::vector<std::pair<std::size_t, double>> terms;
  double rhs = 0.0;

  /// Residual rhs - terms.x (positive strictly inside the feasible set).
  [[nodiscard]] double residual(const la::Vector& x) const;
};

struct BarrierOptions {
  double t0 = 1.0;                ///< initial barrier weight
  double mu = 12.0;               ///< barrier weight growth factor
  double rel_gap = 1e-9;          ///< stop when m/t <= rel_gap * max(1, |f|)
  double newton_tol = 1e-11;      ///< Newton decrement^2 / 2 threshold
  std::size_t max_newton_per_stage = 200;
  std::size_t max_stages = 80;
  double armijo = 0.25;
  double backtrack = 0.5;
};

struct BarrierResult {
  la::Vector x;
  double objective = 0.0;
  std::size_t newton_steps = 0;
  double gap = 0.0;              ///< final duality-gap bound m/t
};

/// Minimizes `objective` over {x : every inequality holds}, starting from
/// the strictly feasible `x0` (throws InvalidArgument otherwise).
[[nodiscard]] BarrierResult minimize_with_barrier(
    const ConvexObjective& objective,
    const std::vector<SparseInequality>& inequalities, la::Vector x0,
    const BarrierOptions& options = {});

}  // namespace reclaim::opt
