// Umbrella header for the reclaim library.
//
// reclaim implements "Reclaiming the Energy of a Schedule: Models and
// Algorithms" (Aupy, Benoit, Dufossé, Robert; SPAA'11): given a task graph
// whose mapping onto identical processors is frozen, choose per-task
// speeds minimizing dynamic energy under a deadline, under the Continuous,
// Discrete, Vdd-Hopping and Incremental speed models.
//
// Typical flow:
//   1. build a task graph          (graph::Digraph, graph/generators.hpp)
//   2. map it                      (sched::list_schedule / explicit Mapping)
//   3. derive the execution graph  (sched::build_execution_graph)
//   4. make an instance            (core::make_instance)
//   5. solve under a model         (core::solve_continuous, solve_vdd_lp,
//                                   solve_discrete_exact, solve_round_up, ...)
#pragma once

#include "core/analysis.hpp"
#include "core/baselines.hpp"
#include "core/continuous/closed_form.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/joint_sleep.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/continuous/sleep_dp.hpp"
#include "core/continuous/sp_solver.hpp"
#include "core/continuous/tree_solver.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "core/tradeoff.hpp"
#include "core/vdd/lp_solver.hpp"
#include "core/vdd/two_mode.hpp"
#include "engine/instance_key.hpp"
#include "engine/reclaim_engine.hpp"
#include "io/graph_io.hpp"
#include "graph/classify.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/sp_tree.hpp"
#include "graph/topo.hpp"
#include "model/energy_model.hpp"
#include "model/platform.hpp"
#include "model/power.hpp"
#include "model/power_model.hpp"
#include "model/speed_set.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
