// Schedule evaluation: from per-task speeds (or Vdd speed profiles) to
// start/finish times, makespan, deadline feasibility and energy — plus the
// invariant validators used throughout the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "model/energy_model.hpp"
#include "model/platform.hpp"
#include "model/power_model.hpp"
#include "sched/mapping.hpp"

namespace reclaim::sched {

/// The one relative tolerance for "does this schedule fit the window":
/// meets_deadline's default and the idle-interval window-fit check.
/// core::kFeasibilityRelTol aliases it so solver feasibility checks and
/// schedule validation can never drift apart.
inline constexpr double kScheduleRelTol = 1e-9;

/// A Vdd-Hopping execution of one task: consecutive (speed, duration)
/// segments. Constant-speed executions are a single segment.
struct SpeedProfile {
  struct Segment {
    double speed = 0.0;
    double duration = 0.0;
  };

  std::vector<Segment> segments;

  [[nodiscard]] double total_duration() const noexcept;
  /// Work processed: sum of speed * duration over segments.
  [[nodiscard]] double work() const noexcept;
  [[nodiscard]] double energy(const model::PowerModel& power) const;
};

struct Timing {
  std::vector<double> start;
  std::vector<double> finish;
  double makespan = 0.0;
};

/// Durations d_i = w_i / s_i; zero-weight tasks have zero duration
/// regardless of their (possibly zero) speed entry.
[[nodiscard]] std::vector<double> durations_from_speeds(
    const graph::Digraph& g, const std::vector<double>& speeds);

/// Earliest-start timing of the execution graph under the given durations.
[[nodiscard]] Timing compute_timing(const graph::Digraph& exec_graph,
                                    const std::vector<double>& durations);

/// Total busy energy of constant-speed execution under `power` (dynamic
/// plus, for a leakage-aware model, P_stat per busy second).
[[nodiscard]] double total_energy(const graph::Digraph& g,
                                  const std::vector<double>& speeds,
                                  const model::PowerModel& power);

/// Total busy energy of profile-based (Vdd) execution.
[[nodiscard]] double total_energy(const std::vector<SpeedProfile>& profiles,
                                  const model::PowerModel& power);

/// One idle gap on one processor: the half-open interval [begin, end)
/// during which the processor has no task running, inside the platform
/// window [0, window].
struct IdleInterval {
  std::size_t processor = 0;
  double begin = 0.0;
  double end = 0.0;

  [[nodiscard]] double length() const noexcept { return end - begin; }

  friend bool operator==(const IdleInterval&, const IdleInterval&) = default;
};

/// Enumerates every per-processor idle gap of the earliest-start schedule
/// induced by `durations` under `mapping`, inside the window [0, window]:
/// the head gap before a processor's first positive-duration task, the
/// interior gaps between consecutive tasks, and the tail gap after its
/// last task. A processor with no positive-duration task contributes one
/// full-window gap. Zero-length gaps are dropped; gaps are ordered by
/// (processor, begin). Requires every mapped task to finish inside the
/// window (within the meets_deadline relative tolerance; busy intervals
/// are clipped to the window).
[[nodiscard]] std::vector<IdleInterval> idle_intervals(
    const graph::Digraph& exec_graph, const Mapping& mapping,
    const std::vector<double>& durations, double window);

/// Total idle-time charge of the schedule: sum over idle gaps of
/// min(P_idle * L, P_sleep * L + E_wake) under `power`'s sleep spec
/// (model::SleepSpec::gap_energy). Exactly 0.0 when the spec is all-zero,
/// so pre-sleep energy accounting is reproduced bit-identically.
[[nodiscard]] double idle_energy(const graph::Digraph& exec_graph,
                                 const Mapping& mapping,
                                 const std::vector<double>& durations,
                                 double window,
                                 const model::PowerModel& power);

/// Heterogeneous variant: each gap is charged under the sleep spec of its
/// own processor. A 1-processor platform broadcasts its model across every
/// processor of the mapping (the pre-platform semantics, bit-identically);
/// otherwise the platform must have one spec per mapping processor.
[[nodiscard]] double idle_energy(const graph::Digraph& exec_graph,
                                 const Mapping& mapping,
                                 const std::vector<double>& durations,
                                 double window,
                                 const model::Platform& platform);

/// True when the earliest-start makespan meets the deadline within
/// relative tolerance.
[[nodiscard]] bool meets_deadline(const graph::Digraph& exec_graph,
                                  const std::vector<double>& durations,
                                  double deadline,
                                  double rel_tol = kScheduleRelTol);

/// Throws InvalidArgument unless: one speed per task, every positive-weight
/// task has a speed admissible under `model`, and the induced schedule
/// meets `deadline`. The workhorse assertion of the test suite.
void validate_constant_speeds(const graph::Digraph& exec_graph,
                              const std::vector<double>& speeds,
                              const model::EnergyModel& model, double deadline,
                              double rel_tol = 1e-7);

/// Profile analogue: every segment speed must be a mode of `model`'s mode
/// set, each task's profile work must equal its weight, and the induced
/// schedule must meet `deadline`.
void validate_profiles(const graph::Digraph& exec_graph,
                       const std::vector<SpeedProfile>& profiles,
                       const model::EnergyModel& model, double deadline,
                       double rel_tol = 1e-7);

}  // namespace reclaim::sched
