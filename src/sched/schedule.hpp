// Schedule evaluation: from per-task speeds (or Vdd speed profiles) to
// start/finish times, makespan, deadline feasibility and energy — plus the
// invariant validators used throughout the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "model/energy_model.hpp"
#include "model/power_model.hpp"

namespace reclaim::sched {

/// A Vdd-Hopping execution of one task: consecutive (speed, duration)
/// segments. Constant-speed executions are a single segment.
struct SpeedProfile {
  struct Segment {
    double speed = 0.0;
    double duration = 0.0;
  };

  std::vector<Segment> segments;

  [[nodiscard]] double total_duration() const noexcept;
  /// Work processed: sum of speed * duration over segments.
  [[nodiscard]] double work() const noexcept;
  [[nodiscard]] double energy(const model::PowerModel& power) const;
};

struct Timing {
  std::vector<double> start;
  std::vector<double> finish;
  double makespan = 0.0;
};

/// Durations d_i = w_i / s_i; zero-weight tasks have zero duration
/// regardless of their (possibly zero) speed entry.
[[nodiscard]] std::vector<double> durations_from_speeds(
    const graph::Digraph& g, const std::vector<double>& speeds);

/// Earliest-start timing of the execution graph under the given durations.
[[nodiscard]] Timing compute_timing(const graph::Digraph& exec_graph,
                                    const std::vector<double>& durations);

/// Total busy energy of constant-speed execution under `power` (dynamic
/// plus, for a leakage-aware model, P_stat per busy second).
[[nodiscard]] double total_energy(const graph::Digraph& g,
                                  const std::vector<double>& speeds,
                                  const model::PowerModel& power);

/// Total busy energy of profile-based (Vdd) execution.
[[nodiscard]] double total_energy(const std::vector<SpeedProfile>& profiles,
                                  const model::PowerModel& power);

/// True when the earliest-start makespan meets the deadline within
/// relative tolerance.
[[nodiscard]] bool meets_deadline(const graph::Digraph& exec_graph,
                                  const std::vector<double>& durations,
                                  double deadline, double rel_tol = 1e-9);

/// Throws InvalidArgument unless: one speed per task, every positive-weight
/// task has a speed admissible under `model`, and the induced schedule
/// meets `deadline`. The workhorse assertion of the test suite.
void validate_constant_speeds(const graph::Digraph& exec_graph,
                              const std::vector<double>& speeds,
                              const model::EnergyModel& model, double deadline,
                              double rel_tol = 1e-7);

/// Profile analogue: every segment speed must be a mode of `model`'s mode
/// set, each task's profile work must equal its weight, and the induced
/// schedule must meet `deadline`.
void validate_profiles(const graph::Digraph& exec_graph,
                       const std::vector<SpeedProfile>& profiles,
                       const model::EnergyModel& model, double deadline,
                       double rel_tol = 1e-7);

}  // namespace reclaim::sched
