#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::sched {

using util::require;

double SpeedProfile::total_duration() const noexcept {
  double d = 0.0;
  for (const Segment& s : segments) d += s.duration;
  return d;
}

double SpeedProfile::work() const noexcept {
  double w = 0.0;
  for (const Segment& s : segments) w += s.speed * s.duration;
  return w;
}

double SpeedProfile::energy(const model::PowerModel& power) const {
  double e = 0.0;
  for (const Segment& s : segments) e += power.energy(s.speed, s.duration);
  return e;
}

std::vector<double> durations_from_speeds(const graph::Digraph& g,
                                          const std::vector<double>& speeds) {
  require(speeds.size() == g.num_nodes(), "one speed per task required");
  std::vector<double> durations(speeds.size(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    require(speeds[v] > 0.0, "positive-weight task requires positive speed");
    durations[v] = w / speeds[v];
  }
  return durations;
}

Timing compute_timing(const graph::Digraph& exec_graph,
                      const std::vector<double>& durations) {
  require(durations.size() == exec_graph.num_nodes(),
          "one duration per task required");
  const auto order = graph::topological_order(exec_graph);
  require(order.has_value(), "execution graph must be acyclic");

  Timing timing;
  timing.start.assign(exec_graph.num_nodes(), 0.0);
  timing.finish.assign(exec_graph.num_nodes(), 0.0);
  for (graph::NodeId v : *order) {
    double start = 0.0;
    for (graph::NodeId p : exec_graph.predecessors(v))
      start = std::max(start, timing.finish[p]);
    timing.start[v] = start;
    timing.finish[v] = start + durations[v];
    timing.makespan = std::max(timing.makespan, timing.finish[v]);
  }
  return timing;
}

double total_energy(const graph::Digraph& g, const std::vector<double>& speeds,
                    const model::PowerModel& power) {
  require(speeds.size() == g.num_nodes(), "one speed per task required");
  double e = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    e += power.task_energy(g.weight(v), speeds[v]);
  return e;
}

double total_energy(const std::vector<SpeedProfile>& profiles,
                    const model::PowerModel& power) {
  double e = 0.0;
  for (const SpeedProfile& p : profiles) e += p.energy(power);
  return e;
}

std::vector<IdleInterval> idle_intervals(const graph::Digraph& exec_graph,
                                         const Mapping& mapping,
                                         const std::vector<double>& durations,
                                         double window) {
  require(window > 0.0, "idle window must be positive");
  mapping.validate_complete(exec_graph);
  const Timing timing = compute_timing(exec_graph, durations);
  require(timing.makespan <= window * (1.0 + kScheduleRelTol),
          "schedule does not fit inside the idle window");

  std::vector<IdleInterval> gaps;
  for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
    // Busy intervals of processor p. The mapping's list order is already
    // execution order (chaining edges enforce it), but sorting by start
    // keeps the enumeration correct for hand-built mappings whose lists
    // are permuted relative to the timing.
    std::vector<std::pair<double, double>> busy;
    for (graph::NodeId v : mapping.tasks_on(p)) {
      if (durations[v] <= 0.0) continue;
      busy.emplace_back(timing.start[v], std::min(timing.finish[v], window));
    }
    std::sort(busy.begin(), busy.end());
    double cursor = 0.0;
    for (const auto& [start, finish] : busy) {
      require(start >= cursor * (1.0 - kScheduleRelTol) - 1e-12,
              "tasks of one processor overlap");
      if (start > cursor) gaps.push_back({p, cursor, start});
      cursor = std::max(cursor, finish);
    }
    if (cursor < window) gaps.push_back({p, cursor, window});
  }
  return gaps;
}

double idle_energy(const graph::Digraph& exec_graph, const Mapping& mapping,
                   const std::vector<double>& durations, double window,
                   const model::PowerModel& power) {
  double e = 0.0;
  for (const IdleInterval& gap :
       idle_intervals(exec_graph, mapping, durations, window)) {
    e += power.idle_energy(gap.length());
  }
  return e;
}

double idle_energy(const graph::Digraph& exec_graph, const Mapping& mapping,
                   const std::vector<double>& durations, double window,
                   const model::Platform& platform) {
  const bool broadcast = platform.size() == 1;
  require(broadcast || platform.size() == mapping.num_processors(),
          "platform and mapping disagree on the processor count");
  double e = 0.0;
  for (const IdleInterval& gap :
       idle_intervals(exec_graph, mapping, durations, window)) {
    const std::size_t p = broadcast ? 0 : gap.processor;
    e += platform.power(p).idle_energy(gap.length());
  }
  return e;
}

bool meets_deadline(const graph::Digraph& exec_graph,
                    const std::vector<double>& durations, double deadline,
                    double rel_tol) {
  const Timing timing = compute_timing(exec_graph, durations);
  return timing.makespan <= deadline * (1.0 + rel_tol);
}

void validate_constant_speeds(const graph::Digraph& exec_graph,
                              const std::vector<double>& speeds,
                              const model::EnergyModel& model, double deadline,
                              double rel_tol) {
  require(speeds.size() == exec_graph.num_nodes(), "one speed per task required");
  for (graph::NodeId v = 0; v < exec_graph.num_nodes(); ++v) {
    if (exec_graph.weight(v) == 0.0) continue;  // zero tasks run in zero time
    require(model::is_admissible_speed(model, speeds[v], rel_tol),
            "inadmissible speed for the energy model");
  }
  const auto durations = durations_from_speeds(exec_graph, speeds);
  require(meets_deadline(exec_graph, durations, deadline, rel_tol),
          "schedule misses the deadline");
}

void validate_profiles(const graph::Digraph& exec_graph,
                       const std::vector<SpeedProfile>& profiles,
                       const model::EnergyModel& model, double deadline,
                       double rel_tol) {
  require(profiles.size() == exec_graph.num_nodes(), "one profile per task required");
  const auto& modes = model::modes_of(model);
  std::vector<double> durations(profiles.size(), 0.0);
  for (graph::NodeId v = 0; v < exec_graph.num_nodes(); ++v) {
    const SpeedProfile& profile = profiles[v];
    for (const auto& segment : profile.segments) {
      require(segment.duration >= -rel_tol, "negative segment duration");
      require(modes.contains(segment.speed, rel_tol),
              "profile segment speed is not a mode");
    }
    const double w = exec_graph.weight(v);
    const double scale = std::max(1.0, w);
    require(std::abs(profile.work() - w) <= rel_tol * scale,
            "profile work does not match the task weight");
    durations[v] = profile.total_duration();
  }
  require(meets_deadline(exec_graph, durations, deadline, rel_tol),
          "profile schedule misses the deadline");
}

}  // namespace reclaim::sched
