#include "sched/mapping.hpp"

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::sched {

using util::require;

Mapping::Mapping(std::size_t processors) : lists_(processors) {
  require(processors >= 1, "a mapping needs at least one processor");
}

Mapping::Mapping(std::vector<std::vector<graph::NodeId>> lists)
    : lists_(std::move(lists)) {
  require(!lists_.empty(), "a mapping needs at least one processor");
}

const std::vector<graph::NodeId>& Mapping::tasks_on(std::size_t p) const {
  require(p < lists_.size(), "processor index out of range");
  return lists_[p];
}

void Mapping::assign(std::size_t p, graph::NodeId task) {
  require(p < lists_.size(), "processor index out of range");
  lists_[p].push_back(task);
}

std::size_t Mapping::processor_of(graph::NodeId task) const {
  for (std::size_t p = 0; p < lists_.size(); ++p)
    for (graph::NodeId t : lists_[p])
      if (t == task) return p;
  throw InvalidArgument("task is not mapped to any processor");
}

void Mapping::validate_complete(const graph::Digraph& g) const {
  std::vector<int> count(g.num_nodes(), 0);
  for (const auto& list : lists_) {
    for (graph::NodeId t : list) {
      require(t < g.num_nodes(), "mapping references an unknown task");
      ++count[t];
    }
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    require(count[v] == 1, "every task must be mapped exactly once");
  }
}

Mapping single_processor_mapping(const graph::Digraph& g) {
  const auto order = graph::topological_order(g);
  require(order.has_value(), "task graph must be acyclic");
  Mapping m(1);
  for (graph::NodeId v : *order) m.assign(0, v);
  return m;
}

Mapping round_robin_mapping(const graph::Digraph& g, std::size_t processors) {
  require(processors >= 1, "round_robin_mapping needs >= 1 processor");
  const auto order = graph::topological_order(g);
  require(order.has_value(), "task graph must be acyclic");
  Mapping m(processors);
  std::size_t p = 0;
  for (graph::NodeId v : *order) {
    m.assign(p, v);
    p = (p + 1) % processors;
  }
  return m;
}

}  // namespace reclaim::sched
