#include "sched/execution_graph.hpp"

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::sched {

graph::Digraph build_execution_graph(const graph::Digraph& task_graph,
                                     const Mapping& mapping) {
  util::require(graph::is_acyclic(task_graph), "task graph must be acyclic");
  mapping.validate_complete(task_graph);

  graph::Digraph exec = task_graph;
  for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
    const auto& list = mapping.tasks_on(p);
    for (std::size_t i = 1; i < list.size(); ++i) {
      exec.add_edge_if_absent(list[i - 1], list[i]);
    }
  }
  util::require(graph::is_acyclic(exec),
                "mapping order contradicts the precedence constraints "
                "(execution graph has a cycle)");
  return exec;
}

}  // namespace reclaim::sched
