// Mappings: the paper's "ordered list of tasks to execute on each
// processor". A mapping is the frozen allocation; MinEnergy only tunes
// speeds on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace reclaim::sched {

class Mapping {
 public:
  /// Empty mapping over `processors` processors.
  explicit Mapping(std::size_t processors);

  /// Takes explicit per-processor ordered task lists.
  explicit Mapping(std::vector<std::vector<graph::NodeId>> lists);

  [[nodiscard]] std::size_t num_processors() const noexcept { return lists_.size(); }

  /// The ordered task list of processor p.
  [[nodiscard]] const std::vector<graph::NodeId>& tasks_on(std::size_t p) const;

  /// Appends `task` to processor p's list.
  void assign(std::size_t p, graph::NodeId task);

  /// Processor executing `task`; requires the task to be mapped.
  [[nodiscard]] std::size_t processor_of(graph::NodeId task) const;

  /// Throws InvalidArgument unless every task of `g` appears exactly once.
  void validate_complete(const graph::Digraph& g) const;

  [[nodiscard]] const std::vector<std::vector<graph::NodeId>>& lists() const noexcept {
    return lists_;
  }

 private:
  std::vector<std::vector<graph::NodeId>> lists_;
};

/// All tasks on one processor in canonical topological order.
[[nodiscard]] Mapping single_processor_mapping(const graph::Digraph& g);

/// Tasks dealt round-robin over `processors` in topological order (a
/// deliberately mediocre mapping, useful as an experiment contrast).
[[nodiscard]] Mapping round_robin_mapping(const graph::Digraph& g,
                                          std::size_t processors);

}  // namespace reclaim::sched
