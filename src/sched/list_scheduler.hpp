// Critical-path list scheduling to *generate* the mappings the paper
// assumes as input ("optimizing for legacy applications ... tasks are
// pre-allocated").
//
// Identical processors, zero communication cost (the paper's platform).
// Priorities are bottom levels (heaviest remaining path including the task
// itself); ties break by node id so the schedule is deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "sched/mapping.hpp"

namespace reclaim::sched {

struct ListScheduleResult {
  Mapping mapping;             ///< per-processor ordered task lists
  double makespan = 0.0;       ///< at the reference speed
  std::vector<double> start;   ///< per-task start times at reference speed
  std::vector<double> finish;  ///< per-task finish times at reference speed
};

/// Schedules `g` on `processors` identical processors with durations
/// w_i / reference_speed. Greedy: repeatedly start the highest-priority
/// ready task on the processor that allows the earliest start.
[[nodiscard]] ListScheduleResult list_schedule(const graph::Digraph& g,
                                               std::size_t processors,
                                               double reference_speed = 1.0);

}  // namespace reclaim::sched
