#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::sched {

ListScheduleResult list_schedule(const graph::Digraph& g, std::size_t processors,
                                 double reference_speed) {
  util::require(processors >= 1, "list_schedule needs >= 1 processor");
  util::require(reference_speed > 0.0, "reference speed must be positive");
  util::require(graph::is_acyclic(g), "task graph must be acyclic");

  const std::size_t n = g.num_nodes();
  const std::vector<double> priority = graph::longest_path_from(g);

  ListScheduleResult result{Mapping(processors), 0.0,
                            std::vector<double>(n, 0.0),
                            std::vector<double>(n, 0.0)};
  if (n == 0) return result;

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<bool> ready(n, false);
  std::vector<bool> done(n, false);
  for (graph::NodeId v = 0; v < n; ++v) {
    unscheduled_preds[v] = g.in_degree(v);
    ready[v] = unscheduled_preds[v] == 0;
  }
  std::vector<double> processor_free(processors, 0.0);

  for (std::size_t scheduled = 0; scheduled < n; ++scheduled) {
    // Highest-priority ready task; ties by node id.
    graph::NodeId best = graph::kNoNode;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!ready[v] || done[v]) continue;
      if (best == graph::kNoNode || priority[v] > priority[best]) best = v;
    }
    util::require(best != graph::kNoNode, "list_schedule: no ready task (bug)");

    double data_ready = 0.0;
    for (graph::NodeId p : g.predecessors(best))
      data_ready = std::max(data_ready, result.finish[p]);

    // Earliest-start processor; ties by processor index.
    std::size_t proc = 0;
    double best_start = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < processors; ++p) {
      const double start = std::max(processor_free[p], data_ready);
      if (start < best_start) {
        best_start = start;
        proc = p;
      }
    }

    const double duration = g.weight(best) / reference_speed;
    result.start[best] = best_start;
    result.finish[best] = best_start + duration;
    result.makespan = std::max(result.makespan, result.finish[best]);
    processor_free[proc] = result.finish[best];
    result.mapping.assign(proc, best);

    done[best] = true;
    for (graph::NodeId s : g.successors(best)) {
      if (--unscheduled_preds[s] == 0) ready[s] = true;
    }
  }
  return result;
}

}  // namespace reclaim::sched
