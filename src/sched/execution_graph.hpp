// Execution graph construction: G' = (V, E union chaining edges).
//
// Following the paper (Section 1): "if T1 and T2 are executed successively,
// in this order, on the same processor, then (T1, T2) in E'". MinEnergy is
// then a pure DAG problem on G'; processors disappear from the formulation.
#pragma once

#include "graph/digraph.hpp"
#include "sched/mapping.hpp"

namespace reclaim::sched {

/// Builds the execution graph of `task_graph` under `mapping`.
///
/// Adds an edge between consecutive tasks of each processor list (when not
/// already a precedence edge). Throws InvalidArgument when the mapping is
/// incomplete/duplicated or when the combined graph has a cycle (the
/// processor orders contradict the precedence constraints).
[[nodiscard]] graph::Digraph build_execution_graph(const graph::Digraph& task_graph,
                                                   const Mapping& mapping);

}  // namespace reclaim::sched
