#include "core/baselines.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "graph/topo.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

/// Cheapest admissible constant speed >= `needed` for one task, under the
/// power model of its processor and the effective top speed `cap` (the
/// processor cap; folded with the model's global cap by the caller). The
/// per-unit-weight busy cost is unimodal with minimum at the critical
/// speed (0 for the pure law): Continuous clamps into [needed, top];
/// mode-based models scan the modes at or above `needed` — s_crit need
/// not be a mode, and the cheapest feasible mode can sit on either side
/// of it. nullopt when even the top speed cannot reach `needed`.
std::optional<double> cheapest_speed_at_least(const model::PowerModel& power,
                                              const model::EnergyModel& model,
                                              double cap, double needed) {
  if (std::holds_alternative<model::ContinuousModel>(model)) {
    const double top = std::min(model::max_speed(model), cap);
    if (!within_speed_cap(needed, top)) return std::nullopt;
    return std::min(std::max(needed, power.critical_speed()), top);
  }
  const auto& modes = model::modes_of(model);
  const auto first = modes.index_at_or_above(needed);
  if (!first) return std::nullopt;
  std::size_t best = *first;
  double best_cost = power.task_energy(1.0, modes.speed(best));
  for (std::size_t j = *first + 1; j < modes.size(); ++j) {
    const double cost = power.task_energy(1.0, modes.speed(j));
    if (cost < best_cost) {
      best = j;
      best_cost = cost;
    }
  }
  return modes.speed(best);
}

Solution constant_solution(const Instance& instance, double speed,
                           std::string method) {
  return speeds_solution(
      instance, std::vector<double>(instance.exec_graph.num_nodes(), speed),
      std::move(method));
}

/// Per-task top speed. For the Continuous model the fastest speed folds
/// with the task's processor cap (min(x, +inf) == x, so uncapped
/// platforms reproduce the pre-platform value bit-identically); mode sets
/// are platform-wide — caps bind the continuous family only (DESIGN.md,
/// "Heterogeneous platforms") — so mode-based models keep the top mode
/// everywhere, consistent with the other baselines' mode scans.
std::vector<double> top_speeds(const Instance& instance,
                               const model::EnergyModel& model) {
  const double top = model::max_speed(model);
  std::vector<double> tops(instance.exec_graph.num_nodes(), top);
  if (!std::holds_alternative<model::ContinuousModel>(model)) return tops;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    tops[v] = std::min(top, instance.cap_of(v));
  }
  return tops;
}

bool all_equal(const std::vector<double>& xs) {
  for (double x : xs) {
    if (x != xs.front()) return false;
  }
  return true;
}

}  // namespace

Solution solve_no_dvfs(const Instance& instance, const model::EnergyModel& model) {
  const double required = critical_weight(instance.exec_graph);
  if (required == 0.0) return constant_solution(instance, 0.0, "no-dvfs");

  const auto tops = top_speeds(instance, model);
  if (tops.empty() || all_equal(tops)) {
    // Identical tops (incl. every pre-platform instance): the critical
    // path at the shared top speed decides feasibility, as before.
    const double top = tops.empty() ? model::max_speed(model) : tops.front();
    if (!within_deadline(required / top, instance.deadline))
      return infeasible_solution("no-dvfs");
    return constant_solution(instance, top, "no-dvfs");
  }
  // Heterogeneous caps: the fastest schedule runs every task at its own
  // top; its earliest-start makespan decides feasibility.
  const auto& g = instance.exec_graph;
  std::vector<double> durations(g.num_nodes(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w > 0.0 && tops[v] != std::numeric_limits<double>::infinity()) {
      durations[v] = w / tops[v];
    }
  }
  const double makespan = sched::compute_timing(g, durations).makespan;
  if (!within_deadline(makespan, instance.deadline))
    return infeasible_solution("no-dvfs");
  return speeds_solution(instance, tops, "no-dvfs");
}

Solution solve_uniform(const Instance& instance, const model::EnergyModel& model) {
  const double required = critical_weight(instance.exec_graph);
  if (required == 0.0) return constant_solution(instance, 0.0, "uniform");
  // Running faster than the deadline requires only shortens the schedule,
  // so the baseline may pick the cheapest admissible speed above the
  // requirement — which under a leakage-aware power model is the one
  // closest to the critical speed, not the slowest. On a heterogeneous
  // platform "one global speed target" resolves per task against its own
  // processor's curve and cap.
  const double needed = required / instance.deadline;
  const auto& g = instance.exec_graph;
  std::vector<double> speeds(g.num_nodes(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    const auto speed = cheapest_speed_at_least(instance.power_of(v), model,
                                               instance.cap_of(v), needed);
    if (!speed) return infeasible_solution("uniform");
    speeds[v] = *speed;
  }
  return speeds_solution(instance, speeds, "uniform");
}

Solution solve_path_stretch(const Instance& instance,
                            const model::EnergyModel& model) {
  const auto& g = instance.exec_graph;
  Solution s;
  s.method = "path-stretch";
  if (g.num_nodes() == 0) {
    s.feasible = true;
    s.energy = 0.0;
    return s;
  }

  const double critical = critical_weight(g);
  if (critical == 0.0) {
    s = constant_solution(instance, 0.0, "path-stretch");
    return s;
  }
  const auto tops = top_speeds(instance, model);
  if (all_equal(tops) &&
      !within_speed_cap(critical / instance.deadline, tops.front()))
    return infeasible_solution(s.method);

  const auto to = graph::longest_path_to(g);     // includes own weight
  const auto from = graph::longest_path_from(g); // includes own weight

  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double through = to[v] + from[v] - w;  // heaviest path through v
    // Cheapest speed that keeps v's heaviest path inside the deadline —
    // leakage-aware and per-processor, as in solve_uniform.
    const auto speed =
        cheapest_speed_at_least(instance.power_of(v), model, instance.cap_of(v),
                                through / instance.deadline);
    if (!speed) return infeasible_solution(s.method);
    s.speeds[v] = *speed;
    s.energy += instance.power_of(v).task_energy(w, *speed);
  }
  return s;
}

}  // namespace reclaim::core
