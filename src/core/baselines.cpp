#include "core/baselines.hpp"

#include <algorithm>
#include <optional>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

/// Cheapest admissible constant speed >= `needed` under `model`. The
/// per-unit-weight busy cost is unimodal with minimum at the critical
/// speed (0 for the pure law): Continuous clamps into [needed, s_max];
/// mode-based models scan the modes at or above `needed` — s_crit need
/// not be a mode, and the cheapest feasible mode can sit on either side
/// of it. nullopt when even the top speed cannot reach `needed`.
std::optional<double> cheapest_speed_at_least(const Instance& instance,
                                              const model::EnergyModel& model,
                                              double needed) {
  if (std::holds_alternative<model::ContinuousModel>(model)) {
    const double top = model::max_speed(model);
    if (!within_speed_cap(needed, top)) return std::nullopt;
    return std::min(std::max(needed, instance.power.critical_speed()), top);
  }
  const auto& modes = model::modes_of(model);
  const auto first = modes.index_at_or_above(needed);
  if (!first) return std::nullopt;
  std::size_t best = *first;
  double best_cost = instance.power.task_energy(1.0, modes.speed(best));
  for (std::size_t j = *first + 1; j < modes.size(); ++j) {
    const double cost = instance.power.task_energy(1.0, modes.speed(j));
    if (cost < best_cost) {
      best = j;
      best_cost = cost;
    }
  }
  return modes.speed(best);
}

Solution constant_solution(const Instance& instance, double speed,
                           std::string method) {
  Solution s;
  s.method = std::move(method);
  s.feasible = true;
  s.speeds.assign(instance.exec_graph.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    const double w = instance.exec_graph.weight(v);
    if (w == 0.0) continue;
    s.speeds[v] = speed;
    s.energy += instance.power.task_energy(w, speed);
  }
  return s;
}

}  // namespace

Solution solve_no_dvfs(const Instance& instance, const model::EnergyModel& model) {
  const double top = model::max_speed(model);
  const double required = critical_weight(instance.exec_graph);
  if (required > 0.0 && !within_deadline(required / top, instance.deadline))
    return infeasible_solution("no-dvfs");
  if (required == 0.0) return constant_solution(instance, 0.0, "no-dvfs");
  return constant_solution(instance, top, "no-dvfs");
}

Solution solve_uniform(const Instance& instance, const model::EnergyModel& model) {
  const double required = critical_weight(instance.exec_graph);
  if (required == 0.0) return constant_solution(instance, 0.0, "uniform");
  // Running faster than the deadline requires only shortens the schedule,
  // so the baseline may pick the cheapest admissible speed above the
  // requirement — which under a leakage-aware power model is the one
  // closest to the critical speed, not the slowest.
  const auto speed =
      cheapest_speed_at_least(instance, model, required / instance.deadline);
  if (!speed) return infeasible_solution("uniform");
  return constant_solution(instance, *speed, "uniform");
}

Solution solve_path_stretch(const Instance& instance,
                            const model::EnergyModel& model) {
  const auto& g = instance.exec_graph;
  Solution s;
  s.method = "path-stretch";
  if (g.num_nodes() == 0) {
    s.feasible = true;
    s.energy = 0.0;
    return s;
  }

  const double top = model::max_speed(model);
  const double critical = critical_weight(g);
  if (critical == 0.0) {
    s = constant_solution(instance, 0.0, "path-stretch");
    return s;
  }
  if (!within_speed_cap(critical / instance.deadline, top))
    return infeasible_solution(s.method);

  const auto to = graph::longest_path_to(g);     // includes own weight
  const auto from = graph::longest_path_from(g); // includes own weight

  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double through = to[v] + from[v] - w;  // heaviest path through v
    // Cheapest speed that keeps v's heaviest path inside the deadline —
    // leakage-aware, as in solve_uniform.
    const auto speed =
        cheapest_speed_at_least(instance, model, through / instance.deadline);
    if (!speed) return infeasible_solution(s.method);
    s.speeds[v] = *speed;
    s.energy += instance.power.task_energy(w, *speed);
  }
  return s;
}

}  // namespace reclaim::core
