#include "core/baselines.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

Solution constant_solution(const Instance& instance, double speed,
                           std::string method) {
  Solution s;
  s.method = std::move(method);
  s.feasible = true;
  s.speeds.assign(instance.exec_graph.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    const double w = instance.exec_graph.weight(v);
    if (w == 0.0) continue;
    s.speeds[v] = speed;
    s.energy += instance.power.task_energy(w, speed);
  }
  return s;
}

}  // namespace

Solution solve_no_dvfs(const Instance& instance, const model::EnergyModel& model) {
  const double top = model::max_speed(model);
  const double required = critical_weight(instance.exec_graph);
  if (required > 0.0 && required / top > instance.deadline * (1.0 + 1e-12))
    return infeasible_solution("no-dvfs");
  if (required == 0.0) return constant_solution(instance, 0.0, "no-dvfs");
  return constant_solution(instance, top, "no-dvfs");
}

Solution solve_uniform(const Instance& instance, const model::EnergyModel& model) {
  const double required = critical_weight(instance.exec_graph);
  if (required == 0.0) return constant_solution(instance, 0.0, "uniform");
  const double needed = required / instance.deadline;

  if (std::holds_alternative<model::ContinuousModel>(model)) {
    const double cap = model::max_speed(model);
    if (needed > cap * (1.0 + 1e-12)) return infeasible_solution("uniform");
    return constant_solution(instance, needed, "uniform");
  }
  const auto& modes = model::modes_of(model);
  const auto index = modes.index_at_or_above(needed);
  if (!index) return infeasible_solution("uniform");
  return constant_solution(instance, modes.speed(*index), "uniform");
}

Solution solve_path_stretch(const Instance& instance,
                            const model::EnergyModel& model) {
  const auto& g = instance.exec_graph;
  Solution s;
  s.method = "path-stretch";
  if (g.num_nodes() == 0) {
    s.feasible = true;
    s.energy = 0.0;
    return s;
  }

  const double top = model::max_speed(model);
  const double critical = critical_weight(g);
  if (critical == 0.0) {
    s = constant_solution(instance, 0.0, "path-stretch");
    return s;
  }
  if (critical / instance.deadline > top * (1.0 + 1e-12))
    return infeasible_solution(s.method);

  const auto to = graph::longest_path_to(g);     // includes own weight
  const auto from = graph::longest_path_from(g); // includes own weight
  const bool continuous = std::holds_alternative<model::ContinuousModel>(model);

  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double through = to[v] + from[v] - w;  // heaviest path through v
    double speed = through / instance.deadline;
    if (!continuous) {
      const auto& modes = model::modes_of(model);
      const auto index = modes.index_at_or_above(speed);
      if (!index) return infeasible_solution(s.method);
      speed = modes.speed(*index);
    } else {
      speed = std::min(speed, top);
    }
    s.speeds[v] = speed;
    s.energy += instance.power.task_energy(w, speed);
  }
  return s;
}

}  // namespace reclaim::core
