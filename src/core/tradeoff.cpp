#include "core/tradeoff.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::core {

namespace {

Solution solve_at(const Instance& instance, const model::EnergyModel& model,
                  double deadline, const SolveOptions& options,
                  const SolveFn& solver) {
  Instance at{instance.exec_graph, deadline, instance.platform,
              instance.assignment};
  if (solver) return solver(at, model, options);
  return solve(at, model, options);
}

}  // namespace

std::vector<TradeoffPoint> energy_deadline_curve(
    const Instance& instance, const model::EnergyModel& energy_model,
    double d_lo, double d_hi, std::size_t points, const SolveOptions& options,
    const SolveFn& solver) {
  util::require(points >= 1, "curve needs at least one point");
  util::require(d_lo > 0.0 && d_lo <= d_hi, "invalid deadline range");

  std::vector<TradeoffPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 0.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    const double deadline = d_lo + t * (d_hi - d_lo);
    const Solution s = solve_at(instance, energy_model, deadline, options, solver);
    curve.push_back({deadline, s.energy, s.feasible});
  }
  return curve;
}

DeadlineForEnergyResult deadline_for_energy(const Instance& instance,
                                            const model::EnergyModel& energy_model,
                                            double budget, double d_lo,
                                            double d_hi, double rel_tol,
                                            const SolveOptions& options,
                                            const SolveFn& solver) {
  util::require(d_lo > 0.0 && d_lo <= d_hi, "invalid deadline range");
  util::require(budget > 0.0, "energy budget must be positive");

  DeadlineForEnergyResult result;
  const Solution at_hi = solve_at(instance, energy_model, d_hi, options, solver);
  if (!at_hi.feasible || at_hi.energy > budget) return result;  // unachievable

  const Solution at_lo = solve_at(instance, energy_model, d_lo, options, solver);
  if (at_lo.feasible && at_lo.energy <= budget) {
    result.achievable = true;
    result.deadline = d_lo;
    result.energy = at_lo.energy;
    return result;
  }

  // Invariant: lo fails the budget (or is infeasible), hi meets it.
  double lo = d_lo;
  double hi = d_hi;
  double hi_energy = at_hi.energy;
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    const Solution s = solve_at(instance, energy_model, mid, options, solver);
    if (s.feasible && s.energy <= budget) {
      hi = mid;
      hi_energy = s.energy;
    } else {
      lo = mid;
    }
  }
  result.achievable = true;
  result.deadline = hi;
  result.energy = hi_energy;
  return result;
}

}  // namespace reclaim::core
