// Two-mode Vdd-Hopping heuristic.
//
// The Vdd model's motivation ([Miermont et al.], cited by the paper) is
// that "any rational speed can be simulated" by hopping between two
// modes. This heuristic fixes the *durations* to the Continuous optimum
// and realizes each task's required average speed by the optimal mix of
// the two adjacent modes (or runs entirely at s_1 when the required speed
// falls below the slowest mode). It is feasible by construction and upper
// bounds the LP optimum of Theorem 3 — the gap is exactly the price of
// freezing the continuous durations, which experiment E3 measures.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct TwoModeOptions {
  double continuous_rel_gap = 1e-9;
};

[[nodiscard]] Solution solve_vdd_two_mode(const Instance& instance,
                                          const model::VddHoppingModel& model,
                                          const TwoModeOptions& options = {});

}  // namespace reclaim::core
