#include "core/vdd/lp_solver.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace reclaim::core {

VddLpResult solve_vdd_lp(const Instance& instance,
                         const model::VddHoppingModel& model,
                         const opt::SimplexOptions& options) {
  const auto& g = instance.exec_graph;
  const auto& modes = model.modes;
  const std::size_t n = g.num_nodes();
  const std::size_t m = modes.size();
  const double deadline = instance.deadline;

  VddLpResult result;
  result.solution.method = "vdd-lp";
  if (n == 0) {
    result.solution.feasible = true;
    result.solution.energy = 0.0;
    return result;
  }

  opt::LinearProgram lp;
  // alpha_{i,j} at index i*m + j; t_i at index n*m + i. The objective
  // coefficient of time-in-mode is P_i(s_j) under the power model of the
  // processor executing task i, so heterogeneous platforms are solved
  // exactly — the LP minimizes the true (leaky, per-processor) objective.
  for (graph::NodeId i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      lp.add_variable(instance.power_of(i).power(modes.speed(j)));
  for (graph::NodeId i = 0; i < n; ++i) lp.add_variable(0.0);
  const auto avar = [m](graph::NodeId i, std::size_t j) { return i * m + j; };
  const auto tvar = [n, m](graph::NodeId i) { return n * m + i; };

  for (graph::NodeId i = 0; i < n; ++i) {
    // Work conservation: sum_j s_j alpha_{i,j} = w_i.
    opt::LinearConstraint work;
    work.relation = opt::Relation::kEqual;
    work.rhs = g.weight(i);
    for (std::size_t j = 0; j < m; ++j)
      work.terms.push_back({avar(i, j), modes.speed(j)});
    lp.add_constraint(std::move(work));

    // Start time >= 0: sum_k alpha_{i,k} - t_i <= 0.
    opt::LinearConstraint start;
    start.relation = opt::Relation::kLessEqual;
    start.rhs = 0.0;
    for (std::size_t j = 0; j < m; ++j) start.terms.push_back({avar(i, j), 1.0});
    start.terms.push_back({tvar(i), -1.0});
    lp.add_constraint(std::move(start));

    // Deadline: t_i <= D.
    lp.add_constraint({{{tvar(i), 1.0}}, opt::Relation::kLessEqual, deadline});
  }
  for (const graph::Edge& e : g.edges()) {
    // t_i + sum_k alpha_{j,k} - t_j <= 0.
    opt::LinearConstraint prec;
    prec.relation = opt::Relation::kLessEqual;
    prec.rhs = 0.0;
    prec.terms.push_back({tvar(e.from), 1.0});
    for (std::size_t j = 0; j < m; ++j) prec.terms.push_back({avar(e.to, j), 1.0});
    prec.terms.push_back({tvar(e.to), -1.0});
    lp.add_constraint(std::move(prec));
  }

  result.lp_variables = lp.num_variables();
  result.lp_constraints = lp.num_constraints();

  const opt::LpSolution lp_solution = opt::solve_lp(lp, options);
  result.solution.iterations = lp_solution.pivots;
  if (lp_solution.status != opt::LpStatus::kOptimal) {
    // Unboundedness is impossible (costs are positive); infeasible means
    // the deadline is below the critical path at the fastest mode.
    return result;
  }

  result.solution.feasible = true;
  result.solution.energy = lp_solution.objective;
  result.solution.profiles.assign(n, {});
  const double drop_tol = 1e-9 * std::max(1.0, deadline);
  for (graph::NodeId i = 0; i < n; ++i) {
    auto& profile = result.solution.profiles[i];
    // Fastest mode first: a canonical, deterministic segment order.
    for (std::size_t j = m; j-- > 0;) {
      const double time_in_mode = lp_solution.x[avar(i, j)];
      if (time_in_mode > drop_tol)
        profile.segments.push_back({modes.speed(j), time_in_mode});
    }
    // Repair the dropped slivers so the profile's work matches w_i exactly:
    // rescale durations by w_i / work.
    const double work = profile.work();
    if (work > 0.0 && g.weight(i) > 0.0) {
      const double fix = g.weight(i) / work;
      for (auto& segment : profile.segments) segment.duration *= fix;
    }
  }
  return result;
}

}  // namespace reclaim::core
