// Vdd-Hopping exact solver via linear programming (Theorem 3).
//
// Variables: alpha_{i,j} = time task i spends in mode s_j, and t_i = the
// completion time of task i. With d_i = sum_j alpha_{i,j} substituted in
// place, MinEnergy becomes
//
//   minimize   sum_{i,j} P(s_j) * alpha_{i,j}
//   subject to sum_j s_j * alpha_{i,j}  = w_i              (work)
//              t_i + sum_k alpha_{j,k} <= t_j              (edges (i,j))
//              sum_k alpha_{i,k}       <= t_i              (start >= 0)
//              t_i                     <= D
//              alpha, t                >= 0
//
// — a plain LP, polynomial as the theorem states. The basic optimal
// solutions mix at most two (adjacent) modes per task; the solver returns
// the per-task speed profiles.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"
#include "opt/simplex.hpp"

namespace reclaim::core {

struct VddLpResult {
  Solution solution;
  std::size_t lp_variables = 0;
  std::size_t lp_constraints = 0;
};

[[nodiscard]] VddLpResult solve_vdd_lp(const Instance& instance,
                                       const model::VddHoppingModel& model,
                                       const opt::SimplexOptions& options = {});

}  // namespace reclaim::core
