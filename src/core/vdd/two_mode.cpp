#include "core/vdd/two_mode.hpp"

#include <algorithm>
#include <cmath>

#include "core/continuous/dispatch.hpp"
#include "util/error.hpp"

namespace reclaim::core {

Solution solve_vdd_two_mode(const Instance& instance,
                            const model::VddHoppingModel& model,
                            const TwoModeOptions& options) {
  const auto& g = instance.exec_graph;
  const auto& modes = model.modes;
  Solution s;
  s.method = "vdd-two-mode";

  model::ContinuousModel continuous{modes.max_speed()};
  ContinuousOptions cont_options;
  cont_options.rel_gap = options.continuous_rel_gap;
  const Solution relaxed = solve_continuous(instance, continuous, cont_options);
  if (!relaxed.feasible) return s;

  s.feasible = true;
  s.energy = 0.0;
  s.profiles.assign(g.num_nodes(), {});
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    auto& profile = s.profiles[v];
    const double window = w / relaxed.speeds[v];  // continuous duration
    const double required = std::min(w / window, modes.max_speed());

    if (required <= modes.min_speed()) {
      // Slow-mode only; finishes early, which can only relax successors.
      profile.segments.push_back({modes.min_speed(), w / modes.min_speed()});
    } else if (modes.contains(required)) {
      profile.segments.push_back({required, w / required});
    } else {
      const auto lo_index = modes.index_at_or_below(required);
      const auto hi_index = modes.index_at_or_above(required);
      util::require_numeric(lo_index.has_value() && hi_index.has_value(),
                            "two-mode: bracketing modes missing (bug)");
      const double lo = modes.speed(*lo_index);
      const double hi = modes.speed(*hi_index);
      // Split window d into lo/hi segments: lo*a + hi*b = w, a + b = d.
      const double hi_time = (w - lo * window) / (hi - lo);
      const double lo_time = window - hi_time;
      if (hi_time > 0.0) profile.segments.push_back({hi, hi_time});
      if (lo_time > 0.0) profile.segments.push_back({lo, lo_time});
    }
    s.energy += profile.energy(instance.power_of(v));
  }
  return s;
}

}  // namespace reclaim::core
