#include "core/analysis.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::core {

double energy_ratio(const Solution& a, const Solution& b) {
  util::require(a.feasible && b.feasible,
                "energy_ratio requires feasible solutions");
  util::require(b.energy > 0.0, "energy_ratio requires positive reference energy");
  return a.energy / b.energy;
}

ApproxCertificate certify_round_up(const Solution& rounded,
                                   const Solution& relaxation,
                                   const model::ModeSet& modes,
                                   const model::PowerModel& power,
                                   double continuous_rel_gap) {
  ApproxCertificate cert;
  util::require(rounded.feasible && relaxation.feasible,
                "certificate requires feasible solutions");
  cert.measured = relaxation.energy > 0.0 ? rounded.energy / relaxation.energy : 1.0;
  cert.certified =
      std::pow(1.0 + modes.max_gap() / modes.min_speed(), power.alpha() - 1.0) *
      std::pow(1.0 + continuous_rel_gap, power.alpha() - 1.0);
  cert.holds = cert.measured <= cert.certified * (1.0 + 1e-9);
  return cert;
}

double incremental_transfer_bound(double delta, double s_min,
                                  const model::PowerModel& power) {
  util::require(delta > 0.0 && s_min > 0.0,
                "transfer bound requires positive delta and s_min");
  return std::pow(1.0 + delta / s_min, power.alpha() - 1.0);
}

double discrete_transfer_bound(const model::ModeSet& modes,
                               const model::PowerModel& power) {
  return std::pow(1.0 + modes.max_gap() / modes.min_speed(),
                  power.alpha() - 1.0);
}

double with_static_power(double dynamic_energy, double static_power,
                         double deadline, std::size_t processors) {
  util::require(static_power >= 0.0, "static power must be non-negative");
  return dynamic_energy +
         static_power * deadline * static_cast<double>(processors);
}

std::size_t total_speed_switches(const Solution& solution) {
  std::size_t switches = 0;
  for (const auto& profile : solution.profiles) {
    if (profile.segments.size() > 1) switches += profile.segments.size() - 1;
  }
  return switches;
}

double energy_with_switch_cost(const Solution& solution,
                               double cost_per_switch) {
  util::require(solution.feasible,
                "energy_with_switch_cost requires a feasible solution");
  util::require(cost_per_switch >= 0.0, "switch cost must be non-negative");
  return solution.energy +
         cost_per_switch * static_cast<double>(total_speed_switches(solution));
}

namespace {

std::vector<double> solution_durations(const Instance& instance,
                                       const Solution& solution) {
  if (solution.uses_profiles()) {
    std::vector<double> durations;
    durations.reserve(solution.profiles.size());
    for (const auto& profile : solution.profiles)
      durations.push_back(profile.total_duration());
    return durations;
  }
  return sched::durations_from_speeds(instance.exec_graph, solution.speeds);
}

}  // namespace

double deadline_slack(const Instance& instance, const Solution& solution) {
  util::require(solution.feasible, "deadline_slack requires a feasible solution");
  const auto durations = solution_durations(instance, solution);
  const auto timing = sched::compute_timing(instance.exec_graph, durations);
  return instance.deadline - timing.makespan;
}

double busy_time(const Instance& instance, const Solution& solution) {
  util::require(solution.feasible, "busy_time requires a feasible solution");
  const auto durations = solution_durations(instance, solution);
  double total = 0.0;
  for (double d : durations) total += d;
  return total;
}

PlatformEnergy platform_energy(const Instance& instance,
                               const Solution& solution,
                               const sched::Mapping& mapping, double window) {
  util::require(solution.feasible,
                "platform_energy requires a feasible solution");
  if (window <= 0.0) window = instance.deadline;
  PlatformEnergy split;
  split.busy = solution.energy;
  split.idle =
      sched::idle_energy(instance.exec_graph, mapping,
                         solution_durations(instance, solution), window,
                         instance.platform);
  return split;
}

double idle_energy(const Instance& instance, const Solution& solution,
                   const sched::Mapping& mapping, double window) {
  return platform_energy(instance, solution, mapping, window).idle;
}

std::vector<double> per_processor_energy(const Instance& instance,
                                         const Solution& solution) {
  util::require(solution.feasible,
                "per_processor_energy requires a feasible solution");
  const auto& g = instance.exec_graph;
  std::vector<double> buckets(instance.platform.size(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double e =
        solution.uses_profiles()
            ? solution.profiles[v].energy(instance.power_of(v))
            : instance.power_of(v).task_energy(g.weight(v), solution.speeds[v]);
    buckets[instance.processor_of(v)] += e;
  }
  return buckets;
}

double leakage_energy(const Instance& instance, const Solution& solution) {
  util::require(solution.feasible,
                "leakage_energy requires a feasible solution");
  const auto durations = solution_durations(instance, solution);
  double e = 0.0;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    e += instance.power_of(v).p_static() * durations[v];
  }
  return e;
}

}  // namespace reclaim::core
