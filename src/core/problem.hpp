// The MinEnergy(G, D) optimization problem (Equation 1 of the paper) and
// its solution type, shared by every solver in core/.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "model/platform.hpp"
#include "model/power_model.hpp"
#include "sched/schedule.hpp"

namespace reclaim::core {

/// The one relative feasibility tolerance shared by every solver's
/// deadline/cap check. A schedule whose makespan (or required speed)
/// exceeds the bound by at most this relative slack counts as feasible:
/// deadline-tight instances assembled in floating point (D = W / s_max
/// summed in a different order than the solver sums it) land within a few
/// ulps of the boundary on either side, and the ad-hoc per-solver guards
/// (1e-12 here, 1e-9 there) used to declare some of them infeasible.
/// Aliases sched::kScheduleRelTol (meets_deadline's default) so solver
/// feasibility and schedule validation can never drift apart.
inline constexpr double kFeasibilityRelTol = sched::kScheduleRelTol;

/// True when a makespan of `makespan` meets `deadline` within
/// kFeasibilityRelTol.
[[nodiscard]] constexpr bool within_deadline(double makespan,
                                             double deadline) noexcept {
  return makespan <= deadline * (1.0 + kFeasibilityRelTol);
}

/// True when a required speed `needed` is achievable under cap `s_max`
/// within kFeasibilityRelTol (callers clamp the speed they actually use
/// to s_max).
[[nodiscard]] constexpr bool within_speed_cap(double needed,
                                              double s_max) noexcept {
  return needed <= s_max * (1.0 + kFeasibilityRelTol);
}

/// How the continuous solvers treat static (leakage) power.
///
/// kReduction is the s_crit reduction (DESIGN.md): run the pure-dynamic
/// machinery with per-task speed floors raised to the critical speed and
/// account leakage afterwards. Exact for uniform-P_stat chains, binding
/// floors, P_stat = 0 and Vdd-Hopping; provably suboptimal for parallel
/// branches with slack and for deadline-bound chains spanning processors
/// with different P_stat. kExact additionally minimizes the true
/// duration-charged busy energy sum_v (P_stat_v d_v + w_v^alpha_v /
/// d_v^(alpha_v - 1)) through the numeric barrier solver and returns the
/// cheaper of the two (DESIGN.md, "Exact leaky solver"); on instances
/// where the reduction is provably exact it returns the reduction's
/// solution bit-identically.
enum class LeakageMode {
  kReduction,
  kExact,
};

/// How sleep-enabled continuous instances decide their power-down states.
///
/// kRace is the post-hoc comparison (core/continuous/race_to_idle.hpp):
/// solve speeds first, then race a uniform speed-up against the crawl.
/// kJoint makes the per-gap decision a solver variable: on top of the
/// race anchor it alternates between re-solving speeds given the gap
/// states and re-deciding gap states (sleep + wake, stay idle, or crawl
/// below s_crit to absorb the gap) given the speeds, and is never worse
/// than the race (core/continuous/joint_sleep.hpp). kDp is the exact
/// single-processor agreeable-deadline dynamic program over event-point
/// speed candidates (the Baptiste-Chrobak-Durr anchor,
/// core/continuous/sleep_dp.hpp) — a test oracle, not a production route;
/// it throws on instances outside its eligibility (one processor, chain
/// execution order, homogeneous model).
enum class SleepMode {
  kRace,
  kJoint,
  kDp,
};

/// An instance of MinEnergy(G, D): the *execution* graph (original
/// precedence edges plus same-processor chaining edges, see
/// sched::build_execution_graph), the deadline, the platform (one power
/// model and speed cap per processor), and the task -> processor
/// assignment derived from the mapping. A 1-processor Platform with an
/// empty assignment is the paper's identical-processor setting; the
/// implicit PowerModel -> Platform conversion keeps pre-platform
/// aggregates like Instance{graph, D, power} compiling unchanged.
struct Instance {
  graph::Digraph exec_graph;
  double deadline = 0.0;
  model::Platform platform{};
  /// Task -> processor index; empty means every task runs on processor 0.
  std::vector<std::size_t> assignment{};

  [[nodiscard]] std::size_t processor_of(graph::NodeId v) const {
    return assignment.empty() ? 0 : assignment[v];
  }
  /// The power model of the processor executing task v.
  [[nodiscard]] const model::PowerModel& power_of(graph::NodeId v) const {
    return platform.power(processor_of(v));
  }
  /// The speed cap of the processor executing task v (+inf when uncapped;
  /// solvers fold it with the energy model's global cap).
  [[nodiscard]] double cap_of(graph::NodeId v) const {
    return platform.cap(processor_of(v));
  }
  /// True when every task sees the same power model and processor cap —
  /// the homogeneous fast path every pre-platform solver ran.
  [[nodiscard]] bool homogeneous_tasks() const;
  /// The shared power model of a homogeneous instance — the pre-platform
  /// accessor. Throws InvalidArgument when tasks see different models
  /// (use power_of() instead).
  [[nodiscard]] const model::PowerModel& power() const;
};

/// Builds an instance, validating the graph (acyclic) and deadline (> 0),
/// under the pure power law s^alpha.
[[nodiscard]] Instance make_instance(graph::Digraph exec_graph, double deadline,
                                     double alpha = 3.0);

/// Same, under an explicit power model (e.g. model::StaticPowerLaw for
/// leakage-aware solving).
[[nodiscard]] Instance make_instance(graph::Digraph exec_graph, double deadline,
                                     model::PowerModel power);

/// Heterogeneous-platform instance: one ProcessorSpec per processor of
/// `mapping`, whose ordered lists must cover every task of `exec_graph`
/// exactly once (the execution graph is assumed to have been built from
/// this very mapping — sched::build_execution_graph preserves node ids).
[[nodiscard]] Instance make_instance(graph::Digraph exec_graph, double deadline,
                                     model::Platform platform,
                                     const sched::Mapping& mapping);

/// Same, with an explicit task -> processor assignment (one entry per
/// task, each below platform.size()).
[[nodiscard]] Instance make_instance(graph::Digraph exec_graph, double deadline,
                                     model::Platform platform,
                                     std::vector<std::size_t> assignment);

/// A solution of MinEnergy. Constant-speed models fill `speeds` (entry 0
/// for zero-weight tasks); Vdd-Hopping fills `profiles`. `method` records
/// which solver produced it; `iterations` its work measure (Newton steps,
/// simplex pivots, branch-and-bound nodes, DP cells).
struct Solution {
  bool feasible = false;
  double energy = std::numeric_limits<double>::infinity();
  std::vector<double> speeds;
  std::vector<sched::SpeedProfile> profiles;
  std::string method;
  std::size_t iterations = 0;

  [[nodiscard]] bool uses_profiles() const noexcept { return !profiles.empty(); }
};

/// The infeasible solution with solver provenance.
[[nodiscard]] Solution infeasible_solution(std::string method);

/// Feasible solution from per-task speeds: zero-weight tasks keep speed
/// 0, every other task is charged its own processor's power model at
/// speeds[v]. The one builder shared by every constant-speed solver
/// (closed forms, numeric extraction, baselines), so per-task energy
/// accounting can never drift between them.
[[nodiscard]] Solution speeds_solution(const Instance& instance,
                                       const std::vector<double>& speeds,
                                       std::string method);

/// Weight of the heaviest path of the execution graph; D must be at least
/// this divided by the fastest speed for any model to be feasible.
[[nodiscard]] double critical_weight(const graph::Digraph& exec_graph);

/// Smallest feasible deadline at top speed `s_max`: critical_weight / s_max.
[[nodiscard]] double min_deadline(const graph::Digraph& exec_graph, double s_max);

/// Recomputes the energy of a constant-speed solution from first
/// principles (used by tests to cross-check solver bookkeeping).
[[nodiscard]] double recompute_energy(const Instance& instance,
                                      const Solution& solution);

}  // namespace reclaim::core
