#include "core/discrete/exact_bb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/discrete/round_up.hpp"
#include "graph/topo.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDeadlineTol = 1.0 + 1e-9;

/// Shared state of the DFS.
struct Search {
  const graph::Digraph& g;
  const model::ModeSet& modes;
  const Instance& instance;  ///< per-task power via power_of(v)
  double deadline;
  std::vector<graph::NodeId> order;      ///< topological
  std::vector<double> bottom_level;      ///< heaviest path weight from v
  std::vector<double> energy_tail;       ///< cheapest-mode energy of order[k..)
  std::vector<double> completion;        ///< per-task, for the assigned prefix
  std::vector<std::size_t> choice;       ///< mode index per task
  std::vector<std::size_t> best_choice;
  double best_energy = kInf;
  std::size_t nodes = 0;
  std::size_t max_nodes = 0;
  bool aborted = false;

  void dfs(std::size_t position, double partial_energy) {
    if (aborted) return;
    if (position == order.size()) {
      if (partial_energy < best_energy) {
        best_energy = partial_energy;
        best_choice = choice;
      }
      return;
    }
    const graph::NodeId v = order[position];
    const double w = g.weight(v);
    double ready = 0.0;
    for (graph::NodeId p : g.predecessors(v))
      ready = std::max(ready, completion[p]);
    const double tail_weight = bottom_level[v] - w;
    const double s_fast = modes.max_speed();
    const model::PowerModel& power = instance.power_of(v);
    const double s_crit = power.critical_speed();

    // Zero-weight tasks are mode-independent: a single branch.
    const std::size_t mode_count = w == 0.0 ? 1 : modes.size();
    for (std::size_t j = 0; j < mode_count; ++j) {
      if (++nodes >= max_nodes) {
        aborted = true;
        return;
      }
      const double speed = modes.speed(j);
      const double duration = w == 0.0 ? 0.0 : w / speed;
      const double finish = ready + duration;
      // Feasibility: heaviest remaining path at the fastest mode.
      if (finish + tail_weight / s_fast > deadline * kDeadlineTol) continue;
      const double task_energy = power.task_energy(w, speed);
      const double lower_bound =
          partial_energy + task_energy + energy_tail[position + 1];
      if (lower_bound >= best_energy) {
        // Energy grows with the mode from the critical speed on (s_crit is
        // 0 for the pure power law), so a bound hit there kills all faster
        // modes too; below s_crit the cost is still decreasing, so slower
        // modes being pruned says nothing about faster ones.
        if (speed >= s_crit) break;
        continue;
      }

      completion[v] = finish;
      choice[v] = j;
      dfs(position + 1, partial_energy + task_energy);
      if (aborted) return;
    }
  }
};

}  // namespace

BranchBoundResult solve_discrete_exact(const Instance& instance,
                                       const model::ModeSet& modes,
                                       const BranchBoundOptions& options) {
  const auto& g = instance.exec_graph;
  BranchBoundResult result;
  result.solution.method = "discrete-bb";

  if (g.num_nodes() == 0) {
    result.solution.feasible = true;
    result.solution.energy = 0.0;
    result.proven_optimal = true;
    return result;
  }

  const auto order = graph::topological_order(g);
  util::require(order.has_value(), "branch and bound requires a DAG");

  Search search{g,
                modes,
                instance,
                instance.deadline,
                *order,
                graph::longest_path_from(g),
                {},
                std::vector<double>(g.num_nodes(), 0.0),
                std::vector<std::size_t>(g.num_nodes(), 0),
                {},
                kInf,
                0,
                options.max_nodes,
                false};

  // energy_tail[k] = sum of cheapest-mode energies of tasks order[k..).
  // For the pure power law the cheapest mode is the slowest; with leakage
  // it is the mode closest to the critical speed — per task, since each
  // processor has its own s_crit on a heterogeneous platform. (For a
  // homogeneous one min_j E(w, s_j) = w * min_j E(1, s_j) term by term,
  // reproducing the pre-platform tail bit-identically.)
  search.energy_tail.assign(g.num_nodes() + 1, 0.0);
  for (std::size_t k = g.num_nodes(); k-- > 0;) {
    const graph::NodeId v = (*order)[k];
    const double w = g.weight(v);
    double cheapest = w == 0.0 ? 0.0 : kInf;
    for (std::size_t j = 0; w > 0.0 && j < modes.size(); ++j) {
      cheapest = std::min(
          cheapest, instance.power_of(v).task_energy(w, modes.speed(j)));
    }
    search.energy_tail[k] = search.energy_tail[k + 1] + cheapest;
  }

  // Warm start with CONT-ROUND.
  if (options.warm_start) {
    const RoundUpResult warm = solve_round_up(instance, modes);
    if (warm.solution.feasible) {
      search.best_energy = warm.solution.energy * (1.0 + 1e-12);
      search.best_choice.assign(g.num_nodes(), 0);
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto index = g.weight(v) > 0.0
                               ? modes.index_at_or_above(warm.solution.speeds[v])
                               : std::optional<std::size_t>(0);
        search.best_choice[v] = index.value_or(modes.size() - 1);
      }
    }
  }

  search.dfs(0, 0.0);
  result.nodes_explored = search.nodes;
  result.proven_optimal = !search.aborted;

  if (search.best_choice.empty()) return result;  // infeasible (or no improvement)

  auto& s = result.solution;
  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    s.speeds[v] = modes.speed(search.best_choice[v]);
    s.energy += instance.power_of(v).task_energy(w, s.speeds[v]);
  }
  s.iterations = search.nodes;
  return result;
}

Solution solve_discrete_enumerate(const Instance& instance,
                                  const model::ModeSet& modes) {
  const auto& g = instance.exec_graph;
  Solution best = infeasible_solution("discrete-enumerate");
  const std::size_t n = g.num_nodes();
  util::require(n <= 12, "enumeration oracle limited to 12 tasks");
  if (n == 0) {
    best.feasible = true;
    best.energy = 0.0;
    return best;
  }

  std::vector<std::size_t> assignment(n, 0);
  std::vector<double> speeds(n, 0.0);
  for (;;) {
    double energy = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      speeds[v] = g.weight(v) > 0.0 ? modes.speed(assignment[v]) : 0.0;
      energy += instance.power_of(v).task_energy(g.weight(v), speeds[v]);
    }
    const auto durations = sched::durations_from_speeds(g, speeds);
    if (sched::meets_deadline(g, durations, instance.deadline) &&
        energy < best.energy) {
      best.feasible = true;
      best.energy = energy;
      best.speeds = speeds;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n && ++assignment[pos] == modes.size()) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

}  // namespace reclaim::core
