#include "core/discrete/round_up.hpp"

#include <algorithm>
#include <cmath>

#include "core/continuous/dispatch.hpp"
#include "util/error.hpp"

namespace reclaim::core {

RoundUpResult solve_round_up(const Instance& instance,
                             const model::ModeSet& modes,
                             const RoundUpOptions& options) {
  const auto& g = instance.exec_graph;
  RoundUpResult result;
  result.solution.method = "cont-round";

  // Theorem 5's per-task rounding bound holds per task with its own
  // exponent; the instance-wide certificate uses the largest one among
  // the *weighted* tasks (the worst per-task factor — an exponent on a
  // processor hosting no work must not inflate it). On a homogeneous
  // platform this is the shared alpha, bit-identically.
  double alpha = 0.0;
  bool any_weighted = false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    const double a = instance.power_of(v).alpha();
    alpha = any_weighted ? std::max(alpha, a) : a;
    any_weighted = true;
  }
  if (!any_weighted) alpha = instance.platform.power(0).alpha();
  result.certified_factor =
      std::pow(1.0 + modes.max_gap() / modes.min_speed(), alpha - 1.0) *
      std::pow(1.0 + options.continuous_rel_gap, alpha - 1.0);

  model::ContinuousModel continuous{modes.max_speed()};
  ContinuousOptions cont_options;
  cont_options.rel_gap = options.continuous_rel_gap;
  cont_options.s_min = modes.min_speed();
  result.relaxation = solve_continuous(instance, continuous, cont_options);
  if (!result.relaxation.feasible) return result;

  auto& s = result.solution;
  s.feasible = true;
  s.energy = 0.0;
  s.speeds.assign(g.num_nodes(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const auto index = modes.index_at_or_above(result.relaxation.speeds[v]);
    util::require_numeric(index.has_value(),
                          "cont-round: relaxation speed above the top mode (bug)");
    s.speeds[v] = modes.speed(*index);
    s.energy += instance.power_of(v).task_energy(w, s.speeds[v]);
  }
  return result;
}

}  // namespace reclaim::core
