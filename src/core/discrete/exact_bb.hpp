// Exact Discrete solver by branch-and-bound (the constructive face of
// Theorem 4's NP-completeness: exponential in the worst case, exact).
//
// Depth-first over the tasks in topological order, assigning a mode per
// task, slowest first. Pruning:
//  - feasibility: after fixing task v's completion t_v, any extension
//    needs at least (bottom_level(v) - w_v)/s_m more time on v's heaviest
//    remaining path;
//  - energy: partial energy + sum of remaining weights * s_1^(alpha-1)
//    (every task costs at least its slowest-mode energy) against the
//    incumbent; since per-task energy grows with the mode, a bound hit
//    cuts all faster modes of the current task at once;
//  - warm start: the CONT-ROUND solution seeds the incumbent.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct BranchBoundOptions {
  std::size_t max_nodes = 20'000'000;  ///< search-tree node budget
  bool warm_start = true;              ///< seed the incumbent with CONT-ROUND
};

struct BranchBoundResult {
  Solution solution;
  std::size_t nodes_explored = 0;
  bool proven_optimal = false;  ///< false when the node budget ran out
};

/// Exact optimum of MinEnergy under the Discrete model (also used for
/// Incremental via its mode set). Intended for small instances.
[[nodiscard]] BranchBoundResult solve_discrete_exact(
    const Instance& instance, const model::ModeSet& modes,
    const BranchBoundOptions& options = {});

/// Oracle: full enumeration of all m^n assignments. For tiny tests only.
[[nodiscard]] Solution solve_discrete_enumerate(const Instance& instance,
                                                const model::ModeSet& modes);

}  // namespace reclaim::core
