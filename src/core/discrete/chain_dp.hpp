// Pseudo-polynomial dynamic program for Discrete MinEnergy on chains.
//
// Theorem 4's NP-completeness is weak (the companion report reduces from
// a partition-style problem): on a single chain the problem is a
// multiple-choice knapsack, solvable exactly over a time grid. With grid
// resolution Delta = D / (n K):
//   - durations are rounded *up* to grid cells, so every DP solution is
//     feasible for the true deadline D;
//   - any solution of the tightened instance with deadline D(1 - 1/K)
//     survives the rounding, hence E_DP <= OPT(D * (1 - 1/K)).
// Larger K tightens the approximation at O(n^2 K m) time.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct ChainDpOptions {
  std::size_t resolution = 64;  ///< K: grid cells per task on average
};

struct ChainDpResult {
  Solution solution;
  std::size_t grid_cells = 0;   ///< total DP columns (n K)
};

/// Requires a chain (or single-task) execution graph.
[[nodiscard]] ChainDpResult solve_chain_dp(const Instance& instance,
                                           const model::ModeSet& modes,
                                           const ChainDpOptions& options = {});

}  // namespace reclaim::core
