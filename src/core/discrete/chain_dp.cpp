#include "core/discrete/chain_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/classify.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ChainDpResult solve_chain_dp(const Instance& instance,
                             const model::ModeSet& modes,
                             const ChainDpOptions& options) {
  const auto& g = instance.exec_graph;
  util::require(g.num_nodes() == 1 || graph::is_chain(g),
                "chain DP requires a chain execution graph");
  util::require(options.resolution >= 1, "resolution must be >= 1");

  const auto order = graph::topological_order(g);
  const std::size_t n = g.num_nodes();
  const std::size_t m = modes.size();
  const std::size_t cells = n * options.resolution;
  const double delta = instance.deadline / static_cast<double>(cells);

  ChainDpResult result;
  result.grid_cells = cells;
  result.solution.method = "chain-dp";

  // Grid cost of running task weight w at mode j, rounded up.
  const auto grid_cost = [&](double w, std::size_t j) -> std::size_t {
    if (w == 0.0) return 0;
    const double duration = w / modes.speed(j);
    return static_cast<std::size_t>(std::ceil(duration / delta - 1e-12));
  };

  // dp[k][r]: min energy of the first k tasks within r grid cells.
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(cells + 1, kInf));
  std::vector<std::vector<std::size_t>> pick(
      n, std::vector<std::size_t>(cells + 1, m));
  for (std::size_t r = 0; r <= cells; ++r) dp[0][r] = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const graph::NodeId v = (*order)[k];
    const double w = g.weight(v);
    const std::size_t mode_count = w == 0.0 ? 1 : m;
    for (std::size_t j = 0; j < mode_count; ++j) {
      const std::size_t cost = grid_cost(w, j);
      const double energy =
          w == 0.0 ? 0.0 : instance.power_of(v).task_energy(w, modes.speed(j));
      if (cost > cells) continue;
      for (std::size_t r = cost; r <= cells; ++r) {
        const double candidate = dp[k][r - cost] + energy;
        if (candidate < dp[k + 1][r]) {
          dp[k + 1][r] = candidate;
          pick[k][r] = j;
        }
      }
    }
  }

  if (dp[n][cells] == kInf) return result;  // infeasible on this grid

  auto& s = result.solution;
  s.feasible = true;
  s.energy = dp[n][cells];
  s.speeds.assign(n, 0.0);
  s.iterations = n * (cells + 1);
  std::size_t budget = cells;
  for (std::size_t k = n; k-- > 0;) {
    const graph::NodeId v = (*order)[k];
    const std::size_t j = pick[k][budget];
    util::require_numeric(j < m || g.weight(v) == 0.0,
                          "chain DP reconstruction failed (bug)");
    if (g.weight(v) > 0.0) {
      s.speeds[v] = modes.speed(j);
      budget -= grid_cost(g.weight(v), j);
    } else {
      budget -= 0;
    }
  }
  return result;
}

}  // namespace reclaim::core
