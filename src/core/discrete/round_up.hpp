// CONT-ROUND: the approximation algorithm behind Theorem 5 / Proposition 1.
//
// 1. Solve the Continuous relaxation restricted to the mode range
//    [s_1, s_m] (any Discrete/Incremental solution is feasible there, so
//    the relaxation lower-bounds the discrete optimum).
// 2. Round every task's speed *up* to the next admissible mode. Durations
//    shrink, so the schedule stays feasible.
//
// Per-task energy grows by at most (s_rounded/s)^(alpha-1) with
// s_rounded <= s + gap and s >= s_1, hence
//
//   E_round <= (1 + gap/s_1)^(alpha-1) * (1 + eps)^(alpha-1) * E_opt,
//
// where gap = delta for Incremental (Theorem 5's (1+delta/s_min)^2 for
// alpha = 3), gap = max mode spacing for Discrete (Proposition 1), and
// eps is the relative accuracy of the continuous relaxation (Theorem 5's
// (1 + 1/K)^2 term, exposed as `continuous_rel_gap`).
//
// Leakage-aware power models reuse the same machinery: the continuous
// relaxation's floor is raised to the critical speed inside
// solve_continuous (the s_crit reduction), and the per-task rounding
// factor bound survives because for s >= s_crit the busy cost satisfies
// cost(s')/cost(s) <= (s'/s)^(alpha-1); the relaxation lower-bounds the
// discrete optimum exactly where the reduction is exact (DESIGN.md).
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"
#include "model/speed_set.hpp"

namespace reclaim::core {

struct RoundUpOptions {
  /// Relative accuracy of the continuous relaxation — the 1/K of Thm 5.
  double continuous_rel_gap = 1e-9;
};

struct RoundUpResult {
  Solution solution;           ///< rounded, mode-feasible solution
  Solution relaxation;         ///< the restricted continuous relaxation
  double certified_factor = 1.0;  ///< (1 + gap/s_1)^(alpha-1) (1 + eps)^(alpha-1)
};

/// Runs CONT-ROUND against an arbitrary mode set (covers both the
/// Discrete and Incremental models).
[[nodiscard]] RoundUpResult solve_round_up(const Instance& instance,
                                           const model::ModeSet& modes,
                                           const RoundUpOptions& options = {});

}  // namespace reclaim::core
