#include "core/solve.hpp"

#include "core/continuous/dispatch.hpp"
#include "core/continuous/sleep_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/vdd/lp_solver.hpp"

namespace reclaim::core {

namespace {

Solution solve_mode_based(const Instance& instance, const model::ModeSet& modes,
                          const SolveOptions& options) {
  if (instance.exec_graph.num_nodes() <= options.exact_discrete_up_to) {
    return solve_discrete_exact(instance, modes).solution;
  }
  RoundUpOptions round_options;
  round_options.continuous_rel_gap = options.rel_gap;
  return solve_round_up(instance, modes, round_options).solution;
}

}  // namespace

Solution solve(const Instance& instance, const model::EnergyModel& energy_model,
               const SolveOptions& options) {
  return std::visit(
      [&](const auto& m) -> Solution {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          // kDp is the exact single-processor oracle (throws off its
          // eligibility domain). kJoint needs a mapping to price gaps and
          // is routed by the engine's mapped solves; here, with no mapping
          // in sight, it behaves like kRace.
          if (options.sleep_mode == SleepMode::kDp &&
              instance.platform.has_sleep()) {
            return solve_sleep_dp(instance, m).solution;
          }
          ContinuousOptions continuous_options;
          continuous_options.rel_gap = options.rel_gap;
          continuous_options.s_min = options.continuous_s_min;
          continuous_options.leakage = options.leakage;
          return solve_continuous(instance, m, continuous_options);
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          return solve_vdd_lp(instance, m).solution;
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          return solve_mode_based(instance, m.modes, options);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          return solve_mode_based(instance, m.modes, options);
        }
      },
      energy_model);
}

}  // namespace reclaim::core
