// Unified front door: solve MinEnergy under any EnergyModel variant.
//
// Dispatch:
//   Continuous  -> solve_continuous (closed forms / tree / SP / numeric)
//   Vdd-Hopping -> solve_vdd_lp (exact, Theorem 3)
//   Discrete    -> exact branch-and-bound when the instance is small
//                  enough (Theorem 4 willing), else CONT-ROUND (Theorem 5)
//   Incremental -> same policy on the incremental mode set
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct SolveOptions {
  /// Use the exact exponential solver for Discrete/Incremental when the
  /// graph has at most this many tasks; CONT-ROUND beyond. 0 forces
  /// CONT-ROUND regardless of size (the engine's chain-DP route honors
  /// this too).
  std::size_t exact_discrete_up_to = 12;
  /// Numeric/relaxation accuracy.
  double rel_gap = 1e-9;
  /// Speed floor for the Continuous model (Theorem 5's restricted
  /// relaxation); 0 means unrestricted.
  double continuous_s_min = 0.0;
  /// Static-power handling of the Continuous model: the s_crit reduction
  /// (default) or the exact duration-charged solver (DESIGN.md, "Exact
  /// leaky solver"). Mode-based models are unaffected — branch-and-bound
  /// and the Vdd LP already charge the true leaky cost of every mode, and
  /// CONT-ROUND's rounding analysis is a reduction-semantics bound.
  LeakageMode leakage = LeakageMode::kReduction;
  /// Power-down handling of sleep-enabled continuous instances: the
  /// post-hoc race (default), the joint speed + power-down refinement
  /// (engine mapped routes and --joint-sleep), or the exact
  /// single-processor DP oracle (throws off its eligibility domain).
  /// Mode-based models ignore it; so do instances without a sleep spec.
  SleepMode sleep_mode = SleepMode::kRace;
};

/// Solves the instance under `energy_model`. The returned Solution's
/// `method` field records the algorithm that actually ran.
[[nodiscard]] Solution solve(const Instance& instance,
                             const model::EnergyModel& energy_model,
                             const SolveOptions& options = {});

}  // namespace reclaim::core
