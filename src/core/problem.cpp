#include "core/problem.hpp"

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

Instance make_instance(graph::Digraph exec_graph, double deadline, double alpha) {
  return make_instance(std::move(exec_graph), deadline,
                       model::PowerModel(model::PowerLaw(alpha)));
}

Instance make_instance(graph::Digraph exec_graph, double deadline,
                       model::PowerModel power) {
  util::require(graph::is_acyclic(exec_graph), "execution graph must be acyclic");
  util::require(deadline > 0.0, "deadline must be positive");
  return Instance{std::move(exec_graph), deadline, power};
}

Solution infeasible_solution(std::string method) {
  Solution s;
  s.method = std::move(method);
  return s;
}

double critical_weight(const graph::Digraph& exec_graph) {
  if (exec_graph.num_nodes() == 0) return 0.0;
  return graph::critical_path(exec_graph).length;
}

double min_deadline(const graph::Digraph& exec_graph, double s_max) {
  util::require(s_max > 0.0, "s_max must be positive");
  return critical_weight(exec_graph) / s_max;
}

double recompute_energy(const Instance& instance, const Solution& solution) {
  if (solution.uses_profiles())
    return sched::total_energy(solution.profiles, instance.power);
  return sched::total_energy(instance.exec_graph, solution.speeds, instance.power);
}

}  // namespace reclaim::core
