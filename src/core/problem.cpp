#include "core/problem.hpp"

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

bool Instance::homogeneous_tasks() const {
  if (assignment.empty() || platform.homogeneous()) return true;
  const model::ProcessorSpec& ref = platform.spec(assignment.front());
  for (std::size_t p : assignment) {
    if (!(platform.spec(p) == ref)) return false;
  }
  return true;
}

const model::PowerModel& Instance::power() const {
  util::require(homogeneous_tasks(),
                "Instance::power(): tasks see different power models on this "
                "platform; use power_of(task)");
  return platform.power(assignment.empty() ? 0 : assignment.front());
}

Instance make_instance(graph::Digraph exec_graph, double deadline, double alpha) {
  return make_instance(std::move(exec_graph), deadline,
                       model::PowerModel(model::PowerLaw(alpha)));
}

Instance make_instance(graph::Digraph exec_graph, double deadline,
                       model::PowerModel power) {
  util::require(graph::is_acyclic(exec_graph), "execution graph must be acyclic");
  util::require(deadline > 0.0, "deadline must be positive");
  return Instance{std::move(exec_graph), deadline, model::Platform(power), {}};
}

Instance make_instance(graph::Digraph exec_graph, double deadline,
                       model::Platform platform, const sched::Mapping& mapping) {
  mapping.validate_complete(exec_graph);
  util::require(platform.size() == mapping.num_processors(),
                "platform and mapping disagree on the processor count");
  std::vector<std::size_t> assignment(exec_graph.num_nodes(), 0);
  for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
    for (graph::NodeId v : mapping.tasks_on(p)) assignment[v] = p;
  }
  return make_instance(std::move(exec_graph), deadline, std::move(platform),
                       std::move(assignment));
}

Instance make_instance(graph::Digraph exec_graph, double deadline,
                       model::Platform platform,
                       std::vector<std::size_t> assignment) {
  util::require(graph::is_acyclic(exec_graph), "execution graph must be acyclic");
  util::require(deadline > 0.0, "deadline must be positive");
  util::require(assignment.size() == exec_graph.num_nodes(),
                "one processor per task required");
  for (std::size_t p : assignment) {
    util::require(p < platform.size(),
                  "assignment references an unknown processor");
  }
  return Instance{std::move(exec_graph), deadline, std::move(platform),
                  std::move(assignment)};
}

Solution infeasible_solution(std::string method) {
  Solution s;
  s.method = std::move(method);
  return s;
}

Solution speeds_solution(const Instance& instance,
                         const std::vector<double>& speeds,
                         std::string method) {
  Solution s;
  s.method = std::move(method);
  s.feasible = true;
  s.speeds.assign(instance.exec_graph.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    const double w = instance.exec_graph.weight(v);
    if (w == 0.0) continue;
    s.speeds[v] = speeds[v];
    s.energy += instance.power_of(v).task_energy(w, speeds[v]);
  }
  return s;
}

double critical_weight(const graph::Digraph& exec_graph) {
  if (exec_graph.num_nodes() == 0) return 0.0;
  return graph::critical_path(exec_graph).length;
}

double min_deadline(const graph::Digraph& exec_graph, double s_max) {
  util::require(s_max > 0.0, "s_max must be positive");
  return critical_weight(exec_graph) / s_max;
}

double recompute_energy(const Instance& instance, const Solution& solution) {
  // Per-task accounting so each task is charged its own processor's power
  // curve; for a homogeneous platform the sum is term-by-term identical to
  // the pre-platform sched::total_energy path.
  const auto& g = instance.exec_graph;
  double e = 0.0;
  if (solution.uses_profiles()) {
    util::require(solution.profiles.size() == g.num_nodes(),
                  "one profile per task required");
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      e += solution.profiles[v].energy(instance.power_of(v));
    return e;
  }
  util::require(solution.speeds.size() == g.num_nodes(),
                "one speed per task required");
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    e += instance.power_of(v).task_energy(g.weight(v), solution.speeds[v]);
  return e;
}

}  // namespace reclaim::core
