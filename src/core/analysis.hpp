// Cross-model analysis: ratios, approximation certificates, the
// Proposition 1 transfer bounds, and the static-power extension.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "model/energy_model.hpp"
#include "model/speed_set.hpp"
#include "sched/mapping.hpp"

namespace reclaim::core {

/// energy(a) / energy(b); both must be feasible with positive energy(b).
[[nodiscard]] double energy_ratio(const Solution& a, const Solution& b);

/// A checked approximation guarantee: `measured` must stay below
/// `certified` (within fp slack) for the theorem to hold on the instance.
struct ApproxCertificate {
  double measured = 0.0;   ///< E_heuristic / E_reference
  double certified = 0.0;  ///< the theorem's bound
  bool holds = false;
};

/// Theorem 5 / Proposition 1 certificate: rounded solution vs the
/// restricted continuous relaxation under bound
/// (1 + gap/s_1)^(alpha-1) * (1 + eps)^(alpha-1).
[[nodiscard]] ApproxCertificate certify_round_up(const Solution& rounded,
                                                 const Solution& relaxation,
                                                 const model::ModeSet& modes,
                                                 const model::PowerModel& power,
                                                 double continuous_rel_gap);

/// Proposition 1 (first item): the Incremental model approximates the
/// Continuous model within (1 + delta/s_min)^(alpha-1). Returns the bound.
[[nodiscard]] double incremental_transfer_bound(double delta, double s_min,
                                                const model::PowerModel& power);

/// Proposition 1 (second item): Discrete within (1 + gap/s_1)^(alpha-1) of
/// Continuous, gap = max consecutive mode spacing.
[[nodiscard]] double discrete_transfer_bound(const model::ModeSet& modes,
                                             const model::PowerModel& power);

/// The paper ignores static power ("all processors are up and alive
/// during the whole execution"): with a fixed deadline and processor
/// count it adds the same constant to every model. This helper makes that
/// explicit for the E10 ablation. Distinct from model::StaticPowerLaw,
/// which charges leakage only while a task is busy and therefore changes
/// the optimal speeds (DESIGN.md, "Two leakage semantics").
[[nodiscard]] double with_static_power(double dynamic_energy, double static_power,
                                       double deadline, std::size_t processors);

/// Deadline slack of a solution: D - makespan (requires feasibility).
[[nodiscard]] double deadline_slack(const Instance& instance,
                                    const Solution& solution);

/// Total busy time of a feasible solution: the sum of task durations
/// (profile durations for Vdd). The leakage share of a StaticPowerLaw
/// solution's energy is p_static * busy_time.
[[nodiscard]] double busy_time(const Instance& instance,
                               const Solution& solution);

/// Whole-platform energy split of a feasible solution over the window
/// [0, window]: `busy` is the solution's per-task energy (what every
/// solver reports), `idle` the idle-interval charges under the instance's
/// sleep spec (DESIGN.md, "Power-down / sleep states").
struct PlatformEnergy {
  double busy = 0.0;
  double idle = 0.0;

  [[nodiscard]] double total() const noexcept { return busy + idle; }
};

/// Busy + idle energy of `solution` under `mapping`. The window defaults
/// (window <= 0) to the instance deadline: the platform is committed for
/// the whole deadline window, and each processor idles or sleeps outside
/// its busy intervals. With an all-zero sleep spec `idle` is exactly 0.0
/// and `total()` equals `solution.energy` bit-identically. Requires a
/// feasible solution.
[[nodiscard]] PlatformEnergy platform_energy(const Instance& instance,
                                             const Solution& solution,
                                             const sched::Mapping& mapping,
                                             double window = 0.0);

/// The idle component alone — platform_energy().idle.
[[nodiscard]] double idle_energy(const Instance& instance,
                                 const Solution& solution,
                                 const sched::Mapping& mapping,
                                 double window = 0.0);

/// Busy energy charged to each processor: per-task energies (profile
/// energies for Vdd) bucketed by the instance's task -> processor
/// assignment, each task under its own processor's power curve. Size
/// equals instance.platform.size(); the entries sum to solution.energy
/// (up to summation order). Requires a feasible solution.
[[nodiscard]] std::vector<double> per_processor_energy(const Instance& instance,
                                                       const Solution& solution);

/// Leakage share of a feasible solution's busy energy:
/// sum_v P_stat(proc(v)) * duration_v — p_static * busy_time on a
/// homogeneous platform, per-processor on a heterogeneous one.
[[nodiscard]] double leakage_energy(const Instance& instance,
                                    const Solution& solution);

/// Number of intra-task speed switches of a Vdd solution (segments - 1 per
/// task, non-profile solutions count zero). The paper's Vdd model treats
/// switching as free (following Miermont et al.); this makes the
/// assumption measurable.
[[nodiscard]] std::size_t total_speed_switches(const Solution& solution);

/// Energy with a fixed per-switch cost added — a sensitivity knob for the
/// free-switching assumption. Requires a feasible solution.
[[nodiscard]] double energy_with_switch_cost(const Solution& solution,
                                             double cost_per_switch);

}  // namespace reclaim::core
