// Baselines for the comparative study: what a system does when it does
// not reclaim the schedule's energy.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

/// NO-DVFS: every task at the model's fastest speed (how the mapping was
/// presumably timed in the first place). Feasible iff the deadline is at
/// all achievable; maximal energy.
[[nodiscard]] Solution solve_no_dvfs(const Instance& instance,
                                     const model::EnergyModel& model);

/// UNIFORM: one global speed, the smallest admissible speed whose uniform
/// schedule meets D (critical weight / D, rounded up to a mode for
/// mode-based models). What a whole-platform governor would do.
[[nodiscard]] Solution solve_uniform(const Instance& instance,
                                     const model::EnergyModel& model);

/// PATH-STRETCH: the classical slack-reclamation heuristic. Task i runs at
/// s_i = L_i / D where L_i is the heaviest execution-graph path *through*
/// i. Feasible because every path P satisfies, for each i in P,
/// L_i >= w(P), hence sum_{i in P} w_i D / L_i <= D; and since
/// L_i <= critical weight, s_i never exceeds the UNIFORM speed:
/// E_Continuous <= E_PATH-STRETCH <= E_UNIFORM. Speeds are rounded up to
/// modes for mode-based models.
[[nodiscard]] Solution solve_path_stretch(const Instance& instance,
                                          const model::EnergyModel& model);

}  // namespace reclaim::core
