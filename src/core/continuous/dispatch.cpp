#include "core/continuous/dispatch.hpp"

#include <algorithm>

#include "core/continuous/closed_form.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/continuous/sp_solver.hpp"
#include "core/continuous/tree_solver.hpp"
#include "graph/classify.hpp"
#include "graph/sp_tree.hpp"

namespace reclaim::core {

namespace {

/// True when every positive-weight task runs at least at `floor`.
bool respects_floor(const Instance& instance, const Solution& s, double floor) {
  if (floor <= 0.0) return true;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    if (instance.exec_graph.weight(v) == 0.0) continue;
    if (s.speeds[v] < floor * (1.0 - 1e-12)) return false;
  }
  return true;
}

Solution numeric(const Instance& instance, const model::ContinuousModel& model,
                 double s_min, const ContinuousOptions& options) {
  NumericOptions numeric_options;
  numeric_options.rel_gap = options.rel_gap;
  numeric_options.s_min = s_min;
  return solve_numeric(instance, model, numeric_options);
}

}  // namespace

Solution solve_continuous(const Instance& instance,
                          const model::ContinuousModel& model,
                          const ContinuousOptions& options) {
  const auto& g = instance.exec_graph;
  // The s_crit reduction (DESIGN.md): under P = P_stat + s^alpha the
  // per-task busy cost is convex with minimizer s_crit, so the
  // leakage-aware problem runs the pure-dynamic machinery with the speed
  // floor raised to s_crit (capped at s_max: beyond the cap the cheapest
  // admissible speed is s_max itself).
  const double floor = std::max(
      options.s_min, std::min(instance.power.critical_speed(), model.s_max));
  if (options.force_numeric) return numeric(instance, model, floor, options);

  // Classify inline (same order as graph::classify) rather than calling it:
  // classify would run the SP decomposition and discard the tree, and the
  // kSeriesParallel case below needs it — this way it runs at most once.
  std::optional<graph::SpTree> local_tree;
  const graph::SpTree* sp_tree = nullptr;
  graph::GraphShape shape;
  if (options.shape_hint) {
    shape = *options.shape_hint;
    if (shape == graph::GraphShape::kSeriesParallel) {
      if (options.sp_hint) {
        sp_tree = options.sp_hint.get();
      } else if ((local_tree = graph::sp_decompose(g))) {
        sp_tree = &*local_tree;
      }
    }
  } else if (g.num_nodes() == 0) {
    shape = graph::GraphShape::kEmpty;
  } else if (g.num_nodes() == 1) {
    shape = graph::GraphShape::kSingleTask;
  } else if (graph::is_chain(g)) {
    shape = graph::GraphShape::kChain;
  } else if (graph::is_fork(g)) {
    shape = graph::GraphShape::kFork;
  } else if (graph::is_join(g)) {
    shape = graph::GraphShape::kJoin;
  } else if (graph::is_out_tree(g)) {
    shape = graph::GraphShape::kOutTree;
  } else if (graph::is_in_tree(g)) {
    shape = graph::GraphShape::kInTree;
  } else if ((local_tree = graph::sp_decompose(g))) {
    shape = graph::GraphShape::kSeriesParallel;
    sp_tree = &*local_tree;
  } else {
    shape = graph::GraphShape::kGeneral;
  }

  Solution s;
  bool solved = false;

  switch (shape) {
    case graph::GraphShape::kEmpty:
      s.feasible = true;
      s.energy = 0.0;
      s.method = "trivial-empty";
      return s;
    case graph::GraphShape::kSingleTask:
      s = solve_single(instance, model, floor);
      solved = true;
      break;
    case graph::GraphShape::kChain:
      s = solve_chain(instance, model, floor);
      solved = true;
      break;
    case graph::GraphShape::kFork:
      s = solve_fork(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kJoin:
      s = solve_join(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kOutTree:
    case graph::GraphShape::kInTree:
      s = solve_tree(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kSeriesParallel:
      if (sp_tree != nullptr) {
        // The SP algebra assumes s_max = +inf (Theorem 2); accept its answer
        // only when the unconstrained optimum happens to respect the cap.
        s = solve_sp(instance, *sp_tree);
        const double top = s.speeds.empty()
                               ? 0.0
                               : *std::max_element(s.speeds.begin(),
                                                   s.speeds.end());
        solved = s.feasible && within_speed_cap(top, model.s_max);
      }
      break;
    case graph::GraphShape::kGeneral:
      break;
  }

  if (solved && s.feasible && !respects_floor(instance, s, floor)) {
    solved = false;  // the floor (Theorem 5 relaxation or s_crit) binds
  }
  if (!solved) return numeric(instance, model, floor, options);
  return s;
}

}  // namespace reclaim::core
