#include "core/continuous/dispatch.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/continuous/closed_form.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/continuous/sp_solver.hpp"
#include "core/continuous/tree_solver.hpp"
#include "core/continuous/waterfill.hpp"
#include "graph/classify.hpp"
#include "graph/sp_tree.hpp"
#include "util/arena.hpp"

namespace reclaim::core {

namespace {

/// Copies the caller's shared warm-start speeds into `numeric_options`
/// (using a recycled buffer, so steady-state sweeps allocate nothing)
/// when the size matches the instance; no-op otherwise.
void attach_warm_start(const Instance& instance,
                       const ContinuousOptions& options,
                       NumericOptions& numeric_options) {
  if (!options.warm_start ||
      options.warm_start->size() != instance.exec_graph.num_nodes()) {
    return;
  }
  numeric_options.warm_start = util::Arena::scratch().lease_doubles();
  numeric_options.warm_start.assign(options.warm_start->begin(),
                                    options.warm_start->end());
}

/// Returns per-solve vector buffers leased through attach_warm_start and
/// the effective-bounds helpers to the thread's pool.
void recycle_numeric_buffers(NumericOptions& numeric_options) {
  auto& arena = util::Arena::scratch();
  arena.recycle_doubles(std::move(numeric_options.s_max_per_task));
  arena.recycle_doubles(std::move(numeric_options.s_min_per_task));
  arena.recycle_doubles(std::move(numeric_options.warm_start));
}

/// True when every positive-weight task runs at least at `floor`.
bool respects_floor(const Instance& instance, const Solution& s, double floor) {
  if (floor <= 0.0) return true;
  for (graph::NodeId v = 0; v < instance.exec_graph.num_nodes(); ++v) {
    if (instance.exec_graph.weight(v) == 0.0) continue;
    if (s.speeds[v] < floor * (1.0 - 1e-12)) return false;
  }
  return true;
}

Solution numeric(const Instance& instance, const model::ContinuousModel& model,
                 double s_min, const ContinuousOptions& options) {
  NumericOptions numeric_options;
  numeric_options.rel_gap = options.rel_gap;
  numeric_options.s_min = s_min;
  attach_warm_start(instance, options, numeric_options);
  Solution s = solve_numeric(instance, model, numeric_options);
  recycle_numeric_buffers(numeric_options);
  return s;
}

/// Per-task effective bounds of the s_crit reduction, shared by the
/// heterogeneous route and the exact-leaky route: cap_v folds the model's
/// global cap with the processor cap, and weighted tasks get the floor
/// max(s_min, min(s_crit_v, cap_v)). Zero-weight tasks stay floorless —
/// they run in zero time at no speed, and a nonzero floor could exceed a
/// slow processor's cap and trip the numeric solver's validation. Returns
/// false when the requested s_min exceeds a weighted task's cap (Theorem
/// 5's rounding floor vs a slower processor): the *restricted* relaxation
/// has no admissible speed there, and callers report infeasible rather
/// than throwing, so CONT-ROUND degrades gracefully and an engine batch is
/// never aborted by one capped instance.
bool effective_bounds(const Instance& instance,
                      const model::ContinuousModel& model, double s_min,
                      std::vector<double>& caps, std::vector<double>& floors) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  caps.assign(n, model.s_max);
  floors.assign(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    caps[v] = std::min(model.s_max, instance.cap_of(v));
    if (g.weight(v) == 0.0) continue;
    if (s_min > caps[v]) return false;
    floors[v] = std::max(
        s_min, std::min(instance.power_of(v).critical_speed(), caps[v]));
  }
  return true;
}

/// Heterogeneous route: per-task effective caps (processor cap folded with
/// the model's global one) and s_crit floors threaded into the solvers.
/// Single tasks and single-exponent chains keep their closed forms; every
/// other shape — and every case where a floor or cap binds the serial
/// closed form — runs the numeric barrier solver with per-task bounds
/// (DESIGN.md, "Heterogeneous platforms").
Solution solve_hetero(const Instance& instance,
                      const model::ContinuousModel& model,
                      const ContinuousOptions& options) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();

  auto& arena = util::Arena::scratch();
  std::vector<double> caps = arena.lease_doubles();
  std::vector<double> floors = arena.lease_doubles();
  const auto recycle_bounds = [&] {
    arena.recycle_doubles(std::move(caps));
    arena.recycle_doubles(std::move(floors));
  };
  if (!effective_bounds(instance, model, options.s_min, caps, floors)) {
    recycle_bounds();
    return infeasible_solution("numeric-barrier");
  }

  if (!options.force_numeric) {
    // Only the serial closed forms survive heterogeneity; classifying
    // beyond "single or chain" buys nothing here.
    graph::GraphShape shape = graph::GraphShape::kGeneral;
    if (options.shape_hint) {
      shape = *options.shape_hint;
    } else if (n == 1) {
      shape = graph::GraphShape::kSingleTask;
    } else if (graph::is_chain(g)) {
      shape = graph::GraphShape::kChain;
    }
    if (shape == graph::GraphShape::kSingleTask) {
      Solution s = solve_single_hetero(instance, caps[0], floors[0]);
      recycle_bounds();
      return s;
    }
    if (shape == graph::GraphShape::kChain) {
      if (auto s = solve_chain_hetero(instance, caps, floors)) {
        recycle_bounds();
        return *s;
      }
    }
  }

  NumericOptions numeric_options;
  numeric_options.rel_gap = options.rel_gap;
  numeric_options.s_max_per_task = std::move(caps);
  numeric_options.s_min_per_task = std::move(floors);
  attach_warm_start(instance, options, numeric_options);
  Solution s = solve_numeric(instance, model, numeric_options);
  recycle_numeric_buffers(numeric_options);
  return s;
}

/// True when the s_crit reduction provably attains the true leaky optimum
/// on this instance (DESIGN.md, "When the reduction is exact"), so the
/// exact route can skip its second solve and return the reduction's
/// solution bit-identically:
///   - no weighted task has static power (the floor is 0),
///   - a single task (its own floor and cap apply directly),
///   - a chain whose weighted tasks share one alpha, P_stat and effective
///     cap: once the deadline binds, sum d_v = D makes the leakage term
///     allocation-independent; otherwise every task sits at the shared
///     s_crit (or cap), its per-task global minimum.
/// Mixed-P_stat chains and slack-bearing parallel shapes are exactly the
/// documented not-exact class and return false.
bool reduction_exact_a_priori(const Instance& instance,
                              const model::ContinuousModel& model,
                              const ContinuousOptions& options) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  bool any_static = false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.weight(v) > 0.0 && instance.power_of(v).has_static_power()) {
      any_static = true;
      break;
    }
  }
  if (!any_static) return true;
  if (n <= 1) return true;

  graph::GraphShape shape = graph::GraphShape::kGeneral;
  if (options.shape_hint) {
    shape = *options.shape_hint;
  } else if (graph::is_chain(g)) {
    shape = graph::GraphShape::kChain;
  }
  if (shape != graph::GraphShape::kChain &&
      shape != graph::GraphShape::kSingleTask) {
    return false;
  }

  bool first = true;
  double alpha = 0.0;
  double p_static = 0.0;
  double cap = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.weight(v) == 0.0) continue;
    const auto& power = instance.power_of(v);
    const double task_cap = std::min(model.s_max, instance.cap_of(v));
    if (first) {
      alpha = power.alpha();
      p_static = power.p_static();
      cap = task_cap;
      first = false;
    } else if (power.alpha() != alpha || power.p_static() != p_static ||
               task_cap != cap) {
      return false;
    }
  }
  return true;
}

/// LeakageMode::kExact: solve the reduction, and unless it is provably
/// exact on this instance also run the numeric barrier solver on the true
/// duration-charged objective, adopting its answer only when it clearly
/// beats the reduction. "Clearly" means beyond barrier noise (a multiple
/// of the duality-gap target): instances where the reduction is already
/// optimal — but only detectably so a posteriori, e.g. floors binding
/// everywhere — keep the reduction's solution bit-identically, and the
/// exact route's energy can never exceed the reduction's.
Solution solve_exact_leaky(const Instance& instance,
                           const model::ContinuousModel& model,
                           const ContinuousOptions& options) {
  ContinuousOptions reduction_options = options;
  reduction_options.leakage = LeakageMode::kReduction;
  Solution reduction = solve_continuous(instance, model, reduction_options);
  if (reduction_exact_a_priori(instance, model, options)) return reduction;
  // Both modes share one feasible set (same deadline, caps and floors), so
  // an infeasible reduction settles the exact question too.
  if (!reduction.feasible) return reduction;

  auto& arena = util::Arena::scratch();
  std::vector<double> caps = arena.lease_doubles();
  std::vector<double> floors = arena.lease_doubles();
  if (!effective_bounds(instance, model, options.s_min, caps, floors)) {
    arena.recycle_doubles(std::move(caps));
    arena.recycle_doubles(std::move(floors));
    return reduction;  // unreachable: the reduction reported it infeasible
  }

  const bool chain_shape =
      options.shape_hint ? *options.shape_hint == graph::GraphShape::kChain
                         : graph::is_chain(instance.exec_graph);
  const bool fork_shape =
      !chain_shape &&
      (options.shape_hint ? *options.shape_hint == graph::GraphShape::kFork
                          : graph::is_fork(instance.exec_graph));

  Solution exact;
  if (chain_shape || fork_shape) {
    // Chains and forks have scalar exact solutions (KKT waterfilling on
    // the single coupling constraint: the deadline for a chain, the
    // source's duration for a fork); no second barrier run needed.
    exact = chain_shape ? solve_chain_waterfill(instance, caps, floors)
                        : solve_fork_waterfill(instance, caps, floors);
    arena.recycle_doubles(std::move(caps));
    arena.recycle_doubles(std::move(floors));
  } else {
    NumericOptions numeric_options;
    numeric_options.rel_gap = options.rel_gap;
    numeric_options.exact_leakage = true;
    numeric_options.s_max_per_task = std::move(caps);
    numeric_options.s_min_per_task = std::move(floors);
    attach_warm_start(instance, options, numeric_options);
    exact = solve_numeric(instance, model, numeric_options);
    recycle_numeric_buffers(numeric_options);
  }

  const double switch_tol = std::max(1e-7, 10.0 * options.rel_gap);
  if (exact.feasible && exact.energy < reduction.energy * (1.0 - switch_tol)) {
    return exact;
  }
  return reduction;
}

}  // namespace

Solution solve_continuous(const Instance& instance,
                          const model::ContinuousModel& original_model,
                          const ContinuousOptions& options) {
  if (options.leakage == LeakageMode::kExact) {
    return solve_exact_leaky(instance, original_model, options);
  }
  const auto& g = instance.exec_graph;
  if (!instance.homogeneous_tasks())
    return solve_hetero(instance, original_model, options);

  // Homogeneous platform: fold the (shared) processor cap into the model's
  // global one and run the identical-processor machinery unchanged. With
  // an uncapped platform min(s_max, +inf) == s_max, so pre-platform
  // instances take bit-identical paths.
  const std::size_t proc0 =
      g.num_nodes() == 0 ? 0 : instance.processor_of(0);
  const model::ContinuousModel model{
      std::min(original_model.s_max, instance.platform.cap(proc0))};

  // A requested floor above the (platform-folded) cap leaves no
  // admissible speed for any weighted task: the restricted relaxation is
  // infeasible, same as the heterogeneous route. With no weighted task
  // the floor is vacuous — nothing needs to run at all.
  if (options.s_min > model.s_max) {
    if (critical_weight(g) > 0.0) return infeasible_solution("numeric-barrier");
    Solution trivial;
    trivial.feasible = true;
    trivial.energy = 0.0;
    trivial.method = "numeric-barrier";
    trivial.speeds.assign(g.num_nodes(), 0.0);
    return trivial;
  }

  // The s_crit reduction (DESIGN.md): under P = P_stat + s^alpha the
  // per-task busy cost is convex with minimizer s_crit, so the
  // leakage-aware problem runs the pure-dynamic machinery with the speed
  // floor raised to s_crit (capped at s_max: beyond the cap the cheapest
  // admissible speed is s_max itself).
  const double floor = std::max(
      options.s_min, std::min(instance.power().critical_speed(), model.s_max));
  if (options.force_numeric) return numeric(instance, model, floor, options);

  // Classify inline (same order as graph::classify) rather than calling it:
  // classify would run the SP decomposition and discard the tree, and the
  // kSeriesParallel case below needs it — this way it runs at most once.
  std::optional<graph::SpTree> local_tree;
  const graph::SpTree* sp_tree = nullptr;
  graph::GraphShape shape;
  if (options.shape_hint) {
    shape = *options.shape_hint;
    if (shape == graph::GraphShape::kSeriesParallel) {
      if (options.sp_hint) {
        sp_tree = options.sp_hint.get();
      } else if ((local_tree = graph::sp_decompose(g))) {
        sp_tree = &*local_tree;
      }
    }
  } else if (g.num_nodes() == 0) {
    shape = graph::GraphShape::kEmpty;
  } else if (g.num_nodes() == 1) {
    shape = graph::GraphShape::kSingleTask;
  } else if (graph::is_chain(g)) {
    shape = graph::GraphShape::kChain;
  } else if (graph::is_fork(g)) {
    shape = graph::GraphShape::kFork;
  } else if (graph::is_join(g)) {
    shape = graph::GraphShape::kJoin;
  } else if (graph::is_out_tree(g)) {
    shape = graph::GraphShape::kOutTree;
  } else if (graph::is_in_tree(g)) {
    shape = graph::GraphShape::kInTree;
  } else if ((local_tree = graph::sp_decompose(g))) {
    shape = graph::GraphShape::kSeriesParallel;
    sp_tree = &*local_tree;
  } else {
    shape = graph::GraphShape::kGeneral;
  }

  Solution s;
  bool solved = false;

  switch (shape) {
    case graph::GraphShape::kEmpty:
      s.feasible = true;
      s.energy = 0.0;
      s.method = "trivial-empty";
      return s;
    case graph::GraphShape::kSingleTask:
      s = solve_single(instance, model, floor);
      solved = true;
      break;
    case graph::GraphShape::kChain:
      s = solve_chain(instance, model, floor);
      solved = true;
      break;
    case graph::GraphShape::kFork:
      s = solve_fork(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kJoin:
      s = solve_join(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kOutTree:
    case graph::GraphShape::kInTree:
      s = solve_tree(instance, model);
      solved = true;
      break;
    case graph::GraphShape::kSeriesParallel:
      if (sp_tree != nullptr) {
        // The SP algebra assumes s_max = +inf (Theorem 2); accept its answer
        // only when the unconstrained optimum happens to respect the cap.
        s = solve_sp(instance, *sp_tree);
        const double top = s.speeds.empty()
                               ? 0.0
                               : *std::max_element(s.speeds.begin(),
                                                   s.speeds.end());
        solved = s.feasible && within_speed_cap(top, model.s_max);
      }
      break;
    case graph::GraphShape::kGeneral:
      break;
  }

  if (solved && s.feasible && !respects_floor(instance, s, floor)) {
    solved = false;  // the floor (Theorem 5 relaxation or s_crit) binds
  }
  if (!solved) return numeric(instance, model, floor, options);
  return s;
}

}  // namespace reclaim::core
