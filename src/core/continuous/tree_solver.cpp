#include "core/continuous/tree_solver.hpp"

#include <algorithm>
#include <cmath>

#include "graph/classify.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

Solution solve_out_tree(const Instance& instance,
                        const model::ContinuousModel& model) {
  const auto& g = instance.exec_graph;
  // Tree solving is dispatched only on homogeneous platforms; the l_alpha
  // equivalent-weight fold needs the one shared exponent.
  const double alpha = instance.power().alpha();
  const auto order = graph::topological_order(g);
  util::require(order.has_value(), "tree solver requires a DAG");

  // Bottom-up equivalent weights: weq(v) = w_v + l_alpha(children weqs).
  std::vector<double> weq(g.num_nodes(), 0.0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const graph::NodeId v = *it;
    double sum_pow = 0.0;
    for (graph::NodeId c : g.successors(v)) sum_pow += std::pow(weq[c], alpha);
    const double children = sum_pow > 0.0 ? std::pow(sum_pow, 1.0 / alpha) : 0.0;
    weq[v] = g.weight(v) + children;
  }

  Solution s;
  s.method = "tree";
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;

  // Top-down windows; root window is the full deadline.
  std::vector<double> window(g.num_nodes(), 0.0);
  for (const graph::NodeId root : g.sources()) window[root] = instance.deadline;

  constexpr double kTol = 1e-12;
  for (const graph::NodeId v : *order) {
    if (weq[v] == 0.0) continue;  // nothing left to run below v
    if (window[v] <= 0.0) return infeasible_solution(s.method);

    const double speed = std::min(weq[v] / window[v], model.s_max);
    const double w = g.weight(v);
    double duration = 0.0;
    if (w > 0.0) {
      duration = w / speed;
      if (duration > window[v] * (1.0 + kTol)) return infeasible_solution(s.method);
      s.speeds[v] = speed;
      s.energy += instance.power_of(v).task_energy(w, speed);
    }
    const double remaining = window[v] - duration;
    for (graph::NodeId c : g.successors(v)) window[c] = remaining;
  }
  s.feasible = true;
  return s;
}

}  // namespace

Solution solve_tree(const Instance& instance, const model::ContinuousModel& model) {
  const auto& g = instance.exec_graph;
  if (g.num_nodes() == 1 || graph::is_out_tree(g)) {
    return solve_out_tree(instance, model);
  }
  util::require(graph::is_in_tree(g),
                "solve_tree requires an out-tree or in-tree");
  // Reversal preserves node ids; the platform assignment carries over.
  Instance reversed{g.reversed(), instance.deadline, instance.platform,
                    instance.assignment};
  Solution s = solve_out_tree(reversed, model);
  s.method = "tree";
  return s;
}

}  // namespace reclaim::core
