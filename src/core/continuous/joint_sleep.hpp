// Joint speed + power-down solving: per-gap sleep/idle/crawl decisions as
// solver variables instead of a post-hoc comparison.
//
// Race-to-idle (race_to_idle.hpp) can only scale the crawl uniformly: it
// shrinks idle-charged gaps but can never crawl *below* the s_crit floor
// to keep a gap busy, nor slow one task into the gap it precedes while
// the rest of the schedule stays put. Both moves are profitable exactly
// when a gap branch is cheaper than leakage: stretching a task by dd
// trades (alpha-1) s^alpha - P_stat of busy-energy change against the
// p_idle (or p_sleep) the displaced gap time stops costing, so the
// per-task stationary speeds are
//
//     s*_idle  = ((P_stat - p_idle )/(alpha-1))^(1/alpha)
//     s*_sleep = ((P_stat - p_sleep)/(alpha-1))^(1/alpha)
//
// — genuinely below s_crit = (P_stat/(alpha-1))^(1/alpha) whenever the
// branch price is positive, and "absorb the gap entirely" when the branch
// costs at least as much as leakage (Bampis et al., "speed scaling with
// power down", PAPERS.md).
//
// solve_joint_sleep() anchors on the full race-to-idle result, then runs
// an alternating refine loop over exact whole-platform evaluations
// (busy + sched::idle_energy under the mapping):
//
//   - re-decide gap states given speeds: per-task stretches toward the
//     stationary speeds above (golden-polished), slowing one task into
//     the gap behind it;
//   - re-solve speeds given gap states: whole-processor common-speed
//     moves through the same event-point candidates the exact DP uses
//     (sleep_dp.hpp's optimal_tail_segment), plus a global uniform
//     rescale in both directions.
//
// Every move is accepted only on a strict exact-evaluation improvement,
// and the final answer is accepted only when it strictly beats the race
// anchor — otherwise the anchor is returned bit-identically, so the joint
// route is never worse than race-to-idle by construction (and equals the
// crawl bit-identically when no sleep spec is attached).
#pragma once

#include <cstddef>
#include <vector>

#include "core/analysis.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/problem.hpp"
#include "model/energy_model.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"

namespace reclaim::core {

struct JointSleepOptions {
  /// Options of the race-to-idle anchor solve (crawl options included).
  RaceToIdleOptions race;
  /// Alternating refine rounds (each round: per-task stretches, then
  /// whole-processor common speeds, then a global rescale); the loop exits
  /// early once a full round finds no strict improvement.
  std::size_t rounds = 8;
  /// Golden-section iterations polishing each 1-D move around its
  /// closed-form candidates.
  std::size_t refine_iters = 32;
};

/// Power-down state chosen for one surviving gap of the returned
/// schedule. Gaps the solver crawled across do not survive — they are
/// counted in JointSleepResult::absorbed.
enum class GapState {
  kIdle,
  kSleep,
};

struct GapDecision {
  sched::IdleInterval gap;
  GapState state = GapState::kIdle;
};

struct JointSleepResult {
  /// The chosen schedule; `energy` is busy energy, `method` is
  /// "joint-sleep" only when the refinement strictly beat the race anchor
  /// (otherwise the anchor's solution rides through untouched).
  Solution solution;
  PlatformEnergy race;    ///< platform split of the race-to-idle anchor
  PlatformEnergy chosen;  ///< platform split of the returned schedule
  /// Per-gap decision of the returned schedule: each surviving gap with
  /// its cheaper branch (sleep + wake vs stay idle).
  std::vector<GapDecision> gaps;
  /// Gaps of the anchor schedule that no longer exist — crawled across.
  std::size_t absorbed = 0;
  bool improved = false;   ///< strictly beat the race anchor
  std::size_t rounds = 0;  ///< refine rounds actually run
};

/// Never worse than solve_race_to_idle on the same inputs; bit-identical
/// to it when the instance is infeasible or no sleep spec is attached.
[[nodiscard]] JointSleepResult solve_joint_sleep(
    const Instance& instance, const model::ContinuousModel& model,
    const sched::Mapping& mapping, const JointSleepOptions& options = {});

}  // namespace reclaim::core
