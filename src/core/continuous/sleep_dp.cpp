#include "core/continuous/sleep_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/classify.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stationary busy-end of one gap branch priced at p_branch watts:
/// stretching the segment by dd trades (alpha-1) s^alpha - P_stat of busy
/// cost against p_branch of gap charge, so the optimum runs at
/// s* = ((P_stat - p_branch)/(alpha-1))^(1/alpha) — below s_crit whenever
/// the branch price is positive. When the branch is at least as expensive
/// as leakage the trade never stops paying: absorb the gap entirely
/// (finish as late as allowed).
double branch_stationary_finish(double work, double t0, double latest,
                                const model::PowerModel& power,
                                double p_branch) {
  const double surplus = power.p_static() - p_branch;
  if (surplus <= 0.0) return latest;
  const double s_star =
      std::pow(surplus / (power.alpha() - 1.0), 1.0 / power.alpha());
  return t0 + work / s_star;
}

}  // namespace

TailOptimum optimal_tail_segment(double work, double t0, double t_max,
                                 double window, const model::PowerModel& power,
                                 double cap) {
  TailOptimum best;
  const model::SleepSpec& sleep = power.sleep();
  const double hi = std::min(t_max, window);
  if (work <= 0.0) {
    // Nothing to run: the segment is the gap itself.
    if (!within_deadline(t0, hi)) return best;
    best.feasible = true;
    best.finish = t0;
    best.cost = sleep.gap_energy(std::max(0.0, window - t0));
    return best;
  }
  double lo = t0 + (std::isfinite(cap) ? work / cap : 0.0);
  if (!within_deadline(lo, hi)) return best;  // cap too slow for the range
  lo = std::min(lo, hi);

  // The objective phi(T) = window_energy(work, T - t0) + gap_energy(window
  // - T) is strictly convex on each gap branch, so its minimum over
  // [lo, hi] is a clamped branch-stationary point, the break-even kink, or
  // an endpoint — a finite candidate set evaluated exactly.
  double candidates[5];
  std::size_t count = 0;
  const auto push = [&](double t) {
    candidates[count++] = std::clamp(t, lo, hi);
  };
  push(hi);
  push(lo);
  push(branch_stationary_finish(work, t0, hi, power, sleep.p_idle));
  push(branch_stationary_finish(work, t0, hi, power, sleep.p_sleep));
  const double kink = sleep.break_even();
  if (std::isfinite(kink)) push(window - kink);

  for (std::size_t i = 0; i < count; ++i) {
    const double finish = candidates[i];
    const double duration = finish - t0;
    if (duration <= 0.0) continue;  // zero-length execution of real work
    const double cost = power.window_energy(work, duration) +
                        sleep.gap_energy(std::max(0.0, window - finish));
    if (!best.feasible || cost < best.cost) {
      best.feasible = true;
      best.finish = finish;
      best.cost = cost;
    }
  }
  return best;
}

SleepDpResult solve_sleep_dp(const Instance& instance,
                             const model::ContinuousModel& model,
                             const SleepDpOptions& options) {
  util::require(instance.platform.size() == 1,
                "solve_sleep_dp: exactly one processor required");
  const graph::GraphShape shape = graph::classify(instance.exec_graph);
  util::require(shape == graph::GraphShape::kChain ||
                    shape == graph::GraphShape::kSingleTask ||
                    shape == graph::GraphShape::kEmpty,
                "solve_sleep_dp: the execution order must be a chain");

  const auto order_opt = graph::topological_order(instance.exec_graph);
  util::require(order_opt.has_value(), "solve_sleep_dp: cyclic graph");
  const std::vector<graph::NodeId>& order = *order_opt;
  const std::size_t n = order.size();
  const model::PowerModel& power = instance.platform.power(0);
  const model::SleepSpec& sleep = power.sleep();
  const double window = instance.deadline;
  const double cap = std::min(model.s_max, instance.platform.cap(0));

  std::vector<double> dl(n, window);
  if (!options.task_deadlines.empty()) {
    util::require(options.task_deadlines.size() == n,
                  "solve_sleep_dp: one task deadline per task required");
    dl = options.task_deadlines;
    for (std::size_t i = 0; i < n; ++i) {
      util::require(dl[i] > 0.0 && dl[i] <= window,
                    "solve_sleep_dp: task deadlines must lie in (0, D]");
      util::require(i == 0 || dl[i - 1] <= dl[i],
                    "solve_sleep_dp: task deadlines must be agreeable "
                    "(nondecreasing along the chain)");
    }
  }

  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + instance.exec_graph.weight(order[i]);
  }

  SleepDpResult result;
  result.solution = infeasible_solution("sleep-dp");
  result.chosen = {kInf, 0.0};

  // F[i]: cheapest busy energy of tasks 0..i-1 finishing *exactly* at
  // dl[i-1] (a binding prefix), built from constant-speed blocks between
  // consecutive bindings. F[0] = 0 at time 0.
  std::vector<double> F(n + 1, kInf);
  std::vector<std::size_t> parent(n + 1, 0);
  std::vector<double> block_speed(n + 1, 0.0);
  F[0] = 0.0;
  std::size_t transitions = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double end = dl[i - 1];
    for (std::size_t j = 0; j < i; ++j) {
      if (!(F[j] < kInf)) continue;
      const double work = prefix[i] - prefix[j];
      if (work <= 0.0) continue;  // only real work can pin a binding
      const double t0 = j == 0 ? 0.0 : dl[j - 1];
      const double span = end - t0;
      if (span <= 0.0) continue;
      const double speed = work / span;
      if (!within_speed_cap(speed, cap)) continue;
      ++transitions;
      bool interior_ok = true;
      for (std::size_t k = j; k + 1 < i; ++k) {
        const double done = prefix[k + 1] - prefix[j];
        if (done <= 0.0) continue;
        if (!within_deadline(t0 + done / speed, dl[k])) {
          interior_ok = false;
          break;
        }
      }
      if (!interior_ok) continue;
      const double cost = F[j] + power.task_energy(work, speed);
      if (cost < F[i]) {
        F[i] = cost;
        parent[i] = j;
        block_speed[i] = speed;
      }
    }
  }

  // Scan the free tail after the last binding prefix: tasks j..n-1 run at
  // one speed from t0, finishing at the event-point optimum T, then the
  // single consolidated gap [T, D] is charged.
  double best_total = kInf;
  std::size_t best_j = 0;
  double best_finish = 0.0;
  double best_tail_speed = 0.0;
  bool found = false;
  for (std::size_t j = 0; j <= n; ++j) {
    if (!(F[j] < kInf)) continue;
    const double t0 = j == 0 ? 0.0 : dl[j - 1];
    const double tail_work = prefix[n] - prefix[j];
    double total = kInf;
    double finish = t0;
    double tail_speed = 0.0;
    if (tail_work <= 0.0) {
      total = F[j] + sleep.gap_energy(std::max(0.0, window - t0));
    } else {
      double t_max = window;
      for (std::size_t k = j; k < n; ++k) {
        const double done = prefix[k + 1] - prefix[j];
        if (done <= 0.0) continue;
        t_max = std::min(t_max, t0 + tail_work * (dl[k] - t0) / done);
      }
      const TailOptimum tail =
          optimal_tail_segment(tail_work, t0, t_max, window, power, cap);
      if (!tail.feasible) continue;
      total = F[j] + tail.cost;
      finish = tail.finish;
      tail_speed = tail_work / (tail.finish - t0);
    }
    if (!found || total < best_total) {
      found = true;
      best_total = total;
      best_j = j;
      best_finish = finish;
      best_tail_speed = tail_speed;
    }
  }
  if (!found) {
    result.solution.iterations = transitions;
    return result;  // infeasible even at the cap
  }

  // Reconstruct per-task speeds: the tail block, then the binding blocks
  // back to the start. Zero-weight tasks keep speed 0 by convention.
  std::vector<double> speeds(instance.exec_graph.num_nodes(), 0.0);
  std::size_t blocks = 0;
  const auto assign_block = [&](std::size_t lo_task, std::size_t hi_task,
                                double speed) {
    bool any = false;
    for (std::size_t k = lo_task; k < hi_task; ++k) {
      if (instance.exec_graph.weight(order[k]) == 0.0) continue;
      speeds[order[k]] = speed;
      any = true;
    }
    if (any) ++blocks;
  };
  assign_block(best_j, n, best_tail_speed);
  for (std::size_t i = best_j; i > 0; i = parent[i]) {
    assign_block(parent[i], i, block_speed[i]);
  }

  result.solution = speeds_solution(instance, speeds, "sleep-dp");
  result.solution.iterations = transitions;
  result.blocks = blocks;
  result.busy_end = best_finish;
  result.chosen.busy = result.solution.energy;
  result.chosen.idle = sleep.gap_energy(std::max(0.0, window - best_finish));
  return result;
}

}  // namespace reclaim::core
