#include "core/continuous/closed_form.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/classify.hpp"
#include "util/error.hpp"

namespace reclaim::core {

using util::require;

namespace {

Solution constant_speed_solution(const Instance& instance, double speed,
                                 std::string method) {
  return speeds_solution(
      instance,
      std::vector<double>(instance.exec_graph.num_nodes(), speed),
      std::move(method));
}

}  // namespace

Solution solve_single(const Instance& instance, const model::ContinuousModel& model,
                      double s_min) {
  require(instance.exec_graph.num_nodes() == 1, "solve_single requires one task");
  const double w = instance.exec_graph.weight(0);
  // Deadline-tight instances may compute w/D a few ulps past s_max; accept
  // within the shared tolerance and clamp to the cap.
  const double speed = std::max(w / instance.deadline, s_min);
  if (!within_speed_cap(speed, model.s_max))
    return infeasible_solution("closed-form-single");
  return constant_speed_solution(instance, std::min(speed, model.s_max),
                                 "closed-form-single");
}

Solution solve_chain(const Instance& instance, const model::ContinuousModel& model,
                     double s_min) {
  const auto& g = instance.exec_graph;
  require(g.num_nodes() == 1 || graph::is_chain(g),
          "solve_chain requires a chain graph");
  // Clamping the common speed up to the floor stays optimal: serial tasks
  // share one speed, and the per-task cost is non-increasing down to the
  // floor (for an s_crit floor, non-increasing down to s_crit).
  const double speed = std::max(g.total_weight() / instance.deadline, s_min);
  if (!within_speed_cap(speed, model.s_max))
    return infeasible_solution("closed-form-chain");
  return constant_speed_solution(instance, std::min(speed, model.s_max),
                                 "closed-form-chain");
}

Solution solve_fork(const Instance& instance, const model::ContinuousModel& model) {
  const auto& g = instance.exec_graph;
  require(graph::is_fork(g), "solve_fork requires a fork graph");
  const graph::NodeId root = g.sources().front();
  // Fork/join closed forms are dispatched only on homogeneous platforms;
  // the l_alpha composition below needs the one shared exponent.
  const double alpha = instance.power().alpha();
  const double d = instance.deadline;
  const double w0 = g.weight(root);

  // l = (sum of leaf weights^alpha)^(1/alpha) — the parallel equivalent
  // weight of the leaves.
  double sum_pow = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == root) continue;
    sum_pow += std::pow(g.weight(v), alpha);
  }
  const double l = sum_pow > 0.0 ? std::pow(sum_pow, 1.0 / alpha) : 0.0;

  Solution s;
  s.method = "closed-form-fork";
  s.speeds.assign(g.num_nodes(), 0.0);

  const double s0_unconstrained = (l + w0) / d;
  double s0;
  double leaf_window;  // window the leaves share
  if (s0_unconstrained <= model.s_max) {
    s0 = s0_unconstrained;
    // Unsaturated: leaves run at s0 * w_i / l, i.e. in a shared window of
    // length l / s0.
    leaf_window = l > 0.0 ? l / s0 : 0.0;
  } else {
    // Theorem 1's saturated branch: the source is pinned at s_max.
    s0 = model.s_max;
    leaf_window = d - w0 / model.s_max;
    if (l > 0.0 && leaf_window <= 0.0) return infeasible_solution(s.method);
  }

  s.energy = 0.0;
  if (w0 > 0.0) {
    if (!within_speed_cap(s0, model.s_max)) return infeasible_solution(s.method);
    s0 = std::min(s0, model.s_max);
    s.speeds[root] = s0;
    s.energy += instance.power_of(root).task_energy(w0, s0);
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == root) continue;
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double sv = w / leaf_window;
    if (!within_speed_cap(sv, model.s_max)) return infeasible_solution(s.method);
    s.speeds[v] = std::min(sv, model.s_max);
    s.energy += instance.power_of(v).task_energy(w, s.speeds[v]);
  }
  s.feasible = true;
  return s;
}

Solution solve_join(const Instance& instance, const model::ContinuousModel& model) {
  require(graph::is_join(instance.exec_graph), "solve_join requires a join graph");
  // Equation (1) is symmetric under time reversal, so the join optimum is
  // the fork optimum of the reversed graph with identical speeds. Reversal
  // preserves node ids, so the platform assignment carries over verbatim.
  Instance reversed{instance.exec_graph.reversed(), instance.deadline,
                    instance.platform, instance.assignment};
  Solution s = solve_fork(reversed, model);
  s.method = "closed-form-join";
  return s;
}

Solution solve_single_hetero(const Instance& instance, double cap,
                             double floor) {
  require(instance.exec_graph.num_nodes() == 1,
          "solve_single_hetero requires one task");
  const double w = instance.exec_graph.weight(0);
  const double speed = std::max(w / instance.deadline, floor);
  if (!within_speed_cap(speed, cap))
    return infeasible_solution("closed-form-single");
  return constant_speed_solution(instance, std::min(speed, cap),
                                 "closed-form-single");
}

std::optional<Solution> solve_chain_hetero(const Instance& instance,
                                           const std::vector<double>& caps,
                                           const std::vector<double>& floors) {
  const auto& g = instance.exec_graph;
  require(g.num_nodes() == 1 || graph::is_chain(g),
          "solve_chain_hetero requires a chain graph");
  require(caps.size() == g.num_nodes() && floors.size() == g.num_nodes(),
          "one cap and floor per task required");

  // One shared dynamic exponent across the weighted tasks is what makes
  // the equal-speed exchange argument go through for the *dynamic*
  // objective (the reduction's target — see the header note on mixed
  // P_stat for where that falls short of the true leaky optimum).
  double alpha = 0.0;
  double max_floor = 0.0;
  double min_cap = std::numeric_limits<double>::infinity();
  bool any_weighted = false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    const double a = instance.power_of(v).alpha();
    if (!any_weighted) {
      alpha = a;
      any_weighted = true;
    } else if (a != alpha) {
      return std::nullopt;  // mixed exponents: equal speed is not optimal
    }
    max_floor = std::max(max_floor, floors[v]);
    min_cap = std::min(min_cap, caps[v]);
  }

  const double common = g.total_weight() / instance.deadline;
  // A binding floor means tasks should sit at their *own* floors, not a
  // clamped common speed; a binding cap splits the chain into capped and
  // slower segments. Both are the numeric solver's job.
  if (any_weighted && common < max_floor) return std::nullopt;
  if (!within_speed_cap(common, min_cap)) return std::nullopt;

  Solution s;
  s.method = "closed-form-chain";
  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    s.speeds[v] = std::min(common, caps[v]);  // shave fp slack off the cap
    s.energy += instance.power_of(v).task_energy(w, s.speeds[v]);
  }
  return s;
}

}  // namespace reclaim::core
