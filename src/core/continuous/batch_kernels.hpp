// Structure-of-arrays kernels for the closed-form continuous families.
//
// Sweep workloads (Pareto curves, parameter grids, a daemon's steady
// state) hand the engine thousands of instances that share one topology
// and power model and differ only in task weights W and deadline D. The
// scalar path pays per-instance dispatch for each of them: topology
// classification, dispatch-cache and memo lookups, option plumbing, and
// a handful of heap allocations — all to reach a closed form that is a
// few multiplies. These kernels strip that overhead: the engine plans a
// *run* once (plan_kernel on the head instance, kernel_run_compatible to
// extend it) and then solves the whole run in one pass over the
// instances with no per-instance dispatch, no scratch allocation, and no
// cache traffic.
//
// Bit-identity contract: for every instance a kernel solves, the result
// (feasible flag, energy, speeds, method string, iteration count) is
// bit-identical to what the scalar path — engine dispatch ->
// solve_continuous -> closed form -> speeds_solution — would produce.
// The kernels guarantee this by replicating the scalar formulas with the
// same operations in the same order (the same max/min clamps, the same
// within_speed_cap checks, pow and summation order, and the same
// node-id-order energy accumulation); tests/test_batch_kernels.cpp
// fuzzes the equivalence. An instance a kernel cannot finish
// bit-identically (a fork whose closed form violates the s_crit floor
// and must fall back to the barrier solver) is left untouched — default
// Solution with an empty method — and the engine re-solves it through
// the scalar path.
//
// Eligibility (plan_kernel) mirrors the scalar routing exactly:
//   - Continuous energy model, positive deadline, homogeneous tasks
//     (one shared power model and processor cap).
//   - Shape single / chain / fork by the same structural predicates the
//     dispatcher uses (and in its classification order).
//   - LeakageMode::kExact only where the s_crit reduction is provably
//     exact a priori (always for single/chain under a homogeneous model;
//     forks only without static power) — everywhere else the exact route
//     runs a barrier pass and stays scalar.
#pragma once

#include <cstddef>
#include <optional>

#include "core/problem.hpp"
#include "core/solve.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

enum class KernelFamily { kSingle, kChain, kFork };

/// Shared per-run constants, derived once from the run's head instance:
/// everything the closed form needs besides the per-instance W and D.
struct KernelPlan {
  KernelFamily family = KernelFamily::kSingle;
  /// Effective speed cap: the model's global s_max folded with the
  /// (shared) processor cap, exactly as solve_continuous folds it.
  double s_max = 0.0;
  /// Effective speed floor max(s_min, min(s_crit, s_max)) — the s_crit
  /// reduction's clamp, shared by every task of a homogeneous instance.
  double floor = 0.0;
  /// Fork only: the root node and the shared dynamic exponent.
  graph::NodeId root = 0;
  double alpha = 0.0;
};

/// Returns the kernel plan when `instance` under `model` and `options`
/// would take a batchable closed-form route through solve_continuous;
/// std::nullopt otherwise. Pure structural/model predicates — never
/// touches engine caches.
[[nodiscard]] std::optional<KernelPlan> plan_kernel(
    const Instance& instance, const model::EnergyModel& model,
    const SolveOptions& options);

/// True when `other` can share `head`'s plan: positive deadline, the
/// same topology (node-for-node successor lists), homogeneous tasks
/// under the same power model and processor cap. Weights and deadlines
/// are free to differ — that is the batchable axis.
[[nodiscard]] bool kernel_run_compatible(const Instance& head,
                                         const Instance& other);

/// Solves `count` instances of one run in a single pass under the shared
/// plan, writing out[i] for instances[i]. Results are bit-identical to
/// the scalar path; an instance the kernel must hand back (fork floor
/// violation) leaves out[i] default-constructed with an empty method —
/// the caller re-solves those scalar.
void solve_kernel_run(const KernelPlan& plan,
                      const Instance* const* instances, std::size_t count,
                      Solution* out);

}  // namespace reclaim::core
