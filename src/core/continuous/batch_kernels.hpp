// Structure-of-arrays kernels for the closed-form continuous families.
//
// Sweep workloads (Pareto curves, parameter grids, a daemon's steady
// state) hand the engine thousands of instances that share one topology
// and power model and differ only in task weights W and deadline D. The
// scalar path pays per-instance dispatch for each of them: topology
// classification, dispatch-cache and memo lookups, option plumbing, and
// a handful of heap allocations — all to reach a closed form that is a
// few multiplies. These kernels strip that overhead: the engine plans a
// *run* once (plan_kernel on the head instance, kernel_run_compatible to
// extend it) and then solves the whole run in one pass over the
// instances with no per-instance dispatch, no scratch allocation, and no
// cache traffic.
//
// Bit-identity contract: for every instance a kernel solves, the result
// (feasible flag, energy, speeds, method string, iteration count) is
// bit-identical to what the scalar path — engine dispatch ->
// solve_continuous -> closed form / tree / SP solver -> speeds_solution —
// would produce. The kernels guarantee this by replicating the scalar
// formulas with the same operations in the same order (the same max/min
// clamps, the same within_speed_cap checks, pow and summation order, and
// the same energy accumulation order: node-id order for the constant-
// speed forms, topological order for trees, decomposition-DFS order for
// series-parallel graphs); tests/test_batch_kernels.cpp fuzzes the
// equivalence. An instance a kernel cannot finish bit-identically (a
// closed form that violates the s_crit floor or the SP speed cap and
// must fall back to the barrier solver) is left untouched — default
// Solution with an empty method — and the engine re-solves it through
// the scalar path.
//
// Eligibility (plan_kernel) mirrors the scalar routing exactly:
//   - Continuous energy model, positive deadline.
//   - Homogeneous tasks (one shared power model and processor cap) for
//     every family; additionally, *heterogeneous* single-task and chain
//     instances whose task slots share one dynamic exponent plan as
//     hetero runs replicating the hetero closed forms (per-slot caps and
//     s_crit floors — big.LITTLE sweeps). Weights and deadline stay the
//     free axes; the per-slot platform is part of the run signature.
//   - Shape single / chain / fork / out-/in-tree / series-parallel by the
//     same structural predicates the dispatcher uses (and in its
//     classification order — joins stay scalar: they are in-trees
//     structurally but route to solve_join).
//   - LeakageMode::kExact only where the s_crit reduction is provably
//     exact a priori (always for single/chain under a homogeneous model;
//     forks/trees/SP only without static power) — everywhere else the
//     exact route runs a waterfill or barrier pass and stays scalar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "core/solve.hpp"
#include "graph/classify.hpp"
#include "graph/sp_tree.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

enum class KernelFamily { kSingle, kChain, kFork, kTree, kSp };

/// Number of kernel families (per-family stats counters index by family).
inline constexpr std::size_t kKernelFamilies = 5;

/// Flattened, recursion-free evaluation order for the tree / SP solvers —
/// everything about the *topology* that the scalar solvers recompute per
/// instance (topological order, the SP decomposition's DFS orders). Built
/// once per run by plan_kernel, or once per *topology* by the engine's
/// shape cache (ContinuousOptions::sp_hint's sibling), then shared by
/// every instance of the shape. Weight- and model-dependent quantities
/// (equivalent weights, windows, the exponent) stay out: they live in the
/// KernelPlan or in per-instance scratch.
struct CompositionPlan {
  // --- tree families (out- and in-trees) -------------------------------
  /// The evaluation graph is the original adjacency for out-trees and the
  /// reversed one for in-trees (node ids preserved) — exactly the graph
  /// solve_tree hands to its out-tree core.
  bool reversed = false;
  /// Topological order of the evaluation graph (Kahn, smallest-id-first —
  /// the same canonical order graph::topological_order returns).
  std::vector<graph::NodeId> order;
  /// CSR successor lists of the evaluation graph: children of v are
  /// child[child_offset[v] .. child_offset[v + 1]), in adjacency order.
  std::vector<std::uint32_t> child_offset;
  std::vector<graph::NodeId> child;
  /// Sources of the evaluation graph (window = deadline roots).
  std::vector<graph::NodeId> roots;

  // --- series-parallel -------------------------------------------------
  /// The decomposition tree (shared with ContinuousOptions::sp_hint when
  /// the engine cached it) plus recursion-free traversal orders
  /// replicating the solver's DFS: post_order visits children before
  /// parents (the equivalent-weight fold), pre_order parents before
  /// children with siblings in child order (the window assignment, which
  /// fixes the energy accumulation order at the leaves).
  std::shared_ptr<const graph::SpTree> sp_tree;
  std::vector<std::uint32_t> post_order;
  std::vector<std::uint32_t> pre_order;
  /// Parent tree-node of each tree node (the root maps to itself).
  std::vector<std::uint32_t> parent;
};

/// Flattens the topological order and adjacency of an (out- or in-) tree
/// graph into a CompositionPlan. For in-trees the plan is built on the
/// reversed graph, matching solve_tree's reversal (node ids preserved).
[[nodiscard]] std::shared_ptr<const CompositionPlan> build_tree_plan(
    const graph::Digraph& g, bool in_tree);

/// Flattens an SP decomposition's recursive traversals into a
/// CompositionPlan (takes shared ownership of the tree).
[[nodiscard]] std::shared_ptr<const CompositionPlan> build_sp_plan(
    std::shared_ptr<const graph::SpTree> tree);

/// Shared per-run constants, derived once from the run's head instance:
/// everything the closed form needs besides the per-instance W and D.
struct KernelPlan {
  KernelFamily family = KernelFamily::kSingle;
  /// Effective speed cap: the model's global s_max folded with the
  /// (shared) processor cap, exactly as solve_continuous folds it.
  double s_max = 0.0;
  /// Effective speed floor max(s_min, min(s_crit, s_max)) — the s_crit
  /// reduction's clamp, shared by every task of a homogeneous instance.
  double floor = 0.0;
  /// Fork only: the root node.
  graph::NodeId root = 0;
  /// Fork/tree/SP: the shared dynamic exponent and its precomputed
  /// reciprocal for the l_alpha folds (pow(sum, inv_alpha) — the same
  /// 1/alpha double the scalar solvers compute).
  double alpha = 0.0;
  double inv_alpha = 0.0;
  /// Tree/SP: the flattened evaluation order (see CompositionPlan).
  std::shared_ptr<const CompositionPlan> comp;
  /// Heterogeneous runs (single/chain slots sharing one exponent):
  /// per-slot effective caps min(model cap, processor cap) and the floor
  /// a *weighted* task in the slot would get (zero-weight tasks stay
  /// floorless per instance — exactly dispatch's effective_bounds).
  bool hetero = false;
  double s_min = 0.0;  ///< requested floor (per-instance cap check)
  std::vector<double> caps;
  std::vector<double> floors;
};

/// Pre-computed structural facts about the head instance's topology, as
/// cached by the engine's dispatch cache: the classification, the SP
/// decomposition, and the flattened composition plan. All optional —
/// plan_kernel recomputes whatever is missing (and the hints must belong
/// to this very topology when present).
struct KernelPlanHints {
  std::optional<graph::GraphShape> shape;
  std::shared_ptr<const graph::SpTree> sp_tree;
  std::shared_ptr<const CompositionPlan> comp;
};

/// Returns the kernel plan when `instance` under `model` and `options`
/// would take a batchable closed-form route through solve_continuous;
/// std::nullopt otherwise. Pure structural/model predicates — never
/// touches engine caches (the engine passes its cached analysis in via
/// `hints` instead).
[[nodiscard]] std::optional<KernelPlan> plan_kernel(
    const Instance& instance, const model::EnergyModel& model,
    const SolveOptions& options, const KernelPlanHints& hints = {});

/// True when `other` can share `head`'s plan: positive deadline, the
/// same topology (node-for-node successor lists), and the same per-slot
/// power model and processor cap (for homogeneous heads this degenerates
/// to the shared model/cap check). Weights and deadlines are free to
/// differ — that is the batchable axis.
[[nodiscard]] bool kernel_run_compatible(const Instance& head,
                                         const Instance& other);

/// Solves `count` instances of one run in a single pass under the shared
/// plan, writing out[i] for instances[i]. Results are bit-identical to
/// the scalar path; an instance the kernel must hand back (floor or SP
/// cap violation, hetero chain off the closed form) leaves out[i]
/// default-constructed with an empty method — the caller re-solves those
/// scalar.
void solve_kernel_run(const KernelPlan& plan,
                      const Instance* const* instances, std::size_t count,
                      Solution* out);

}  // namespace reclaim::core
