// Race-to-idle vs crawl-to-deadline under a power-down model.
//
// The s_crit-floored continuous solver ("crawl") minimizes *busy* energy;
// with a sleep spec attached the platform also pays for idle time, and
// running faster than the crawl can pay off: it shrinks the idle-charged
// interior gaps of a multi-processor schedule and lengthens the tail gaps
// into sleepable intervals. At a floor-binding crawl the busy cost is flat
// to first order in a uniform speed-up (that is what s_crit means), while
// the interior-gap charge drops at first order — so whenever the crawl
// leaves idle-charged interior gaps, a slightly faster schedule is
// strictly cheaper (DESIGN.md, "Race-to-idle vs crawl-to-deadline").
//
// solve_race_to_idle() runs the crawl, then searches uniform speed-up
// factors k >= 1 (a log-spaced grid plus golden-section refinement) for
// the scaling minimizing whole-platform energy, and returns the cheaper
// schedule. Scaling all speeds by k scales every start/finish time by 1/k,
// so precedence feasibility is preserved by construction.
#pragma once

#include "core/analysis.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/problem.hpp"
#include "model/energy_model.hpp"
#include "sched/mapping.hpp"

namespace reclaim::core {

struct RaceToIdleOptions {
  /// Options forwarded to the crawl solve (solve_continuous).
  ContinuousOptions continuous;
  /// Platform accounting window; <= 0 means the instance deadline.
  double window = 0.0;
  /// Log-spaced speed-up factors probed between 1 and the cap ratio.
  std::size_t grid = 48;
  /// Golden-section iterations refining the best grid bracket.
  std::size_t refine_iters = 48;
};

struct RaceToIdleResult {
  /// The cheaper schedule by whole-platform energy. Its `energy` field is
  /// the busy energy (the same semantics every solver reports); the
  /// platform split lives in `chosen` below.
  Solution solution;
  PlatformEnergy crawl;   ///< platform split of the crawl schedule
  PlatformEnergy chosen;  ///< platform split of the returned schedule
  double speedup = 1.0;   ///< uniform factor applied to the crawl speeds
  bool raced = false;     ///< true when speedup > 1 strictly won
};

/// Solves the instance with the s_crit-floored continuous solver, then
/// races: scales all crawl speeds by a common factor k >= 1, clamping
/// each task at its own cap (the model's global s_max folded with its
/// processor's limit), and picks the k minimizing busy + idle energy over
/// the window under `mapping`, with idle gaps charged under each
/// processor's own sleep spec. Cap-pinned tasks simply stop speeding up
/// while the rest keep racing — a big.LITTLE platform's floor-pinned
/// little cores never freeze the big cores' race; the search only ends
/// where *every* task is pinned (or racing provably cannot pay). With no
/// sleep spec anywhere on the platform (or an infeasible instance) the
/// crawl is returned unchanged — bit-identical to solve_continuous.
[[nodiscard]] RaceToIdleResult solve_race_to_idle(
    const Instance& instance, const model::ContinuousModel& model,
    const sched::Mapping& mapping, const RaceToIdleOptions& options = {});

}  // namespace reclaim::core
