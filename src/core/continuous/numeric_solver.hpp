// Continuous solver for arbitrary execution DAGs (the paper's geometric
// programming observation, Section 2.1).
//
// In the variables (t_i, d_i) — completion time and duration — MinEnergy is
//
//   minimize  sum_{w_i > 0} w_i^alpha / d_i^(alpha-1)
//   s.t.      t_i + d_j <= t_j            for each execution edge (i, j)
//             d_i <= t_i,  t_i <= D       for each task
//             w_i/s_max <= d_i (<= w_i/s_min when a floor is requested)
//
// which is smooth convex over a polyhedron; opt::minimize_with_barrier
// solves it to a prescribed duality gap. The optional speed floor s_min is
// not part of the paper's Continuous model ([0, s_max]); it exists for the
// Theorem 5 rounding algorithm, whose analysis needs the continuous
// relaxation restricted to the mode range [s_1, s_m].
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct NumericOptions {
  double rel_gap = 1e-9;   ///< duality-gap target relative to |objective|
  double s_min = 0.0;      ///< optional speed floor (0 = the paper's model)

  /// Optional per-task speed caps (empty = none). Extension beyond the
  /// paper's identical-processor platform: when the frozen mapping places
  /// tasks on heterogeneous processors, task i may not exceed
  /// min(s_max, s_max_per_task[i]). Mutually exclusive with s_min > 0
  /// (Theorem 5's restricted relaxation never needs both).
  std::vector<double> s_max_per_task;

  /// Optional per-task speed floors (empty = none): the s_crit floors of a
  /// heterogeneous platform, one per task, each in [0, cap]. Only valid
  /// together with s_max_per_task (the heterogeneous route always supplies
  /// both) and still mutually exclusive with the scalar s_min. A floor
  /// within tolerance of its cap pins the task: the constraint is dropped
  /// and the extracted speed clamped instead.
  std::vector<double> s_min_per_task;

  /// Charge static power on task durations inside the objective, turning
  /// it into the true platform busy energy
  ///
  ///   sum_{w_v > 0} (P_stat_v * d_v + w_v^alpha_v / d_v^(alpha_v-1))
  ///
  /// (LeakageMode::kExact; DESIGN.md, "Exact leaky solver"). Each linear
  /// term keeps the objective smooth convex, so the barrier machinery is
  /// unchanged. Any s_crit floors remain valid cuts: the per-task busy
  /// cost increases below s_crit while slowing down only tightens the
  /// scheduling constraints, so no optimum runs under the floor. With
  /// every P_stat zero the added terms are exactly 0.0 — the pure-dynamic
  /// path stays bit-identical.
  bool exact_leakage = false;

  /// Optional warm-start speeds (one per task; empty = cold start), e.g. a
  /// neighbor solution from a parameter sweep. The solver derives a start
  /// point from them — durations nudged strictly inside every constraint
  /// band so a deadline-tight donor still yields a strictly feasible
  /// point — and runs the barrier from there. Acceptance is guarded: a
  /// warm result is kept only when its objective is no worse than the
  /// cold start point's; otherwise (or when no strictly feasible warm
  /// point can be built) the solver falls back to the cold path and the
  /// result is bit-identical to a run without warm_start. Results are
  /// therefore deterministic given (instance, options) and never worse
  /// than cold beyond the duality-gap target.
  std::vector<double> warm_start;
};

/// Solves any acyclic instance; detects infeasibility exactly (deadline
/// below the critical path at s_max). The boundary case D == D_min returns
/// the all-s_max schedule.
[[nodiscard]] Solution solve_numeric(const Instance& instance,
                                     const model::ContinuousModel& model,
                                     const NumericOptions& options = {});

}  // namespace reclaim::core
