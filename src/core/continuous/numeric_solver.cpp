#include "core/continuous/numeric_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "graph/topo.hpp"
#include "opt/barrier.hpp"
#include "sched/schedule.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// sum w_i^alpha_i / d_i^(alpha_i-1) over positive-weight tasks; the
/// duration of task i lives at variable index n + i, and alpha_i is the
/// dynamic exponent of the processor executing task i (one shared value on
/// a homogeneous platform). Each term is convex in d_i on d_i > 0, so the
/// separable sum stays a valid barrier objective under heterogeneous
/// exponents. By default the *dynamic* objective even under a
/// leakage-aware power model: leakage enters through the s_crit speed
/// floors plus energy bookkeeping (the s_crit reduction, DESIGN.md),
/// keeping all solver families consistent. With exact_leakage the linear
/// duration charge P_stat_i * d_i joins the objective, making it the true
/// busy energy (statics_ holds zeros otherwise, so the reduction path adds
/// exactly 0.0 everywhere and stays bit-identical).
class EnergyObjective final : public opt::ConvexObjective {
 public:
  /// Coefficient arrays live in the caller's arena scope (no heap
  /// traffic per solve); the objective must not outlive that scope.
  EnergyObjective(const Instance& instance, bool exact_leakage,
                  util::Arena& arena)
      : n_(instance.exec_graph.num_nodes()),
        weights_(arena.alloc<double>(n_)),
        alphas_(arena.alloc<double>(n_)),
        statics_(arena.alloc<double>(n_)) {
    for (graph::NodeId v = 0; v < n_; ++v) {
      weights_[v] = instance.exec_graph.weight(v);
      alphas_[v] = instance.power_of(v).alpha();
      statics_[v] = exact_leakage ? instance.power_of(v).p_static() : 0.0;
    }
  }

  [[nodiscard]] double value(const la::Vector& x) const override {
    double e = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      if (d <= 0.0) return kInf;
      e += std::pow(w, alphas_[i]) / std::pow(d, alphas_[i] - 1.0) +
           statics_[i] * d;
    }
    return e;
  }

  void add_gradient(const la::Vector& x, la::Vector& grad) const override {
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      const double alpha = alphas_[i];
      grad[n_ + i] += -(alpha - 1.0) * std::pow(w, alpha) / std::pow(d, alpha) +
                      statics_[i];
    }
  }

  void add_hessian(const la::Vector& x, la::Matrix& hess) const override {
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      const double alpha = alphas_[i];
      hess(n_ + i, n_ + i) +=
          alpha * (alpha - 1.0) * std::pow(w, alpha) / std::pow(d, alpha + 1.0);
    }
  }

 private:
  std::size_t n_;
  std::span<double> weights_;
  std::span<double> alphas_;
  std::span<double> statics_;
};

/// Per-thread reusable inequality buffer. Rebuilding constraints into the
/// same elements keeps every inner `terms` vector's capacity, so in
/// steady state constraint assembly performs no allocations at all.
std::vector<opt::SparseInequality>& pooled_ineqs() {
  thread_local std::vector<opt::SparseInequality> pool;
  return pool;
}

}  // namespace

Solution solve_numeric(const Instance& instance,
                       const model::ContinuousModel& model,
                       const NumericOptions& options) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  const double deadline = instance.deadline;
  const double s_min = options.s_min;
  const bool heterogeneous = !options.s_max_per_task.empty();
  const std::string method =
      options.exact_leakage ? "numeric-exact-leaky" : "numeric-barrier";

  util::require(s_min >= 0.0 && s_min <= model.s_max, "invalid speed range");
  if (heterogeneous) {
    util::require(options.s_max_per_task.size() == n,
                  "one per-task cap per task required");
    util::require(s_min == 0.0,
                  "per-task caps cannot be combined with a speed floor");
    for (double c : options.s_max_per_task)
      util::require(c > 0.0, "per-task caps must be positive");
  }
  const auto cap = [&](graph::NodeId v) {
    return heterogeneous ? std::min(model.s_max, options.s_max_per_task[v])
                         : model.s_max;
  };

  // Per-task floors (the heterogeneous route's s_crit reduction). A floor
  // within tolerance of its cap pins the task; no barrier constraint is
  // added for it and the extracted speed is clamped up instead.
  const bool per_task_floors = !options.s_min_per_task.empty();
  if (per_task_floors) {
    util::require(heterogeneous,
                  "per-task floors require per-task caps alongside");
    util::require(options.s_min_per_task.size() == n,
                  "one per-task floor per task required");
    for (graph::NodeId v = 0; v < n; ++v) {
      const double f = options.s_min_per_task[v];
      util::require(f >= 0.0, "per-task floors must be non-negative");
      util::require(f <= cap(v) * (1.0 + kFeasibilityRelTol),
                    "per-task floor exceeds the task's speed cap");
    }
  }
  const auto floor_of = [&](graph::NodeId v) {
    return per_task_floors ? options.s_min_per_task[v] : 0.0;
  };
  // True when task v's floor is strictly below its cap and therefore
  // enters the barrier as a d_v <= w_v / floor constraint.
  const auto floor_active = [&](graph::NodeId v) {
    const double f = floor_of(v);
    return f > 0.0 && f < cap(v) * (1.0 - 1e-9);
  };

  if (n == 0) {
    Solution s;
    s.method = method;
    s.feasible = true;
    s.energy = 0.0;
    return s;
  }

  // All per-solve scratch below lives in the thread's arena and is
  // released wholesale on return; repeated solves on one thread reuse the
  // same blocks (no steady-state allocation on the hot path).
  auto& arena = util::Arena::scratch();
  const util::Arena::Scope scratch_scope(arena);

  const double critical = critical_weight(g);
  if (critical == 0.0) {
    // All-zero weights: nothing to run.
    return speeds_solution(instance, std::vector<double>(n, 0.0), method);
  }

  // Feasibility: the fastest schedule runs every task at its cap.
  std::vector<double> min_durations(n, 0.0);
  bool any_uncapped_weighted = false;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    if (cap(v) == kInf) {
      any_uncapped_weighted = true;
    } else {
      min_durations[v] = w / cap(v);
    }
  }
  // One shared tolerance on both sides of the boundary: an exactly-tight
  // instance whose fastest makespan lands a few ulps past D (the sum
  // w_i/cap_i rounds differently than the D = W/s_max the caller computed)
  // is still feasible, pinned at the caps below.
  const double min_makespan =
      sched::compute_timing(g, min_durations).makespan;
  if (!within_deadline(min_makespan, deadline)) return infeasible_solution(method);
  if (min_makespan >= deadline * (1.0 - kFeasibilityRelTol)) {
    // Boundary: the only candidate pins every task at its cap. With an
    // uncapped weighted task the optimum does not exist (speeds diverge).
    if (any_uncapped_weighted) return infeasible_solution(method);
    std::vector<double> speeds(n, 0.0);
    for (graph::NodeId v = 0; v < n; ++v) speeds[v] = cap(v);
    return speeds_solution(instance, speeds, method);
  }

  // Strictly feasible start point.
  la::Vector x0(2 * n, 0.0);
  const std::span<double> durations = arena.alloc<double>(n);
  double pad = 0.0;
  if (!heterogeneous) {
    // Uniform speed strictly between the minimal feasible uniform speed
    // and the cap.
    const double lower = std::max(critical / deadline, s_min);
    const double upper = model.s_max;
    if (lower >= upper * (1.0 - 1e-12)) {
      // The speed range collapses to (almost) a single point.
      return speeds_solution(instance, std::vector<double>(n, upper), method);
    }
    const double s_start = upper == kInf ? 1.4 * lower : std::sqrt(lower * upper);
    const double target_makespan = critical / s_start;
    pad = (deadline - target_makespan) / (8.0 * static_cast<double>(n + 1));
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      durations[v] = w > 0.0 ? w / s_start : pad * 0.5;
    }
  } else {
    // Per-task caps: stretch the all-at-cap durations a little and slow
    // everything to a uniform speed chosen so the makespan keeps a margin:
    //   d_v = max(w_v/s_start, (1+theta) w_v/cap_v)
    // has makespan <= critical/s_start + (1+theta) min_makespan < D.
    const double theta =
        min_makespan > 0.0
            ? std::min(0.01, 0.25 * (deadline / min_makespan - 1.0))
            : 0.01;
    const double margin = deadline - (1.0 + theta) * min_makespan;
    const double s_start = critical / (0.5 * margin);
    pad = margin / (16.0 * static_cast<double>(n + 1));
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      durations[v] = w > 0.0
                         ? std::max(w / s_start, (1.0 + theta) * min_durations[v])
                         : pad * 0.5;
      // An active floor upper-bounds the duration (d_v <= w_v / floor);
      // pull a too-slow start strictly inside the band. The midpoint of
      // [w/cap, w/floor] is strictly feasible for both sides (floor_active
      // guarantees floor < cap), and shrinking a duration only shortens
      // the makespan, preserving the deadline margin.
      if (w > 0.0 && floor_active(v)) {
        const double d_max = w / floor_of(v);
        if (durations[v] >= d_max) {
          durations[v] = 0.5 * (min_durations[v] + d_max);
        }
      }
    }
  }

  // Variables: x[0..n) completion times, x[n..2n) durations.
  const auto order = graph::topological_order(g);
  util::require(order.has_value(), "numeric solver requires a DAG");
  // Topological start-point assembly shared by the cold and warm starts:
  // stack completion times with a per-position pad so every precedence
  // residual is strictly positive.
  const auto assemble_start = [&](std::span<const double> durs, double pad_amt,
                                  std::span<double> earliest, la::Vector& x) {
    std::size_t position = 0;
    for (graph::NodeId v : *order) {
      double start = 0.0;
      for (graph::NodeId p : g.predecessors(v)) start = std::max(start, earliest[p]);
      earliest[v] = start + durs[v];
      x[v] = earliest[v] + pad_amt * static_cast<double>(position + 1);
      x[n + v] = durs[v];
      ++position;
    }
  };
  {
    const std::span<double> earliest = arena.alloc<double>(n);
    assemble_start(durations, pad, earliest, x0);
  }

  // Optional warm start: derive a second candidate start point from the
  // caller's speeds (a neighbor solution during sweeps). Every duration is
  // nudged strictly inside its constraint band — a deadline-tight donor
  // still yields a strictly feasible point — and the candidate is dropped
  // (falling back to the bit-identical cold path) whenever any residual
  // fails to be strictly positive.
  la::Vector x0_warm;
  bool warm_ready = false;
  if (options.warm_start.size() == n) {
    const std::span<double> warm_durations = arena.alloc<double>(n);
    warm_ready = true;
    constexpr double kWarmBoost = 0.01;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;  // padded below, like the cold start
      const double ws = options.warm_start[v];
      if (!std::isfinite(ws) || ws <= 0.0) {
        warm_ready = false;
        break;
      }
      double d = w / (ws * (1.0 + kWarmBoost));
      const double lo = min_durations[v];
      double hi = kInf;
      if (s_min > 0.0) hi = std::min(hi, w / s_min);
      if (floor_active(v)) hi = std::min(hi, w / floor_of(v));
      if (hi < kInf) {
        const double band = hi - lo;
        if (band <= 0.0) {
          warm_ready = false;
          break;
        }
        d = std::clamp(d, lo + 0.02 * band, hi - 0.02 * band);
      } else if (d <= lo) {
        d = lo * (1.0 + 1e-6);  // donor speed at/above the cap: back off
      }
      warm_durations[v] = d;
    }
    if (warm_ready) {
      const std::span<double> warm_earliest = arena.alloc<double>(n);
      double warm_makespan = 0.0;
      for (graph::NodeId v : *order) {
        double start = 0.0;
        for (graph::NodeId p : g.predecessors(v))
          start = std::max(start, warm_earliest[p]);
        warm_earliest[v] = start + warm_durations[v];
        warm_makespan = std::max(warm_makespan, warm_earliest[v]);
      }
      const double slack = deadline - warm_makespan;
      if (slack > deadline * 1e-12) {
        const double warm_pad = slack / (8.0 * static_cast<double>(n + 1));
        for (graph::NodeId v = 0; v < n; ++v) {
          if (g.weight(v) == 0.0) warm_durations[v] = warm_pad * 0.5;
        }
        x0_warm.assign(2 * n, 0.0);
        assemble_start(warm_durations, warm_pad, warm_earliest, x0_warm);
      } else {
        warm_ready = false;
      }
    }
  }

  // Constraint assembly (all as terms . x <= rhs), into the per-thread
  // pooled buffer so steady-state assembly allocates nothing.
  auto& ineqs = pooled_ineqs();
  std::size_t used = 0;
  const auto add_ineq =
      [&](std::initializer_list<std::pair<std::size_t, double>> terms,
          double rhs) {
        if (used == ineqs.size()) ineqs.emplace_back();
        auto& q = ineqs[used];
        q.terms.assign(terms);
        q.rhs = rhs;
        ++used;
      };
  for (const graph::Edge& e : g.edges()) {
    // t_i + d_j - t_j <= 0.
    add_ineq({{e.from, 1.0}, {n + e.to, 1.0}, {e.to, -1.0}}, 0.0);
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    // d_v - t_v <= 0 (start time >= 0).
    add_ineq({{n + v, 1.0}, {v, -1.0}}, 0.0);
    // t_v <= D.
    add_ineq({{v, 1.0}}, deadline);
    // -d_v <= -w_v / cap_v  (speed cap; reduces to d_v >= 0 when uncapped).
    add_ineq({{n + v, -1.0}}, -min_durations[v]);
    // d_v <= w_v / s_min (speed floor: Theorem 5's restricted relaxation,
    // or a heterogeneous platform's per-task s_crit floor).
    const double w = g.weight(v);
    if (w > 0.0 && s_min > 0.0) {
      add_ineq({{n + v, 1.0}}, w / s_min);
    }
    if (w > 0.0 && floor_active(v)) {
      add_ineq({{n + v, 1.0}}, w / floor_of(v));
    }
  }
  if (ineqs.size() > used) ineqs.resize(used);

  if (warm_ready) {
    for (const auto& q : ineqs) {
      if (q.residual(x0_warm) <= 0.0) {
        warm_ready = false;
        break;
      }
    }
  }

  const EnergyObjective objective(instance, options.exact_leakage, arena);
  opt::BarrierOptions barrier_options;
  barrier_options.rel_gap = options.rel_gap;

  opt::BarrierResult result;
  bool have_result = false;
  if (warm_ready) {
    // A near-optimal start makes the early (small-t) barrier stages pure
    // overhead — they drag the iterate toward the analytic center and
    // back. Start the continuation at a high barrier weight instead; the
    // stop criterion (m/t <= rel_gap) is unchanged, so the result meets
    // the same gap target, and the guard below still protects quality.
    opt::BarrierOptions warm_barrier = barrier_options;
    warm_barrier.t0 = 1e4;
    // Acceptance guard: the warm result must be at least as good as the
    // cold start point it replaced; otherwise the cold solve runs and the
    // outcome is bit-identical to a run without warm_start.
    const double cold_reference = objective.value(x0);
    opt::BarrierResult warm = opt::minimize_with_barrier(
        objective, ineqs, std::move(x0_warm), warm_barrier);
    if (warm.objective <= cold_reference) {
      result = std::move(warm);
      have_result = true;
    }
  }
  if (!have_result) {
    result = opt::minimize_with_barrier(objective, ineqs, std::move(x0),
                                        barrier_options);
  }

  Solution s;
  s.method = method;
  s.feasible = true;
  s.iterations = result.newton_steps;
  s.speeds.assign(n, 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    double speed = w / result.x[n + v];
    speed = std::min(speed, cap(v));  // shave barrier slack off the cap
    if (s_min > 0.0) speed = std::max(speed, s_min);  // ...and off the floor
    if (per_task_floors) {
      // Pinned tasks (floor ~ cap) have no barrier constraint; this clamp
      // realizes their floor. It can only shorten the schedule.
      speed = std::max(speed, std::min(floor_of(v), cap(v)));
    }
    s.speeds[v] = speed;
    s.energy += instance.power_of(v).task_energy(w, speed);
  }
  return s;
}

}  // namespace reclaim::core
