#include "core/continuous/numeric_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/topo.hpp"
#include "opt/barrier.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// sum w_i^alpha_i / d_i^(alpha_i-1) over positive-weight tasks; the
/// duration of task i lives at variable index n + i, and alpha_i is the
/// dynamic exponent of the processor executing task i (one shared value on
/// a homogeneous platform). Each term is convex in d_i on d_i > 0, so the
/// separable sum stays a valid barrier objective under heterogeneous
/// exponents. By default the *dynamic* objective even under a
/// leakage-aware power model: leakage enters through the s_crit speed
/// floors plus energy bookkeeping (the s_crit reduction, DESIGN.md),
/// keeping all solver families consistent. With exact_leakage the linear
/// duration charge P_stat_i * d_i joins the objective, making it the true
/// busy energy (statics_ holds zeros otherwise, so the reduction path adds
/// exactly 0.0 everywhere and stays bit-identical).
class EnergyObjective final : public opt::ConvexObjective {
 public:
  EnergyObjective(const Instance& instance, bool exact_leakage)
      : n_(instance.exec_graph.num_nodes()) {
    weights_.reserve(n_);
    alphas_.reserve(n_);
    statics_.reserve(n_);
    for (graph::NodeId v = 0; v < n_; ++v) {
      weights_.push_back(instance.exec_graph.weight(v));
      alphas_.push_back(instance.power_of(v).alpha());
      statics_.push_back(exact_leakage ? instance.power_of(v).p_static() : 0.0);
    }
  }

  [[nodiscard]] double value(const la::Vector& x) const override {
    double e = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      if (d <= 0.0) return kInf;
      e += std::pow(w, alphas_[i]) / std::pow(d, alphas_[i] - 1.0) +
           statics_[i] * d;
    }
    return e;
  }

  void add_gradient(const la::Vector& x, la::Vector& grad) const override {
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      const double alpha = alphas_[i];
      grad[n_ + i] += -(alpha - 1.0) * std::pow(w, alpha) / std::pow(d, alpha) +
                      statics_[i];
    }
  }

  void add_hessian(const la::Vector& x, la::Matrix& hess) const override {
    for (std::size_t i = 0; i < n_; ++i) {
      const double w = weights_[i];
      if (w == 0.0) continue;
      const double d = x[n_ + i];
      const double alpha = alphas_[i];
      hess(n_ + i, n_ + i) +=
          alpha * (alpha - 1.0) * std::pow(w, alpha) / std::pow(d, alpha + 1.0);
    }
  }

 private:
  std::size_t n_;
  std::vector<double> weights_;
  std::vector<double> alphas_;
  std::vector<double> statics_;
};

}  // namespace

Solution solve_numeric(const Instance& instance,
                       const model::ContinuousModel& model,
                       const NumericOptions& options) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  const double deadline = instance.deadline;
  const double s_min = options.s_min;
  const bool heterogeneous = !options.s_max_per_task.empty();
  const std::string method =
      options.exact_leakage ? "numeric-exact-leaky" : "numeric-barrier";

  util::require(s_min >= 0.0 && s_min <= model.s_max, "invalid speed range");
  if (heterogeneous) {
    util::require(options.s_max_per_task.size() == n,
                  "one per-task cap per task required");
    util::require(s_min == 0.0,
                  "per-task caps cannot be combined with a speed floor");
    for (double c : options.s_max_per_task)
      util::require(c > 0.0, "per-task caps must be positive");
  }
  const auto cap = [&](graph::NodeId v) {
    return heterogeneous ? std::min(model.s_max, options.s_max_per_task[v])
                         : model.s_max;
  };

  // Per-task floors (the heterogeneous route's s_crit reduction). A floor
  // within tolerance of its cap pins the task; no barrier constraint is
  // added for it and the extracted speed is clamped up instead.
  const bool per_task_floors = !options.s_min_per_task.empty();
  if (per_task_floors) {
    util::require(heterogeneous,
                  "per-task floors require per-task caps alongside");
    util::require(options.s_min_per_task.size() == n,
                  "one per-task floor per task required");
    for (graph::NodeId v = 0; v < n; ++v) {
      const double f = options.s_min_per_task[v];
      util::require(f >= 0.0, "per-task floors must be non-negative");
      util::require(f <= cap(v) * (1.0 + kFeasibilityRelTol),
                    "per-task floor exceeds the task's speed cap");
    }
  }
  const auto floor_of = [&](graph::NodeId v) {
    return per_task_floors ? options.s_min_per_task[v] : 0.0;
  };
  // True when task v's floor is strictly below its cap and therefore
  // enters the barrier as a d_v <= w_v / floor constraint.
  const auto floor_active = [&](graph::NodeId v) {
    const double f = floor_of(v);
    return f > 0.0 && f < cap(v) * (1.0 - 1e-9);
  };

  if (n == 0) {
    Solution s;
    s.method = method;
    s.feasible = true;
    s.energy = 0.0;
    return s;
  }

  const double critical = critical_weight(g);
  if (critical == 0.0) {
    // All-zero weights: nothing to run.
    return speeds_solution(instance, std::vector<double>(n, 0.0), method);
  }

  // Feasibility: the fastest schedule runs every task at its cap.
  std::vector<double> min_durations(n, 0.0);
  bool any_uncapped_weighted = false;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    if (cap(v) == kInf) {
      any_uncapped_weighted = true;
    } else {
      min_durations[v] = w / cap(v);
    }
  }
  // One shared tolerance on both sides of the boundary: an exactly-tight
  // instance whose fastest makespan lands a few ulps past D (the sum
  // w_i/cap_i rounds differently than the D = W/s_max the caller computed)
  // is still feasible, pinned at the caps below.
  const double min_makespan =
      sched::compute_timing(g, min_durations).makespan;
  if (!within_deadline(min_makespan, deadline)) return infeasible_solution(method);
  if (min_makespan >= deadline * (1.0 - kFeasibilityRelTol)) {
    // Boundary: the only candidate pins every task at its cap. With an
    // uncapped weighted task the optimum does not exist (speeds diverge).
    if (any_uncapped_weighted) return infeasible_solution(method);
    std::vector<double> speeds(n, 0.0);
    for (graph::NodeId v = 0; v < n; ++v) speeds[v] = cap(v);
    return speeds_solution(instance, speeds, method);
  }

  // Strictly feasible start point.
  la::Vector x0(2 * n, 0.0);
  std::vector<double> durations(n, 0.0);
  double pad = 0.0;
  if (!heterogeneous) {
    // Uniform speed strictly between the minimal feasible uniform speed
    // and the cap.
    const double lower = std::max(critical / deadline, s_min);
    const double upper = model.s_max;
    if (lower >= upper * (1.0 - 1e-12)) {
      // The speed range collapses to (almost) a single point.
      return speeds_solution(instance, std::vector<double>(n, upper), method);
    }
    const double s_start = upper == kInf ? 1.4 * lower : std::sqrt(lower * upper);
    const double target_makespan = critical / s_start;
    pad = (deadline - target_makespan) / (8.0 * static_cast<double>(n + 1));
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      durations[v] = w > 0.0 ? w / s_start : pad * 0.5;
    }
  } else {
    // Per-task caps: stretch the all-at-cap durations a little and slow
    // everything to a uniform speed chosen so the makespan keeps a margin:
    //   d_v = max(w_v/s_start, (1+theta) w_v/cap_v)
    // has makespan <= critical/s_start + (1+theta) min_makespan < D.
    const double theta =
        min_makespan > 0.0
            ? std::min(0.01, 0.25 * (deadline / min_makespan - 1.0))
            : 0.01;
    const double margin = deadline - (1.0 + theta) * min_makespan;
    const double s_start = critical / (0.5 * margin);
    pad = margin / (16.0 * static_cast<double>(n + 1));
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      durations[v] = w > 0.0
                         ? std::max(w / s_start, (1.0 + theta) * min_durations[v])
                         : pad * 0.5;
      // An active floor upper-bounds the duration (d_v <= w_v / floor);
      // pull a too-slow start strictly inside the band. The midpoint of
      // [w/cap, w/floor] is strictly feasible for both sides (floor_active
      // guarantees floor < cap), and shrinking a duration only shortens
      // the makespan, preserving the deadline margin.
      if (w > 0.0 && floor_active(v)) {
        const double d_max = w / floor_of(v);
        if (durations[v] >= d_max) {
          durations[v] = 0.5 * (min_durations[v] + d_max);
        }
      }
    }
  }

  // Variables: x[0..n) completion times, x[n..2n) durations.
  const auto order = graph::topological_order(g);
  util::require(order.has_value(), "numeric solver requires a DAG");
  {
    std::vector<double> earliest(n, 0.0);
    std::size_t position = 0;
    for (graph::NodeId v : *order) {
      double start = 0.0;
      for (graph::NodeId p : g.predecessors(v)) start = std::max(start, earliest[p]);
      earliest[v] = start + durations[v];
      x0[v] = earliest[v] + pad * static_cast<double>(position + 1);
      x0[n + v] = durations[v];
      ++position;
    }
  }

  // Constraint assembly (all as terms . x <= rhs).
  std::vector<opt::SparseInequality> ineqs;
  ineqs.reserve(g.num_edges() + 3 * n);
  for (const graph::Edge& e : g.edges()) {
    // t_i + d_j - t_j <= 0.
    ineqs.push_back({{{e.from, 1.0}, {n + e.to, 1.0}, {e.to, -1.0}}, 0.0});
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    // d_v - t_v <= 0 (start time >= 0).
    ineqs.push_back({{{n + v, 1.0}, {v, -1.0}}, 0.0});
    // t_v <= D.
    ineqs.push_back({{{v, 1.0}}, deadline});
    // -d_v <= -w_v / cap_v  (speed cap; reduces to d_v >= 0 when uncapped).
    ineqs.push_back({{{n + v, -1.0}}, -min_durations[v]});
    // d_v <= w_v / s_min (speed floor: Theorem 5's restricted relaxation,
    // or a heterogeneous platform's per-task s_crit floor).
    const double w = g.weight(v);
    if (w > 0.0 && s_min > 0.0) {
      ineqs.push_back({{{n + v, 1.0}}, w / s_min});
    }
    if (w > 0.0 && floor_active(v)) {
      ineqs.push_back({{{n + v, 1.0}}, w / floor_of(v)});
    }
  }

  const EnergyObjective objective(instance, options.exact_leakage);
  opt::BarrierOptions barrier_options;
  barrier_options.rel_gap = options.rel_gap;
  const opt::BarrierResult result =
      opt::minimize_with_barrier(objective, ineqs, std::move(x0), barrier_options);

  Solution s;
  s.method = method;
  s.feasible = true;
  s.iterations = result.newton_steps;
  s.speeds.assign(n, 0.0);
  s.energy = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    double speed = w / result.x[n + v];
    speed = std::min(speed, cap(v));  // shave barrier slack off the cap
    if (s_min > 0.0) speed = std::max(speed, s_min);  // ...and off the floor
    if (per_task_floors) {
      // Pinned tasks (floor ~ cap) have no barrier constraint; this clamp
      // realizes their floor. It can only shorten the schedule.
      speed = std::max(speed, std::min(floor_of(v), cap(v)));
    }
    s.speeds[v] = speed;
    s.energy += instance.power_of(v).task_energy(w, speed);
  }
  return s;
}

}  // namespace reclaim::core
