#include "core/continuous/race_to_idle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Busy + idle platform energy of the crawl schedule scaled by k.
struct Evaluation {
  double busy = kInf;
  double idle = kInf;

  [[nodiscard]] double total() const noexcept { return busy + idle; }
};

Evaluation evaluate_scaled(const Instance& instance,
                           const sched::Mapping& mapping,
                           const std::vector<double>& base_speeds, double k,
                           double s_max, double window) {
  const auto& g = instance.exec_graph;
  Evaluation eval;
  eval.busy = 0.0;
  std::vector<double> durations(g.num_nodes(), 0.0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double cap = std::min(s_max, instance.cap_of(v));
    const double speed = std::min(base_speeds[v] * k, cap);
    eval.busy += instance.power_of(v).task_energy(w, speed);
    durations[v] = w / speed;
  }
  eval.idle =
      sched::idle_energy(g, mapping, durations, window, instance.platform);
  return eval;
}

}  // namespace

RaceToIdleResult solve_race_to_idle(const Instance& instance,
                                    const model::ContinuousModel& model,
                                    const sched::Mapping& mapping,
                                    const RaceToIdleOptions& options) {
  RaceToIdleResult result;
  result.solution = solve_continuous(instance, model, options.continuous);
  if (!result.solution.feasible) return result;

  result.crawl.busy = result.solution.energy;
  result.chosen = result.crawl;
  if (!instance.platform.has_sleep()) {
    // No idle cost anywhere on the platform: the crawl is the whole
    // answer, bit-identically.
    return result;
  }

  const auto& g = instance.exec_graph;
  const double window =
      options.window > 0.0 ? options.window : instance.deadline;
  const auto eval_at = [&](double k) {
    return evaluate_scaled(instance, mapping, result.solution.speeds, k,
                           model.s_max, window);
  };

  const Evaluation crawl_eval = eval_at(1.0);
  result.crawl.idle = crawl_eval.idle;
  result.chosen = result.crawl;

  // Cap the speed-up search: never past the point where *every* task is
  // pinned at its cap (evaluate_scaled clamps per task, so a cap-pinned
  // task simply stops speeding up while the rest keep racing — a
  // big.LITTLE platform's floor-pinned little cores must not freeze the
  // big cores' race), and — when uncapped tasks exist — never past the
  // point where their guaranteed busy increase (the uncapped dynamic part
  // alone grows like k^(alpha-1)) already exceeds everything the idle
  // charge could possibly save. The worth bound sums the dynamic term
  // over *uncapped* tasks only: a capped task's dynamic cost stops
  // growing once it pins, so counting it would overstate the guaranteed
  // increase and could truncate (or entirely skip) a profitable race —
  // e.g. a heavy task already sitting at its cap contributes nothing to
  // the increase at any k. Per-task exponents use the smallest alpha —
  // the slowest-growing dynamic term. Both choices can only widen the
  // searched range, never unsoundly shrink it.
  double top = 0.0;
  double dynamic_uncapped = 0.0;
  double alpha_min = kInf;
  double k_pin = 1.0;
  bool any_uncapped = false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    const double speed = result.solution.speeds[v];
    const double alpha = instance.power_of(v).alpha();
    top = std::max(top, speed);
    alpha_min = std::min(alpha_min, alpha);
    const double cap = std::min(model.s_max, instance.cap_of(v));
    if (cap == kInf) {
      any_uncapped = true;
      dynamic_uncapped += w * std::pow(speed, alpha - 1.0);
    } else if (speed > 0.0) {
      k_pin = std::max(k_pin, cap / speed);
    }
  }
  if (top <= 0.0 || crawl_eval.idle <= 0.0) {
    return result;  // nothing to run or nothing to save
  }
  // Guaranteed net busy increase at factor k is at least
  // dynamic_uncapped * (k^(alpha_min-1) - 1) - static_share (the leakage
  // share can shrink by at most itself), so past k_worth the race cannot
  // recoup the idle charge even if it drove it to zero. On a fully
  // capped platform the schedule stops changing beyond k_pin, so the
  // search is bounded there instead.
  double k_hi = k_pin;
  if (any_uncapped && dynamic_uncapped > 0.0) {
    k_hi = std::pow((crawl_eval.busy + crawl_eval.idle) / dynamic_uncapped,
                    1.0 / (alpha_min - 1.0));
  }
  if (!(k_hi > 1.0)) return result;

  // Log-spaced grid over [1, k_hi], then golden-section refinement around
  // the best bracket. The objective is piecewise smooth (idle/sleep min()
  // kinks as gaps cross the break-even length), so the grid localizes the
  // basin and the refinement polishes it; both are deterministic.
  const std::size_t grid = std::max<std::size_t>(options.grid, 2);
  const double log_hi = std::log(k_hi);
  double best_k = 1.0;
  Evaluation best = crawl_eval;
  std::size_t best_index = 0;
  std::size_t evals = 1;
  for (std::size_t i = 1; i < grid; ++i) {
    const double k = std::exp(log_hi * static_cast<double>(i) /
                              static_cast<double>(grid - 1));
    const Evaluation e = eval_at(k);
    ++evals;
    if (e.total() < best.total()) {
      best = e;
      best_k = k;
      best_index = i;
    }
  }
  {
    const auto grid_k = [&](std::size_t i) {
      return std::exp(log_hi * static_cast<double>(i) /
                      static_cast<double>(grid - 1));
    };
    double lo = best_index == 0 ? 1.0 : grid_k(best_index - 1);
    double hi = best_index + 1 < grid ? grid_k(best_index + 1) : k_hi;
    constexpr double kGolden = 0.6180339887498949;
    double a = hi - kGolden * (hi - lo);
    double b = lo + kGolden * (hi - lo);
    Evaluation fa = eval_at(a);
    Evaluation fb = eval_at(b);
    evals += 2;
    for (std::size_t it = 0; it < options.refine_iters; ++it) {
      if (fa.total() <= fb.total()) {
        hi = b;
        b = a;
        fb = fa;
        a = hi - kGolden * (hi - lo);
        fa = eval_at(a);
      } else {
        lo = a;
        a = b;
        fa = fb;
        b = lo + kGolden * (hi - lo);
        fb = eval_at(b);
      }
      ++evals;
    }
    for (const auto& [k, e] :
         {std::pair{a, fa}, std::pair{b, fb}}) {
      if (e.total() < best.total()) {
        best = e;
        best_k = k;
      }
    }
  }
  result.solution.iterations += evals;

  // Strict improvement only: ties (and fp noise) keep the crawl, so a
  // zero-effect sleep spec can never perturb the returned schedule.
  if (best.total() >= crawl_eval.total() * (1.0 - 1e-12)) return result;

  result.raced = true;
  result.speedup = best_k;
  result.chosen.busy = best.busy;
  result.chosen.idle = best.idle;
  result.solution.method = "race-to-idle";
  result.solution.energy = best.busy;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    result.solution.speeds[v] =
        std::min(result.solution.speeds[v] * best_k,
                 std::min(model.s_max, instance.cap_of(v)));
  }
  return result;
}

}  // namespace reclaim::core
