// Continuous-model front door: picks the strongest applicable solver.
//
//   chain/fork/join  -> closed forms (Theorem 1)
//   out-/in-tree     -> tree solver (Theorem 2, finite s_max)
//   series-parallel  -> SP algebra (Theorem 2) when the unconstrained
//                       optimum respects s_max, else the numeric solver
//   anything else    -> numeric barrier solver (geometric program)
//
// An optional speed floor s_min (used by Theorem 5's rounding) routes to
// the numeric solver whenever the unrestricted optimum violates it. Under
// a leakage-aware power model the floor is additionally raised to the
// critical speed s_crit (the s_crit reduction, DESIGN.md); single-task and
// chain graphs stay on the closed-form path by clamping their constant
// speed, every other shape falls back to the numeric solver when the
// floor binds.
//
// Heterogeneous platforms (tasks seeing different power models or
// processor caps via Instance::power_of/cap_of) route through per-task
// caps and s_crit floors: single tasks and single-exponent chains keep
// their closed forms where exact, everything else runs the numeric
// barrier solver with per-task bounds (DESIGN.md, "Heterogeneous
// platforms").
//
// LeakageMode::kExact upgrades the reduction to the exact leaky solver:
// instances where the reduction is provably optimal (no static power,
// single tasks, uniform-P_stat/alpha/cap chains) delegate to it and
// return its solution bit-identically; everything else additionally runs
// the numeric barrier solver on the true duration-charged objective
// sum_v (P_stat_v d_v + w_v^alpha_v / d_v^(alpha_v-1)) and keeps the
// cheaper answer (DESIGN.md, "Exact leaky solver").
#pragma once

#include <memory>
#include <optional>

#include "core/problem.hpp"
#include "graph/classify.hpp"
#include "graph/sp_tree.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct ContinuousOptions {
  double s_min = 0.0;      ///< optional speed floor (Theorem 5 relaxation)
  double rel_gap = 1e-9;   ///< numeric-solver duality gap
  bool force_numeric = false;  ///< bypass closed forms (for cross-checks)
  /// Leakage handling: the s_crit reduction (default), or the exact
  /// duration-charged objective, which solves the true busy energy through
  /// the numeric barrier solver and returns the cheaper of the two
  /// answers — bit-identical to the reduction wherever that is provably
  /// exact (DESIGN.md, "Exact leaky solver").
  LeakageMode leakage = LeakageMode::kReduction;
  /// Pre-computed classification of the execution graph. The engine's
  /// dispatch cache classifies each topology once and passes the result
  /// here so repeated shapes skip the structural analysis entirely.
  std::optional<graph::GraphShape> shape_hint;
  /// Pre-computed SP decomposition to go with a kSeriesParallel hint, so
  /// repeated SP topologies skip the decomposition too.
  std::shared_ptr<const graph::SpTree> sp_hint;
  /// Optional warm-start speeds for the numeric solver (one per task),
  /// shared so a sweep can seed thousands of neighbor solves from one
  /// prior solution without copying it per instance. Only consulted when
  /// the route reaches the barrier solver and the size matches the graph;
  /// acceptance is guarded inside solve_numeric (feasible start point,
  /// objective no worse than the cold start), so a rejected warm start
  /// falls back to the bit-identical cold solve and results stay
  /// deterministic (NumericOptions::warm_start).
  std::shared_ptr<const std::vector<double>> warm_start;
};

/// Solves the Continuous MinEnergy instance.
[[nodiscard]] Solution solve_continuous(const Instance& instance,
                                        const model::ContinuousModel& model,
                                        const ContinuousOptions& options = {});

}  // namespace reclaim::core
