#include "core/continuous/joint_sleep.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kGolden = 0.6180339887498949;
/// Strict-improvement guard: ties and fp noise never replace the
/// incumbent, so the race anchor rides through untouched unless the
/// refinement genuinely wins (mirrors race_to_idle's acceptance).
constexpr double kImprove = 1.0 - 1e-12;

/// Whole-platform energy of one speed assignment, evaluated exactly:
/// per-task busy energy plus the idle/sleep charges of every gap of the
/// earliest-start schedule. Infeasible (deadline violation, non-positive
/// speed) evaluations report feasible == false with an infinite total.
struct Evaluation {
  double busy = kInf;
  double idle = kInf;
  bool feasible = false;

  [[nodiscard]] double total() const noexcept { return busy + idle; }
};

class Evaluator {
 public:
  Evaluator(const Instance& instance, const sched::Mapping& mapping,
            double window)
      : instance_(instance), mapping_(mapping), window_(window) {}

  Evaluation operator()(const std::vector<double>& speeds) {
    ++evals_;
    const auto& g = instance_.exec_graph;
    Evaluation e;
    std::vector<double> durations(g.num_nodes(), 0.0);
    double busy = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;
      const double s = speeds[v];
      if (!(s > 0.0)) return e;
      busy += instance_.power_of(v).task_energy(w, s);
      durations[v] = w / s;
    }
    const sched::Timing timing = sched::compute_timing(g, durations);
    if (!within_deadline(timing.makespan, window_)) return e;
    e.feasible = true;
    e.busy = busy;
    e.idle = sched::idle_energy(g, mapping_, durations, window_,
                                instance_.platform);
    return e;
  }

  [[nodiscard]] std::size_t evals() const noexcept { return evals_; }

 private:
  const Instance& instance_;
  const sched::Mapping& mapping_;
  double window_;
  std::size_t evals_ = 0;
};

/// The gap-branch stationary speed of one task: stretching it by dd
/// trades (alpha-1) s^alpha - P_stat of busy energy against p_branch of
/// displaced gap charge, stationary at s = ((P_stat - p_branch) /
/// (alpha-1))^(1/alpha). Zero means "the branch costs at least as much as
/// leakage": absorb the gap entirely (stretch to the feasibility bound).
double branch_stationary_speed(const model::PowerModel& power,
                               double p_branch) {
  const double surplus = power.p_static() - p_branch;
  if (surplus <= 0.0) return 0.0;
  return std::pow(surplus / (power.alpha() - 1.0), 1.0 / power.alpha());
}

/// Golden-section polish tracking the best point seen — safe on the
/// piecewise-smooth (break-even kinks) and partially-infeasible (+inf)
/// objectives the moves produce: a non-unimodal shape can only make the
/// polish less effective, never return a worse point than it evaluated.
double golden_best(const std::function<double(double)>& f, double lo,
                   double hi, std::size_t iters) {
  double a = hi - kGolden * (hi - lo);
  double b = lo + kGolden * (hi - lo);
  double fa = f(a);
  double fb = f(b);
  double best_x = fa <= fb ? a : b;
  double best_f = std::min(fa, fb);
  for (std::size_t it = 0; it < iters; ++it) {
    if (fa <= fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kGolden * (hi - lo);
      fa = f(a);
      if (fa < best_f) {
        best_f = fa;
        best_x = a;
      }
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kGolden * (hi - lo);
      fb = f(b);
      if (fb < best_f) {
        best_f = fb;
        best_x = b;
      }
    }
  }
  return best_x;
}

}  // namespace

JointSleepResult solve_joint_sleep(const Instance& instance,
                                   const model::ContinuousModel& model,
                                   const sched::Mapping& mapping,
                                   const JointSleepOptions& options) {
  JointSleepResult result;
  const RaceToIdleResult anchor =
      solve_race_to_idle(instance, model, mapping, options.race);
  result.solution = anchor.solution;
  result.race = anchor.chosen;
  result.chosen = anchor.chosen;
  if (!anchor.solution.feasible || !instance.platform.has_sleep()) {
    // Bit-identical anchor — and hence bit-identical crawl when no sleep
    // spec is attached anywhere on the platform.
    return result;
  }

  const auto& g = instance.exec_graph;
  const double window =
      options.race.window > 0.0 ? options.race.window : instance.deadline;
  const double s_min = options.race.continuous.s_min;
  Evaluator evaluate(instance, mapping, window);

  const auto cap_of = [&](graph::NodeId v) {
    return std::min(model.s_max, instance.cap_of(v));
  };
  // Sleep spec seen by one mapping processor, with the same 1-spec
  // broadcast sched::idle_energy applies.
  const auto spec_of = [&](std::size_t p) -> const model::SleepSpec& {
    return instance.platform.power(instance.platform.size() == 1 ? 0 : p)
        .sleep();
  };

  std::vector<double> cur = anchor.solution.speeds;
  Evaluation cur_eval = evaluate(cur);
  if (!cur_eval.feasible) {
    // Tolerance-boundary corner: the anchor sits exactly on the deadline
    // and re-timing reads past it. Keep the anchor.
    return result;
  }
  const double anchor_total = cur_eval.total();

  std::vector<double> tmp;
  const auto propose = [&](const std::vector<double>& speeds) {
    const Evaluation e = evaluate(speeds);
    if (e.feasible && e.total() < cur_eval.total() * kImprove) {
      cur = speeds;
      cur_eval = e;
      return true;
    }
    return false;
  };

  std::size_t rounds_run = 0;
  for (std::size_t round = 0; round < options.rounds; ++round) {
    const double before = cur_eval.total();

    // Re-decide gap states given speeds: stretch one task at a time into
    // the gap behind it, toward the branch-stationary speeds (crawl below
    // s_crit) or the feasibility bound (absorb the gap), golden-polished.
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;
      const double lo = std::max({s_min, w / window, 1e-12});
      const double hi = cur[v];
      if (!(lo < hi)) continue;
      const auto f_single = [&](double s) {
        tmp = cur;
        tmp[v] = s;
        const Evaluation e = evaluate(tmp);
        return e.feasible ? e.total() : kInf;
      };
      const model::SleepSpec& spec = spec_of(mapping.processor_of(v));
      const auto& power = instance.power_of(v);
      for (double s :
           {branch_stationary_speed(power, spec.p_idle),
            branch_stationary_speed(power, spec.p_sleep), lo,
            golden_best(f_single, lo, hi, options.refine_iters)}) {
        const double clamped = std::clamp(s > 0.0 ? s : lo, lo, hi);
        tmp = cur;
        tmp[v] = clamped;
        propose(tmp);
      }
    }

    // Re-solve speeds given gap states, processor by processor: one
    // common speed for everything mapped on p, through the same
    // event-point candidates the exact DP scans (branch-stationary
    // speeds, fill-the-window, break-even kink, cap), golden-polished.
    for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
      const auto& tasks = mapping.tasks_on(p);
      double work = 0.0;
      double cap_p = model.s_max;
      double top = 0.0;
      const model::PowerModel* power = nullptr;
      for (graph::NodeId v : tasks) {
        const double w = g.weight(v);
        if (w == 0.0) continue;
        work += w;
        cap_p = std::min(cap_p, cap_of(v));
        top = std::max(top, cur[v]);
        if (power == nullptr) power = &instance.power_of(v);
      }
      if (work <= 0.0 || power == nullptr) continue;
      const double lo = std::max({s_min, work / window, 1e-12});
      const double hi =
          std::isfinite(cap_p)
              ? cap_p
              : std::max({top * 4.0, lo * 4.0, power->critical_speed() * 4.0});
      if (!(lo < hi)) continue;
      const auto with_common = [&](double s) {
        tmp = cur;
        for (graph::NodeId v : tasks) {
          if (g.weight(v) == 0.0) continue;
          tmp[v] = s;
        }
      };
      const auto f_common = [&](double s) {
        with_common(s);
        const Evaluation e = evaluate(tmp);
        return e.feasible ? e.total() : kInf;
      };
      const model::SleepSpec& spec = spec_of(p);
      const double kink = spec.break_even();
      double candidates[6];
      std::size_t count = 0;
      candidates[count++] = branch_stationary_speed(*power, spec.p_idle);
      candidates[count++] = branch_stationary_speed(*power, spec.p_sleep);
      candidates[count++] = work / window;
      if (std::isfinite(kink) && window - kink > 0.0) {
        candidates[count++] = work / (window - kink);
      }
      if (std::isfinite(cap_p)) candidates[count++] = cap_p;
      candidates[count++] = golden_best(f_common, lo, hi, options.refine_iters);
      for (std::size_t i = 0; i < count; ++i) {
        const double s = candidates[i];
        with_common(std::clamp(s > 0.0 ? s : lo, lo, hi));
        propose(tmp);
      }
    }

    // Global uniform rescale, both directions (the race only searches
    // k >= 1): re-balance the whole schedule against the gap charges the
    // per-task and per-processor moves just reshaped.
    {
      const auto f_scale = [&](double k) {
        tmp = cur;
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          if (g.weight(v) == 0.0) continue;
          tmp[v] = std::min(cur[v] * k, cap_of(v));
        }
        const Evaluation e = evaluate(tmp);
        return e.feasible ? e.total() : kInf;
      };
      const double k = golden_best(f_scale, 0.5, 2.0, options.refine_iters);
      tmp = cur;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.weight(v) == 0.0) continue;
        tmp[v] = std::min(cur[v] * k, cap_of(v));
      }
      propose(tmp);
    }

    ++rounds_run;
    if (cur_eval.total() >= before * kImprove) break;  // converged
  }

  result.rounds = rounds_run;
  result.solution.iterations += evaluate.evals();
  if (cur_eval.total() < anchor_total * kImprove) {
    result.improved = true;
    result.solution.method = "joint-sleep";
    result.solution.speeds = cur;
    result.solution.energy = cur_eval.busy;
    result.chosen.busy = cur_eval.busy;
    result.chosen.idle = cur_eval.idle;
  }

  // Report the surviving gaps with their cheaper branch; gaps of the
  // anchor schedule that vanished were crawled across.
  const auto race_gaps = sched::idle_intervals(
      g, mapping, sched::durations_from_speeds(g, anchor.solution.speeds),
      window);
  const auto final_gaps = sched::idle_intervals(
      g, mapping, sched::durations_from_speeds(g, result.solution.speeds),
      window);
  result.gaps.reserve(final_gaps.size());
  for (const sched::IdleInterval& gap : final_gaps) {
    const model::SleepSpec& spec = spec_of(gap.processor);
    const double length = gap.length();
    const GapState state =
        spec.p_sleep * length + spec.e_wake < spec.p_idle * length
            ? GapState::kSleep
            : GapState::kIdle;
    result.gaps.push_back({gap, state});
  }
  if (race_gaps.size() > final_gaps.size()) {
    result.absorbed = race_gaps.size() - final_gaps.size();
  }
  return result;
}

}  // namespace reclaim::core
