// Tree Continuous solver with a finite speed cap (Theorem 2).
//
// For an out-tree, the unconstrained optimum assigns every node the speed
// weq(subtree)/window, and speeds are non-increasing from the root down
// (a child's share weq(child)/l_alpha(children) never exceeds 1). The cap
// s_max therefore binds along a prefix of the tree: the generalization of
// Theorem 1's saturated fork branch is the per-node rule
//
//     s_v = min(weq(v) / window_v, s_max),   window_child = window_v - w_v/s_v,
//
// applied top-down, which is optimal by the same convexity argument (the
// energy of the subtree is convex in the root's duration, so pinning the
// root at its bound is exact). Runs in O(n). In-trees solve on the
// reversed graph (Eq. (1) is symmetric under time reversal).
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

/// Requires an out-tree or in-tree execution graph (graph::is_out_tree /
/// is_in_tree); handles finite s_max including infeasibility detection.
[[nodiscard]] Solution solve_tree(const Instance& instance,
                                  const model::ContinuousModel& model);

}  // namespace reclaim::core
