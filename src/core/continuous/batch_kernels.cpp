#include "core/continuous/batch_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "graph/topo.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace reclaim::core {

namespace {

/// Constant-speed fill replicating speeds_solution exactly: zero-weight
/// tasks keep speed 0 and are skipped from the energy sum, which
/// accumulates in node-id order against each task's own power model.
void fill_constant_speed(const Instance& instance, double speed,
                         const char* method, Solution& out) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  out.feasible = true;
  out.method = method;
  out.speeds.assign(n, 0.0);
  out.energy = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    out.speeds[v] = speed;
    out.energy += instance.power_of(v).task_energy(w, speed);
  }
}

/// The dispatcher's respects_floor post-check with the same 1e-12 slack:
/// true when some positive-weight task runs under the floor, in which case
/// the scalar path would fall back to the numeric solver and the kernel
/// must hand the instance back.
bool violates_floor(const Instance& instance, const Solution& s,
                    double floor) {
  if (floor <= 0.0) return false;
  const auto& g = instance.exec_graph;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    if (s.speeds[v] < floor * (1.0 - 1e-12)) return true;
  }
  return false;
}

void run_single(const KernelPlan& plan, const Instance* const* instances,
                std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const double w = inst.exec_graph.weight(0);
    const double speed = std::max(w / inst.deadline, plan.floor);
    if (!within_speed_cap(speed, plan.s_max)) {
      out[i] = infeasible_solution("closed-form-single");
      continue;
    }
    fill_constant_speed(inst, std::min(speed, plan.s_max),
                        "closed-form-single", out[i]);
  }
}

void run_chain(const KernelPlan& plan, const Instance* const* instances,
               std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const double speed =
        std::max(inst.exec_graph.total_weight() / inst.deadline, plan.floor);
    if (!within_speed_cap(speed, plan.s_max)) {
      out[i] = infeasible_solution("closed-form-chain");
      continue;
    }
    fill_constant_speed(inst, std::min(speed, plan.s_max),
                        "closed-form-chain", out[i]);
  }
}

/// Heterogeneous chains sharing one exponent per task slot: replicates
/// dispatch's effective_bounds infeasibility and solve_chain_hetero
/// operation-for-operation. The plan guarantees a uniform alpha across
/// every slot, so the scalar form's mixed-exponent bailout cannot fire;
/// the remaining bailouts (a binding floor or cap) hand the instance back
/// to the scalar path's numeric solver.
void run_chain_hetero(const KernelPlan& plan, const Instance* const* instances,
                      std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const auto& g = inst.exec_graph;
    const std::size_t n = g.num_nodes();

    bool empty_band = false;
    bool any_weighted = false;
    double max_floor = 0.0;
    double min_cap = std::numeric_limits<double>::infinity();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.weight(v) == 0.0) continue;
      if (plan.s_min > plan.caps[v]) {
        // effective_bounds: the requested floor exceeds this slot's cap —
        // the restricted relaxation is empty for this instance.
        empty_band = true;
        break;
      }
      any_weighted = true;
      max_floor = std::max(max_floor, plan.floors[v]);
      min_cap = std::min(min_cap, plan.caps[v]);
    }
    if (empty_band) {
      out[i] = infeasible_solution("numeric-barrier");
      continue;
    }

    const double common = g.total_weight() / inst.deadline;
    if ((any_weighted && common < max_floor) ||
        !within_speed_cap(common, min_cap)) {
      out[i] = Solution{};  // off the closed form: scalar numeric re-solve
      continue;
    }

    Solution& s = out[i];
    s.method = "closed-form-chain";
    s.feasible = true;
    s.speeds.assign(n, 0.0);
    s.energy = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;
      s.speeds[v] = std::min(common, plan.caps[v]);
      s.energy += inst.power_of(v).task_energy(w, s.speeds[v]);
    }
  }
}

void run_fork(const KernelPlan& plan, const Instance* const* instances,
              std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const auto& g = inst.exec_graph;
    const std::size_t n = g.num_nodes();
    const graph::NodeId root = plan.root;
    const double d = inst.deadline;
    const double w0 = g.weight(root);

    // Theorem 1's fork closed form, operation-for-operation the scalar
    // solve_fork: l is the parallel equivalent weight of the leaves.
    double sum_pow = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == root) continue;
      sum_pow += std::pow(g.weight(v), plan.alpha);
    }
    const double l = sum_pow > 0.0 ? std::pow(sum_pow, 1.0 / plan.alpha) : 0.0;

    Solution& s = out[i];
    s.method = "closed-form-fork";
    s.speeds.assign(n, 0.0);

    const double s0_unconstrained = (l + w0) / d;
    double s0;
    double leaf_window;
    if (s0_unconstrained <= plan.s_max) {
      s0 = s0_unconstrained;
      leaf_window = l > 0.0 ? l / s0 : 0.0;
    } else {
      s0 = plan.s_max;
      leaf_window = d - w0 / plan.s_max;
      if (l > 0.0 && leaf_window <= 0.0) {
        s = infeasible_solution("closed-form-fork");
        continue;
      }
    }

    s.energy = 0.0;
    bool infeasible = false;
    if (w0 > 0.0) {
      if (!within_speed_cap(s0, plan.s_max)) {
        s = infeasible_solution("closed-form-fork");
        continue;
      }
      s0 = std::min(s0, plan.s_max);
      s.speeds[root] = s0;
      s.energy += inst.power_of(root).task_energy(w0, s0);
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == root) continue;
      const double w = g.weight(v);
      if (w == 0.0) continue;
      const double sv = w / leaf_window;
      if (!within_speed_cap(sv, plan.s_max)) {
        infeasible = true;
        break;
      }
      s.speeds[v] = std::min(sv, plan.s_max);
      s.energy += inst.power_of(v).task_energy(w, s.speeds[v]);
    }
    if (infeasible) {
      s = infeasible_solution("closed-form-fork");
      continue;
    }
    s.feasible = true;

    // The dispatcher's post-check: a feasible fork whose leaves run under
    // the s_crit floor falls back to the numeric solver. The kernel hands
    // those instances back to the scalar path (empty-method sentinel).
    if (violates_floor(inst, s, plan.floor)) s = Solution{};
  }
}

/// Tree kernel: solve_out_tree over the flattened composition plan. The
/// plan's order/CSR describe the evaluation graph (reversed for in-trees,
/// ids preserved), so weights, power models and output speeds are indexed
/// by original node id throughout. Infeasible results are emitted as-is —
/// the dispatcher returns solve_tree's infeasible solutions directly —
/// while feasible results under the s_crit floor are handed back.
void run_tree(const KernelPlan& plan, const Instance* const* instances,
              std::size_t count, Solution* out) {
  const CompositionPlan& comp = *plan.comp;
  const std::size_t n = comp.child_offset.size() - 1;
  auto& arena = util::Arena::scratch();
  std::vector<double> weq = arena.lease_doubles();
  std::vector<double> window = arena.lease_doubles();
  constexpr double kTol = 1e-12;

  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const auto& g = inst.exec_graph;
    Solution& s = out[i];

    // Bottom-up equivalent weights: weq(v) = w_v + l_alpha(children weqs),
    // in reverse topological order of the evaluation graph.
    weq.assign(n, 0.0);
    for (auto it = comp.order.rbegin(); it != comp.order.rend(); ++it) {
      const graph::NodeId v = *it;
      double sum_pow = 0.0;
      for (std::uint32_t k = comp.child_offset[v]; k < comp.child_offset[v + 1];
           ++k) {
        sum_pow += std::pow(weq[comp.child[k]], plan.alpha);
      }
      const double children =
          sum_pow > 0.0 ? std::pow(sum_pow, plan.inv_alpha) : 0.0;
      weq[v] = g.weight(v) + children;
    }

    s.method = "tree";
    s.speeds.assign(n, 0.0);
    s.energy = 0.0;
    window.assign(n, 0.0);
    for (const graph::NodeId root : comp.roots) window[root] = inst.deadline;

    bool emitted = false;
    for (const graph::NodeId v : comp.order) {
      if (weq[v] == 0.0) continue;  // nothing left to run below v
      if (window[v] <= 0.0) {
        s = infeasible_solution("tree");
        emitted = true;
        break;
      }
      const double speed = std::min(weq[v] / window[v], plan.s_max);
      const double w = g.weight(v);
      double duration = 0.0;
      if (w > 0.0) {
        duration = w / speed;
        if (duration > window[v] * (1.0 + kTol)) {
          s = infeasible_solution("tree");
          emitted = true;
          break;
        }
        s.speeds[v] = speed;
        s.energy += inst.power_of(v).task_energy(w, speed);
      }
      const double remaining = window[v] - duration;
      for (std::uint32_t k = comp.child_offset[v]; k < comp.child_offset[v + 1];
           ++k) {
        window[comp.child[k]] = remaining;
      }
    }
    if (emitted) continue;
    s.feasible = true;

    if (violates_floor(inst, s, plan.floor)) s = Solution{};
  }

  arena.recycle_doubles(std::move(weq));
  arena.recycle_doubles(std::move(window));
}

/// SP kernel: solve_sp over the flattened decomposition traversals. The
/// post-order pass is the recursive equivalent-weight fold unrolled
/// (children in child order before their parent); the pre-order pass
/// replays the window-assignment DFS, so leaves are visited — and energy
/// accumulates — in exactly the recursion's order. The dispatcher's
/// acceptance (Theorem 2 assumes s_max = +inf: take the SP answer only
/// when its top speed respects the cap, then the floor post-check) is
/// replicated; rejected instances are handed back.
void run_sp(const KernelPlan& plan, const Instance* const* instances,
            std::size_t count, Solution* out) {
  const CompositionPlan& comp = *plan.comp;
  const graph::SpTree& tree = *comp.sp_tree;
  const std::size_t m = tree.nodes.size();
  auto& arena = util::Arena::scratch();
  std::vector<double> weq = arena.lease_doubles();
  std::vector<double> window = arena.lease_doubles();

  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const auto& g = inst.exec_graph;
    const std::size_t n = g.num_nodes();
    Solution& s = out[i];

    weq.assign(m, 0.0);
    for (const std::uint32_t id : comp.post_order) {
      const auto& node = tree.nodes[id];
      double w = 0.0;
      switch (node.kind) {
        case graph::SpKind::kLeaf:
          w = node.task == graph::kNoNode ? 0.0 : g.weight(node.task);
          break;
        case graph::SpKind::kSeries:
          for (const std::size_t c : node.children) w += weq[c];
          break;
        case graph::SpKind::kParallel: {
          double sum_pow = 0.0;
          for (const std::size_t c : node.children) {
            sum_pow += std::pow(weq[c], plan.alpha);
          }
          w = sum_pow > 0.0 ? std::pow(sum_pow, plan.inv_alpha) : 0.0;
          break;
        }
      }
      weq[id] = w;
    }

    s.method = "series-parallel";
    s.feasible = true;
    s.speeds.assign(n, 0.0);
    s.energy = 0.0;

    window.assign(m, 0.0);
    window[tree.root] = inst.deadline;
    for (const std::uint32_t id : comp.pre_order) {
      const auto& node = tree.nodes[id];
      if (id != tree.root) {
        const std::uint32_t p = comp.parent[id];
        if (tree.nodes[p].kind == graph::SpKind::kSeries) {
          // An all-zero series subtree stops the recursion in the scalar
          // solver; a zero window here is equivalent, since every leaf
          // beneath it is weightless and skipped before the window check.
          window[id] =
              weq[p] == 0.0 ? 0.0 : window[p] * weq[id] / weq[p];
        } else {
          window[id] = window[p];
        }
      }
      if (node.kind != graph::SpKind::kLeaf || node.task == graph::kNoNode) {
        continue;
      }
      const double w = g.weight(node.task);
      if (w == 0.0) continue;
      util::require_numeric(window[id] > 0.0,
                            "sp solver: zero window for a weighted task");
      const double speed = w / window[id];
      s.speeds[node.task] = speed;
      s.energy += inst.power_of(node.task).task_energy(w, speed);
    }

    const double top =
        s.speeds.empty()
            ? 0.0
            : *std::max_element(s.speeds.begin(), s.speeds.end());
    if (!within_speed_cap(top, plan.s_max) ||
        violates_floor(inst, s, plan.floor)) {
      s = Solution{};  // cap or floor binds: scalar numeric re-solve
    }
  }

  arena.recycle_doubles(std::move(weq));
  arena.recycle_doubles(std::move(window));
}

/// Heterogeneous plan: only the serial closed forms survive heterogeneity
/// (solve_hetero), and only under the reduction — the exact-leaky route
/// waterfills or barriers per instance and stays scalar. A shared dynamic
/// exponent across every task slot makes the per-instance mixed-exponent
/// bailout in solve_chain_hetero unreachable regardless of which slots
/// carry weight.
std::optional<KernelPlan> plan_hetero(const Instance& instance,
                                      const model::ContinuousModel& continuous,
                                      const SolveOptions& options,
                                      KernelFamily family) {
  if (options.leakage == LeakageMode::kExact) return std::nullopt;
  if (family != KernelFamily::kChain) return std::nullopt;
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();

  const double alpha = instance.power_of(0).alpha();
  for (graph::NodeId v = 1; v < n; ++v) {
    if (instance.power_of(v).alpha() != alpha) return std::nullopt;
  }

  KernelPlan plan;
  plan.family = family;
  plan.hetero = true;
  plan.alpha = alpha;
  plan.inv_alpha = 1.0 / alpha;
  plan.s_min = options.continuous_s_min;
  plan.caps.resize(n);
  plan.floors.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    plan.caps[v] = std::min(continuous.s_max, instance.cap_of(v));
    plan.floors[v] = std::max(
        plan.s_min,
        std::min(instance.power_of(v).critical_speed(), plan.caps[v]));
  }
  return plan;
}

}  // namespace

std::shared_ptr<const CompositionPlan> build_tree_plan(const graph::Digraph& g,
                                                       bool in_tree) {
  auto plan = std::make_shared<CompositionPlan>();
  plan->reversed = in_tree;
  // Reversal preserves node ids, so weights/power models/speeds keep their
  // original indexing; only the adjacency flips, exactly as in solve_tree.
  const graph::Digraph reversed = in_tree ? g.reversed() : graph::Digraph{};
  const graph::Digraph& eval = in_tree ? reversed : g;

  auto order = graph::topological_order(eval);
  util::require(order.has_value(), "tree plan requires a DAG");
  plan->order = std::move(*order);

  const std::size_t n = eval.num_nodes();
  plan->child_offset.reserve(n + 1);
  plan->child_offset.push_back(0);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto& succ = eval.successors(v);
    plan->child.insert(plan->child.end(), succ.begin(), succ.end());
    plan->child_offset.push_back(static_cast<std::uint32_t>(plan->child.size()));
  }
  plan->roots = eval.sources();
  return plan;
}

std::shared_ptr<const CompositionPlan> build_sp_plan(
    std::shared_ptr<const graph::SpTree> tree) {
  util::require(tree != nullptr, "sp plan requires a decomposition tree");
  auto plan = std::make_shared<CompositionPlan>();
  const auto& nodes = tree->nodes;
  const std::size_t m = nodes.size();
  const auto root = static_cast<std::uint32_t>(tree->root);

  plan->parent.assign(m, root);
  plan->pre_order.reserve(m);
  plan->post_order.reserve(m);

  std::vector<std::uint32_t> stack;
  // DFS pre-order with siblings left-to-right (children pushed reversed):
  // the window-assignment recursion's visit order.
  stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    plan->pre_order.push_back(id);
    const auto& children = nodes[id].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      plan->parent[*it] = id;
      stack.push_back(static_cast<std::uint32_t>(*it));
    }
  }
  // Post-order with children left-to-right before their parent (the
  // equivalent-weight fold's evaluation order): reverse of a parent-first,
  // siblings right-to-left DFS.
  stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    plan->post_order.push_back(id);
    for (const std::size_t c : nodes[id].children) {
      stack.push_back(static_cast<std::uint32_t>(c));
    }
  }
  std::reverse(plan->post_order.begin(), plan->post_order.end());

  plan->sp_tree = std::move(tree);
  return plan;
}

std::optional<KernelPlan> plan_kernel(const Instance& instance,
                                      const model::EnergyModel& model,
                                      const SolveOptions& options,
                                      const KernelPlanHints& hints) {
  const auto* continuous = std::get_if<model::ContinuousModel>(&model);
  if (continuous == nullptr) return std::nullopt;
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  if (n == 0 || instance.deadline <= 0.0) return std::nullopt;

  // Classification, in the dispatcher's order. Joins are rejected
  // explicitly *before* the tree predicates: a join is an in-tree
  // structurally but routes to solve_join and stays scalar.
  std::shared_ptr<const graph::SpTree> sp_tree = hints.sp_tree;
  graph::GraphShape shape;
  if (hints.shape) {
    shape = *hints.shape;
  } else if (n == 1) {
    shape = graph::GraphShape::kSingleTask;
  } else if (graph::is_chain(g)) {
    shape = graph::GraphShape::kChain;
  } else if (graph::is_fork(g)) {
    shape = graph::GraphShape::kFork;
  } else if (graph::is_join(g)) {
    shape = graph::GraphShape::kJoin;
  } else if (graph::is_out_tree(g)) {
    shape = graph::GraphShape::kOutTree;
  } else if (graph::is_in_tree(g)) {
    shape = graph::GraphShape::kInTree;
  } else if (auto tree = graph::sp_decompose(g)) {
    shape = graph::GraphShape::kSeriesParallel;
    sp_tree = std::make_shared<const graph::SpTree>(std::move(*tree));
  } else {
    return std::nullopt;
  }

  KernelPlan plan;
  switch (shape) {
    case graph::GraphShape::kSingleTask:
      plan.family = KernelFamily::kSingle;
      break;
    case graph::GraphShape::kChain:
      plan.family = KernelFamily::kChain;
      break;
    case graph::GraphShape::kFork:
      plan.family = KernelFamily::kFork;
      break;
    case graph::GraphShape::kOutTree:
    case graph::GraphShape::kInTree:
      plan.family = KernelFamily::kTree;
      break;
    case graph::GraphShape::kSeriesParallel:
      plan.family = KernelFamily::kSp;
      break;
    default:
      return std::nullopt;  // empty, join, general: scalar routes
  }

  if (!instance.homogeneous_tasks()) {
    return plan_hetero(instance, *continuous, options, plan.family);
  }

  const auto& power = instance.power_of(0);
  if (options.leakage == LeakageMode::kExact &&
      (plan.family == KernelFamily::kFork ||
       plan.family == KernelFamily::kTree ||
       plan.family == KernelFamily::kSp) &&
      power.has_static_power()) {
    // Slack-bearing leaky parallel shape: the exact route runs a waterfill
    // or barrier pass on top of the reduction — not batchable.
    return std::nullopt;
  }

  plan.s_max = std::min(continuous->s_max, instance.cap_of(0));
  if (options.continuous_s_min > plan.s_max) {
    return std::nullopt;  // collapsed speed range: scalar special case
  }
  plan.floor = std::max(options.continuous_s_min,
                        std::min(power.critical_speed(), plan.s_max));
  if (plan.family == KernelFamily::kFork) {
    plan.root = g.sources().front();
    plan.alpha = power.alpha();
  }
  if (plan.family == KernelFamily::kTree ||
      plan.family == KernelFamily::kSp) {
    plan.alpha = power.alpha();
    plan.inv_alpha = 1.0 / plan.alpha;
    // Reuse the engine's cached composition plan when it matches this
    // family; otherwise flatten the topology now (once per run).
    if (plan.family == KernelFamily::kTree) {
      if (hints.comp && !hints.comp->order.empty()) {
        plan.comp = hints.comp;
      } else {
        plan.comp =
            build_tree_plan(g, shape == graph::GraphShape::kInTree);
      }
    } else {
      if (hints.comp && hints.comp->sp_tree) {
        plan.comp = hints.comp;
      } else {
        if (!sp_tree) {
          auto tree = graph::sp_decompose(g);
          if (!tree) return std::nullopt;
          sp_tree = std::make_shared<const graph::SpTree>(std::move(*tree));
        }
        plan.comp = build_sp_plan(sp_tree);
      }
    }
  }
  return plan;
}

bool kernel_run_compatible(const Instance& head, const Instance& other) {
  if (other.deadline <= 0.0) return false;
  const auto& a = head.exec_graph;
  const auto& b = other.exec_graph;
  const std::size_t n = a.num_nodes();
  if (b.num_nodes() != n || b.num_edges() != a.num_edges()) return false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (a.successors(v) != b.successors(v)) return false;
  }
  // Per-slot power model and folded cap equality (+inf == +inf included):
  // for a homogeneous platform one slot speaks for all (this scan runs
  // once per batch instance, so the short-circuit matters for sweep
  // throughput), for a hetero head it pins the whole platform signature.
  // Weights and deadline are the run's free axes.
  if (n > 0 && head.platform.homogeneous() && other.platform.homogeneous()) {
    return head.power_of(0) == other.power_of(0) &&
           head.cap_of(0) == other.cap_of(0);
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!(head.power_of(v) == other.power_of(v))) return false;
    if (head.cap_of(v) != other.cap_of(v)) return false;
  }
  return true;
}

void solve_kernel_run(const KernelPlan& plan,
                      const Instance* const* instances, std::size_t count,
                      Solution* out) {
  switch (plan.family) {
    case KernelFamily::kSingle:
      run_single(plan, instances, count, out);
      break;
    case KernelFamily::kChain:
      if (plan.hetero) {
        run_chain_hetero(plan, instances, count, out);
      } else {
        run_chain(plan, instances, count, out);
      }
      break;
    case KernelFamily::kFork:
      run_fork(plan, instances, count, out);
      break;
    case KernelFamily::kTree:
      run_tree(plan, instances, count, out);
      break;
    case KernelFamily::kSp:
      run_sp(plan, instances, count, out);
      break;
  }
}

}  // namespace reclaim::core
