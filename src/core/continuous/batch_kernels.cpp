#include "core/continuous/batch_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "graph/classify.hpp"

namespace reclaim::core {

namespace {

/// Constant-speed fill replicating speeds_solution exactly: zero-weight
/// tasks keep speed 0 and are skipped from the energy sum, which
/// accumulates in node-id order against each task's own power model.
void fill_constant_speed(const Instance& instance, double speed,
                         const char* method, Solution& out) {
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  out.feasible = true;
  out.method = method;
  out.speeds.assign(n, 0.0);
  out.energy = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double w = g.weight(v);
    if (w == 0.0) continue;
    out.speeds[v] = speed;
    out.energy += instance.power_of(v).task_energy(w, speed);
  }
}

void run_single(const KernelPlan& plan, const Instance* const* instances,
                std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const double w = inst.exec_graph.weight(0);
    const double speed = std::max(w / inst.deadline, plan.floor);
    if (!within_speed_cap(speed, plan.s_max)) {
      out[i] = infeasible_solution("closed-form-single");
      continue;
    }
    fill_constant_speed(inst, std::min(speed, plan.s_max),
                        "closed-form-single", out[i]);
  }
}

void run_chain(const KernelPlan& plan, const Instance* const* instances,
               std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const double speed =
        std::max(inst.exec_graph.total_weight() / inst.deadline, plan.floor);
    if (!within_speed_cap(speed, plan.s_max)) {
      out[i] = infeasible_solution("closed-form-chain");
      continue;
    }
    fill_constant_speed(inst, std::min(speed, plan.s_max),
                        "closed-form-chain", out[i]);
  }
}

void run_fork(const KernelPlan& plan, const Instance* const* instances,
              std::size_t count, Solution* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const Instance& inst = *instances[i];
    const auto& g = inst.exec_graph;
    const std::size_t n = g.num_nodes();
    const graph::NodeId root = plan.root;
    const double d = inst.deadline;
    const double w0 = g.weight(root);

    // Theorem 1's fork closed form, operation-for-operation the scalar
    // solve_fork: l is the parallel equivalent weight of the leaves.
    double sum_pow = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == root) continue;
      sum_pow += std::pow(g.weight(v), plan.alpha);
    }
    const double l = sum_pow > 0.0 ? std::pow(sum_pow, 1.0 / plan.alpha) : 0.0;

    Solution& s = out[i];
    s.method = "closed-form-fork";
    s.speeds.assign(n, 0.0);

    const double s0_unconstrained = (l + w0) / d;
    double s0;
    double leaf_window;
    if (s0_unconstrained <= plan.s_max) {
      s0 = s0_unconstrained;
      leaf_window = l > 0.0 ? l / s0 : 0.0;
    } else {
      s0 = plan.s_max;
      leaf_window = d - w0 / plan.s_max;
      if (l > 0.0 && leaf_window <= 0.0) {
        s = infeasible_solution("closed-form-fork");
        continue;
      }
    }

    s.energy = 0.0;
    bool infeasible = false;
    if (w0 > 0.0) {
      if (!within_speed_cap(s0, plan.s_max)) {
        s = infeasible_solution("closed-form-fork");
        continue;
      }
      s0 = std::min(s0, plan.s_max);
      s.speeds[root] = s0;
      s.energy += inst.power_of(root).task_energy(w0, s0);
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == root) continue;
      const double w = g.weight(v);
      if (w == 0.0) continue;
      const double sv = w / leaf_window;
      if (!within_speed_cap(sv, plan.s_max)) {
        infeasible = true;
        break;
      }
      s.speeds[v] = std::min(sv, plan.s_max);
      s.energy += inst.power_of(v).task_energy(w, s.speeds[v]);
    }
    if (infeasible) {
      s = infeasible_solution("closed-form-fork");
      continue;
    }
    s.feasible = true;

    // The dispatcher's post-check: a feasible fork whose leaves run under
    // the s_crit floor falls back to the numeric solver. The kernel hands
    // those instances back to the scalar path (empty-method sentinel).
    if (plan.floor > 0.0) {
      bool under_floor = false;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (g.weight(v) == 0.0) continue;
        if (s.speeds[v] < plan.floor * (1.0 - 1e-12)) {
          under_floor = true;
          break;
        }
      }
      if (under_floor) s = Solution{};
    }
  }
}

}  // namespace

std::optional<KernelPlan> plan_kernel(const Instance& instance,
                                      const model::EnergyModel& model,
                                      const SolveOptions& options) {
  const auto* continuous = std::get_if<model::ContinuousModel>(&model);
  if (continuous == nullptr) return std::nullopt;
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  if (n == 0 || instance.deadline <= 0.0) return std::nullopt;
  if (!instance.homogeneous_tasks()) return std::nullopt;

  KernelPlan plan;
  // Same structural predicates, in the dispatcher's classification order.
  if (n == 1) {
    plan.family = KernelFamily::kSingle;
  } else if (graph::is_chain(g)) {
    plan.family = KernelFamily::kChain;
  } else if (graph::is_fork(g)) {
    plan.family = KernelFamily::kFork;
  } else {
    return std::nullopt;
  }

  const auto& power = instance.power_of(0);
  if (options.leakage == LeakageMode::kExact &&
      plan.family == KernelFamily::kFork && power.has_static_power()) {
    // Slack-bearing leaky fork: the exact route runs a barrier pass on
    // top of the reduction — not batchable.
    return std::nullopt;
  }

  plan.s_max = std::min(continuous->s_max, instance.cap_of(0));
  if (options.continuous_s_min > plan.s_max) {
    return std::nullopt;  // collapsed speed range: scalar special case
  }
  plan.floor = std::max(options.continuous_s_min,
                        std::min(power.critical_speed(), plan.s_max));
  if (plan.family == KernelFamily::kFork) {
    plan.root = g.sources().front();
    plan.alpha = power.alpha();
  }
  return plan;
}

bool kernel_run_compatible(const Instance& head, const Instance& other) {
  if (other.deadline <= 0.0) return false;
  const auto& a = head.exec_graph;
  const auto& b = other.exec_graph;
  const std::size_t n = a.num_nodes();
  if (b.num_nodes() != n || b.num_edges() != a.num_edges()) return false;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (a.successors(v) != b.successors(v)) return false;
  }
  if (!other.homogeneous_tasks()) return false;
  if (!(head.power_of(0) == other.power_of(0))) return false;
  // Folded caps must agree (+inf == +inf included); weights and deadline
  // are the run's free axes.
  return head.cap_of(0) == other.cap_of(0);
}

void solve_kernel_run(const KernelPlan& plan,
                      const Instance* const* instances, std::size_t count,
                      Solution* out) {
  switch (plan.family) {
    case KernelFamily::kSingle:
      run_single(plan, instances, count, out);
      break;
    case KernelFamily::kChain:
      run_chain(plan, instances, count, out);
      break;
    case KernelFamily::kFork:
      run_fork(plan, instances, count, out);
      break;
  }
}

}  // namespace reclaim::core
