#include "core/continuous/waterfill.hpp"

#include <algorithm>
#include <cmath>

namespace reclaim::core {

Solution solve_chain_waterfill(const Instance& instance,
                               const std::vector<double>& caps,
                               const std::vector<double>& floors) {
  static constexpr const char* kMethod = "waterfill-exact-leaky";
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  const double deadline = instance.deadline;

  // KKT speed of task v under deadline multiplier lambda, clamped into its
  // effective band. floors_v <= caps_v by construction (effective_bounds).
  const auto speed_at = [&](graph::NodeId v, double lambda) {
    const auto& power = instance.power_of(v);
    const double alpha = power.alpha();
    const double s =
        std::pow((power.p_static() + lambda) / (alpha - 1.0), 1.0 / alpha);
    return std::clamp(s, std::min(floors[v], caps[v]), caps[v]);
  };
  const auto makespan_at = [&](double lambda) {
    double t = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      if (w > 0.0) t += w / speed_at(v, lambda);
    }
    return t;
  };

  double lambda = 0.0;
  std::size_t iterations = 0;
  if (makespan_at(0.0) > deadline) {
    // Bracket the root of T(lambda) = D by doubling, then bisect keeping
    // the T <= D side so the returned schedule is always deadline-feasible.
    double lo = 0.0;
    double hi = 1.0;
    std::size_t doublings = 0;
    while (makespan_at(hi) > deadline && doublings < 200) {
      lo = hi;
      hi *= 2.0;
      ++doublings;
    }
    if (makespan_at(hi) > deadline) {
      // Every speed is pinned at its cap and the chain still overruns:
      // the all-at-cap schedule is the only candidate. Within the shared
      // feasibility tolerance it counts (the caller's reduction solve has
      // already settled strict infeasibility).
      double at_cap = 0.0;
      std::vector<double> speeds(n, 0.0);
      for (graph::NodeId v = 0; v < n; ++v) {
        const double w = g.weight(v);
        if (w == 0.0) continue;
        speeds[v] = caps[v];
        at_cap += w / caps[v];
      }
      if (!within_deadline(at_cap, deadline)) return infeasible_solution(kMethod);
      return speeds_solution(instance, speeds, kMethod);
    }
    while (hi - lo > 1e-15 * std::max(1.0, hi) && iterations < 500) {
      const double mid = 0.5 * (lo + hi);
      if (makespan_at(mid) > deadline) {
        lo = mid;
      } else {
        hi = mid;
      }
      ++iterations;
    }
    lambda = hi;
  }

  std::vector<double> speeds(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.weight(v) > 0.0) speeds[v] = speed_at(v, lambda);
  }
  Solution s = speeds_solution(instance, speeds, kMethod);
  s.iterations = iterations;
  return s;
}

Solution solve_fork_waterfill(const Instance& instance,
                              const std::vector<double>& caps,
                              const std::vector<double>& floors) {
  static constexpr const char* kMethod = "waterfill-exact-leaky";
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  const double deadline = instance.deadline;
  const graph::NodeId root = g.sources().front();
  const double w0 = g.weight(root);

  // lambda = 0 KKT speed of task v, clamped into its band: the speed the
  // task would pick with no deadline pressure (its clamped critical
  // speed). floors_v <= caps_v by construction (effective_bounds).
  const auto free_speed = [&](graph::NodeId v) {
    const auto& power = instance.power_of(v);
    const double alpha = power.alpha();
    const double s = std::pow(power.p_static() / (alpha - 1.0), 1.0 / alpha);
    return std::clamp(s, std::min(floors[v], caps[v]), caps[v]);
  };
  // d/dd of the duration-charged busy cost
  //   c_v(d) = P_stat_v * d + w_v^alpha * d^(1 - alpha):
  // negative while the task runs faster than its critical speed.
  const auto cost_slope = [&](graph::NodeId v, double d) {
    const auto& power = instance.power_of(v);
    const double alpha = power.alpha();
    return power.p_static() -
           (alpha - 1.0) * std::pow(g.weight(v) / d, alpha);
  };

  // Weighted leaves with their free (unconstrained-optimal) durations; a
  // leaf without static power has an infinite free duration and is always
  // window-bound.
  std::vector<graph::NodeId> leaves;
  std::vector<double> leaf_free_speed;
  std::vector<double> free_duration;
  double t_lo = 0.0;  // minimal shared leaf window: max_v w_v / cap_v
  for (graph::NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const double w = g.weight(v);
    if (w == 0.0) continue;
    leaves.push_back(v);
    leaf_free_speed.push_back(free_speed(v));
    free_duration.push_back(w / leaf_free_speed.back());
    t_lo = std::max(t_lo, w / caps[v]);
  }

  const double d0_lo = w0 > 0.0 ? w0 / caps[root] : 0.0;
  const double d0_hi = deadline - t_lo;

  if (d0_lo > d0_hi) {
    // Even all-at-cap overruns the deadline strictly; within the shared
    // feasibility tolerance the at-cap schedule still counts (the caller's
    // reduction solve has already settled strict infeasibility).
    if (!within_deadline(d0_lo + t_lo, deadline)) {
      return infeasible_solution(kMethod);
    }
    std::vector<double> speeds(n, 0.0);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (g.weight(v) > 0.0) speeds[v] = caps[v];
    }
    return speeds_solution(instance, speeds, kMethod);
  }

  // C'(d0): the source's marginal cost plus, for every leaf whose free
  // duration exceeds the remaining window D - d0, the (negated) marginal
  // cost of squeezing it. Window-bound leaves always run at or above their
  // critical speed, so each term is non-negative and C' is non-decreasing
  // — the bisection is exact. A weightless source contributes nothing and
  // the optimum collapses to d0 = d0_lo = 0.
  const auto slope = [&](double d0) {
    double phi = w0 > 0.0 ? cost_slope(root, d0) : 0.0;
    const double window = deadline - d0;
    for (std::size_t k = 0; k < leaves.size(); ++k) {
      if (window < free_duration[k]) phi -= cost_slope(leaves[k], window);
    }
    return phi;
  };

  double d0 = d0_lo;
  std::size_t iterations = 0;
  if (slope(d0_lo) >= 0.0) {
    d0 = d0_lo;
  } else if (slope(d0_hi) <= 0.0) {
    d0 = d0_hi;
  } else {
    double lo = d0_lo;
    double hi = d0_hi;
    while (hi - lo > 1e-15 * std::max(1.0, hi) && iterations < 500) {
      const double mid = 0.5 * (lo + hi);
      if (slope(mid) < 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
      ++iterations;
    }
    d0 = lo;  // keep the larger-leaf-window side
  }

  std::vector<double> speeds(n, 0.0);
  if (w0 > 0.0) {
    speeds[root] =
        std::clamp(w0 / d0, std::min(floors[root], caps[root]), caps[root]);
  }
  const double window = deadline - d0;
  for (std::size_t k = 0; k < leaves.size(); ++k) {
    const graph::NodeId v = leaves[k];
    // Duration min(free duration, window) as a speed, with the cap clamp
    // shaving fp slack.
    speeds[v] =
        std::min(std::max(g.weight(v) / window, leaf_free_speed[k]), caps[v]);
  }
  Solution s = speeds_solution(instance, speeds, kMethod);
  s.iterations = iterations;
  return s;
}

}  // namespace reclaim::core
