#include "core/continuous/waterfill.hpp"

#include <algorithm>
#include <cmath>

namespace reclaim::core {

Solution solve_chain_waterfill(const Instance& instance,
                               const std::vector<double>& caps,
                               const std::vector<double>& floors) {
  static constexpr const char* kMethod = "waterfill-exact-leaky";
  const auto& g = instance.exec_graph;
  const std::size_t n = g.num_nodes();
  const double deadline = instance.deadline;

  // KKT speed of task v under deadline multiplier lambda, clamped into its
  // effective band. floors_v <= caps_v by construction (effective_bounds).
  const auto speed_at = [&](graph::NodeId v, double lambda) {
    const auto& power = instance.power_of(v);
    const double alpha = power.alpha();
    const double s =
        std::pow((power.p_static() + lambda) / (alpha - 1.0), 1.0 / alpha);
    return std::clamp(s, std::min(floors[v], caps[v]), caps[v]);
  };
  const auto makespan_at = [&](double lambda) {
    double t = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double w = g.weight(v);
      if (w > 0.0) t += w / speed_at(v, lambda);
    }
    return t;
  };

  double lambda = 0.0;
  std::size_t iterations = 0;
  if (makespan_at(0.0) > deadline) {
    // Bracket the root of T(lambda) = D by doubling, then bisect keeping
    // the T <= D side so the returned schedule is always deadline-feasible.
    double lo = 0.0;
    double hi = 1.0;
    std::size_t doublings = 0;
    while (makespan_at(hi) > deadline && doublings < 200) {
      lo = hi;
      hi *= 2.0;
      ++doublings;
    }
    if (makespan_at(hi) > deadline) {
      // Every speed is pinned at its cap and the chain still overruns:
      // the all-at-cap schedule is the only candidate. Within the shared
      // feasibility tolerance it counts (the caller's reduction solve has
      // already settled strict infeasibility).
      double at_cap = 0.0;
      std::vector<double> speeds(n, 0.0);
      for (graph::NodeId v = 0; v < n; ++v) {
        const double w = g.weight(v);
        if (w == 0.0) continue;
        speeds[v] = caps[v];
        at_cap += w / caps[v];
      }
      if (!within_deadline(at_cap, deadline)) return infeasible_solution(kMethod);
      return speeds_solution(instance, speeds, kMethod);
    }
    while (hi - lo > 1e-15 * std::max(1.0, hi) && iterations < 500) {
      const double mid = 0.5 * (lo + hi);
      if (makespan_at(mid) > deadline) {
        lo = mid;
      } else {
        hi = mid;
      }
      ++iterations;
    }
    lambda = hi;
  }

  std::vector<double> speeds(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.weight(v) > 0.0) speeds[v] = speed_at(v, lambda);
  }
  Solution s = speeds_solution(instance, speeds, kMethod);
  s.iterations = iterations;
  return s;
}

}  // namespace reclaim::core
