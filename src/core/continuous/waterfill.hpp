// Scalar exact-leaky solver for chains (no barrier run).
//
// On a chain the exact duration-charged problem (DESIGN.md, "Exact leaky
// solver") is separable under the single coupling constraint
// sum_v w_v / s_v <= D: minimizing
//
//   sum_v ( P_stat_v * w_v / s_v + w_v * s_v^(alpha_v - 1) )
//
// over per-task speed bands [floor_v, cap_v]. The KKT conditions give
// each task a closed-form speed under a shared multiplier lambda >= 0 on
// the deadline,
//
//   s_v(lambda) = clamp( ((P_stat_v + lambda) / (alpha_v - 1))^(1/alpha_v),
//                        floor_v, cap_v ),
//
// the chain's makespan T(lambda) = sum_v w_v / s_v(lambda) is
// non-increasing in lambda, and the optimum is lambda = 0 when
// T(0) <= D, else the unique root of T(lambda) = D — a classic
// waterfilling problem, solved here by bisection to machine-level
// accuracy. This replaces the second barrier run that mixed-P_stat
// chains used to take under LeakageMode::kExact with an allocation-light
// scalar solve (the ROADMAP's "exact-leaky closed forms for the simple
// not-exact shapes" item). At lambda = 0 every speed sits at its clamped
// critical speed, so instances where the s_crit reduction is exact
// reproduce its speeds; dispatch still applies the usual switch
// threshold so ties keep the reduction's solution bit-identically.
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace reclaim::core {

/// Exact leaky optimum of a chain instance under per-task effective
/// bounds (caps_v = min(model cap, processor cap), floors_v = the s_crit
/// reduction floors; both from dispatch's effective_bounds). Requires the
/// execution graph to be a chain; the caller has already established
/// feasibility via the reduction solve, but an over-capacity instance
/// still returns an infeasible solution rather than throwing. Method
/// string: "waterfill-exact-leaky".
[[nodiscard]] Solution solve_chain_waterfill(const Instance& instance,
                                             const std::vector<double>& caps,
                                             const std::vector<double>& floors);

/// Exact leaky optimum of a fork instance under the same per-task
/// effective bounds. A fork has a single coupling variable: the source's
/// duration d0. For fixed d0 every leaf independently runs for
/// min(its unconstrained free duration, D - d0) — the free duration is
/// w_v over the clamped critical speed, the lambda = 0 point of the chain
/// waterfill — so the total duration-charged cost C(d0) is convex in d0
/// and its derivative sign bisects to the optimum: the source's marginal
/// cost against the summed marginal costs of the window-bound leaves.
/// This replaces the second barrier run leaky forks used to take under
/// LeakageMode::kExact (chains got their waterfill first). Same method
/// string, "waterfill-exact-leaky"; an over-capacity instance returns an
/// infeasible solution rather than throwing.
[[nodiscard]] Solution solve_fork_waterfill(const Instance& instance,
                                            const std::vector<double>& caps,
                                            const std::vector<double>& floors);

}  // namespace reclaim::core
