// Exact single-processor min-energy scheduling with power-down: the
// Baptiste-Chrobak-Durr anchor restricted to agreeable deadlines.
//
// Eligibility: one processor (a 1-spec platform, or every task assigned
// to the same processor), a chain execution order, a homogeneous power
// model, and agreeable per-task deadlines d_1 <= ... <= d_n (the default
// is every task at the instance deadline — trivially agreeable, the shape
// every mapped sweep instance has). Under those hypotheses the optimum
// has a clean structure this file exploits exactly:
//
//   - No interior gaps. gap_energy(L) = min(p_idle L, p_sleep L + e_wake)
//     is concave with gap_energy(0) = 0, hence subadditive: merging two
//     gaps never costs more than charging them separately (e_wake is paid
//     once instead of twice, the idle branch is linear). With no release
//     times every block can shift left, so all idle time consolidates
//     into one tail gap [T, D].
//   - Piecewise-constant speeds that change only where a prefix finishes
//     exactly at its deadline (KKT on the convex busy cost: between
//     binding constraints the per-unit-work cost P_stat/s + s^(alpha-1)
//     is shared, so Jensen forces one common speed per block).
//   - A final busy-end T drawn from a finite event-point candidate set:
//     the deadline bound, the cap bound, the stationary speeds of the two
//     gap branches s*_idle = ((P_stat - p_idle)/(alpha-1))^(1/alpha) and
//     s*_sleep (the "crawl below s_crit" speeds — the busy cost is traded
//     against the gap charge, not against zero), and the break-even kink
//     D - L*. On each gap branch the objective is strictly convex, so its
//     minimum is either the clamped stationary point or an endpoint —
//     all candidates.
//
// The DP enumerates binding-prefix patterns: F[i] = cheapest busy cost of
// tasks 1..i finishing exactly at d_i, via blocks at common fitting speed
// (interior prefixes checked); the answer scans the free tail segment
// after the last binding prefix. O(n^3), exact to fp rounding — this is
// a test oracle for solve_joint_sleep, not a production route.
#pragma once

#include <vector>

#include "core/analysis.hpp"
#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct SleepDpOptions {
  /// Per-task deadlines in chain order; empty means every task is due at
  /// the instance deadline. Must be positive, nondecreasing (agreeable)
  /// and no later than the instance deadline.
  std::vector<double> task_deadlines;
};

struct SleepDpResult {
  /// Busy-optimal speeds; `energy` is busy energy (every solver's
  /// semantics), `method` is "sleep-dp".
  Solution solution;
  PlatformEnergy chosen;     ///< busy + tail-gap charge over [0, deadline]
  std::size_t blocks = 0;    ///< constant-speed blocks of the optimum
  double busy_end = 0.0;     ///< T: the processor sleeps or idles in [T, D]
};

/// Optimal finish time of one tail segment: `work` units run contiguously
/// from `t0` at a common speed, finishing at T in [t0 + work/cap,
/// min(t_max, window)], followed by the gap charge of [T, window] under
/// `power`'s sleep spec. Evaluates the closed-form event-point candidates
/// (branch-stationary speeds, break-even kink, endpoints) exactly — the
/// shared primitive of the DP's final segment and the joint solver's
/// whole-processor stretch move. Returns feasible == false when the range
/// is empty (cap too slow for t_max).
struct TailOptimum {
  double finish = 0.0;
  double cost = 0.0;  ///< busy + gap energy; meaningless when infeasible
  bool feasible = false;
};

[[nodiscard]] TailOptimum optimal_tail_segment(double work, double t0,
                                               double t_max, double window,
                                               const model::PowerModel& power,
                                               double cap);

/// Solves the instance exactly under the eligibility above. Throws
/// InvalidArgument off the eligibility domain (multiple processors,
/// non-chain execution order, heterogeneous models, non-agreeable or
/// out-of-range task deadlines). An instance infeasible even at the cap
/// returns the infeasible solution, not a throw.
[[nodiscard]] SleepDpResult solve_sleep_dp(const Instance& instance,
                                           const model::ContinuousModel& model,
                                           const SleepDpOptions& options = {});

}  // namespace reclaim::core
