#include "core/continuous/sp_solver.hpp"

#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace reclaim::core {

namespace {

/// Bottom-up equivalent weights for every SpTree node.
std::vector<double> equivalent_weights(const graph::Digraph& g,
                                       const graph::SpTree& tree,
                                       const model::PowerModel& power) {
  const double alpha = power.alpha();
  std::vector<double> weq(tree.nodes.size(), 0.0);
  // Children always have larger arena indices... not guaranteed; recurse.
  std::function<double(std::size_t)> fold = [&](std::size_t id) -> double {
    const auto& node = tree.nodes[id];
    double w = 0.0;
    switch (node.kind) {
      case graph::SpKind::kLeaf:
        w = node.task == graph::kNoNode ? 0.0 : g.weight(node.task);
        break;
      case graph::SpKind::kSeries:
        for (std::size_t c : node.children) w += fold(c);
        break;
      case graph::SpKind::kParallel: {
        double sum_pow = 0.0;
        for (std::size_t c : node.children) sum_pow += std::pow(fold(c), alpha);
        w = sum_pow > 0.0 ? std::pow(sum_pow, 1.0 / alpha) : 0.0;
        break;
      }
    }
    weq[id] = w;
    return w;
  };
  fold(tree.root);
  return weq;
}

}  // namespace

double sp_equivalent_weight(const graph::Digraph& g, const graph::SpTree& tree,
                            const model::PowerModel& power) {
  return equivalent_weights(g, tree, power)[tree.root];
}

Solution solve_sp(const Instance& instance, const graph::SpTree& tree) {
  const auto& g = instance.exec_graph;
  // SP solving is dispatched only on homogeneous platforms; the l_alpha
  // fold needs the one shared exponent.
  const auto weq = equivalent_weights(g, tree, instance.power());

  Solution s;
  s.method = "series-parallel";
  s.feasible = true;
  s.speeds.assign(g.num_nodes(), 0.0);
  s.energy = 0.0;

  // Top-down window assignment.
  std::function<void(std::size_t, double)> assign = [&](std::size_t id,
                                                        double window) {
    const auto& node = tree.nodes[id];
    switch (node.kind) {
      case graph::SpKind::kLeaf: {
        if (node.task == graph::kNoNode) return;
        const double w = g.weight(node.task);
        if (w == 0.0) return;
        util::require_numeric(window > 0.0,
                              "sp solver: zero window for a weighted task");
        s.speeds[node.task] = w / window;
        s.energy += instance.power_of(node.task).task_energy(
            w, s.speeds[node.task]);
        return;
      }
      case graph::SpKind::kSeries: {
        if (weq[id] == 0.0) return;  // all-zero subtree: nothing to run
        for (std::size_t c : node.children)
          assign(c, window * weq[c] / weq[id]);
        return;
      }
      case graph::SpKind::kParallel: {
        for (std::size_t c : node.children) assign(c, window);
        return;
      }
    }
  };
  assign(tree.root, instance.deadline);
  return s;
}

Solution solve_sp(const Instance& instance) {
  const auto tree = graph::sp_decompose(instance.exec_graph);
  util::require(tree.has_value(), "solve_sp: graph is not series-parallel");
  return solve_sp(instance, *tree);
}

}  // namespace reclaim::core
