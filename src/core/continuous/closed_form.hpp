// Closed-form Continuous solutions (Theorem 1 and its elementary
// companions).
//
// - Single task: s = w / D.
// - Chain: one common speed sum(w) / D (the equal-speed exchange argument).
// - Fork T0 -> {T1..Tn} (Theorem 1, generalized to exponent alpha):
//     l = (sum w_i^alpha)^(1/alpha),  s_0 = (l + w_0) / D,
//     s_i = s_0 * w_i / l,
//   and when s_0 would exceed s_max: s_0 = s_max, the leaves share
//   D' = D - w_0/s_max with s_i = w_i / D' (infeasible when any exceeds
//   s_max — the paper's saturated branch).
// - Join: the time-reversed fork; identical speeds by symmetry of Eq. (1).
//
// Single and chain accept a speed floor `s_min` (clamping the constant
// speed up is exact for serial graphs — DESIGN.md, "The critical speed
// and the s_crit reduction"), which is how the dispatcher keeps chains on
// the closed-form path under leakage-aware power models.
#pragma once

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

/// Requires a single-node graph.
[[nodiscard]] Solution solve_single(const Instance& instance,
                                    const model::ContinuousModel& model,
                                    double s_min = 0.0);

/// Requires a chain (>= 1 node path).
[[nodiscard]] Solution solve_chain(const Instance& instance,
                                   const model::ContinuousModel& model,
                                   double s_min = 0.0);

/// Requires a fork-shaped graph (graph::is_fork).
[[nodiscard]] Solution solve_fork(const Instance& instance,
                                  const model::ContinuousModel& model);

/// Requires a join-shaped graph (graph::is_join).
[[nodiscard]] Solution solve_join(const Instance& instance,
                                  const model::ContinuousModel& model);

}  // namespace reclaim::core
