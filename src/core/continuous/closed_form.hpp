// Closed-form Continuous solutions (Theorem 1 and its elementary
// companions).
//
// - Single task: s = w / D.
// - Chain: one common speed sum(w) / D (the equal-speed exchange argument).
// - Fork T0 -> {T1..Tn} (Theorem 1, generalized to exponent alpha):
//     l = (sum w_i^alpha)^(1/alpha),  s_0 = (l + w_0) / D,
//     s_i = s_0 * w_i / l,
//   and when s_0 would exceed s_max: s_0 = s_max, the leaves share
//   D' = D - w_0/s_max with s_i = w_i / D' (infeasible when any exceeds
//   s_max — the paper's saturated branch).
// - Join: the time-reversed fork; identical speeds by symmetry of Eq. (1).
//
// Single and chain accept a speed floor `s_min` (clamping the constant
// speed up is exact for serial graphs — DESIGN.md, "The critical speed
// and the s_crit reduction"), which is how the dispatcher keeps chains on
// the closed-form path under leakage-aware power models.
//
// Heterogeneous platforms (per-task power coefficients) generalize the
// serial closed forms: a single task is always exact (its own floor/cap
// apply directly); a chain keeps the equal-speed form when every task
// shares one dynamic exponent and the deadline-bound common speed W/D
// clears every per-task floor and cap — that is the dynamic optimum the
// floored numeric solver would return, i.e. the s_crit-reduction
// semantics. It is additionally exact for the *true* leaky objective only
// when the weighted tasks also share one P_stat; with mixed P_stat the
// deadline-bound chain should shift duration toward the low-leakage
// processors, the gap LeakageMode::kExact closes (DESIGN.md, "Exact
// leaky solver"). Otherwise the dispatcher falls back to the floored
// numeric solver.
#pragma once

#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

/// Requires a single-node graph.
[[nodiscard]] Solution solve_single(const Instance& instance,
                                    const model::ContinuousModel& model,
                                    double s_min = 0.0);

/// Requires a chain (>= 1 node path).
[[nodiscard]] Solution solve_chain(const Instance& instance,
                                   const model::ContinuousModel& model,
                                   double s_min = 0.0);

/// Requires a fork-shaped graph (graph::is_fork).
[[nodiscard]] Solution solve_fork(const Instance& instance,
                                  const model::ContinuousModel& model);

/// Requires a join-shaped graph (graph::is_join).
[[nodiscard]] Solution solve_join(const Instance& instance,
                                  const model::ContinuousModel& model);

/// Per-task-coefficient single task: s = max(w/D, floor), infeasible past
/// `cap`, clamped to it otherwise; energy under the task's own power
/// model. Exact for any platform (one task, one processor).
[[nodiscard]] Solution solve_single_hetero(const Instance& instance, double cap,
                                           double floor);

/// Per-task-coefficient chain: the equal-speed exchange argument needs a
/// single dynamic exponent, so the closed form applies only when every
/// weighted task shares one alpha and the common speed W/D clears every
/// per-task floor (a binding floor would over-speed the other tasks) and
/// cap. Returns nullopt when not exact — callers fall back to the floored
/// numeric solver. `caps`/`floors` are the per-task effective values the
/// dispatcher computed (one entry per task).
[[nodiscard]] std::optional<Solution> solve_chain_hetero(
    const Instance& instance, const std::vector<double>& caps,
    const std::vector<double>& floors);

}  // namespace reclaim::core
