// Series-parallel Continuous solver (Theorem 2, s_max = +infinity).
//
// The equivalent-weight algebra: executing weight w in a window of length
// d at constant speed costs w^alpha / d^(alpha-1). A series composition
// behaves like one task of weight sum(w_k) (the equal-speed argument); a
// parallel composition like one task of weight (sum w_k^alpha)^(1/alpha).
// Folding the SP decomposition tree bottom-up yields the equivalent weight
// W_eq of the whole graph — the optimum is E = W_eq^alpha / D^(alpha-1) —
// and unfolding top-down splits the deadline window into per-task speeds:
// series children get window shares proportional to their equivalent
// weights, parallel children inherit the full window. These are the
// paper's "nested cube roots" for alpha = 3.
#pragma once

#include "core/problem.hpp"
#include "graph/sp_tree.hpp"

namespace reclaim::core {

/// Equivalent weight of the whole decomposition tree.
[[nodiscard]] double sp_equivalent_weight(const graph::Digraph& g,
                                          const graph::SpTree& tree,
                                          const model::PowerModel& power);

/// Unconstrained (s_max = +inf) optimum over the SP decomposition `tree`
/// of the instance's graph. Always feasible. When a finite speed cap must
/// be honoured, check the returned speeds and fall back to the numeric
/// solver (see dispatch.hpp).
[[nodiscard]] Solution solve_sp(const Instance& instance, const graph::SpTree& tree);

/// Convenience overload: decomposes the instance's graph first; throws
/// InvalidArgument when it is not series-parallel.
[[nodiscard]] Solution solve_sp(const Instance& instance);

}  // namespace reclaim::core
