// Bi-criteria analysis: the energy/deadline tradeoff.
//
// MinEnergy(G, D) is the energy side of a bi-criteria problem (the paper's
// keywords say "bi-criteria optimization"). Its optimal energy E*(D) is
// non-increasing in D, which makes two utilities natural:
//   - sample the Pareto curve E*(D) over a deadline range;
//   - invert it: the smallest deadline whose optimal energy fits a budget
//     (bisection over the monotone curve).
#pragma once

#include <functional>
#include <vector>

#include "core/problem.hpp"
#include "core/solve.hpp"
#include "model/energy_model.hpp"

namespace reclaim::core {

struct TradeoffPoint {
  double deadline = 0.0;
  double energy = 0.0;
  bool feasible = false;
};

/// Pluggable solver for the tradeoff utilities. Defaults to core::solve;
/// callers can route through engine::ReclaimEngine so curve samples and
/// bisection probes reuse its dispatch cache and memo (the curve re-solves
/// the same topology at many deadlines).
using SolveFn = std::function<Solution(
    const Instance&, const model::EnergyModel&, const SolveOptions&)>;

/// Samples E*(D) at `points` evenly spaced deadlines in [d_lo, d_hi].
/// Requires d_lo <= d_hi and points >= 1.
[[nodiscard]] std::vector<TradeoffPoint> energy_deadline_curve(
    const Instance& instance, const model::EnergyModel& energy_model,
    double d_lo, double d_hi, std::size_t points,
    const SolveOptions& options = {}, const SolveFn& solver = {});

struct DeadlineForEnergyResult {
  double deadline = 0.0;   ///< smallest deadline meeting the budget
  double energy = 0.0;     ///< optimal energy at that deadline
  bool achievable = false; ///< false when the budget is below E*(d_hi)
};

/// Smallest D in [d_lo, d_hi] with E*(D) <= budget, to relative tolerance
/// `rel_tol` on the deadline. Exact for Continuous/Vdd (their E*(D) is
/// exactly monotone); for the rounding heuristics the curve is monotone up
/// to mode granularity and the result is within one bisection step of the
/// true threshold.
[[nodiscard]] DeadlineForEnergyResult deadline_for_energy(
    const Instance& instance, const model::EnergyModel& energy_model,
    double budget, double d_lo, double d_hi, double rel_tol = 1e-6,
    const SolveOptions& options = {}, const SolveFn& solver = {});

}  // namespace reclaim::core
