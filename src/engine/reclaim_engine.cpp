#include "engine/reclaim_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <future>
#include <utility>

#include "core/continuous/batch_kernels.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/joint_sleep.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/continuous/sleep_dp.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/vdd/lp_solver.hpp"
#include "engine/instance_key.hpp"
#include "util/annotated_mutex.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace reclaim::engine {

namespace {

/// Chunk size for the shared-cursor scheduler: small enough that a skewed
/// instance cannot strand more than a chunk's worth of work behind it,
/// large enough to amortize the atomic fetch.
std::size_t chunk_size(std::size_t n, std::size_t workers) {
  return std::clamp<std::size_t>(n / (workers * 8), 1, 64);
}

}  // namespace

ReclaimEngine::ReclaimEngine(EngineOptions options)
    : options_(options),
      memo_(CacheLimits{options.memo_capacity, options.memo_bytes}) {
  util::require(options_.kernel_min_run >= 2,
                "ReclaimEngine: kernel_min_run must be >= 2");
  if (options_.threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

ReclaimEngine::~ReclaimEngine() = default;

std::size_t ReclaimEngine::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

ReclaimEngine::ShapeEntry ReclaimEngine::shape_of(const graph::Digraph& g) {
  if (!options_.reuse_shapes) {
    return {graph::classify(g), nullptr, nullptr, nullptr};
  }
  const std::string key = topology_key(g);
  {
    const util::ReadLock lock(shape_mutex_);
    const auto it = shapes_.find(key);
    if (it != shapes_.end()) {
      shape_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  ShapeEntry entry{graph::classify(g), nullptr, nullptr, nullptr};
  if (entry.shape == graph::GraphShape::kSeriesParallel) {
    // Decompose once at cache-fill time; every later solve of this
    // topology reuses the tree via ContinuousOptions::sp_hint, and the
    // flattened composition plan feeds the batched SP kernel.
    if (auto tree = graph::sp_decompose(g)) {
      entry.sp_tree = std::make_shared<const graph::SpTree>(std::move(*tree));
      entry.comp = core::build_sp_plan(entry.sp_tree);
    }
  } else if (entry.shape == graph::GraphShape::kOutTree ||
             entry.shape == graph::GraphShape::kInTree) {
    // Flatten the topological order / adjacency once per topology so tree
    // kernel runs of a cached shape skip the re-walk entirely.
    entry.comp =
        core::build_tree_plan(g, entry.shape == graph::GraphShape::kInTree);
  }
  if (options_.warm_start) {
    // One warm-start slot per cached topology; solves of this shape seed
    // (and are seeded by) each other through it.
    entry.warm = std::make_shared<WarmSlot>();
  }
  const util::WriteLock lock(shape_mutex_);
  // Two workers may race to fill the same key; keep the first entry so
  // every solve of this topology shares one warm slot.
  return shapes_.emplace(key, std::move(entry)).first->second;
}

core::Solution ReclaimEngine::dispatch(const core::Instance& instance,
                                       const model::EnergyModel& model,
                                       const core::SolveOptions& options) {
  // The Vdd LP is shape-independent; skip the structural analysis.
  if (const auto* vdd = std::get_if<model::VddHoppingModel>(&model)) {
    return core::solve_vdd_lp(instance, *vdd).solution;
  }

  const ShapeEntry entry = shape_of(instance.exec_graph);
  const graph::GraphShape shape = entry.shape;

  const auto solve_modes = [&](const model::ModeSet& modes) -> core::Solution {
    const std::size_t n = instance.exec_graph.num_nodes();
    if (n <= options.exact_discrete_up_to) {
      return core::solve_discrete_exact(instance, modes).solution;
    }
    // exact_discrete_up_to == 0 means "force CONT-ROUND" (callers
    // validating Theorem 5 rely on it), so it disables the DP route too.
    if (options_.chain_dp && options.exact_discrete_up_to > 0 &&
        (shape == graph::GraphShape::kChain ||
         shape == graph::GraphShape::kSingleTask)) {
      return core::solve_chain_dp(instance, modes).solution;
    }
    core::RoundUpOptions round_options;
    round_options.continuous_rel_gap = options.rel_gap;
    return core::solve_round_up(instance, modes, round_options).solution;
  };

  return std::visit(
      [&](const auto& m) -> core::Solution {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          if (options.sleep_mode == core::SleepMode::kDp &&
              instance.platform.has_sleep()) {
            // The exact single-processor oracle; throws off its
            // eligibility domain, exactly like the un-cached core route.
            return core::solve_sleep_dp(instance, m).solution;
          }
          core::ContinuousOptions continuous_options;
          continuous_options.rel_gap = options.rel_gap;
          continuous_options.s_min = options.continuous_s_min;
          continuous_options.leakage = options.leakage;
          continuous_options.shape_hint = shape;
          continuous_options.sp_hint = entry.sp_tree;
          if (options_.warm_start && entry.warm) {
            // Seed from the last numeric solution of this topology. The
            // solver's acceptance guard rejects stale or infeasible seeds
            // (falling back to the bit-identical cold solve), so sharing
            // one slot across a sweep is always safe.
            {
              WarmSlot& warm = *entry.warm;
              const util::MutexLock lock(warm.mutex);
              continuous_options.warm_start = warm.speeds;
            }
            if (continuous_options.warm_start) {
              warm_solves_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          core::Solution s = core::solve_continuous(instance, m, continuous_options);
          if (options_.warm_start && entry.warm && s.feasible &&
              !s.speeds.empty() &&
              (s.method == "numeric-barrier" ||
               s.method == "numeric-exact-leaky")) {
            auto snapshot =
                std::make_shared<const std::vector<double>>(s.speeds);
            WarmSlot& warm = *entry.warm;
            const util::MutexLock lock(warm.mutex);
            warm.speeds = std::move(snapshot);
          }
          return s;
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          return core::solve_vdd_lp(instance, m).solution;  // unreachable
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          return solve_modes(m.modes);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          return solve_modes(m.modes);
        }
      },
      model);
}

core::Solution ReclaimEngine::solve_routed(const core::Instance& instance,
                                           const model::EnergyModel& model,
                                           const core::SolveOptions& options) {
  instances_.fetch_add(1, std::memory_order_relaxed);
  util::require(instance.deadline > 0.0,
                "ReclaimEngine: instance deadline must be positive");

  std::string key;
  if (options_.memoize) {
    key = instance_key(instance, model, options);
    if (auto cached = memo_.get(key)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *std::move(cached);
    }
  }

  core::Solution solution = dispatch(instance, model, options);
  fresh_solves_.fetch_add(1, std::memory_order_relaxed);

  if (options_.memoize) {
    // Two workers may race on the same key; both computed the identical
    // deterministic solution, so the cache keeps first-in harmlessly and
    // evicts from the LRU end when the entry/byte caps are exceeded.
    memo_.put(key, solution);
  }
  return solution;
}

core::Solution ReclaimEngine::solve_mapped(const MappedInstance& mapped,
                                           const model::EnergyModel& model,
                                           const core::SolveOptions& options) {
  const auto* continuous = std::get_if<model::ContinuousModel>(&model);
  if (continuous == nullptr || !mapped.instance.platform.has_sleep() ||
      options.sleep_mode == core::SleepMode::kDp) {
    // Without idle charges (or under a mode-based model) the mapping does
    // not change the optimum: share the plain route and its memo entries.
    // The exact DP oracle is mapping-independent too (single processor,
    // one consolidated tail gap), so it shares them as well.
    return solve_routed(mapped.instance, model, options);
  }

  instances_.fetch_add(1, std::memory_order_relaxed);
  util::require(mapped.instance.deadline > 0.0,
                "ReclaimEngine: instance deadline must be positive");

  std::string key;
  if (options_.memoize) {
    key = mapped_instance_key(mapped.instance, mapped.mapping, model, options);
    if (auto cached = memo_.get(key)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *std::move(cached);
    }
  }

  core::RaceToIdleOptions race;
  race.continuous.rel_gap = options.rel_gap;
  race.continuous.s_min = options.continuous_s_min;
  race.continuous.leakage = options.leakage;
  const ShapeEntry entry = shape_of(mapped.instance.exec_graph);
  race.continuous.shape_hint = entry.shape;
  race.continuous.sp_hint = entry.sp_tree;

  core::Solution solution;
  if (options.sleep_mode == core::SleepMode::kJoint) {
    core::JointSleepOptions joint;
    joint.race = race;
    const core::JointSleepResult result = core::solve_joint_sleep(
        mapped.instance, *continuous, mapped.mapping, joint);
    joint_solves_.fetch_add(1, std::memory_order_relaxed);
    if (result.improved) {
      joint_improved_.fetch_add(1, std::memory_order_relaxed);
    }
    solution = result.solution;
  } else {
    const core::RaceToIdleResult result = core::solve_race_to_idle(
        mapped.instance, *continuous, mapped.mapping, race);
    (result.raced ? raced_solves_ : crawl_solves_)
        .fetch_add(1, std::memory_order_relaxed);
    solution = result.solution;
  }
  fresh_solves_.fetch_add(1, std::memory_order_relaxed);

  if (options_.memoize) {
    memo_.put(key, solution);
  }
  return solution;
}

std::vector<core::Solution> ReclaimEngine::run_batch(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, core::Solution*)>&
        solve_range) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<core::Solution> out(n);
  if (n == 0) return out;

  const std::size_t workers = pool_ ? std::min(pool_->size(), n) : 1;
  if (workers <= 1) {
    solve_range(0, n, out.data());
    return out;
  }

  const std::size_t chunk = chunk_size(n, workers);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  util::Mutex error_mutex;

  const auto drain = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) return;
      const std::size_t hi = std::min(n, lo + chunk);
      try {
        solve_range(lo, hi, out.data());
      } catch (...) {
        {
          const util::MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) futures.push_back(pool_->submit(drain));
  for (auto& f : futures) f.get();

  if (first_error) std::rethrow_exception(first_error);
  return out;
}

std::vector<core::Solution> ReclaimEngine::kernel_batch(
    std::size_t n,
    const std::function<const core::Instance&(std::size_t)>& instance_at,
    const std::function<bool(std::size_t)>& kernel_ok,
    const model::EnergyModel& model, const core::SolveOptions& options,
    const std::function<core::Solution(std::size_t)>& solve_scalar) {
  // Single-threaded engines take a fused discover/plan/solve pass: each
  // run is kernel-solved right after its compatibility scan, while the
  // instances are still cache-hot — a 20k-instance sweep streams the
  // batch from memory once instead of twice. Semantics match the pooled
  // path below exactly (same predicates, same plan, same hand-back).
  if (!pool_) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::vector<core::Solution> out(n);
    auto& arena = util::Arena::scratch();
    const util::Arena::Scope scope(arena);
    auto ptrs = arena.alloc<const core::Instance*>(n);
    std::size_t i = 0;
    while (i < n) {
      if (!kernel_ok(i) || !(instance_at(i).deadline > 0.0)) {
        out[i] = solve_scalar(i);
        ++i;
        continue;
      }
      const core::Instance& head = instance_at(i);
      ptrs[0] = &head;
      std::size_t j = i + 1;
      while (j < n && kernel_ok(j) &&
             core::kernel_run_compatible(head, instance_at(j))) {
        ptrs[j - i] = &instance_at(j);
        ++j;
      }
      std::optional<core::KernelPlan> plan;
      if (j - i >= options_.kernel_min_run) {
        core::KernelPlanHints hints;
        if (options_.reuse_shapes) {
          const ShapeEntry entry = shape_of(head.exec_graph);
          hints.shape = entry.shape;
          hints.sp_tree = entry.sp_tree;
          hints.comp = entry.comp;
        }
        plan = core::plan_kernel(head, model, options, hints);
      }
      if (!plan) {
        for (std::size_t k = i; k < j; ++k) out[k] = solve_scalar(k);
        i = j;
        continue;
      }
      core::solve_kernel_run(*plan, ptrs.data(), j - i, out.data() + i);
      std::size_t solved = 0;
      for (std::size_t k = i; k < j; ++k) {
        if (out[k].method.empty()) {
          out[k] = solve_scalar(k);
        } else {
          ++solved;
        }
      }
      instances_.fetch_add(solved, std::memory_order_relaxed);
      fresh_solves_.fetch_add(solved, std::memory_order_relaxed);
      kernel_solves_.fetch_add(solved, std::memory_order_relaxed);
      kernel_family_[static_cast<std::size_t>(plan->family)].fetch_add(
          solved, std::memory_order_relaxed);
      i = j;
    }
    return out;
  }

  // Pass 1 (caller thread): discover maximal candidate runs with cheap
  // structural predicates only — topology/model equality, no planning.
  // Runs shorter than kernel_min_run stay scalar (planning a tiny run
  // costs more than it saves).
  struct Run {
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Run> runs;
  std::size_t i = 0;
  while (i < n) {
    if (!kernel_ok(i) || !(instance_at(i).deadline > 0.0)) {
      ++i;
      continue;
    }
    const core::Instance& head = instance_at(i);
    std::size_t j = i + 1;
    while (j < n && kernel_ok(j) &&
           core::kernel_run_compatible(head, instance_at(j))) {
      ++j;
    }
    if (j - i >= options_.kernel_min_run) runs.push_back({i, j});
    i = j;
  }

  // Pass 2: plan each run from its head, feeding the planner the shape
  // cache's analysis (classification, SP tree, composition plan) so a
  // cached topology is never re-decomposed. Planning a tree/SP run walks
  // the topology, so independent runs are sharded across the pool.
  std::vector<std::optional<core::KernelPlan>> run_plans(runs.size());
  const auto plan_run = [&](std::size_t r) {
    const core::Instance& head = instance_at(runs[r].begin);
    core::KernelPlanHints hints;
    if (options_.reuse_shapes) {
      const ShapeEntry entry = shape_of(head.exec_graph);
      hints.shape = entry.shape;
      hints.sp_tree = entry.sp_tree;
      hints.comp = entry.comp;
    }
    run_plans[r] = core::plan_kernel(head, model, options, hints);
  };
  if (pool_ && runs.size() > 1) {
    std::exception_ptr plan_error;
    util::Mutex plan_error_mutex;
    std::vector<std::future<void>> futures;
    futures.reserve(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      futures.push_back(pool_->submit([&, r] {
        try {
          plan_run(r);
        } catch (...) {
          const util::MutexLock lock(plan_error_mutex);
          if (!plan_error) plan_error = std::current_exception();
        }
      }));
    }
    for (auto& f : futures) f.get();
    if (plan_error) std::rethrow_exception(plan_error);
  } else {
    for (std::size_t r = 0; r < runs.size(); ++r) plan_run(r);
  }

  // plan_of[i] holds (plan index + 1) for kernel-routed instances, 0 for
  // scalar ones; a run the planner rejected stays scalar wholesale.
  std::vector<core::KernelPlan> plans;
  std::vector<std::uint32_t> plan_of(n, 0);
  bool any_kernel = false;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!run_plans[r]) continue;
    plans.push_back(std::move(*run_plans[r]));
    const auto tag = static_cast<std::uint32_t>(plans.size());
    for (std::size_t k = runs[r].begin; k < runs[r].end; ++k) plan_of[k] = tag;
    any_kernel = true;
  }

  if (!any_kernel) {
    return run_batch(n, [&](std::size_t lo, std::size_t hi,
                            core::Solution* out) {
      for (std::size_t k = lo; k < hi; ++k) out[k] = solve_scalar(k);
    });
  }

  return run_batch(n, [&](std::size_t lo, std::size_t hi,
                          core::Solution* out) {
    auto& arena = util::Arena::scratch();
    const util::Arena::Scope scope(arena);
    auto ptrs = arena.alloc<const core::Instance*>(hi - lo);
    std::size_t k = lo;
    while (k < hi) {
      const std::uint32_t tag = plan_of[k];
      if (tag == 0) {
        out[k] = solve_scalar(k);
        ++k;
        continue;
      }
      // Contiguous segment of one planned run inside this chunk: solve it
      // in a single kernel pass, bypassing per-instance dispatch and the
      // memo (the kernel is cheaper than a memo probe).
      std::size_t seg_end = k;
      while (seg_end < hi && plan_of[seg_end] == tag) {
        ptrs[seg_end - k] = &instance_at(seg_end);
        ++seg_end;
      }
      const core::KernelPlan& plan = plans[tag - 1];
      core::solve_kernel_run(plan, ptrs.data(), seg_end - k, out + k);
      std::size_t solved = 0;
      for (std::size_t s = k; s < seg_end; ++s) {
        if (out[s].method.empty()) {
          // Kernel handed the instance back (floor violation or a cap
          // overrun it will not adjudicate): re-solve through the scalar
          // path, which does its own accounting.
          out[s] = solve_scalar(s);
        } else {
          ++solved;
        }
      }
      instances_.fetch_add(solved, std::memory_order_relaxed);
      fresh_solves_.fetch_add(solved, std::memory_order_relaxed);
      kernel_solves_.fetch_add(solved, std::memory_order_relaxed);
      kernel_family_[static_cast<std::size_t>(plan.family)].fetch_add(
          solved, std::memory_order_relaxed);
      k = seg_end;
    }
  });
}

std::vector<core::Solution> ReclaimEngine::solve_batch(
    std::span<const core::Instance> instances, const model::EnergyModel& model,
    const core::SolveOptions& options) {
  const auto solve_scalar = [&](std::size_t i) {
    return solve_routed(instances[i], model, options);
  };
  if (!options_.use_kernels) {
    return run_batch(
        instances.size(),
        [&](std::size_t lo, std::size_t hi, core::Solution* out) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = solve_scalar(i);
        });
  }
  return kernel_batch(
      instances.size(),
      [&](std::size_t i) -> const core::Instance& { return instances[i]; },
      [](std::size_t) { return true; }, model, options, solve_scalar);
}

std::vector<core::Solution> ReclaimEngine::solve_batch(
    std::span<const MappedInstance> instances, const model::EnergyModel& model,
    const core::SolveOptions& options) {
  const auto solve_scalar = [&](std::size_t i) {
    return solve_mapped(instances[i], model, options);
  };
  if (!options_.use_kernels) {
    return run_batch(
        instances.size(),
        [&](std::size_t lo, std::size_t hi, core::Solution* out) {
          for (std::size_t i = lo; i < hi; ++i) out[i] = solve_scalar(i);
        });
  }
  return kernel_batch(
      instances.size(),
      [&](std::size_t i) -> const core::Instance& {
        return instances[i].instance;
      },
      [&](std::size_t i) {
        // Sleep-enabled platforms take the race-to-idle route, which the
        // kernels do not model; everything else shares the plain route.
        return !instances[i].instance.platform.has_sleep();
      },
      model, options, solve_scalar);
}

core::Solution ReclaimEngine::solve_one(const core::Instance& instance,
                                        const model::EnergyModel& model,
                                        const core::SolveOptions& options) {
  return solve_routed(instance, model, options);
}

core::Solution ReclaimEngine::solve_one(const MappedInstance& instance,
                                        const model::EnergyModel& model,
                                        const core::SolveOptions& options) {
  return solve_mapped(instance, model, options);
}

void ReclaimEngine::submit(
    MappedInstance instance, model::EnergyModel model, core::SolveOptions options,
    std::function<void(core::Solution, std::exception_ptr)> done) {
  // Owning copies by value: the request outlives the caller's stack frame
  // (a daemon's reader thread has long moved on when a worker picks this
  // up).
  auto run = [this, instance = std::move(instance), model = std::move(model),
              options, done = std::move(done)] {
    try {
      core::Solution solution = solve_mapped(instance, model, options);
      done(std::move(solution), nullptr);
    } catch (...) {
      done(core::Solution{}, std::current_exception());
    }
  };
  if (pool_) {
    // Fire-and-forget: completion is reported through `done`, never
    // through the future (which would just re-wrap the exception).
    (void)pool_->submit(std::move(run));
  } else {
    run();
  }
}

EngineStats ReclaimEngine::stats() const {
  // Safe to call mid-batch from any thread: the counters are relaxed
  // atomics and the memo fields come from the cache's own lock, so the
  // daemon's STATS endpoint samples a running engine live.
  EngineStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.instances = instances_.load(std::memory_order_relaxed);
  s.fresh_solves = fresh_solves_.load(std::memory_order_relaxed);
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.shape_hits = shape_hits_.load(std::memory_order_relaxed);
  s.raced_solves = raced_solves_.load(std::memory_order_relaxed);
  s.crawl_solves = crawl_solves_.load(std::memory_order_relaxed);
  s.joint_solves = joint_solves_.load(std::memory_order_relaxed);
  s.joint_improved = joint_improved_.load(std::memory_order_relaxed);
  s.kernel_solves = kernel_solves_.load(std::memory_order_relaxed);
  s.warm_solves = warm_solves_.load(std::memory_order_relaxed);
  const auto family = [&](core::KernelFamily f) {
    return kernel_family_[static_cast<std::size_t>(f)].load(
        std::memory_order_relaxed);
  };
  s.kernel_single = family(core::KernelFamily::kSingle);
  s.kernel_chain = family(core::KernelFamily::kChain);
  s.kernel_fork = family(core::KernelFamily::kFork);
  s.kernel_tree = family(core::KernelFamily::kTree);
  s.kernel_sp = family(core::KernelFamily::kSp);
  const CacheStats memo = memo_.stats();
  s.memo_entries = memo.entries;
  s.memo_bytes = memo.bytes;
  s.memo_evictions = memo.evictions;
  s.memo_oldest_age_s = memo.oldest_age_s;
  {
    const util::ReadLock lock(shape_mutex_);
    s.shape_entries = shapes_.size();
  }
  return s;
}

void ReclaimEngine::clear_caches() {
  const util::WriteLock shape_lock(shape_mutex_);
  memo_.clear();
  shapes_.clear();
  batches_.store(0);
  instances_.store(0);
  fresh_solves_.store(0);
  memo_hits_.store(0);
  shape_hits_.store(0);
  raced_solves_.store(0);
  crawl_solves_.store(0);
  joint_solves_.store(0);
  joint_improved_.store(0);
  kernel_solves_.store(0);
  warm_solves_.store(0);
  for (auto& counter : kernel_family_) counter.store(0);
}

}  // namespace reclaim::engine
