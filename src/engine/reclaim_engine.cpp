#include "engine/reclaim_engine.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <mutex>
#include <utility>

#include "core/continuous/dispatch.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/vdd/lp_solver.hpp"
#include "engine/instance_key.hpp"
#include "util/error.hpp"

namespace reclaim::engine {

namespace {

/// Chunk size for the shared-cursor scheduler: small enough that a skewed
/// instance cannot strand more than a chunk's worth of work behind it,
/// large enough to amortize the atomic fetch.
std::size_t chunk_size(std::size_t n, std::size_t workers) {
  return std::clamp<std::size_t>(n / (workers * 8), 1, 64);
}

}  // namespace

ReclaimEngine::ReclaimEngine(EngineOptions options)
    : options_(options),
      memo_(CacheLimits{options.memo_capacity, options.memo_bytes}) {
  if (options_.threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

ReclaimEngine::~ReclaimEngine() = default;

std::size_t ReclaimEngine::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

ReclaimEngine::ShapeEntry ReclaimEngine::shape_of(const graph::Digraph& g) {
  if (!options_.reuse_shapes) return {graph::classify(g), nullptr};
  const std::string key = topology_key(g);
  {
    const std::shared_lock lock(shape_mutex_);
    const auto it = shapes_.find(key);
    if (it != shapes_.end()) {
      shape_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  ShapeEntry entry{graph::classify(g), nullptr};
  if (entry.shape == graph::GraphShape::kSeriesParallel) {
    // Decompose once at cache-fill time; every later solve of this
    // topology reuses the tree via ContinuousOptions::sp_hint.
    if (auto tree = graph::sp_decompose(g)) {
      entry.sp_tree = std::make_shared<const graph::SpTree>(std::move(*tree));
    }
  }
  const std::unique_lock lock(shape_mutex_);
  shapes_.emplace(key, entry);
  return entry;
}

core::Solution ReclaimEngine::dispatch(const core::Instance& instance,
                                       const model::EnergyModel& model,
                                       const core::SolveOptions& options) {
  // The Vdd LP is shape-independent; skip the structural analysis.
  if (const auto* vdd = std::get_if<model::VddHoppingModel>(&model)) {
    return core::solve_vdd_lp(instance, *vdd).solution;
  }

  const ShapeEntry entry = shape_of(instance.exec_graph);
  const graph::GraphShape shape = entry.shape;

  const auto solve_modes = [&](const model::ModeSet& modes) -> core::Solution {
    const std::size_t n = instance.exec_graph.num_nodes();
    if (n <= options.exact_discrete_up_to) {
      return core::solve_discrete_exact(instance, modes).solution;
    }
    // exact_discrete_up_to == 0 means "force CONT-ROUND" (callers
    // validating Theorem 5 rely on it), so it disables the DP route too.
    if (options_.chain_dp && options.exact_discrete_up_to > 0 &&
        (shape == graph::GraphShape::kChain ||
         shape == graph::GraphShape::kSingleTask)) {
      return core::solve_chain_dp(instance, modes).solution;
    }
    core::RoundUpOptions round_options;
    round_options.continuous_rel_gap = options.rel_gap;
    return core::solve_round_up(instance, modes, round_options).solution;
  };

  return std::visit(
      [&](const auto& m) -> core::Solution {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          core::ContinuousOptions continuous_options;
          continuous_options.rel_gap = options.rel_gap;
          continuous_options.s_min = options.continuous_s_min;
          continuous_options.leakage = options.leakage;
          continuous_options.shape_hint = shape;
          continuous_options.sp_hint = entry.sp_tree;
          return core::solve_continuous(instance, m, continuous_options);
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          return core::solve_vdd_lp(instance, m).solution;  // unreachable
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          return solve_modes(m.modes);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          return solve_modes(m.modes);
        }
      },
      model);
}

core::Solution ReclaimEngine::solve_routed(const core::Instance& instance,
                                           const model::EnergyModel& model,
                                           const core::SolveOptions& options) {
  instances_.fetch_add(1, std::memory_order_relaxed);
  util::require(instance.deadline > 0.0,
                "ReclaimEngine: instance deadline must be positive");

  std::string key;
  if (options_.memoize) {
    key = instance_key(instance, model, options);
    if (auto cached = memo_.get(key)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *std::move(cached);
    }
  }

  core::Solution solution = dispatch(instance, model, options);
  fresh_solves_.fetch_add(1, std::memory_order_relaxed);

  if (options_.memoize) {
    // Two workers may race on the same key; both computed the identical
    // deterministic solution, so the cache keeps first-in harmlessly and
    // evicts from the LRU end when the entry/byte caps are exceeded.
    memo_.put(key, solution);
  }
  return solution;
}

core::Solution ReclaimEngine::solve_mapped(const MappedInstance& mapped,
                                           const model::EnergyModel& model,
                                           const core::SolveOptions& options) {
  const auto* continuous = std::get_if<model::ContinuousModel>(&model);
  if (continuous == nullptr || !mapped.instance.platform.has_sleep()) {
    // Without idle charges (or under a mode-based model) the mapping does
    // not change the optimum: share the plain route and its memo entries.
    return solve_routed(mapped.instance, model, options);
  }

  instances_.fetch_add(1, std::memory_order_relaxed);
  util::require(mapped.instance.deadline > 0.0,
                "ReclaimEngine: instance deadline must be positive");

  std::string key;
  if (options_.memoize) {
    key = mapped_instance_key(mapped.instance, mapped.mapping, model, options);
    if (auto cached = memo_.get(key)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *std::move(cached);
    }
  }

  core::RaceToIdleOptions race;
  race.continuous.rel_gap = options.rel_gap;
  race.continuous.s_min = options.continuous_s_min;
  race.continuous.leakage = options.leakage;
  const ShapeEntry entry = shape_of(mapped.instance.exec_graph);
  race.continuous.shape_hint = entry.shape;
  race.continuous.sp_hint = entry.sp_tree;
  const core::RaceToIdleResult result = core::solve_race_to_idle(
      mapped.instance, *continuous, mapped.mapping, race);
  fresh_solves_.fetch_add(1, std::memory_order_relaxed);
  (result.raced ? raced_solves_ : crawl_solves_)
      .fetch_add(1, std::memory_order_relaxed);

  if (options_.memoize) {
    memo_.put(key, result.solution);
  }
  return result.solution;
}

std::vector<core::Solution> ReclaimEngine::run_batch(
    std::size_t n, const std::function<core::Solution(std::size_t)>& solve_at) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<core::Solution> out(n);
  if (n == 0) return out;

  const std::size_t workers = pool_ ? std::min(pool_->size(), n) : 1;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = solve_at(i);
    }
    return out;
  }

  const std::size_t chunk = chunk_size(n, workers);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto drain = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) return;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          out[i] = solve_at(i);
        } catch (...) {
          {
            const std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) futures.push_back(pool_->submit(drain));
  for (auto& f : futures) f.get();

  if (first_error) std::rethrow_exception(first_error);
  return out;
}

std::vector<core::Solution> ReclaimEngine::solve_batch(
    std::span<const core::Instance> instances, const model::EnergyModel& model,
    const core::SolveOptions& options) {
  return run_batch(instances.size(), [&](std::size_t i) {
    return solve_routed(instances[i], model, options);
  });
}

std::vector<core::Solution> ReclaimEngine::solve_batch(
    std::span<const MappedInstance> instances, const model::EnergyModel& model,
    const core::SolveOptions& options) {
  return run_batch(instances.size(), [&](std::size_t i) {
    return solve_mapped(instances[i], model, options);
  });
}

core::Solution ReclaimEngine::solve_one(const core::Instance& instance,
                                        const model::EnergyModel& model,
                                        const core::SolveOptions& options) {
  return solve_routed(instance, model, options);
}

core::Solution ReclaimEngine::solve_one(const MappedInstance& instance,
                                        const model::EnergyModel& model,
                                        const core::SolveOptions& options) {
  return solve_mapped(instance, model, options);
}

void ReclaimEngine::submit(
    MappedInstance instance, model::EnergyModel model, core::SolveOptions options,
    std::function<void(core::Solution, std::exception_ptr)> done) {
  // Owning copies by value: the request outlives the caller's stack frame
  // (a daemon's reader thread has long moved on when a worker picks this
  // up).
  auto run = [this, instance = std::move(instance), model = std::move(model),
              options, done = std::move(done)] {
    try {
      core::Solution solution = solve_mapped(instance, model, options);
      done(std::move(solution), nullptr);
    } catch (...) {
      done(core::Solution{}, std::current_exception());
    }
  };
  if (pool_) {
    // Fire-and-forget: completion is reported through `done`, never
    // through the future (which would just re-wrap the exception).
    (void)pool_->submit(std::move(run));
  } else {
    run();
  }
}

EngineStats ReclaimEngine::stats() const {
  // Safe to call mid-batch from any thread: the counters are relaxed
  // atomics and the memo fields come from the cache's own lock, so the
  // daemon's STATS endpoint samples a running engine live.
  EngineStats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.instances = instances_.load(std::memory_order_relaxed);
  s.fresh_solves = fresh_solves_.load(std::memory_order_relaxed);
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.shape_hits = shape_hits_.load(std::memory_order_relaxed);
  s.raced_solves = raced_solves_.load(std::memory_order_relaxed);
  s.crawl_solves = crawl_solves_.load(std::memory_order_relaxed);
  const CacheStats memo = memo_.stats();
  s.memo_entries = memo.entries;
  s.memo_bytes = memo.bytes;
  s.memo_evictions = memo.evictions;
  s.memo_oldest_age_s = memo.oldest_age_s;
  {
    const std::shared_lock lock(shape_mutex_);
    s.shape_entries = shapes_.size();
  }
  return s;
}

void ReclaimEngine::clear_caches() {
  const std::unique_lock shape_lock(shape_mutex_);
  memo_.clear();
  shapes_.clear();
  batches_.store(0);
  instances_.store(0);
  fresh_solves_.store(0);
  memo_hits_.store(0);
  shape_hits_.store(0);
  raced_solves_.store(0);
  crawl_solves_.store(0);
}

}  // namespace reclaim::engine
