#include "engine/solution_cache.hpp"

#include <utility>

namespace reclaim::engine {

SolutionCache::SolutionCache(CacheLimits limits) : limits_(limits) {}

std::size_t SolutionCache::entry_bytes(const Node& node) {
  // Estimated, not measured: the heap knows the truth, but an estimate
  // that counts every growing field keeps the byte cap meaningful. The
  // key is charged twice-ish via the index's bucket overhead, folded
  // into the fixed per-entry constant.
  constexpr std::size_t kPerEntryOverhead =
      sizeof(Node) + 64;  // list node + index bucket + allocator slack
  std::size_t bytes = kPerEntryOverhead + node.key.size() +
                      node.solution.method.size() +
                      node.solution.speeds.size() * sizeof(double);
  for (const auto& profile : node.solution.profiles) {
    bytes += sizeof(profile) +
             profile.segments.size() * sizeof(profile.segments[0]);
  }
  return bytes;
}

std::optional<core::Solution> SolutionCache::get(const std::string& key) {
  const util::MutexLock lock(mutex_);
  const auto it = index_.find(std::string_view(key));
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  it->second->touched = Clock::now();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->solution;
}

void SolutionCache::put(const std::string& key, const core::Solution& solution) {
  const util::MutexLock lock(mutex_);
  if (const auto it = index_.find(std::string_view(key)); it != index_.end()) {
    // Two workers racing on one key compute identical deterministic
    // solutions; refreshing recency is all there is to do.
    it->second->touched = Clock::now();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, solution, 0, Clock::now()});
  const auto node = lru_.begin();
  node->bytes = entry_bytes(*node);
  bytes_ += node->bytes;
  index_.emplace(std::string_view(node->key), node);
  ++insertions_;
  evict_to_limits_locked();
}

void SolutionCache::evict_to_limits_locked() {
  const auto over = [this] {
    return (limits_.max_entries != 0 && lru_.size() > limits_.max_entries) ||
           (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes);
  };
  // Never evict the entry just inserted (size 1): an oversized single
  // solution is admitted alone rather than thrashing to emptiness.
  while (lru_.size() > 1 && over()) {
    const auto victim = std::prev(lru_.end());
    bytes_ -= victim->bytes;
    index_.erase(std::string_view(victim->key));
    lru_.erase(victim);
    ++evictions_;
  }
}

void SolutionCache::clear() {
  const util::MutexLock lock(mutex_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = misses_ = insertions_ = evictions_ = 0;
}

CacheStats SolutionCache::stats() const {
  const util::MutexLock lock(mutex_);
  CacheStats s;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  if (!lru_.empty()) {
    s.oldest_age_s =
        std::chrono::duration<double>(Clock::now() - lru_.back().touched)
            .count();
  }
  return s;
}

}  // namespace reclaim::engine
