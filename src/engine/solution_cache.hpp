// SolutionCache: the engine's long-lived solution memo as a proper cache.
//
// The PR-1 memo was an append-only map that simply stopped caching when
// full — fine for one batch, wrong for a daemon that must keep serving
// for days: the working set drifts, and whatever filled the map first
// squats in it forever. This is the replacement policy the serve layer
// needs: least-recently-used eviction under two independent caps (entry
// count and estimated bytes), with a stats surface (hit rate, size,
// evictions, age of the coldest entry) that the daemon's STATS endpoint
// samples live — see docs/architecture.md ("Long-lived caches").
//
// Thread safety: every operation takes the internal mutex (a hit mutates
// the recency list, so even lookups are writes). Critical sections are
// O(1) and tiny; the solvers the cache fronts are micro- to milliseconds,
// so the lock is never the bottleneck. The guarded fields are annotated
// (util/annotated_mutex.hpp), so Clang's -Wthread-safety proves every
// access really is under the lock.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/problem.hpp"
#include "util/annotated_mutex.hpp"

namespace reclaim::engine {

/// Eviction policy caps; 0 means "that cap is off". With both off the
/// cache grows without bound (the batch-library behavior).
struct CacheLimits {
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;
};

/// Point-in-time counters; sampled under the cache lock, so a snapshot is
/// internally consistent even while solves are in flight.
struct CacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< estimated footprint of keys + solutions
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Seconds since the least-recently-used entry was last touched: how
  /// stale the cold end of the cache is (0 when empty).
  double oldest_age_s = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class SolutionCache {
 public:
  explicit SolutionCache(CacheLimits limits = {});

  /// The cached solution for `key`, refreshing its recency; nullopt on
  /// miss. Counts a hit or a miss either way.
  [[nodiscard]] std::optional<core::Solution> get(const std::string& key);

  /// Inserts (or refreshes) key -> solution, then evicts from the cold
  /// end until both caps hold again. An entry larger than max_bytes by
  /// itself is still admitted alone — the caller already paid for the
  /// solve, and it will be the first evicted.
  void put(const std::string& key, const core::Solution& solution);

  /// Drops every entry and resets the counters.
  void clear();

  [[nodiscard]] CacheStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Node {
    std::string key;
    core::Solution solution;
    std::size_t bytes = 0;
    Clock::time_point touched{};
  };
  using LruList = std::list<Node>;  // front = hottest, back = next to evict

  static std::size_t entry_bytes(const Node& node);
  void evict_to_limits_locked() RECLAIM_REQUIRES(mutex_);

  CacheLimits limits_;
  mutable util::Mutex mutex_;
  LruList lru_ RECLAIM_GUARDED_BY(mutex_);
  /// Views into the list nodes' own keys; list nodes never relocate, so
  /// the views stay valid until the node is erased.
  std::unordered_map<std::string_view, LruList::iterator> index_
      RECLAIM_GUARDED_BY(mutex_);
  std::size_t bytes_ RECLAIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ RECLAIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ RECLAIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ RECLAIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ RECLAIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace reclaim::engine
