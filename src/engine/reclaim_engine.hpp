// ReclaimEngine: the batched front door of the library.
//
// The paper's experiments — and any production deployment — solve large
// sweeps of independent MinEnergy instances, not one instance at a time.
// The engine turns core::solve() into a high-throughput batch service:
//
//   - solve_batch() shards a span of instances across a ThreadPool using
//     dynamic (work-stealing-friendly) chunking: workers pull small index
//     chunks from a shared atomic cursor, so skewed instances (one huge
//     general DAG among many chains) cannot strand a thread.
//   - A per-structure dispatch cache classifies each distinct topology
//     once (graph::classify) and routes chains, trees and series-parallel
//     graphs straight to their closed-form/DP solvers via
//     ContinuousOptions::shape_hint, skipping re-classification for
//     repeated shapes.
//   - A solution memo keyed by a canonical instance encoding
//     (engine/instance_key.hpp) returns identical sub-instances of a sweep
//     without re-solving; memoized results are bit-identical to fresh ones
//     because every solver is deterministic. The memo is an LRU cache
//     under entry and byte caps (engine/solution_cache.hpp), so one
//     engine can live for days under a solve daemon (tools/reclaim_serve)
//     and be shared by every client that connects.
//
// Results are deterministic regardless of thread count: output slot i
// always holds the solution of instance i, and routing depends only on
// the instance itself. The first exception raised by a poisoned instance
// aborts the batch and is rethrown on the caller's thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/continuous/batch_kernels.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/solution_cache.hpp"
#include "graph/classify.hpp"
#include "graph/sp_tree.hpp"
#include "model/energy_model.hpp"
#include "sched/mapping.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_pool.hpp"

namespace reclaim::engine {

/// Default minimum consecutive compatible instances before solve_batch
/// routes a run through the batched kernels (EngineOptions::kernel_min_run);
/// shorter runs stay scalar — the plan amortizes over the run, and tiny
/// runs would pay more in planning than they save.
inline constexpr std::size_t kKernelMinRun = 4;

struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). With 1
  /// the batch runs inline on the caller's thread (no pool).
  std::size_t threads = 0;
  /// Memoize solutions by canonical instance key.
  bool memoize = true;
  /// Memo entry cap (0 = unbounded). Once full the least-recently-used
  /// entry is evicted, so a long-lived engine tracks its working set
  /// instead of freezing on whatever filled the cache first.
  std::size_t memo_capacity = 1 << 16;
  /// Memo byte cap (estimated footprint; 0 = unbounded). Evicts from the
  /// cold end alongside the entry cap — the knob a daemon sets
  /// (reclaim_serve --memo-mb) to bound resident memory.
  std::size_t memo_bytes = 0;
  /// Cache graph::classify results (and SP decompositions) by topology key.
  bool reuse_shapes = true;
  /// Route Discrete/Incremental chains too large for branch-and-bound to
  /// the pseudo-polynomial chain DP instead of CONT-ROUND.
  bool chain_dp = true;
  /// Detect homogeneous closed-form runs inside solve_batch (>=
  /// kKernelMinRun consecutive instances sharing topology, power model
  /// and cap) and solve them through the structure-of-arrays kernels
  /// (core/continuous/batch_kernels) instead of per-instance dispatch.
  /// Results are bit-identical to the scalar path; kernel-path solves
  /// bypass the memo (they are cheaper than a memo probe) and are
  /// reported separately via EngineStats::kernel_solves.
  bool use_kernels = true;
  /// Minimum consecutive compatible instances before a run is routed
  /// through the batched kernels; shorter runs stay scalar. Must be >= 2
  /// (validated at construction): a "run" of one instance has nothing to
  /// amortize the plan over, and the scalar path is strictly cheaper.
  std::size_t kernel_min_run = kKernelMinRun;
  /// Seed numeric/barrier solves from the last solution of the same
  /// topology (the dispatch-cache shape is the memo slot), so parameter
  /// sweeps warm-start neighbor solves. The solver's acceptance guard
  /// (strictly feasible start + objective no worse than the cold start)
  /// keeps results deterministic given the solve order; they may differ
  /// from cold solves only within the duality-gap target, which is why
  /// this is opt-in — the default engine stays bit-identical across
  /// thread counts. Requires reuse_shapes.
  bool warm_start = false;
};

/// Cumulative counters since construction (or the last clear_caches()).
/// Every counter is a relaxed atomic inside the engine, so stats() may be
/// called from any thread *while a batch is in flight* — the daemon's
/// STATS endpoint samples it live; the snapshot is cheap and never blocks
/// the workers (the memo_* fields are read under the cache's own lock).
struct EngineStats {
  std::size_t batches = 0;
  std::size_t instances = 0;     ///< total instances seen
  std::size_t fresh_solves = 0;  ///< instances that ran a solver
  std::size_t memo_hits = 0;     ///< instances answered from the memo
  std::size_t shape_hits = 0;    ///< classifications answered from the cache
  /// Race-to-idle routing of mapped batches (fresh solves only; memoized
  /// answers are not re-attributed): sleep-enabled continuous instances
  /// where racing strictly won vs where the crawl stayed optimal.
  std::size_t raced_solves = 0;
  std::size_t crawl_solves = 0;
  /// Joint speed/sleep routing of mapped batches (SolveOptions::sleep_mode
  /// == kJoint, fresh solves only): instances that ran the joint refiner,
  /// and the subset where it strictly beat the race-to-idle anchor.
  std::size_t joint_solves = 0;
  std::size_t joint_improved = 0;
  /// Fast-path split of the fresh solves: instances solved by the batched
  /// closed-form kernels (a subset of fresh_solves; the remainder took
  /// the scalar dispatch path) and barrier solves that received a warm
  /// seed from the dispatch cache (EngineOptions::warm_start).
  std::size_t kernel_solves = 0;
  std::size_t warm_solves = 0;
  /// Per-family split of kernel_solves (which stays the total): which
  /// closed-form kernel solved each fast-path instance. The tree/SP
  /// counters are the observable for "sweeps stopped re-decomposing".
  std::size_t kernel_single = 0;
  std::size_t kernel_chain = 0;
  std::size_t kernel_fork = 0;
  std::size_t kernel_tree = 0;
  std::size_t kernel_sp = 0;
  /// Long-lived memo surface (engine/solution_cache.hpp): live entries,
  /// estimated bytes, LRU evictions so far, and how stale the coldest
  /// entry is.
  std::size_t memo_entries = 0;
  std::size_t memo_bytes = 0;
  std::size_t memo_evictions = 0;
  double memo_oldest_age_s = 0.0;
  /// Cached topology classifications (the shape/dispatch cache).
  std::size_t shape_entries = 0;
};

/// A MinEnergy instance together with the mapping its execution graph was
/// built from. The mapping is what idle-interval accounting needs beyond
/// the instance's task -> processor assignment (gap enumeration depends on
/// each processor's execution order), so mapped batches unlock the
/// engine-integrated race-to-idle route: sleep-enabled continuous
/// instances are solved crawl-vs-race instead of busy-only.
struct MappedInstance {
  core::Instance instance;
  sched::Mapping mapping{1};
};

class ReclaimEngine {
 public:
  explicit ReclaimEngine(EngineOptions options = {});
  ~ReclaimEngine();

  ReclaimEngine(const ReclaimEngine&) = delete;
  ReclaimEngine& operator=(const ReclaimEngine&) = delete;

  /// Solves every instance under `model`; slot i of the result is the
  /// solution of instances[i]. Rethrows the first exception raised by a
  /// poisoned instance after aborting the remaining work.
  [[nodiscard]] std::vector<core::Solution> solve_batch(
      std::span<const core::Instance> instances, const model::EnergyModel& model,
      const core::SolveOptions& options = {});

  /// Mapped batch: same sharding/caching, plus the engine-integrated
  /// race-to-idle route — continuous instances whose platform carries a
  /// sleep spec are solved via core::solve_race_to_idle under their
  /// mapping (memoized under the mapping-extended key), every other
  /// instance takes the plain route. EngineStats reports the crawl-vs-
  /// raced split of the fresh sleep-routed solves.
  [[nodiscard]] std::vector<core::Solution> solve_batch(
      std::span<const MappedInstance> instances, const model::EnergyModel& model,
      const core::SolveOptions& options = {});

  /// Single-instance convenience: goes through the same caches.
  [[nodiscard]] core::Solution solve_one(const core::Instance& instance,
                                         const model::EnergyModel& model,
                                         const core::SolveOptions& options = {});

  /// Mapped single-instance convenience: the race-to-idle route of the
  /// mapped solve_batch.
  [[nodiscard]] core::Solution solve_one(const MappedInstance& instance,
                                         const model::EnergyModel& model,
                                         const core::SolveOptions& options = {});

  /// Asynchronous single-instance solve — the serve daemon's per-request
  /// entry point. The solve runs on the engine's pool (inline on the
  /// caller's thread when the engine is single-threaded) through the same
  /// caches as the batch routes, and `done` is invoked exactly once from
  /// whichever thread finished: with the solution on success, or with a
  /// non-null exception_ptr when the instance is poisoned. Unlike
  /// solve_batch there is no cross-request abort — one bad request must
  /// not take down a daemon's other clients.
  void submit(MappedInstance instance, model::EnergyModel model,
              core::SolveOptions options,
              std::function<void(core::Solution, std::exception_ptr)> done);

  /// Worker threads the engine dispatches onto (>= 1).
  [[nodiscard]] std::size_t threads() const noexcept;

  [[nodiscard]] EngineStats stats() const;

  /// Drops the memo and dispatch caches and resets the counters.
  void clear_caches();

 private:
  /// Last numeric solution of one topology, shared through the dispatch
  /// cache so sweeps can seed neighbor solves (EngineOptions::warm_start).
  /// The speeds snapshot is copy-on-write: readers take the shared_ptr
  /// under the slot mutex and release it immediately, writers swap in a
  /// fresh vector — solves never hold the lock.
  struct WarmSlot {
    util::Mutex mutex;
    std::shared_ptr<const std::vector<double>> speeds
        RECLAIM_GUARDED_BY(mutex);
  };

  /// Cached structural analysis of one topology: the classification plus,
  /// for series-parallel graphs, the decomposition tree (so repeated SP
  /// shapes skip the decomposition, their dominant structural cost), the
  /// flattened composition plan for tree/SP shapes (shared with the
  /// batched kernels so neither the scalar nor the kernel path re-walks
  /// the topology), plus the warm-start slot when warm starts are enabled.
  struct ShapeEntry {
    graph::GraphShape shape = graph::GraphShape::kGeneral;
    std::shared_ptr<const graph::SpTree> sp_tree;
    std::shared_ptr<const core::CompositionPlan> comp;
    std::shared_ptr<WarmSlot> warm;
  };

  core::Solution solve_routed(const core::Instance& instance,
                              const model::EnergyModel& model,
                              const core::SolveOptions& options);
  core::Solution solve_mapped(const MappedInstance& instance,
                              const model::EnergyModel& model,
                              const core::SolveOptions& options);
  core::Solution dispatch(const core::Instance& instance,
                          const model::EnergyModel& model,
                          const core::SolveOptions& options);
  ShapeEntry shape_of(const graph::Digraph& g);
  /// Shared dynamic-chunking drain loop of both solve_batch overloads:
  /// solve_range(lo, hi, out) fills out[lo..hi) (out points at the full
  /// result array); the first exception aborts the batch and is rethrown
  /// on the caller's thread. Range-based so kernel segments inside a
  /// chunk are solved in one pass.
  std::vector<core::Solution> run_batch(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, core::Solution*)>&
          solve_range);
  /// Kernel-aware batch driver shared by both solve_batch overloads:
  /// discovers candidate runs on the caller's thread (cheap structural
  /// predicates only), plans them — sharded across the pool when there is
  /// more than one, each plan reusing the shape cache's classification /
  /// SP decomposition / composition plan for its head topology — then
  /// drains through run_batch solving kernel segments in one pass per
  /// chunk and everything else via solve_scalar.
  std::vector<core::Solution> kernel_batch(
      std::size_t n,
      const std::function<const core::Instance&(std::size_t)>& instance_at,
      const std::function<bool(std::size_t)>& kernel_ok,
      const model::EnergyModel& model, const core::SolveOptions& options,
      const std::function<core::Solution(std::size_t)>& solve_scalar);

  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads == 1

  SolutionCache memo_;  ///< LRU solution memo, shared across clients

  mutable util::SharedMutex shape_mutex_;
  std::unordered_map<std::string, ShapeEntry> shapes_
      RECLAIM_GUARDED_BY(shape_mutex_);

  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> instances_{0};
  std::atomic<std::size_t> fresh_solves_{0};
  std::atomic<std::size_t> memo_hits_{0};
  std::atomic<std::size_t> shape_hits_{0};
  std::atomic<std::size_t> raced_solves_{0};
  std::atomic<std::size_t> crawl_solves_{0};
  std::atomic<std::size_t> joint_solves_{0};
  std::atomic<std::size_t> joint_improved_{0};
  std::atomic<std::size_t> kernel_solves_{0};
  std::atomic<std::size_t> warm_solves_{0};
  /// Per-family split of kernel_solves_, indexed by core::KernelFamily.
  std::atomic<std::size_t> kernel_family_[core::kKernelFamilies]{};
};

}  // namespace reclaim::engine
