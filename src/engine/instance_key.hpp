// Canonical byte-string keys for the engine's caches.
//
// Two granularities:
//   - topology_key: node count + edge list only. Two instances share it
//     exactly when their execution graphs have identical node ids and
//     edges, which is what the per-structure dispatch cache needs (the
//     classification ignores weights, deadlines and models).
//   - instance_key: topology + weights + deadline + the full platform
//     (every processor's power model — kind, alpha, p_static, and the
//     sleep spec's idle/sleep power and wake cost — plus its speed cap;
//     see docs/architecture.md, "Memo-key fields") + the task -> processor
//     assignment + energy model + the solver options that affect the
//     answer. Two instances share it exactly when a deterministic solver
//     must return the same Solution, which is what the solution memo
//     needs; distinct platforms or assignments can never collide.
//   - mapped_instance_key: instance_key + the mapping's ordered
//     per-processor task lists, for the engine's race-to-idle route
//     (idle-gap charges depend on the execution order, not just the
//     assignment).
//
// Keys are deterministic byte encodings (doubles by bit pattern with -0.0
// canonicalized to 0.0 and NaN rejected, sizes as fixed-width integers),
// so equal keys imply equal inputs — the memo never needs a structural
// comparison and hash collisions cannot alias results.
#pragma once

#include <string>

#include "core/problem.hpp"
#include "core/solve.hpp"
#include "graph/digraph.hpp"
#include "model/energy_model.hpp"
#include "sched/mapping.hpp"

namespace reclaim::engine {

/// Canonical encoding of the graph structure (ids + edges, no weights).
[[nodiscard]] std::string topology_key(const graph::Digraph& g);

/// Canonical encoding of everything that determines solve()'s answer.
[[nodiscard]] std::string instance_key(const core::Instance& instance,
                                       const model::EnergyModel& model,
                                       const core::SolveOptions& options);

/// Canonical encoding of everything that determines a mapped (race-to-idle
/// routed) solve's answer: instance_key plus the mapping's ordered lists.
[[nodiscard]] std::string mapped_instance_key(const core::Instance& instance,
                                              const sched::Mapping& mapping,
                                              const model::EnergyModel& model,
                                              const core::SolveOptions& options);

}  // namespace reclaim::engine
