#include "engine/instance_key.hpp"

#include <cstdint>
#include <cstring>

namespace reclaim::engine {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_double(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_modes(std::string& out, const model::ModeSet& modes) {
  put_u64(out, modes.size());
  for (double s : modes.speeds()) put_double(out, s);
}

// Every field that determines the power model's math goes into the key:
// kind tag, exponent, and static power. Hashing alpha alone would alias
// two models that differ only in p_static onto one memo entry.
void put_power(std::string& out, const model::PowerModel& power) {
  out.push_back(power.kind() == model::PowerModel::Kind::kPowerLaw ? 'p' : 's');
  put_double(out, power.alpha());
  put_double(out, power.p_static());
}

void put_topology(std::string& out, const graph::Digraph& g) {
  put_u64(out, g.num_nodes());
  put_u64(out, g.num_edges());
  for (const auto& e : g.edges()) {
    put_u64(out, e.from);
    put_u64(out, e.to);
  }
}

void put_model(std::string& out, const model::EnergyModel& energy_model) {
  std::visit(
      [&out](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          out.push_back('C');
          put_double(out, m.s_max);
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          out.push_back('D');
          put_modes(out, m.modes);
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          out.push_back('V');
          put_modes(out, m.modes);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          out.push_back('I');
          put_double(out, m.s_min);
          put_double(out, m.s_max);
          put_double(out, m.delta);
        }
      },
      energy_model);
}

}  // namespace

std::string topology_key(const graph::Digraph& g) {
  std::string key;
  key.reserve(16 + 16 * g.num_edges());
  put_topology(key, g);
  return key;
}

std::string instance_key(const core::Instance& instance,
                         const model::EnergyModel& model,
                         const core::SolveOptions& options) {
  const auto& g = instance.exec_graph;
  std::string key;
  key.reserve(64 + 8 * g.num_nodes() + 16 * g.num_edges());
  put_topology(key, g);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) put_double(key, g.weight(v));
  put_double(key, instance.deadline);
  put_power(key, instance.power);
  put_model(key, model);
  put_u64(key, options.exact_discrete_up_to);
  put_double(key, options.rel_gap);
  put_double(key, options.continuous_s_min);
  return key;
}

}  // namespace reclaim::engine
