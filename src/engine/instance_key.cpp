#include "engine/instance_key.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "util/error.hpp"

namespace reclaim::engine {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_double(std::string& out, double v) {
  // Bit patterns make equal keys imply equal inputs, but the two IEEE
  // zeros are mathematically identical while differing in the sign bit: a
  // parsed "-0.0" weight or p_static must hit the same memo entry as 0.0.
  // NaN is the dual failure (equal bits, never equal as a value) and can
  // only poison the memo — reject it here with a clear error.
  util::require(!std::isnan(v), "instance key: NaN is not a valid field value");
  if (v == 0.0) v = 0.0;  // canonicalize -0.0
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_modes(std::string& out, const model::ModeSet& modes) {
  put_u64(out, modes.size());
  for (double s : modes.speeds()) put_double(out, s);
}

// Every field that determines the power model's math goes into the key:
// kind tag, exponent, static power, and the three sleep-spec fields
// (idle/sleep power and wake cost feed the platform accounting and the
// race-to-idle layer). Hashing a subset would alias distinct models onto
// one memo entry.
void put_power(std::string& out, const model::PowerModel& power) {
  out.push_back(power.kind() == model::PowerModel::Kind::kPowerLaw ? 'p' : 's');
  put_double(out, power.alpha());
  put_double(out, power.p_static());
  put_double(out, power.sleep().p_idle);
  put_double(out, power.sleep().p_sleep);
  put_double(out, power.sleep().e_wake);
}

// The whole platform (every processor's power model and cap) plus the
// task -> processor assignment: per-task coefficients determine every
// solver's answer, so hashing only one processor's model would alias
// distinct heterogeneous platforms onto one memo entry.
void put_platform(std::string& out, const core::Instance& instance) {
  put_u64(out, instance.platform.size());
  for (const model::ProcessorSpec& spec : instance.platform.specs()) {
    put_power(out, spec.power);
    put_double(out, spec.s_max);
  }
  put_u64(out, instance.assignment.size());
  for (std::size_t p : instance.assignment) put_u64(out, p);
}

void put_topology(std::string& out, const graph::Digraph& g) {
  put_u64(out, g.num_nodes());
  put_u64(out, g.num_edges());
  for (const auto& e : g.edges()) {
    put_u64(out, e.from);
    put_u64(out, e.to);
  }
}

void put_model(std::string& out, const model::EnergyModel& energy_model) {
  std::visit(
      [&out](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, model::ContinuousModel>) {
          out.push_back('C');
          put_double(out, m.s_max);
        } else if constexpr (std::is_same_v<M, model::DiscreteModel>) {
          out.push_back('D');
          put_modes(out, m.modes);
        } else if constexpr (std::is_same_v<M, model::VddHoppingModel>) {
          out.push_back('V');
          put_modes(out, m.modes);
        } else {
          static_assert(std::is_same_v<M, model::IncrementalModel>);
          out.push_back('I');
          put_double(out, m.s_min);
          put_double(out, m.s_max);
          put_double(out, m.delta);
        }
      },
      energy_model);
}

}  // namespace

// EngineOptions never enters the key: every field is fixed for the
// engine's lifetime, so one memo never sees two settings of any of them —
// and the fields that could change answers (warm_start) or routing
// (chain_dp, use_kernels, kernel_min_run) either bypass the memo entirely
// or are bit-identical by contract.
// key-exempt(threads): scheduling only; solutions are thread-count invariant
// key-exempt(memoize): controls the cache itself, not what is cached
// key-exempt(memo_capacity): cache sizing, never the cached value
// key-exempt(memo_bytes): cache sizing, never the cached value
// key-exempt(reuse_shapes): classification cache; same answer either way
// key-exempt(chain_dp): route choice between bit-identical exact solvers
// key-exempt(use_kernels): kernel-path solves bypass the memo entirely
// key-exempt(kernel_min_run): kernel routing threshold; kernels skip the memo
// key-exempt(warm_start): warm solutions are never memo sources of another
//   engine; one engine has one fixed setting for its whole memo lifetime

std::string topology_key(const graph::Digraph& g) {
  std::string key;
  key.reserve(16 + 16 * g.num_edges());
  put_topology(key, g);
  return key;
}

std::string instance_key(const core::Instance& instance,
                         const model::EnergyModel& model,
                         const core::SolveOptions& options) {
  const auto& g = instance.exec_graph;
  std::string key;
  key.reserve(64 + 8 * g.num_nodes() + 16 * g.num_edges());
  put_topology(key, g);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) put_double(key, g.weight(v));
  put_double(key, instance.deadline);
  put_platform(key, instance);
  put_model(key, model);
  put_u64(key, options.exact_discrete_up_to);
  put_double(key, options.rel_gap);
  put_double(key, options.continuous_s_min);
  // One byte per leakage mode: Exact and Reduction answers differ whenever
  // the reduction is suboptimal, so aliasing them would serve the wrong
  // cached solution (docs/architecture.md, "Memo-key fields").
  key.push_back(options.leakage == core::LeakageMode::kExact ? 'X' : 'R');
  // One byte per sleep_mode: race, joint and DP answers differ on
  // sleep-enabled instances, so aliasing them would serve the wrong
  // cached solution (docs/architecture.md, "Memo-key fields").
  switch (options.sleep_mode) {
    case core::SleepMode::kJoint:
      key.push_back('J');
      break;
    case core::SleepMode::kDp:
      key.push_back('P');
      break;
    case core::SleepMode::kRace:
      key.push_back('R');
      break;
  }
  return key;
}

std::string mapped_instance_key(const core::Instance& instance,
                                const sched::Mapping& mapping,
                                const model::EnergyModel& model,
                                const core::SolveOptions& options) {
  std::string key = instance_key(instance, model, options);
  // The ordered lists, not just the assignment: idle-gap enumeration (and
  // hence the race-to-idle objective) depends on the execution order of
  // each processor's tasks.
  key.push_back('M');
  put_u64(key, mapping.num_processors());
  for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
    const auto& tasks = mapping.tasks_on(p);
    put_u64(key, tasks.size());
    for (graph::NodeId v : tasks) put_u64(key, v);
  }
  return key;
}

}  // namespace reclaim::engine
