#include "model/platform.hpp"

#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace reclaim::model {

namespace {

void validate_spec(const ProcessorSpec& spec) {
  // PowerModel construction already validated alpha/p_static/sleep; the
  // cap is the only platform-level field.
  util::require(spec.s_max > 0.0, "processor speed cap must be positive");
}

}  // namespace

Platform::Platform(const PowerModel& power) : procs_(1) {
  procs_[0].power = power;
}

Platform::Platform(std::vector<ProcessorSpec> procs)
    : procs_(std::move(procs)) {
  util::require(!procs_.empty(), "a platform needs at least one processor");
  for (const ProcessorSpec& spec : procs_) validate_spec(spec);
}

Platform Platform::uniform(std::size_t n, const PowerModel& power,
                           double s_max) {
  util::require(n >= 1, "a platform needs at least one processor");
  ProcessorSpec spec{power, s_max};
  validate_spec(spec);
  return Platform(std::vector<ProcessorSpec>(n, spec));
}

const ProcessorSpec& Platform::spec(std::size_t p) const {
  util::require(p < procs_.size(), "processor index out of range");
  return procs_[p];
}

bool Platform::homogeneous() const {
  for (std::size_t p = 1; p < procs_.size(); ++p) {
    if (!(procs_[p] == procs_[0])) return false;
  }
  return true;
}

bool Platform::has_sleep() const {
  for (const ProcessorSpec& spec : procs_) {
    if (spec.power.has_sleep()) return true;
  }
  return false;
}

std::string Platform::name() const {
  const auto spec_name = [](const ProcessorSpec& spec) {
    std::ostringstream out;
    out << spec.power.name();
    if (spec.s_max != std::numeric_limits<double>::infinity()) {
      out << " cap " << spec.s_max;
    }
    return out.str();
  };
  if (homogeneous()) {
    if (procs_.size() == 1) return spec_name(procs_[0]);
    std::ostringstream out;
    out << procs_.size() << " x [" << spec_name(procs_[0]) << "]";
    return out.str();
  }
  std::ostringstream out;
  out << "[";
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    if (p > 0) out << " | ";
    out << spec_name(procs_[p]);
  }
  out << "]";
  return out.str();
}

}  // namespace reclaim::model
