// Discrete speed mode sets.
//
// The Discrete and Vdd-Hopping models run on an arbitrary sorted set of
// modes s_1 < ... < s_m; the Incremental model spaces them regularly,
// s = s_min + i * delta ("the modern counterpart of a potentiometer knob",
// as the paper puts it).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace reclaim::model {

class ModeSet {
 public:
  /// Takes arbitrary positive speeds; they are sorted and deduplicated.
  /// At least one mode is required.
  explicit ModeSet(std::vector<double> speeds);

  /// Incremental modes: s_min + i*delta for 0 <= i <= (s_max-s_min)/delta.
  /// Requires 0 < s_min <= s_max and delta > 0. The top mode is the largest
  /// grid point <= s_max (the paper's definition).
  [[nodiscard]] static ModeSet incremental(double s_min, double s_max, double delta);

  [[nodiscard]] std::size_t size() const noexcept { return speeds_.size(); }
  [[nodiscard]] double speed(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& speeds() const noexcept { return speeds_; }

  [[nodiscard]] double min_speed() const noexcept { return speeds_.front(); }
  [[nodiscard]] double max_speed() const noexcept { return speeds_.back(); }

  /// Index of the smallest mode >= s (within relative tolerance `rel_tol`
  /// to absorb numerical noise from upstream solvers); nullopt when s
  /// exceeds the fastest mode.
  [[nodiscard]] std::optional<std::size_t> index_at_or_above(
      double s, double rel_tol = 1e-9) const;

  /// Index of the largest mode <= s (within tolerance); nullopt when s is
  /// below the slowest mode.
  [[nodiscard]] std::optional<std::size_t> index_at_or_below(
      double s, double rel_tol = 1e-9) const;

  /// True when `s` coincides with a mode (within relative tolerance).
  [[nodiscard]] bool contains(double s, double rel_tol = 1e-9) const;

  /// Largest gap between consecutive modes — the alpha of Proposition 1's
  /// Discrete transfer bound. Zero for a single mode.
  [[nodiscard]] double max_gap() const noexcept;

 private:
  std::vector<double> speeds_;
};

}  // namespace reclaim::model
