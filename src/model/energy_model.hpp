// The four energy models of the paper as a closed variant.
#pragma once

#include <limits>
#include <string>
#include <variant>

#include "model/speed_set.hpp"

namespace reclaim::model {

/// Continuous: any speed in [0, s_max], constant per task (the paper's
/// theoretical reference model).
struct ContinuousModel {
  double s_max = std::numeric_limits<double>::infinity();
};

/// Discrete: arbitrary modes, one constant mode per task.
struct DiscreteModel {
  ModeSet modes;
};

/// Vdd-Hopping: same modes as Discrete, but the speed may change during a
/// task; a task's execution is a list of (mode, duration) segments.
struct VddHoppingModel {
  ModeSet modes;
};

/// Incremental: regularly spaced modes s_min + i*delta in [s_min, s_max],
/// one constant mode per task.
struct IncrementalModel {
  IncrementalModel(double s_min_, double s_max_, double delta_)
      : s_min(s_min_), s_max(s_max_), delta(delta_),
        modes(ModeSet::incremental(s_min_, s_max_, delta_)) {}

  double s_min;
  double s_max;
  double delta;
  ModeSet modes;
};

using EnergyModel =
    std::variant<ContinuousModel, DiscreteModel, VddHoppingModel, IncrementalModel>;

/// Fastest admissible speed of the model.
[[nodiscard]] double max_speed(const EnergyModel& model);

/// Slowest admissible speed of the model (0 for Continuous).
[[nodiscard]] double min_speed(const EnergyModel& model);

/// The mode set of a mode-based model; throws InvalidArgument for Continuous.
[[nodiscard]] const ModeSet& modes_of(const EnergyModel& model);

/// True when a constant per-task speed `s` is admissible under `model`.
/// (For VddHopping this checks membership in the mode set; admissibility of
/// full profiles is checked by sched::validate_profiles.)
[[nodiscard]] bool is_admissible_speed(const EnergyModel& model, double s,
                                       double rel_tol = 1e-9);

[[nodiscard]] std::string model_name(const EnergyModel& model);

}  // namespace reclaim::model
