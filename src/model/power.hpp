// The dynamic power law of the paper: a processor at speed s dissipates
// s^alpha watts (alpha = 3 in the paper, after [Chandrakasan-Sinha'01,
// Ishihara-Yasuura'98]); running task weight w at constant speed s for
// duration d = w/s therefore costs w * s^(alpha-1) joules.
//
// Everything downstream is parameterized by alpha > 1 so the library also
// covers the alpha in (1, 3] range used elsewhere in the speed-scaling
// literature (e.g. Bansal-Kimbrel-Pruhs). PowerLaw is the pure-dynamic
// member of the pluggable power-model layer; see model/power_model.hpp for
// the leakage-aware StaticPowerLaw and the PowerModel wrapper the solvers
// consume.
#pragma once

namespace reclaim::model {

class PowerLaw {
 public:
  /// alpha must be > 1 (strict convexity of the energy/duration tradeoff).
  explicit PowerLaw(double alpha = 3.0);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Instantaneous power at speed s: s^alpha.
  [[nodiscard]] double power(double speed) const;

  /// Energy of running at speed s for duration d: s^alpha * d.
  [[nodiscard]] double energy(double speed, double duration) const;

  /// Energy of executing weight w at constant speed s: w * s^(alpha-1).
  /// Zero-weight tasks cost nothing regardless of speed.
  [[nodiscard]] double task_energy(double weight, double speed) const;

  /// Energy of executing weight w inside a window of length d at the
  /// constant speed w/d: w^alpha / d^(alpha-1). Requires d > 0 unless w == 0.
  [[nodiscard]] double window_energy(double weight, double window) const;

  /// Equivalent weight of parallel composition: the l_alpha norm
  /// (w1^alpha + w2^alpha)^(1/alpha); see DESIGN.md, "Parallel
  /// composition". Series composition is plain addition and needs no
  /// helper.
  [[nodiscard]] double parallel_compose(double w1, double w2) const;

 private:
  double alpha_;
};

}  // namespace reclaim::model
