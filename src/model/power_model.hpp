// The pluggable power-model layer: every solver is parameterized by a
// value-semantic PowerModel instead of the concrete pure power law, so the
// library covers both power models of the literature:
//
//   - PowerLaw          P(s) = s^alpha            (the SPAA'11 paper)
//   - StaticPowerLaw    P(s) = P_stat + s^alpha   (the journal version and
//                       the wider speed-scaling literature, where leakage
//                       is the practically dominant term)
//
// Leakage is charged while a task is busy: executing weight w at constant
// speed s costs w * (P_stat/s + s^(alpha-1)). That per-task cost is convex
// with minimizer s_crit = (P_stat/(alpha-1))^(1/alpha) — below the
// critical speed, running slower wastes more leakage than it saves in
// dynamic energy. The solvers exploit this via the s_crit reduction; see
// DESIGN.md ("The critical speed and the s_crit reduction") for the math
// and the exactness conditions.
#pragma once

#include <string>

#include "model/power.hpp"

namespace reclaim::model {

/// Power-down / sleep behavior of a processor outside its busy intervals.
///
/// While idle-but-awake a processor dissipates p_idle watts; it may instead
/// drop into a sleep state at p_sleep watts, paying e_wake joules to come
/// back up. A gap of length L is therefore charged
///
///     min(p_idle * L,  p_sleep * L + e_wake)
///
/// and the two branches cross at the break-even length
///
///     L* = e_wake / (p_idle - p_sleep)
///
/// (Baptiste-Chrobak-Durr; "speed scaling with power down" in PAPERS.md):
/// gaps shorter than L* stay idle, longer gaps sleep. The all-zero default
/// reproduces the paper's "idle time is free" accounting bit-identically —
/// every gap charge is exactly 0.0, see DESIGN.md ("Power-down states").
struct SleepSpec {
  double p_idle = 0.0;   ///< power while idle but awake (>= 0)
  double p_sleep = 0.0;  ///< power while asleep (>= 0, typically < p_idle)
  double e_wake = 0.0;   ///< energy of one sleep -> awake transition (>= 0)

  /// True when any field is nonzero, i.e. idle time costs something.
  [[nodiscard]] bool enabled() const noexcept {
    return p_idle != 0.0 || p_sleep != 0.0 || e_wake != 0.0;
  }

  /// Break-even gap length e_wake / (p_idle - p_sleep): sleeping wins for
  /// gaps strictly longer than this. +inf when p_idle <= p_sleep (sleeping
  /// never pays off); 0 when waking is free.
  [[nodiscard]] double break_even() const noexcept;

  /// Cheaper of idling and sleeping through a gap of length `length`:
  /// min(p_idle * length, p_sleep * length + e_wake). Exactly 0.0 when the
  /// spec is all-zero.
  [[nodiscard]] double gap_energy(double length) const;

  friend bool operator==(const SleepSpec&, const SleepSpec&) = default;
};

/// Validated spec (all fields non-negative) — the CLI's and benches'
/// one-liner.
[[nodiscard]] SleepSpec make_sleep_spec(double p_idle, double p_sleep,
                                        double e_wake);

/// Leakage-aware power law: a busy processor at speed s dissipates
/// P_stat + s^alpha watts. With p_static == 0 every quantity degenerates
/// bit-identically to PowerLaw.
class StaticPowerLaw {
 public:
  /// alpha must be > 1, p_static must be >= 0.
  explicit StaticPowerLaw(double alpha = 3.0, double p_static = 0.0);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double p_static() const noexcept { return p_static_; }

  /// The critical speed (P_stat/(alpha-1))^(1/alpha): the unique minimizer
  /// of the per-unit-weight busy cost P_stat/s + s^(alpha-1). Zero when
  /// p_static == 0.
  [[nodiscard]] double critical_speed() const noexcept { return s_crit_; }

  /// Instantaneous busy power at speed s: P_stat + s^alpha.
  [[nodiscard]] double power(double speed) const;

  /// Energy of staying busy at speed s for duration d.
  [[nodiscard]] double energy(double speed, double duration) const;

  /// Energy of executing weight w at constant speed s:
  /// w * (P_stat/s + s^(alpha-1)). Zero-weight tasks cost nothing.
  [[nodiscard]] double task_energy(double weight, double speed) const;

  /// Energy of executing weight w inside a window of length d at the
  /// constant speed w/d: w^alpha/d^(alpha-1) + P_stat * d.
  [[nodiscard]] double window_energy(double weight, double window) const;

 private:
  double alpha_;
  double p_static_;
  double s_crit_;
};

/// Value-semantic union of the two concrete power models, plus the
/// optional power-down spec for idle time. Cheap to copy and to encode
/// into cache keys (kind + alpha + p_static + the three sleep fields
/// determine every derived quantity); the engine memo must hash all of
/// them — see docs/architecture.md ("Memo-key fields").
class PowerModel {
 public:
  enum class Kind { kPowerLaw, kStaticPowerLaw };

  PowerModel() : PowerModel(PowerLaw(3.0)) {}
  // Implicit by design: every pre-leakage call site that passed a PowerLaw
  // (or an alpha-constructed instance) migrates without edits.
  PowerModel(const PowerLaw& law);              // NOLINT(google-explicit-constructor)
  PowerModel(const StaticPowerLaw& law);        // NOLINT(google-explicit-constructor)

  /// Copy of this model with the given idle/sleep spec attached. Busy
  /// quantities are untouched; only idle accounting (sched::idle_energy,
  /// core::platform_energy, race-to-idle) reads the spec.
  [[nodiscard]] PowerModel with_sleep(const SleepSpec& spec) const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Static (leakage) power; 0 for the pure power law.
  [[nodiscard]] double p_static() const noexcept { return p_static_; }
  [[nodiscard]] bool has_static_power() const noexcept { return p_static_ > 0.0; }
  /// (P_stat/(alpha-1))^(1/alpha); 0 for the pure power law, so it is
  /// always a valid speed floor.
  [[nodiscard]] double critical_speed() const noexcept { return s_crit_; }
  /// The idle/sleep spec; all-zero unless attached via with_sleep().
  [[nodiscard]] const SleepSpec& sleep() const noexcept { return sleep_; }
  [[nodiscard]] bool has_sleep() const noexcept { return sleep_.enabled(); }
  /// Charge for one idle gap of length `length`: sleep().gap_energy.
  [[nodiscard]] double idle_energy(double length) const {
    return sleep_.gap_energy(length);
  }

  /// Instantaneous busy power at speed s: P_stat + s^alpha.
  [[nodiscard]] double power(double speed) const;

  /// Energy of staying busy at speed s for duration d.
  [[nodiscard]] double energy(double speed, double duration) const;

  /// Energy of executing weight w at constant speed s:
  /// w * (P_stat/s + s^(alpha-1)). Zero-weight tasks cost nothing.
  [[nodiscard]] double task_energy(double weight, double speed) const;

  /// Energy of executing weight w inside a window of length d:
  /// w^alpha/d^(alpha-1) + P_stat * d. Requires d > 0 unless w == 0.
  [[nodiscard]] double window_energy(double weight, double window) const;

  /// Equivalent weight of parallel composition, the l_alpha norm
  /// (w1^alpha + w2^alpha)^(1/alpha) — a property of the dynamic exponent
  /// alone, shared by both models (DESIGN.md, "Parallel composition").
  [[nodiscard]] double parallel_compose(double w1, double w2) const;

  /// The pure-dynamic law with the same exponent — the machinery the
  /// s_crit reduction runs (DESIGN.md).
  [[nodiscard]] PowerLaw dynamic_law() const { return PowerLaw(alpha_); }

  /// Human-readable form: "s^3", "0.5 + s^3", or with a sleep spec
  /// "0.5 + s^3 [idle 0.5, sleep 0.05, wake 2]".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const PowerModel&, const PowerModel&) = default;

 private:
  Kind kind_;
  double alpha_;
  double p_static_;
  double s_crit_;
  SleepSpec sleep_{};
};

/// PowerLaw(alpha) when p_static == 0, StaticPowerLaw(alpha, p_static)
/// otherwise — the CLI's and benches' one-liner. The optional sleep spec
/// is attached as-is (and validated).
[[nodiscard]] PowerModel make_power_model(double alpha, double p_static,
                                          const SleepSpec& sleep = {});

}  // namespace reclaim::model
