// The pluggable power-model layer: every solver is parameterized by a
// value-semantic PowerModel instead of the concrete pure power law, so the
// library covers both power models of the literature:
//
//   - PowerLaw          P(s) = s^alpha            (the SPAA'11 paper)
//   - StaticPowerLaw    P(s) = P_stat + s^alpha   (the journal version and
//                       the wider speed-scaling literature, where leakage
//                       is the practically dominant term)
//
// Leakage is charged while a task is busy: executing weight w at constant
// speed s costs w * (P_stat/s + s^(alpha-1)). That per-task cost is convex
// with minimizer s_crit = (P_stat/(alpha-1))^(1/alpha) — below the
// critical speed, running slower wastes more leakage than it saves in
// dynamic energy. The solvers exploit this via the s_crit reduction; see
// DESIGN.md ("The critical speed and the s_crit reduction") for the math
// and the exactness conditions.
#pragma once

#include <string>

#include "model/power.hpp"

namespace reclaim::model {

/// Leakage-aware power law: a busy processor at speed s dissipates
/// P_stat + s^alpha watts. With p_static == 0 every quantity degenerates
/// bit-identically to PowerLaw.
class StaticPowerLaw {
 public:
  /// alpha must be > 1, p_static must be >= 0.
  explicit StaticPowerLaw(double alpha = 3.0, double p_static = 0.0);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double p_static() const noexcept { return p_static_; }

  /// The critical speed (P_stat/(alpha-1))^(1/alpha): the unique minimizer
  /// of the per-unit-weight busy cost P_stat/s + s^(alpha-1). Zero when
  /// p_static == 0.
  [[nodiscard]] double critical_speed() const noexcept { return s_crit_; }

  /// Instantaneous busy power at speed s: P_stat + s^alpha.
  [[nodiscard]] double power(double speed) const;

  /// Energy of staying busy at speed s for duration d.
  [[nodiscard]] double energy(double speed, double duration) const;

  /// Energy of executing weight w at constant speed s:
  /// w * (P_stat/s + s^(alpha-1)). Zero-weight tasks cost nothing.
  [[nodiscard]] double task_energy(double weight, double speed) const;

  /// Energy of executing weight w inside a window of length d at the
  /// constant speed w/d: w^alpha/d^(alpha-1) + P_stat * d.
  [[nodiscard]] double window_energy(double weight, double window) const;

 private:
  double alpha_;
  double p_static_;
  double s_crit_;
};

/// Value-semantic union of the two concrete power models. Cheap to copy
/// and to encode into cache keys (kind + alpha + p_static determine every
/// derived quantity); the engine memo must hash all three fields — see
/// DESIGN.md ("Memo-key fields").
class PowerModel {
 public:
  enum class Kind { kPowerLaw, kStaticPowerLaw };

  PowerModel() : PowerModel(PowerLaw(3.0)) {}
  // Implicit by design: every pre-leakage call site that passed a PowerLaw
  // (or an alpha-constructed instance) migrates without edits.
  PowerModel(const PowerLaw& law);              // NOLINT(google-explicit-constructor)
  PowerModel(const StaticPowerLaw& law);        // NOLINT(google-explicit-constructor)

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Static (leakage) power; 0 for the pure power law.
  [[nodiscard]] double p_static() const noexcept { return p_static_; }
  [[nodiscard]] bool has_static_power() const noexcept { return p_static_ > 0.0; }
  /// (P_stat/(alpha-1))^(1/alpha); 0 for the pure power law, so it is
  /// always a valid speed floor.
  [[nodiscard]] double critical_speed() const noexcept { return s_crit_; }

  /// Instantaneous busy power at speed s: P_stat + s^alpha.
  [[nodiscard]] double power(double speed) const;

  /// Energy of staying busy at speed s for duration d.
  [[nodiscard]] double energy(double speed, double duration) const;

  /// Energy of executing weight w at constant speed s:
  /// w * (P_stat/s + s^(alpha-1)). Zero-weight tasks cost nothing.
  [[nodiscard]] double task_energy(double weight, double speed) const;

  /// Energy of executing weight w inside a window of length d:
  /// w^alpha/d^(alpha-1) + P_stat * d. Requires d > 0 unless w == 0.
  [[nodiscard]] double window_energy(double weight, double window) const;

  /// Equivalent weight of parallel composition, the l_alpha norm
  /// (w1^alpha + w2^alpha)^(1/alpha) — a property of the dynamic exponent
  /// alone, shared by both models (DESIGN.md, "Parallel composition").
  [[nodiscard]] double parallel_compose(double w1, double w2) const;

  /// The pure-dynamic law with the same exponent — the machinery the
  /// s_crit reduction runs (DESIGN.md).
  [[nodiscard]] PowerLaw dynamic_law() const { return PowerLaw(alpha_); }

  /// Human-readable form: "s^3" or "0.5 + s^3".
  [[nodiscard]] std::string name() const;

  friend bool operator==(const PowerModel&, const PowerModel&) = default;

 private:
  Kind kind_;
  double alpha_;
  double p_static_;
  double s_crit_;
};

/// PowerLaw(alpha) when p_static == 0, StaticPowerLaw(alpha, p_static)
/// otherwise — the CLI's and benches' one-liner.
[[nodiscard]] PowerModel make_power_model(double alpha, double p_static);

}  // namespace reclaim::model
