#include "model/power.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::model {

PowerLaw::PowerLaw(double alpha) : alpha_(alpha) {
  util::require(alpha > 1.0, "power exponent alpha must exceed 1");
}

double PowerLaw::power(double speed) const {
  util::require(speed >= 0.0, "speed must be non-negative");
  return std::pow(speed, alpha_);
}

double PowerLaw::energy(double speed, double duration) const {
  util::require(duration >= 0.0, "duration must be non-negative");
  return power(speed) * duration;
}

double PowerLaw::task_energy(double weight, double speed) const {
  util::require(weight >= 0.0, "weight must be non-negative");
  if (weight == 0.0) return 0.0;
  util::require(speed > 0.0, "positive-weight task requires positive speed");
  return weight * std::pow(speed, alpha_ - 1.0);
}

double PowerLaw::window_energy(double weight, double window) const {
  util::require(weight >= 0.0, "weight must be non-negative");
  if (weight == 0.0) return 0.0;
  util::require(window > 0.0, "positive-weight task requires a positive window");
  return std::pow(weight, alpha_) / std::pow(window, alpha_ - 1.0);
}

double PowerLaw::parallel_compose(double w1, double w2) const {
  util::require(w1 >= 0.0 && w2 >= 0.0, "weights must be non-negative");
  if (w1 == 0.0) return w2;
  if (w2 == 0.0) return w1;
  return std::pow(std::pow(w1, alpha_) + std::pow(w2, alpha_), 1.0 / alpha_);
}

}  // namespace reclaim::model
