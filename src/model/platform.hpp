// Heterogeneous platforms: one PowerModel (and speed cap) per processor.
//
// The paper's MinEnergy(G, D) assumes identical processors; the journal
// version (arXiv:1204.0939) and the multi-processor energy-scheduling
// literature (e.g. Felber-Meyerson, arXiv:1105.5177) treat platforms where
// each processor has its own power curve and speed cap. model::Platform is
// the value-semantic description of such a platform: an ordered list of
// ProcessorSpecs, each carrying a full PowerModel (alpha, P_stat, sleep
// spec) plus an optional per-processor speed cap. core::Instance pairs a
// Platform with the task -> processor assignment from sched::Mapping, and
// every solver family reads per-task coefficients through it — see
// DESIGN.md ("Heterogeneous platforms").
//
// A homogeneous Platform of size 1 (the implicit PowerModel conversion)
// keeps every pre-platform call site working and reproduces the uniform
// code paths bit-identically.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "model/power_model.hpp"

namespace reclaim::model {

/// One processor of a (possibly heterogeneous) platform: its busy power
/// model plus its own speed cap. The cap defaults to +inf, meaning the
/// energy model's global cap is the only limit; the effective cap of a
/// task is min(global, processor). Caps bind the *continuous* solver
/// family (including the continuous relaxation inside CONT-ROUND); mode
/// sets are platform-wide — see DESIGN.md ("Heterogeneous platforms").
struct ProcessorSpec {
  PowerModel power{};
  double s_max = std::numeric_limits<double>::infinity();

  friend bool operator==(const ProcessorSpec&, const ProcessorSpec&) = default;
};

/// Value-semantic collection of per-processor specs; never empty. Cheap to
/// copy and to encode into the engine's memo keys (every spec field is
/// hashed — see docs/architecture.md, "Memo-key fields").
class Platform {
 public:
  /// Single default processor (pure power law s^3, uncapped).
  Platform() : procs_(1) {}

  // Implicit by design: every pre-platform call site that stored a single
  // PowerModel in an Instance migrates to a 1-processor Platform without
  // edits (and Instance aggregates like {graph, D, power} keep compiling).
  Platform(const PowerModel& power);  // NOLINT(google-explicit-constructor)

  /// Explicit per-processor specs; must be non-empty, caps must be > 0.
  explicit Platform(std::vector<ProcessorSpec> procs);

  /// Homogeneous platform: `n` identical processors.
  [[nodiscard]] static Platform uniform(
      std::size_t n, const PowerModel& power,
      double s_max = std::numeric_limits<double>::infinity());

  [[nodiscard]] std::size_t size() const noexcept { return procs_.size(); }

  [[nodiscard]] const ProcessorSpec& spec(std::size_t p) const;
  [[nodiscard]] const PowerModel& power(std::size_t p) const {
    return spec(p).power;
  }
  [[nodiscard]] double cap(std::size_t p) const { return spec(p).s_max; }
  [[nodiscard]] const std::vector<ProcessorSpec>& specs() const noexcept {
    return procs_;
  }

  /// True when every processor has the same spec (power model and cap) —
  /// the uniform fast path every pre-platform solver ran.
  [[nodiscard]] bool homogeneous() const;

  /// True when any processor's power model carries a sleep spec, i.e.
  /// idle time costs something somewhere on the platform.
  [[nodiscard]] bool has_sleep() const;

  /// Human-readable form: "s^3" for a homogeneous 1-proc platform,
  /// "2 x [0.5 + s^3]" for larger homogeneous ones, and the per-processor
  /// list "[s^3 | 0.5 + s^3.5 cap 1.5]" when heterogeneous.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const Platform&, const Platform&) = default;

 private:
  std::vector<ProcessorSpec> procs_;
};

}  // namespace reclaim::model
