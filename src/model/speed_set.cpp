#include "model/speed_set.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace reclaim::model {

using util::require;

ModeSet::ModeSet(std::vector<double> speeds) : speeds_(std::move(speeds)) {
  require(!speeds_.empty(), "a mode set requires at least one speed");
  for (double s : speeds_) require(s > 0.0, "modes must be strictly positive");
  std::sort(speeds_.begin(), speeds_.end());
  // Deduplicate within relative tolerance.
  std::vector<double> unique;
  unique.reserve(speeds_.size());
  for (double s : speeds_) {
    if (unique.empty() || s > unique.back() * (1.0 + 1e-12)) unique.push_back(s);
  }
  speeds_ = std::move(unique);
}

ModeSet ModeSet::incremental(double s_min, double s_max, double delta) {
  require(s_min > 0.0, "s_min must be positive");
  require(s_max >= s_min, "s_max must be >= s_min");
  require(delta > 0.0, "delta must be positive");
  std::vector<double> speeds;
  const auto count =
      static_cast<std::size_t>(std::floor((s_max - s_min) / delta + 1e-12)) + 1;
  speeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    speeds.push_back(s_min + static_cast<double>(i) * delta);
  return ModeSet(std::move(speeds));
}

double ModeSet::speed(std::size_t i) const {
  require(i < speeds_.size(), "mode index out of range");
  return speeds_[i];
}

std::optional<std::size_t> ModeSet::index_at_or_above(double s,
                                                      double rel_tol) const {
  const double needle = s * (1.0 - rel_tol);
  const auto it = std::lower_bound(speeds_.begin(), speeds_.end(), needle);
  if (it == speeds_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - speeds_.begin());
}

std::optional<std::size_t> ModeSet::index_at_or_below(double s,
                                                      double rel_tol) const {
  const double needle = s * (1.0 + rel_tol);
  auto it = std::upper_bound(speeds_.begin(), speeds_.end(), needle);
  if (it == speeds_.begin()) return std::nullopt;
  return static_cast<std::size_t>(it - speeds_.begin()) - 1;
}

bool ModeSet::contains(double s, double rel_tol) const {
  const auto below = index_at_or_below(s, rel_tol);
  if (!below) return false;
  return std::abs(speeds_[*below] - s) <= rel_tol * std::max(1.0, std::abs(s));
}

double ModeSet::max_gap() const noexcept {
  double gap = 0.0;
  for (std::size_t i = 1; i < speeds_.size(); ++i)
    gap = std::max(gap, speeds_[i] - speeds_[i - 1]);
  return gap;
}

}  // namespace reclaim::model
