#include "model/energy_model.hpp"

#include "util/error.hpp"

namespace reclaim::model {

namespace {

template <class... Fs>
struct Overload : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overload(Fs...) -> Overload<Fs...>;

}  // namespace

double max_speed(const EnergyModel& model) {
  return std::visit(
      Overload{
          [](const ContinuousModel& m) { return m.s_max; },
          [](const DiscreteModel& m) { return m.modes.max_speed(); },
          [](const VddHoppingModel& m) { return m.modes.max_speed(); },
          [](const IncrementalModel& m) { return m.modes.max_speed(); },
      },
      model);
}

double min_speed(const EnergyModel& model) {
  return std::visit(
      Overload{
          [](const ContinuousModel&) { return 0.0; },
          [](const DiscreteModel& m) { return m.modes.min_speed(); },
          [](const VddHoppingModel& m) { return m.modes.min_speed(); },
          [](const IncrementalModel& m) { return m.modes.min_speed(); },
      },
      model);
}

const ModeSet& modes_of(const EnergyModel& model) {
  const ModeSet* modes = std::visit(
      Overload{
          [](const ContinuousModel&) -> const ModeSet* { return nullptr; },
          [](const DiscreteModel& m) { return &m.modes; },
          [](const VddHoppingModel& m) { return &m.modes; },
          [](const IncrementalModel& m) { return &m.modes; },
      },
      model);
  util::require(modes != nullptr, "the Continuous model has no mode set");
  return *modes;
}

bool is_admissible_speed(const EnergyModel& model, double s, double rel_tol) {
  return std::visit(
      Overload{
          [&](const ContinuousModel& m) {
            return s >= 0.0 && s <= m.s_max * (1.0 + rel_tol);
          },
          [&](const DiscreteModel& m) { return m.modes.contains(s, rel_tol); },
          [&](const VddHoppingModel& m) { return m.modes.contains(s, rel_tol); },
          [&](const IncrementalModel& m) { return m.modes.contains(s, rel_tol); },
      },
      model);
}

std::string model_name(const EnergyModel& model) {
  return std::visit(
      Overload{
          [](const ContinuousModel&) { return std::string("Continuous"); },
          [](const DiscreteModel&) { return std::string("Discrete"); },
          [](const VddHoppingModel&) { return std::string("Vdd-Hopping"); },
          [](const IncrementalModel&) { return std::string("Incremental"); },
      },
      model);
}

}  // namespace reclaim::model
