#include "model/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace reclaim::model {

namespace {

double compute_critical_speed(double alpha, double p_static) {
  if (p_static == 0.0) return 0.0;
  return std::pow(p_static / (alpha - 1.0), 1.0 / alpha);
}

// Shared implementations. With p_static == 0 every formula reduces
// bit-identically to the PowerLaw one (x + 0.0 == x and 0.0/s == 0.0 in
// IEEE arithmetic), which the P_stat = 0 regression tests rely on.

double power_impl(double alpha, double p_static, double speed) {
  util::require(speed >= 0.0, "speed must be non-negative");
  return std::pow(speed, alpha) + p_static;
}

double energy_impl(double alpha, double p_static, double speed, double duration) {
  util::require(duration >= 0.0, "duration must be non-negative");
  return power_impl(alpha, p_static, speed) * duration;
}

double task_energy_impl(double alpha, double p_static, double weight,
                        double speed) {
  util::require(weight >= 0.0, "weight must be non-negative");
  if (weight == 0.0) return 0.0;
  util::require(speed > 0.0, "positive-weight task requires positive speed");
  return weight * (p_static / speed + std::pow(speed, alpha - 1.0));
}

double window_energy_impl(double alpha, double p_static, double weight,
                          double window) {
  util::require(weight >= 0.0, "weight must be non-negative");
  if (weight == 0.0) return 0.0;
  util::require(window > 0.0, "positive-weight task requires a positive window");
  return std::pow(weight, alpha) / std::pow(window, alpha - 1.0) +
         p_static * window;
}

}  // namespace

double SleepSpec::break_even() const noexcept {
  if (e_wake == 0.0) return 0.0;
  if (p_idle <= p_sleep) return std::numeric_limits<double>::infinity();
  return e_wake / (p_idle - p_sleep);
}

double SleepSpec::gap_energy(double length) const {
  util::require(length >= 0.0, "gap length must be non-negative");
  // With an all-zero spec both branches are exactly 0.0, so zero-parameter
  // accounting is bit-identical to not accounting at all.
  return std::min(p_idle * length, p_sleep * length + e_wake);
}

SleepSpec make_sleep_spec(double p_idle, double p_sleep, double e_wake) {
  util::require(p_idle >= 0.0, "idle power must be non-negative");
  util::require(p_sleep >= 0.0, "sleep power must be non-negative");
  util::require(e_wake >= 0.0, "wake-up energy must be non-negative");
  return SleepSpec{p_idle, p_sleep, e_wake};
}

StaticPowerLaw::StaticPowerLaw(double alpha, double p_static)
    : alpha_(alpha),
      p_static_(p_static),
      s_crit_(compute_critical_speed(alpha, p_static)) {
  util::require(alpha > 1.0, "power exponent alpha must exceed 1");
  util::require(p_static >= 0.0, "static power must be non-negative");
}

double StaticPowerLaw::power(double speed) const {
  return power_impl(alpha_, p_static_, speed);
}

double StaticPowerLaw::energy(double speed, double duration) const {
  return energy_impl(alpha_, p_static_, speed, duration);
}

double StaticPowerLaw::task_energy(double weight, double speed) const {
  return task_energy_impl(alpha_, p_static_, weight, speed);
}

double StaticPowerLaw::window_energy(double weight, double window) const {
  return window_energy_impl(alpha_, p_static_, weight, window);
}

PowerModel::PowerModel(const PowerLaw& law)
    : kind_(Kind::kPowerLaw), alpha_(law.alpha()), p_static_(0.0), s_crit_(0.0) {}

PowerModel::PowerModel(const StaticPowerLaw& law)
    : kind_(Kind::kStaticPowerLaw),
      alpha_(law.alpha()),
      p_static_(law.p_static()),
      s_crit_(law.critical_speed()) {}

double PowerModel::power(double speed) const {
  return power_impl(alpha_, p_static_, speed);
}

double PowerModel::energy(double speed, double duration) const {
  return energy_impl(alpha_, p_static_, speed, duration);
}

double PowerModel::task_energy(double weight, double speed) const {
  return task_energy_impl(alpha_, p_static_, weight, speed);
}

double PowerModel::window_energy(double weight, double window) const {
  return window_energy_impl(alpha_, p_static_, weight, window);
}

PowerModel PowerModel::with_sleep(const SleepSpec& spec) const {
  PowerModel copy = *this;
  copy.sleep_ = make_sleep_spec(spec.p_idle, spec.p_sleep, spec.e_wake);
  return copy;
}

double PowerModel::parallel_compose(double w1, double w2) const {
  return dynamic_law().parallel_compose(w1, w2);
}

std::string PowerModel::name() const {
  std::ostringstream out;
  if (has_static_power()) out << p_static_ << " + ";
  out << "s^" << alpha_;
  if (has_sleep()) {
    out << " [idle " << sleep_.p_idle << ", sleep " << sleep_.p_sleep
        << ", wake " << sleep_.e_wake << "]";
  }
  return out.str();
}

PowerModel make_power_model(double alpha, double p_static,
                            const SleepSpec& sleep) {
  const PowerModel base = p_static == 0.0
                              ? PowerModel(PowerLaw(alpha))
                              : PowerModel(StaticPowerLaw(alpha, p_static));
  return sleep.enabled() ? base.with_sleep(sleep) : base;
}

}  // namespace reclaim::model
