// Series-parallel recognition and decomposition.
//
// Theorem 2 of the paper gives a polynomial-time MinEnergy algorithm for
// series-parallel execution graphs. The solver consumes the decomposition
// tree produced here.
//
// Recognized class: DAGs whose node-split derivation is two-terminal
// series-parallel. Every task v is split into an edge v_in -> v_out carrying
// the task; precedence edges become zero-weight junction edges; a virtual
// source/sink pair ties all graph sources and sinks together (all sources
// start at time 0 and all sinks share the deadline D, so this augmentation
// is semantically exact for MinEnergy). The classic series/parallel
// reduction then either contracts the multigraph to a single edge (and the
// merge history is the decomposition tree) or proves the graph is not
// series-parallel.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace reclaim::graph {

enum class SpKind { kLeaf, kSeries, kParallel };

/// Decomposition tree of a series-parallel execution graph.
///
/// Leaves reference tasks of the original graph; kNoNode leaves are
/// structural junctions contributed by precedence edges (zero weight; they
/// are pruned whenever a composition has at least one task-bearing child).
/// Series children are ordered by execution order.
struct SpTree {
  struct Node {
    SpKind kind = SpKind::kLeaf;
    NodeId task = kNoNode;               ///< leaf payload
    std::vector<std::size_t> children;   ///< series/parallel payload
  };

  std::vector<Node> nodes;
  std::size_t root = 0;

  [[nodiscard]] const Node& operator[](std::size_t i) const { return nodes[i]; }

  /// Number of task-bearing leaves in the subtree under `node`.
  [[nodiscard]] std::size_t task_leaves(std::size_t node) const;
};

/// Decomposes `g`; std::nullopt when `g` is not series-parallel in the
/// sense above. Requires a DAG with at least one node.
[[nodiscard]] std::optional<SpTree> sp_decompose(const Digraph& g);

/// Convenience: true when sp_decompose succeeds.
[[nodiscard]] bool is_series_parallel(const Digraph& g);

}  // namespace reclaim::graph
