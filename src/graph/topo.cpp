#include "graph/topo.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace reclaim::graph {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> indeg(n);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    indeg[v] = g.in_degree(v);
    if (indeg[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeId s : g.successors(v)) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Digraph& g) { return topological_order(g).has_value(); }

namespace {

std::vector<NodeId> require_order(const Digraph& g) {
  auto order = topological_order(g);
  util::require(order.has_value(), "graph must be acyclic");
  return *std::move(order);
}

}  // namespace

std::vector<double> longest_path_to(const Digraph& g) {
  const auto order = require_order(g);
  std::vector<double> dist(g.num_nodes(), 0.0);
  for (NodeId v : order) {
    double best = 0.0;
    for (NodeId p : g.predecessors(v)) best = std::max(best, dist[p]);
    dist[v] = best + g.weight(v);
  }
  return dist;
}

std::vector<double> longest_path_from(const Digraph& g) {
  const auto order = require_order(g);
  std::vector<double> dist(g.num_nodes(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    double best = 0.0;
    for (NodeId s : g.successors(v)) best = std::max(best, dist[s]);
    dist[v] = best + g.weight(v);
  }
  return dist;
}

CriticalPath critical_path(const Digraph& g) {
  util::require(g.num_nodes() > 0, "critical_path of an empty graph");
  const auto order = require_order(g);
  std::vector<double> dist(g.num_nodes(), 0.0);
  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  for (NodeId v : order) {
    double best = 0.0;
    NodeId arg = kNoNode;
    for (NodeId p : g.predecessors(v)) {
      if (dist[p] > best) {
        best = dist[p];
        arg = p;
      }
    }
    dist[v] = best + g.weight(v);
    parent[v] = arg;
  }
  NodeId tail = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    if (dist[v] > dist[tail]) tail = v;

  CriticalPath cp;
  cp.length = dist[tail];
  for (NodeId v = tail; v != kNoNode; v = parent[v]) cp.nodes.push_back(v);
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

std::vector<std::vector<bool>> transitive_closure(const Digraph& g) {
  const auto order = require_order(g);
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Sweep in reverse topological order: reach[v] = union of successor sets.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (NodeId s : g.successors(v)) {
      reach[v][s] = true;
      const auto& rs = reach[s];
      auto& rv = reach[v];
      for (std::size_t j = 0; j < n; ++j)
        if (rs[j]) rv[j] = true;
    }
  }
  return reach;
}

Digraph transitive_reduction(const Digraph& g) {
  const auto reach = transitive_closure(g);
  Digraph out(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId id = out.add_node(g.weight(v), g.name(v));
    (void)id;
  }
  for (const Edge& e : g.edges()) {
    // Drop u -> v when some other successor of u already reaches v.
    bool implied = false;
    for (NodeId s : g.successors(e.from)) {
      if (s != e.to && reach[s][e.to]) {
        implied = true;
        break;
      }
    }
    if (!implied) out.add_edge(e.from, e.to);
  }
  return out;
}

bool is_weakly_connected(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    auto visit = [&](NodeId u) {
      if (!seen[u]) {
        seen[u] = true;
        ++visited;
        stack.push_back(u);
      }
    };
    for (NodeId s : g.successors(v)) visit(s);
    for (NodeId p : g.predecessors(v)) visit(p);
  }
  return visited == n;
}

}  // namespace reclaim::graph
