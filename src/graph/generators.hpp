// Task-graph generators: synthetic families keyed to the paper's theory
// (chains, forks, joins, trees, series-parallel, layered/random DAGs) and
// realistic HPC application graphs standing in for the "legacy
// applications" that motivate the fixed-mapping problem (tiled Cholesky,
// tiled LU, FFT butterflies, stencil wavefronts, fork-join pipelines).
//
// Every generator is deterministic in its Rng argument.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace reclaim::graph {

/// Uniform weight range for randomized generators.
struct WeightRange {
  double min = 1.0;
  double max = 10.0;

  [[nodiscard]] double sample(util::Rng& rng) const;
};

/// Directed path T0 -> T1 -> ... with the given weights (>= 1 task).
[[nodiscard]] Digraph make_chain(const std::vector<double>& weights);
[[nodiscard]] Digraph make_chain(std::size_t n, util::Rng& rng, WeightRange wr = {});

/// Fork: weights[0] is the source T0, the rest are its leaves (Thm 1).
[[nodiscard]] Digraph make_fork(const std::vector<double>& weights);
[[nodiscard]] Digraph make_fork(std::size_t leaves, util::Rng& rng, WeightRange wr = {});

/// Join: mirror of a fork; weights[0] is the sink.
[[nodiscard]] Digraph make_join(const std::vector<double>& weights);
[[nodiscard]] Digraph make_join(std::size_t leaves, util::Rng& rng, WeightRange wr = {});

/// Diamond: source -> `width` parallel tasks -> sink.
[[nodiscard]] Digraph make_diamond(std::size_t width, util::Rng& rng, WeightRange wr = {});

/// Random out-tree: node i > 0 attaches below a uniform node in [0, i).
[[nodiscard]] Digraph make_random_out_tree(std::size_t n, util::Rng& rng,
                                           WeightRange wr = {});

/// Random in-tree: reverse of a random out-tree.
[[nodiscard]] Digraph make_random_in_tree(std::size_t n, util::Rng& rng,
                                          WeightRange wr = {});

/// Layered DAG: `layers` layers of `width` tasks; each node in layer l > 0
/// draws edges from layer l-1 nodes with probability `edge_prob` and gets
/// at least one predecessor. The classic random workload for list
/// scheduling experiments.
[[nodiscard]] Digraph make_layered(std::size_t layers, std::size_t width,
                                   double edge_prob, util::Rng& rng,
                                   WeightRange wr = {});

/// Erdos-Renyi DAG on a random topological order: edge i -> j (i < j in the
/// order) with probability p.
[[nodiscard]] Digraph make_erdos_renyi_dag(std::size_t n, double p, util::Rng& rng,
                                           WeightRange wr = {});

/// Random series-parallel graph with ~`target_tasks` real tasks, built by
/// recursive series/parallel composition. Zero-weight junction tasks are
/// inserted at multi-sink/multi-source series joints so the result stays in
/// the class recognized by sp_decompose.
[[nodiscard]] Digraph make_random_series_parallel(std::size_t target_tasks,
                                                  util::Rng& rng,
                                                  WeightRange wr = {});

/// Alternating fork-join pipeline: `stages` sequential stages, each a fork
/// of `width` parallel tasks followed by a join task. Series-parallel.
[[nodiscard]] Digraph make_fork_join_chain(std::size_t stages, std::size_t width,
                                           util::Rng& rng, WeightRange wr = {});

/// Tiled right-looking Cholesky factorization DAG on a `tiles` x `tiles`
/// lower-triangular tile matrix. Weights follow the per-kernel flop counts
/// (POTRF 1/3, TRSM 1, SYRK 1, GEMM 2, in units of b^3).
[[nodiscard]] Digraph make_tiled_cholesky(std::size_t tiles);

/// Tiled LU factorization DAG (no pivoting) on a `tiles` x `tiles` tile
/// matrix. Weights: GETRF 2/3, TRSM 1, GEMM 2.
[[nodiscard]] Digraph make_tiled_lu(std::size_t tiles);

/// Radix-2 FFT butterfly DAG on 2^log2_size points: one task per point and
/// stage, stage s > 0 tasks depend on the two stage s-1 partners.
[[nodiscard]] Digraph make_fft(std::size_t log2_size);

/// 2D stencil wavefront: task (i, j) depends on (i-1, j) and (i, j-1).
/// Contains the N-structure, so it is a genuinely general DAG.
[[nodiscard]] Digraph make_stencil(std::size_t rows, std::size_t cols,
                                   util::Rng& rng, WeightRange wr = {});

}  // namespace reclaim::graph
