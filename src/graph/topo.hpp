// Topological algorithms on DAGs: ordering, cycle detection, critical
// paths, levels, and transitive reduction/closure.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace reclaim::graph {

/// Kahn topological order, smallest node id first among ready nodes
/// (canonical and deterministic). Empty optional when the graph is cyclic.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

[[nodiscard]] bool is_acyclic(const Digraph& g);

/// For each node, the heaviest weight of any path ending at it, including
/// its own weight ("top level + w"). Requires a DAG.
[[nodiscard]] std::vector<double> longest_path_to(const Digraph& g);

/// For each node, the heaviest weight of any path starting at it, including
/// its own weight ("bottom level"). Requires a DAG.
[[nodiscard]] std::vector<double> longest_path_from(const Digraph& g);

struct CriticalPath {
  double length = 0.0;           ///< total weight along the heaviest path
  std::vector<NodeId> nodes;     ///< the path itself, source to sink
};

/// Heaviest-weight source-to-sink path. Requires a DAG with >= 1 node.
[[nodiscard]] CriticalPath critical_path(const Digraph& g);

/// Reachability closure as one bit-vector per node (reach[u][v] == true iff
/// a nonempty path u -> v exists). O(n * m / 64) via bitset sweeps.
[[nodiscard]] std::vector<std::vector<bool>> transitive_closure(const Digraph& g);

/// Copy of `g` with every transitively implied edge removed. Requires a DAG.
[[nodiscard]] Digraph transitive_reduction(const Digraph& g);

/// True if every node is connected to every other in the underlying
/// undirected graph (vacuously true for empty graphs).
[[nodiscard]] bool is_weakly_connected(const Digraph& g);

}  // namespace reclaim::graph
