#include "graph/classify.hpp"

#include "graph/sp_tree.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::graph {

std::string_view to_string(GraphShape shape) noexcept {
  switch (shape) {
    case GraphShape::kEmpty: return "empty";
    case GraphShape::kSingleTask: return "single-task";
    case GraphShape::kChain: return "chain";
    case GraphShape::kFork: return "fork";
    case GraphShape::kJoin: return "join";
    case GraphShape::kOutTree: return "out-tree";
    case GraphShape::kInTree: return "in-tree";
    case GraphShape::kSeriesParallel: return "series-parallel";
    case GraphShape::kGeneral: return "general";
  }
  return "unknown";
}

bool is_chain(const Digraph& g) {
  if (g.num_nodes() < 2) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.in_degree(v) > 1 || g.out_degree(v) > 1) return false;
  }
  return is_weakly_connected(g) && is_acyclic(g);
}

bool is_fork(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  if (n < 2) return false;
  const auto roots = g.sources();
  if (roots.size() != 1) return false;
  const NodeId root = roots.front();
  if (g.out_degree(root) != n - 1) return false;
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    if (g.in_degree(v) != 1 || g.out_degree(v) != 0) return false;
  }
  return true;
}

bool is_join(const Digraph& g) { return is_fork(g.reversed()); }

bool is_out_tree(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return false;
  if (g.num_edges() != n - 1) return false;
  if (g.sources().size() != 1) return false;
  for (NodeId v = 0; v < n; ++v) {
    if (g.in_degree(v) > 1) return false;
  }
  // n-1 edges, unique root, in-degree <= 1 everywhere: a connected DAG.
  return is_acyclic(g);
}

bool is_in_tree(const Digraph& g) { return is_out_tree(g.reversed()); }

GraphShape classify(const Digraph& g) {
  util::require(is_acyclic(g), "classify requires a DAG");
  if (g.num_nodes() == 0) return GraphShape::kEmpty;
  if (g.num_nodes() == 1) return GraphShape::kSingleTask;
  if (is_chain(g)) return GraphShape::kChain;
  if (is_fork(g)) return GraphShape::kFork;
  if (is_join(g)) return GraphShape::kJoin;
  if (is_out_tree(g)) return GraphShape::kOutTree;
  if (is_in_tree(g)) return GraphShape::kInTree;
  if (sp_decompose(g).has_value()) return GraphShape::kSeriesParallel;
  return GraphShape::kGeneral;
}

}  // namespace reclaim::graph
