#include "graph/digraph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace reclaim::graph {

using util::require;

Digraph::Digraph(std::size_t n, double weight)
    : weights_(n, weight), names_(n), succs_(n), preds_(n) {
  require(weight >= 0.0, "task weights must be non-negative");
}

NodeId Digraph::add_node(double weight, std::string name) {
  require(weight >= 0.0, "task weights must be non-negative");
  weights_.push_back(weight);
  names_.push_back(std::move(name));
  succs_.emplace_back();
  preds_.emplace_back();
  return weights_.size() - 1;
}

void Digraph::check_node(NodeId v) const {
  require(v < weights_.size(), "node id out of range");
}

void Digraph::add_edge(NodeId from, NodeId to) {
  require(add_edge_if_absent(from, to), "duplicate edge");
}

bool Digraph::add_edge_if_absent(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  require(from != to, "self loops are not allowed");
  if (has_edge(from, to)) return false;
  succs_[from].push_back(to);
  preds_[to].push_back(from);
  ++num_edges_;
  return true;
}

double Digraph::weight(NodeId v) const {
  check_node(v);
  return weights_[v];
}

void Digraph::set_weight(NodeId v, double w) {
  check_node(v);
  require(w >= 0.0, "task weights must be non-negative");
  weights_[v] = w;
}

const std::string& Digraph::name(NodeId v) const {
  check_node(v);
  return names_[v];
}

void Digraph::set_name(NodeId v, std::string name) {
  check_node(v);
  names_[v] = std::move(name);
}

const std::vector<NodeId>& Digraph::successors(NodeId v) const {
  check_node(v);
  return succs_[v];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId v) const {
  check_node(v);
  return preds_[v];
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  const auto& out = succs_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (preds_[v].empty()) out.push_back(v);
  return out;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v)
    if (succs_[v].empty()) out.push_back(v);
  return out;
}

std::vector<Edge> Digraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId v = 0; v < num_nodes(); ++v)
    for (NodeId s : succs_[v]) out.push_back({v, s});
  return out;
}

double Digraph::total_weight() const noexcept {
  double s = 0.0;
  for (double w : weights_) s += w;
  return s;
}

Digraph Digraph::reversed() const {
  Digraph r;
  r.weights_ = weights_;
  r.names_ = names_;
  r.succs_ = preds_;
  r.preds_ = succs_;
  r.num_edges_ = num_edges_;
  return r;
}

}  // namespace reclaim::graph
