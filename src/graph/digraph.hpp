// Node-weighted directed graph used for task graphs and execution graphs.
//
// Nodes carry the task cost w_i from the paper's formulation (Eq. 1); edges
// are precedence constraints. The container stays deliberately simple:
// contiguous ids, adjacency lists in insertion order, O(deg) membership
// tests. All higher-level algorithms live in separate headers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace reclaim::graph {

using NodeId = std::size_t;

/// Sentinel id for "no node" (used e.g. by SP-tree junction leaves).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct Edge {
  NodeId from;
  NodeId to;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Digraph {
 public:
  Digraph() = default;

  /// Creates a graph with `n` nodes of weight `weight` and no edges.
  explicit Digraph(std::size_t n, double weight = 1.0);

  /// Adds a node with cost `weight` (>= 0) and optional display name.
  NodeId add_node(double weight, std::string name = {});

  /// Adds edge from -> to. Requires distinct existing endpoints; duplicate
  /// edges are rejected.
  void add_edge(NodeId from, NodeId to);

  /// Adds the edge unless it already exists; returns true when inserted.
  bool add_edge_if_absent(NodeId from, NodeId to);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return weights_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] double weight(NodeId v) const;
  void set_weight(NodeId v, double w);

  [[nodiscard]] const std::string& name(NodeId v) const;
  void set_name(NodeId v, std::string name);

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId v) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId v) const;

  [[nodiscard]] std::size_t out_degree(NodeId v) const { return successors(v).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  /// Nodes with no predecessors, in id order.
  [[nodiscard]] std::vector<NodeId> sources() const;
  /// Nodes with no successors, in id order.
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// All edges, ordered by (from, insertion order).
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Sum of all node weights.
  [[nodiscard]] double total_weight() const noexcept;

  /// Returns a graph with every edge reversed (weights/names preserved).
  [[nodiscard]] Digraph reversed() const;

 private:
  void check_node(NodeId v) const;

  std::vector<double> weights_;
  std::vector<std::string> names_;
  std::vector<std::vector<NodeId>> succs_;
  std::vector<std::vector<NodeId>> preds_;
  std::size_t num_edges_ = 0;
};

}  // namespace reclaim::graph
