#include "graph/dot.hpp"

#include <sstream>

namespace reclaim::graph {

std::string to_dot(const Digraph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"";
    if (!g.name(v).empty()) {
      os << g.name(v);
    } else {
      os << "T" << v;
    }
    os << "\\nw=" << g.weight(v) << "\"];\n";
  }
  for (const Edge& e : g.edges())
    os << "  n" << e.from << " -> n" << e.to << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace reclaim::graph
