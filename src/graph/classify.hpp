// Structural classification of execution graphs.
//
// The paper's complexity results are keyed to graph families: closed forms
// for forks/joins (Thm 1), polynomial algorithms for trees and
// series-parallel graphs (Thm 2), geometric programming in general. The
// continuous-model dispatcher uses this classification to pick the
// strongest applicable solver.
#pragma once

#include <string_view>

#include "graph/digraph.hpp"

namespace reclaim::graph {

enum class GraphShape {
  kEmpty,
  kSingleTask,
  kChain,          ///< a single directed path
  kFork,           ///< one source, every other node a child leaf of it
  kJoin,           ///< one sink, every other node a parent leaf of it
  kOutTree,        ///< every node has at most one predecessor, connected
  kInTree,         ///< every node has at most one successor, connected
  kSeriesParallel, ///< two-terminal series-parallel (see sp_tree.hpp)
  kGeneral,
};

[[nodiscard]] std::string_view to_string(GraphShape shape) noexcept;

/// n >= 2 directed path. (A single node is classified as kSingleTask.)
[[nodiscard]] bool is_chain(const Digraph& g);

/// Fork in the paper's sense: source T0 plus leaves T1..Tn, n >= 1.
[[nodiscard]] bool is_fork(const Digraph& g);

/// Mirror image of a fork.
[[nodiscard]] bool is_join(const Digraph& g);

/// Rooted tree with edges oriented away from the root.
[[nodiscard]] bool is_out_tree(const Digraph& g);

/// Rooted tree with edges oriented towards the root.
[[nodiscard]] bool is_in_tree(const Digraph& g);

/// Most specific shape for `g` (requires a DAG). The order of checks is
/// SingleTask, Chain, Fork, Join, OutTree, InTree, SeriesParallel, General,
/// so e.g. a chain — which is also a fork degenerate and a tree — reports
/// kChain.
[[nodiscard]] GraphShape classify(const Digraph& g);

}  // namespace reclaim::graph
