#include "graph/generators.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace reclaim::graph {

using util::require;

double WeightRange::sample(util::Rng& rng) const {
  return rng.uniform(min, max);
}

namespace {

std::vector<double> sample_weights(std::size_t n, util::Rng& rng, WeightRange wr) {
  require(wr.min > 0.0 && wr.max >= wr.min, "invalid weight range");
  std::vector<double> w(n);
  for (auto& x : w) x = wr.sample(rng);
  return w;
}

}  // namespace

Digraph make_chain(const std::vector<double>& weights) {
  require(!weights.empty(), "chain requires at least one task");
  Digraph g;
  for (double w : weights) g.add_node(w);
  for (NodeId v = 0; v + 1 < g.num_nodes(); ++v) g.add_edge(v, v + 1);
  return g;
}

Digraph make_chain(std::size_t n, util::Rng& rng, WeightRange wr) {
  return make_chain(sample_weights(n, rng, wr));
}

Digraph make_fork(const std::vector<double>& weights) {
  require(weights.size() >= 2, "fork requires a source and >= 1 leaf");
  Digraph g;
  for (double w : weights) g.add_node(w);
  for (NodeId v = 1; v < g.num_nodes(); ++v) g.add_edge(0, v);
  return g;
}

Digraph make_fork(std::size_t leaves, util::Rng& rng, WeightRange wr) {
  return make_fork(sample_weights(leaves + 1, rng, wr));
}

Digraph make_join(const std::vector<double>& weights) {
  require(weights.size() >= 2, "join requires a sink and >= 1 leaf");
  Digraph g;
  for (double w : weights) g.add_node(w);
  for (NodeId v = 1; v < g.num_nodes(); ++v) g.add_edge(v, 0);
  return g;
}

Digraph make_join(std::size_t leaves, util::Rng& rng, WeightRange wr) {
  return make_join(sample_weights(leaves + 1, rng, wr));
}

Digraph make_diamond(std::size_t width, util::Rng& rng, WeightRange wr) {
  require(width >= 1, "diamond requires width >= 1");
  Digraph g;
  const NodeId src = g.add_node(wr.sample(rng), "src");
  std::vector<NodeId> mid(width);
  for (std::size_t i = 0; i < width; ++i) {
    mid[i] = g.add_node(wr.sample(rng), "mid" + std::to_string(i));
    g.add_edge(src, mid[i]);
  }
  const NodeId dst = g.add_node(wr.sample(rng), "dst");
  for (NodeId m : mid) g.add_edge(m, dst);
  return g;
}

Digraph make_random_out_tree(std::size_t n, util::Rng& rng, WeightRange wr) {
  require(n >= 1, "tree requires >= 1 task");
  Digraph g;
  g.add_node(wr.sample(rng));
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId v = g.add_node(wr.sample(rng));
    const auto parent = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    g.add_edge(parent, v);
  }
  return g;
}

Digraph make_random_in_tree(std::size_t n, util::Rng& rng, WeightRange wr) {
  return make_random_out_tree(n, rng, wr).reversed();
}

Digraph make_layered(std::size_t layers, std::size_t width, double edge_prob,
                     util::Rng& rng, WeightRange wr) {
  require(layers >= 1 && width >= 1, "layered DAG requires layers, width >= 1");
  require(edge_prob >= 0.0 && edge_prob <= 1.0, "edge probability in [0, 1]");
  Digraph g;
  std::vector<std::vector<NodeId>> layer_nodes(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t i = 0; i < width; ++i) {
      layer_nodes[l].push_back(
          g.add_node(wr.sample(rng),
                     "L" + std::to_string(l) + "." + std::to_string(i)));
    }
  }
  for (std::size_t l = 1; l < layers; ++l) {
    for (NodeId v : layer_nodes[l]) {
      bool any = false;
      for (NodeId p : layer_nodes[l - 1]) {
        if (rng.bernoulli(edge_prob)) {
          g.add_edge(p, v);
          any = true;
        }
      }
      if (!any) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1));
        g.add_edge(layer_nodes[l - 1][pick], v);
      }
    }
  }
  return g;
}

Digraph make_erdos_renyi_dag(std::size_t n, double p, util::Rng& rng,
                             WeightRange wr) {
  require(n >= 1, "DAG requires >= 1 task");
  require(p >= 0.0 && p <= 1.0, "edge probability in [0, 1]");
  Digraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node(wr.sample(rng));
  // Random topological order over the ids, then forward edges only.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) g.add_edge(order[i], order[j]);
  return g;
}

namespace {

/// A materialized SP fragment: node ids of its sources and sinks.
struct SpFragment {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
};

SpFragment build_sp(Digraph& g, std::size_t tasks, util::Rng& rng,
                    const WeightRange& wr) {
  if (tasks == 1) {
    const NodeId v = g.add_node(wr.sample(rng));
    return {{v}, {v}};
  }
  const auto left_count = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(tasks) - 1));
  SpFragment left = build_sp(g, left_count, rng, wr);
  SpFragment right = build_sp(g, tasks - left_count, rng, wr);

  if (rng.bernoulli(0.5)) {
    // Parallel composition: disjoint union.
    left.sources.insert(left.sources.end(), right.sources.begin(),
                        right.sources.end());
    left.sinks.insert(left.sinks.end(), right.sinks.begin(), right.sinks.end());
    return left;
  }
  // Series composition. A multi-sink/multi-source joint needs a zero-weight
  // junction task to stay inside the two-terminal SP class.
  if (left.sinks.size() > 1 && right.sources.size() > 1) {
    const NodeId j = g.add_node(0.0, "junction");
    for (NodeId s : left.sinks) g.add_edge(s, j);
    for (NodeId s : right.sources) g.add_edge(j, s);
  } else {
    for (NodeId a : left.sinks)
      for (NodeId b : right.sources) g.add_edge(a, b);
  }
  return {std::move(left.sources), std::move(right.sinks)};
}

}  // namespace

Digraph make_random_series_parallel(std::size_t target_tasks, util::Rng& rng,
                                    WeightRange wr) {
  require(target_tasks >= 1, "SP graph requires >= 1 task");
  Digraph g;
  build_sp(g, target_tasks, rng, wr);
  return g;
}

Digraph make_fork_join_chain(std::size_t stages, std::size_t width,
                             util::Rng& rng, WeightRange wr) {
  require(stages >= 1 && width >= 1, "fork-join chain requires stages, width >= 1");
  Digraph g;
  NodeId previous_join = kNoNode;
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId fork = g.add_node(wr.sample(rng), "fork" + std::to_string(s));
    if (previous_join != kNoNode) g.add_edge(previous_join, fork);
    const NodeId join = g.add_node(wr.sample(rng), "join" + std::to_string(s));
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId mid = g.add_node(
          wr.sample(rng), "w" + std::to_string(s) + "." + std::to_string(i));
      g.add_edge(fork, mid);
      g.add_edge(mid, join);
    }
    previous_join = join;
  }
  return g;
}

Digraph make_tiled_cholesky(std::size_t tiles) {
  require(tiles >= 1, "tiled Cholesky requires >= 1 tile");
  constexpr double kPotrf = 1.0 / 3.0;
  constexpr double kTrsm = 1.0;
  constexpr double kSyrk = 1.0;
  constexpr double kGemm = 2.0;

  Digraph g;
  std::map<std::tuple<char, std::size_t, std::size_t, std::size_t>, NodeId> id;
  auto node = [&](char kind, std::size_t k, std::size_t i, std::size_t j,
                  double w, const std::string& name) {
    const NodeId v = g.add_node(w, name);
    id[{kind, k, i, j}] = v;
    return v;
  };
  auto get = [&](char kind, std::size_t k, std::size_t i, std::size_t j) {
    return id.at({kind, k, i, j});
  };

  for (std::size_t k = 0; k < tiles; ++k) {
    const std::string ks = std::to_string(k);
    const NodeId potrf = node('P', k, 0, 0, kPotrf, "POTRF(" + ks + ")");
    if (k > 0) g.add_edge(get('S', k - 1, k, 0), potrf);

    for (std::size_t i = k + 1; i < tiles; ++i) {
      const NodeId trsm = node('T', k, i, 0, kTrsm,
                               "TRSM(" + ks + "," + std::to_string(i) + ")");
      g.add_edge(potrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, i, k), trsm);
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      const NodeId syrk = node('S', k, i, 0, kSyrk,
                               "SYRK(" + ks + "," + std::to_string(i) + ")");
      g.add_edge(get('T', k, i, 0), syrk);
      if (k > 0) g.add_edge(get('S', k - 1, i, 0), syrk);
      for (std::size_t j = k + 1; j < i; ++j) {
        const NodeId gemm =
            node('G', k, i, j, kGemm,
                 "GEMM(" + ks + "," + std::to_string(i) + "," + std::to_string(j) + ")");
        g.add_edge(get('T', k, i, 0), gemm);
        g.add_edge(get('T', k, j, 0), gemm);
        if (k > 0) g.add_edge(get('G', k - 1, i, j), gemm);
      }
    }
  }
  return g;
}

Digraph make_tiled_lu(std::size_t tiles) {
  require(tiles >= 1, "tiled LU requires >= 1 tile");
  constexpr double kGetrf = 2.0 / 3.0;
  constexpr double kTrsm = 1.0;
  constexpr double kGemm = 2.0;

  Digraph g;
  std::map<std::tuple<char, std::size_t, std::size_t, std::size_t>, NodeId> id;
  auto node = [&](char kind, std::size_t k, std::size_t i, std::size_t j,
                  double w, const std::string& name) {
    const NodeId v = g.add_node(w, name);
    id[{kind, k, i, j}] = v;
    return v;
  };
  auto get = [&](char kind, std::size_t k, std::size_t i, std::size_t j) {
    return id.at({kind, k, i, j});
  };

  for (std::size_t k = 0; k < tiles; ++k) {
    const std::string ks = std::to_string(k);
    const NodeId getrf = node('F', k, 0, 0, kGetrf, "GETRF(" + ks + ")");
    if (k > 0) g.add_edge(get('G', k - 1, k, k), getrf);

    for (std::size_t j = k + 1; j < tiles; ++j) {
      const NodeId trsm = node('R', k, 0, j, kTrsm,
                               "TRSM_R(" + ks + "," + std::to_string(j) + ")");
      g.add_edge(getrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, k, j), trsm);
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      const NodeId trsm = node('C', k, i, 0, kTrsm,
                               "TRSM_C(" + ks + "," + std::to_string(i) + ")");
      g.add_edge(getrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, i, k), trsm);
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      for (std::size_t j = k + 1; j < tiles; ++j) {
        const NodeId gemm =
            node('G', k, i, j, kGemm,
                 "GEMM(" + ks + "," + std::to_string(i) + "," + std::to_string(j) + ")");
        g.add_edge(get('C', k, i, 0), gemm);
        g.add_edge(get('R', k, 0, j), gemm);
        if (k > 0) g.add_edge(get('G', k - 1, i, j), gemm);
      }
    }
  }
  return g;
}

Digraph make_fft(std::size_t log2_size) {
  require(log2_size >= 1, "FFT requires >= 2 points");
  const std::size_t n = std::size_t{1} << log2_size;
  Digraph g;
  // ids[s][i]: stage s, position i.
  std::vector<std::vector<NodeId>> ids(log2_size + 1, std::vector<NodeId>(n));
  for (std::size_t i = 0; i < n; ++i)
    ids[0][i] = g.add_node(1.0, "load" + std::to_string(i));
  for (std::size_t s = 1; s <= log2_size; ++s) {
    const std::size_t stride = std::size_t{1} << (s - 1);
    for (std::size_t i = 0; i < n; ++i) {
      ids[s][i] = g.add_node(
          1.0, "bf" + std::to_string(s) + "." + std::to_string(i));
      g.add_edge(ids[s - 1][i], ids[s][i]);
      g.add_edge(ids[s - 1][i ^ stride], ids[s][i]);
    }
  }
  return g;
}

Digraph make_stencil(std::size_t rows, std::size_t cols, util::Rng& rng,
                     WeightRange wr) {
  require(rows >= 1 && cols >= 1, "stencil requires rows, cols >= 1");
  Digraph g;
  std::vector<std::vector<NodeId>> ids(rows, std::vector<NodeId>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      ids[i][j] = g.add_node(
          wr.sample(rng), "c" + std::to_string(i) + "." + std::to_string(j));
      if (i > 0) g.add_edge(ids[i - 1][j], ids[i][j]);
      if (j > 0) g.add_edge(ids[i][j - 1], ids[i][j]);
    }
  }
  return g;
}

}  // namespace reclaim::graph
