// Graphviz DOT export for debugging and documentation.
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace reclaim::graph {

/// Renders `g` as a Graphviz digraph. Node labels show the name (when set)
/// and the weight.
[[nodiscard]] std::string to_dot(const Digraph& g, const std::string& title = "G");

}  // namespace reclaim::graph
