#include "graph/sp_tree.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace reclaim::graph {

namespace {

/// One edge of the reduction multigraph; payload indexes the SpTree arena.
struct REdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t payload = 0;
  bool alive = true;
};

/// The reduction state: node-split multigraph plus the growing SpTree arena.
class Reducer {
 public:
  explicit Reducer(const Digraph& g)
      : graph_(g), source_(2 * g.num_nodes()), sink_(2 * g.num_nodes() + 1) {
    const std::size_t vertices = 2 * g.num_nodes() + 2;
    out_.resize(vertices);
    in_.resize(vertices);
    queued_.resize(vertices, false);

    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      add_edge(vertex_in(v), vertex_out(v), leaf(v));
      if (g.in_degree(v) == 0) add_edge(source_, vertex_in(v), junction());
      if (g.out_degree(v) == 0) add_edge(vertex_out(v), sink_, junction());
    }
    for (const Edge& e : g.edges())
      add_edge(vertex_out(e.from), vertex_in(e.to), junction());
  }

  std::optional<SpTree> run() {
    // Seed the worklist with every split vertex.
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      push(vertex_in(v));
      push(vertex_out(v));
    }
    while (!worklist_.empty()) {
      const std::size_t x = worklist_.back();
      worklist_.pop_back();
      queued_[x] = false;
      try_series(x);
    }

    // Success iff a single alive edge source -> sink remains.
    std::size_t alive = 0;
    std::size_t last = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (edges_[i].alive) {
        ++alive;
        last = i;
      }
    }
    if (alive != 1 || edges_[last].from != source_ || edges_[last].to != sink_)
      return std::nullopt;

    tree_.root = edges_[last].payload;
    return std::move(tree_);
  }

 private:
  [[nodiscard]] std::size_t vertex_in(NodeId v) const { return 2 * v; }
  [[nodiscard]] std::size_t vertex_out(NodeId v) const { return 2 * v + 1; }

  std::size_t leaf(NodeId task) {
    tree_.nodes.push_back({SpKind::kLeaf, task, {}});
    return tree_.nodes.size() - 1;
  }

  std::size_t junction() { return leaf(kNoNode); }

  [[nodiscard]] bool is_junction(std::size_t node) const {
    return tree_.nodes[node].kind == SpKind::kLeaf &&
           tree_.nodes[node].task == kNoNode;
  }

  /// Flattens `node` into `out` if it has kind `kind`, else appends it.
  void flatten_into(std::size_t node, SpKind kind, std::vector<std::size_t>& out) {
    if (tree_.nodes[node].kind == kind) {
      for (std::size_t c : tree_.nodes[node].children) out.push_back(c);
    } else {
      out.push_back(node);
    }
  }

  /// Builds a composition of `a` and `b`, flattening nested same-kind nodes
  /// and pruning structural junction leaves (they carry zero weight and no
  /// task). Returns a single node index.
  std::size_t compose(SpKind kind, std::size_t a, std::size_t b) {
    std::vector<std::size_t> children;
    flatten_into(a, kind, children);
    flatten_into(b, kind, children);

    std::vector<std::size_t> pruned;
    pruned.reserve(children.size());
    for (std::size_t c : children)
      if (!is_junction(c)) pruned.push_back(c);

    if (pruned.empty()) return children.front();  // all-junction composition
    if (pruned.size() == 1) return pruned.front();
    tree_.nodes.push_back({kind, kNoNode, std::move(pruned)});
    return tree_.nodes.size() - 1;
  }

  std::size_t add_edge(std::size_t from, std::size_t to, std::size_t payload) {
    edges_.push_back({from, to, payload, true});
    const std::size_t id = edges_.size() - 1;
    out_[from].push_back(id);
    in_[to].push_back(id);
    return id;
  }

  void compact(std::vector<std::size_t>& list) const {
    std::erase_if(list, [&](std::size_t e) { return !edges_[e].alive; });
  }

  void push(std::size_t vertex) {
    if (vertex == source_ || vertex == sink_) return;
    if (queued_[vertex]) return;
    queued_[vertex] = true;
    worklist_.push_back(vertex);
  }

  /// Merges duplicate edges between (a, b) into parallel compositions.
  void merge_parallels(std::size_t a, std::size_t b) {
    compact(out_[a]);
    for (;;) {
      std::size_t first = edges_.size();
      bool merged = false;
      for (std::size_t e : out_[a]) {
        if (!edges_[e].alive || edges_[e].to != b) continue;
        if (first == edges_.size()) {
          first = e;
        } else {
          edges_[first].payload =
              compose(SpKind::kParallel, edges_[first].payload, edges_[e].payload);
          edges_[e].alive = false;
          merged = true;
          break;
        }
      }
      if (!merged) break;
      compact(out_[a]);
    }
    compact(in_[b]);
  }

  /// Attempts the series reduction at split vertex x (in-degree 1 and
  /// out-degree 1); cascades parallel merges and requeues the endpoints.
  void try_series(std::size_t x) {
    compact(in_[x]);
    compact(out_[x]);
    if (in_[x].size() != 1 || out_[x].size() != 1) return;

    const std::size_t e_in = in_[x].front();
    const std::size_t e_out = out_[x].front();
    const std::size_t a = edges_[e_in].from;
    const std::size_t b = edges_[e_out].to;

    const std::size_t payload =
        compose(SpKind::kSeries, edges_[e_in].payload, edges_[e_out].payload);
    edges_[e_in].alive = false;
    edges_[e_out].alive = false;
    in_[x].clear();
    out_[x].clear();
    add_edge(a, b, payload);

    merge_parallels(a, b);
    push(a);
    push(b);
  }

  const Digraph& graph_;
  std::size_t source_;
  std::size_t sink_;
  std::vector<REdge> edges_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
  std::vector<std::size_t> worklist_;
  std::vector<bool> queued_;
  SpTree tree_;
};

}  // namespace

std::size_t SpTree::task_leaves(std::size_t node) const {
  const Node& n = nodes[node];
  if (n.kind == SpKind::kLeaf) return n.task == kNoNode ? 0 : 1;
  std::size_t total = 0;
  for (std::size_t c : n.children) total += task_leaves(c);
  return total;
}

std::optional<SpTree> sp_decompose(const Digraph& g) {
  util::require(g.num_nodes() > 0, "sp_decompose of an empty graph");
  util::require(is_acyclic(g), "sp_decompose requires a DAG");
  Reducer reducer(g);
  return reducer.run();
}

bool is_series_parallel(const Digraph& g) { return sp_decompose(g).has_value(); }

}  // namespace reclaim::graph
