#include "la/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::la {

using util::require;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  for (auto& x : data_) x = value;
}

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  require(x.size() == rows_, "Matrix::multiply_transposed: dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  require(cols_ == other.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  require(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& v, double alpha) {
  for (auto& x : v) x *= alpha;
}

}  // namespace reclaim::la
