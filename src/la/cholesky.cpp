#include "la/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace reclaim::la {

Cholesky::Cholesky(const Matrix& a, double jitter) : l_(a.rows(), a.cols()) {
  util::require(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();

  // Left-looking factorization; only the lower triangle of `a` is read.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lj = l_.row(j);
    for (std::size_t k = 0; k < j; ++k) diag -= lj[k] * lj[k];
    if (diag <= jitter) {
      util::require_numeric(jitter > 0.0,
                            "Cholesky: matrix is not positive definite");
      diag = jitter;
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l_.row(i);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l_(i, j) = s / ljj;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  util::require(b.size() == n, "Cholesky::solve: dimension mismatch");

  Vector y(b);
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l_.row(i);
    double s = y[i];
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  // Backward substitution: L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

double Cholesky::log_det() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace reclaim::la
