// LU factorization with partial pivoting for general square systems.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace reclaim::la {

class Lu {
 public:
  /// Factorizes `a` with partial pivoting. Throws NumericalError if a is
  /// singular to working precision.
  explicit Lu(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Determinant of A (product of pivots, sign-adjusted).
  [[nodiscard]] double det() const noexcept;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

}  // namespace reclaim::la
