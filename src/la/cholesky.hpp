// Cholesky factorization for symmetric positive definite systems.
//
// The interior-point solver's Newton step reduces to solving H dx = -g with
// H symmetric positive definite; this factorization is the hot path, so it
// works in place on row-major storage with contiguous inner loops.
#pragma once

#include "la/matrix.hpp"

namespace reclaim::la {

/// Lower-triangular Cholesky factor of an SPD matrix.
class Cholesky {
 public:
  /// Factorizes `a` (reads the lower triangle). Throws NumericalError when
  /// a non-positive pivot (within `jitter` tolerance) is encountered.
  /// When `jitter` > 0, pivots smaller than jitter are lifted to jitter —
  /// a standard modified-Cholesky safeguard for nearly singular Hessians.
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  /// Solves A x = b via forward/backward substitution.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Log-determinant of A (twice the log-determinant of the factor).
  [[nodiscard]] double log_det() const noexcept;

  [[nodiscard]] const Matrix& factor() const noexcept { return l_; }

 private:
  Matrix l_;
};

}  // namespace reclaim::la
