// Dense row-major matrix and BLAS-1/2 style helpers.
//
// The optimization substrate needs only a modest dense toolkit: symmetric
// positive-definite solves for interior-point Newton steps and pivoted LU
// for general systems. Everything is self-contained (no external BLAS).
#pragma once

#include <cstddef>
#include <vector>

namespace reclaim::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Raw contiguous row pointer (row-major storage).
  [[nodiscard]] double* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const double* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] static Matrix identity(std::size_t n);

  void fill(double value);

  /// y = A x. Requires x.size() == cols(). Result has rows() entries.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// y = A^T x. Requires x.size() == rows(). Result has cols() entries.
  [[nodiscard]] Vector multiply_transposed(const Vector& x) const;

  /// C = A B.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  [[nodiscard]] Matrix transposed() const;

  /// Max-abs element (used for scale estimates and test tolerances).
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; requires equal sizes.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);

/// Infinity norm.
[[nodiscard]] double norm_inf(const Vector& v);

/// y += alpha * x (in place); requires equal sizes.
void axpy(double alpha, const Vector& x, Vector& y);

/// Element-wise scale: v *= alpha.
void scale(Vector& v, double alpha);

}  // namespace reclaim::la
