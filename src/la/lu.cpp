#include "la/lu.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "util/error.hpp"

namespace reclaim::la {

Lu::Lu(const Matrix& a) : lu_(a), perm_(a.rows()) {
  util::require(a.rows() == a.cols(), "Lu requires a square matrix");
  const std::size_t n = a.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::abs(lu_(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    util::require_numeric(best > 1e-300, "Lu: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    const double pivot_value = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / pivot_value;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      const double* rk = lu_.row(k);
      double* ri = lu_.row(i);
      for (std::size_t c = k + 1; c < n; ++c) ri[c] -= factor * rk[c];
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  util::require(b.size() == n, "Lu::solve: dimension mismatch");

  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];

  // Forward substitution with unit-lower L.
  for (std::size_t i = 1; i < n; ++i) {
    const double* ri = lu_.row(i);
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= ri[k] * x[k];
    x[i] = s;
  }
  // Backward substitution with U.
  for (std::size_t i = n; i-- > 0;) {
    const double* ri = lu_.row(i);
    double s = x[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= ri[k] * x[k];
    x[i] = s / ri[i];
  }
  return x;
}

double Lu::det() const noexcept {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace reclaim::la
