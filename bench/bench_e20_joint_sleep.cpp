// E20 — joint speed/sleep refinement: solve_joint_sleep vs its own
// race-to-idle anchor over a wake-cost x P_stat grid.
//
// Same platform family as E14 (layered DAGs on 3 processors, slack 2.5,
// P_idle = P_stat + 0.5, P_sleep = 0) so the two tables read side by
// side: E14 measures what racing the crawl buys, E20 measures what the
// joint refiner buys *on top of* the raced schedule. Expected mechanics
// (docs/architecture.md, "Joint speed/sleep"):
//   - the joint moves win exactly where a gap branch is cheaper than
//     leakage: crawling below s_crit into an idle-priced gap saves
//     p_idle - (alpha-1) s^alpha + P_stat per displaced unit of time, so
//     the improved fraction tracks the idle-charged (sub-break-even)
//     gap mass;
//   - with E_wake = 0 every gap sleeps at P_sleep = 0 and stretching
//     into a free gap only adds busy energy — joint == race;
//   - joint <= race on every instance by construction (the refinement is
//     anchored on the race result and accepted only on strict
//     improvement), so joint/race > 1 anywhere is a bug, not noise.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E20 joint speed/sleep refinement (joint vs race anchor)",
                "platform energy over wake-cost x P_stat; layered DAGs "
                "(4x4, p=3), slack 2.5, s_max = 2, alpha = 3, "
                "P_idle = P_stat + 0.5, P_sleep = 0");

  const double s_max = 2.0;
  const double slack = 2.5;
  const std::vector<double> p_statics{0.25, 1.0, 4.0, 8.0};
  const std::vector<double> wake_costs{0.0, 0.5, 2.0, 8.0, 32.0};
  constexpr std::size_t kSeeds = 8;

  util::Table table("Joint speed/sleep vs race-to-idle (geo-mean of 8 seeds)",
                    {"P_stat", "E_wake", "s_crit", "break-even", "race E",
                     "joint E", "joint/race", "% improved", "gaps absorbed"});

  for (double p_static : p_statics) {
    for (double wake : wake_costs) {
      const auto sleep = model::make_sleep_spec(p_static + 0.5, 0.0, wake);
      const auto power = model::make_power_model(3.0, p_static, sleep);

      std::vector<double> race_e, joint_e, ratios;
      std::size_t improved = 0, feasible = 0, absorbed = 0;
      for (std::size_t i = 0; i < kSeeds; ++i) {
        util::Rng rng(2000 + i);
        const auto app = graph::make_layered(4, 4, 0.5, rng);
        const auto schedule = sched::list_schedule(app, 3, s_max);
        auto exec = sched::build_execution_graph(app, schedule.mapping);
        const double deadline = slack * core::min_deadline(exec, s_max);
        const auto instance =
            core::make_instance(std::move(exec), deadline, power);

        const auto r = core::solve_joint_sleep(
            instance, model::ContinuousModel{s_max}, schedule.mapping);
        if (!r.solution.feasible) continue;
        ++feasible;
        race_e.push_back(r.race.total());
        joint_e.push_back(r.chosen.total());
        ratios.push_back(r.chosen.total() / r.race.total());
        if (r.improved) ++improved;
        absorbed += r.absorbed;
      }
      if (feasible == 0) continue;
      table.add_row(
          {util::Table::fmt(p_static, 2), util::Table::fmt(wake, 2),
           util::Table::fmt(power.critical_speed(), 3),
           util::Table::fmt(sleep.break_even(), 3),
           util::Table::fmt(util::geometric_mean(race_e), 3),
           util::Table::fmt(util::geometric_mean(joint_e), 3),
           util::Table::fmt_ratio(util::geometric_mean(ratios), 4),
           util::Table::fmt_pct(static_cast<double>(improved) /
                                    static_cast<double>(feasible),
                                1),
           util::Table::fmt(static_cast<double>(absorbed), 0)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: joint/race <= 1x on every cell (the "
               "refinement only replaces the anchor when it strictly wins); "
               "the improved fraction peaks where gaps idle — high wake "
               "costs or short sub-break-even gaps — and vanishes at "
               "E_wake = 0 where sleeping is free and stretching into a "
               "gap can only add busy energy.\n";
  return 0;
}
