// E7 — convergence to the Continuous ideal:
//   (a) Vdd-Hopping -> Continuous as the number of modes m grows,
//   (b) Incremental -> Continuous as delta -> 0 (Prop. 1: "arbitrarily
//       efficient"),
// on a fixed mapped workload.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E7 convergence to Continuous (Thm 3 + Prop. 1)",
                "gap to the Continuous optimum as modes densify");

  const double s_max = 2.0;
  util::Rng rng(707);
  const auto app = graph::make_layered(4, 4, 0.5, rng);
  auto instance = bench::mapped_instance(app, 3, s_max, 1.4);
  const auto cont =
      bench::shared_engine().solve_one(instance, model::ContinuousModel{s_max});
  if (!cont.feasible) {
    std::cout << "unexpected infeasible instance\n";
    return 1;
  }

  {
    util::Table table("(a) Vdd-Hopping LP vs mode count",
                      {"m modes", "E vdd", "gap to continuous"});
    for (std::size_t m : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
      const auto modes = bench::spread_modes(m, 0.3, s_max);
      const auto lp = bench::shared_engine().solve_one(
          instance, model::VddHoppingModel{modes});
      if (!lp.feasible) continue;
      table.add_row({util::Table::fmt(m), util::Table::fmt(lp.energy, 5),
                     util::Table::fmt_pct(lp.energy / cont.energy - 1.0, 3)});
    }
    table.print(std::cout);
  }

  {
    util::Table table("(b) Incremental (CONT-ROUND) vs delta",
                      {"delta", "modes", "E incr", "gap to continuous",
                       "certified bound"});
    for (double delta : {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125}) {
      const model::IncrementalModel inc(0.3, s_max, delta);
      const auto round = bench::shared_engine().solve_one(instance, inc);
      if (!round.feasible) continue;
      table.add_row(
          {util::Table::fmt(delta, 5), util::Table::fmt(inc.modes.size()),
           util::Table::fmt(round.energy, 5),
           util::Table::fmt_pct(round.energy / cont.energy - 1.0, 3),
           util::Table::fmt_pct(
               core::incremental_transfer_bound(delta, 0.3,
                                                instance.power()) - 1.0,
               2)});
    }
    table.print(std::cout);
  }

  bench::print_engine_stats();
  std::cout << "\nExpected shape: both gaps shrink monotonically toward 0; "
               "the measured Incremental gap stays far below the certified "
               "per-task worst case.\n";
  return 0;
}
