// E11 — the bi-criteria view: the energy/deadline Pareto curve per model,
// and its inversion (smallest deadline within an energy budget).
//
// The paper frames MinEnergy as one side of a bi-criteria problem
// (keywords: "bi-criteria optimization"); E*(D) is the whole tradeoff.
// Also measures the Vdd switch counts, quantifying the model's
// free-switching assumption.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E11 energy/deadline tradeoff (bi-criteria view)",
                "Pareto curve E*(D) per model on a mapped tiled Cholesky; "
                "curve inversion; Vdd switch counts");

  const double s_max = 1.0;
  const auto app = graph::make_tiled_cholesky(5);
  const auto schedule = sched::list_schedule(app, 3, s_max);
  const auto exec = sched::build_execution_graph(app, schedule.mapping);
  const double d_min = core::min_deadline(exec, s_max);
  auto instance = core::make_instance(exec, d_min);

  const model::ModeSet modes({0.3, 0.5, 0.7, 0.85, 1.0});
  const model::EnergyModel continuous = model::ContinuousModel{s_max};
  const model::EnergyModel vdd = model::VddHoppingModel{modes};
  const model::EnergyModel incremental = model::IncrementalModel(0.25, 1.0, 0.125);

  // Route every curve sample and bisection probe through the engine: the
  // curve re-solves one topology at many deadlines, so after the first
  // sample the dispatch cache answers every classification, and repeated
  // probe deadlines hit the memo.
  const core::SolveFn via_engine = [](const core::Instance& at,
                                      const model::EnergyModel& m,
                                      const core::SolveOptions& opts) {
    return bench::shared_engine().solve_one(at, m, opts);
  };

  {
    const double lo = 1.02 * d_min;
    const double hi = 3.0 * d_min;
    const std::size_t points = 9;
    const auto cont_curve = core::energy_deadline_curve(instance, continuous, lo,
                                                        hi, points, {}, via_engine);
    const auto vdd_curve =
        core::energy_deadline_curve(instance, vdd, lo, hi, points, {}, via_engine);
    const auto inc_curve = core::energy_deadline_curve(
        instance, incremental, lo, hi, points, {}, via_engine);

    util::Table table("Pareto curve E*(D), tiled Cholesky 5x5 on 3 processors",
                      {"D/D_min", "Continuous", "Vdd-Hopping", "Incremental"});
    for (std::size_t i = 0; i < points; ++i) {
      auto cell = [](const core::TradeoffPoint& p) {
        return p.feasible ? util::Table::fmt(p.energy, 3) : std::string("-");
      };
      table.add_row({util::Table::fmt(cont_curve[i].deadline / d_min, 2),
                     cell(cont_curve[i]), cell(vdd_curve[i]),
                     cell(inc_curve[i])});
    }
    table.print(std::cout);
  }

  {
    // Invert the continuous curve at budgets between the extremes.
    const auto loose = core::energy_deadline_curve(
        instance, continuous, 3.0 * d_min, 3.0 * d_min, 1, {}, via_engine);
    const auto tight = core::energy_deadline_curve(
        instance, continuous, 1.02 * d_min, 1.02 * d_min, 1, {}, via_engine);
    util::Table table("Curve inversion: smallest D with E*(D) <= budget",
                      {"budget (% of tight E)", "deadline/D_min", "energy"});
    for (double fraction : {0.9, 0.6, 0.4, 0.2}) {
      const double budget =
          loose.front().energy +
          fraction * (tight.front().energy - loose.front().energy);
      const auto inv =
          core::deadline_for_energy(instance, continuous, budget, 1.02 * d_min,
                                    3.0 * d_min, 1e-6, {}, via_engine);
      table.add_row({util::Table::fmt_pct(fraction, 0),
                     inv.achievable
                         ? util::Table::fmt(inv.deadline / d_min, 4)
                         : "unachievable",
                     inv.achievable ? util::Table::fmt(inv.energy, 3) : "-"});
    }
    table.print(std::cout);
  }

  {
    util::Table table("Vdd switch counts (free in the model) vs slack",
                      {"D/D_min", "tasks", "switches", "E + 0.05/switch",
                       "overhead"});
    for (double slack : {1.05, 1.5, 2.5}) {
      core::Instance at{instance.exec_graph, slack * d_min,
                        instance.platform, instance.assignment};
      const auto s = bench::shared_engine().solve_one(at, vdd);
      if (!s.feasible) continue;
      const auto switches = core::total_speed_switches(s);
      const double with_cost = core::energy_with_switch_cost(s, 0.05);
      table.add_row({util::Table::fmt(slack, 2),
                     util::Table::fmt(at.exec_graph.num_nodes()),
                     util::Table::fmt(switches), util::Table::fmt(with_cost, 3),
                     util::Table::fmt_pct(with_cost / s.energy - 1.0, 2)});
    }
    table.print(std::cout);
  }

  bench::print_engine_stats();
  std::cout << "\nExpected shape: every curve is non-increasing and the "
               "mode-based curves sit above Continuous, flattening at the "
               "slowest-mode floor; inversion recovers the curve; at most "
               "one switch per task, so the free-switching assumption "
               "costs little.\n";
  return 0;
}
