// E6 — the headline comparative study the paper's conclusion announces:
// energy of every model as a function of deadline slack.
//
// Two workloads (random layered DAGs and a tiled Cholesky), mapped on 3
// processors; per slack point, geometric-mean energy ratio to the
// Continuous optimum over a batch of seeds (single row for Cholesky,
// which is deterministic). Also reports the two baselines.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace reclaim;

struct Row {
  double vdd = 0.0, disc = 0.0, inc = 0.0, stretch = 0.0, uniform = 0.0,
         nodvfs = 0.0;
  double cont_energy = 0.0;
  bool ok = false;
};

/// Folds the engine-solved models plus the (specialized) baselines into a
/// ratio row.
Row make_row(const core::Instance& instance, const core::Solution& cont,
             const core::Solution& vdd, const core::Solution& disc,
             const core::Solution& inc, const model::ModeSet& disc_modes) {
  Row row;
  if (!cont.feasible || cont.energy <= 0.0) return row;
  const auto stretch =
      core::solve_path_stretch(instance, model::DiscreteModel{disc_modes});
  const auto uniform =
      core::solve_uniform(instance, model::DiscreteModel{disc_modes});
  const auto nodvfs =
      core::solve_no_dvfs(instance, model::DiscreteModel{disc_modes});
  if (!vdd.feasible || !disc.feasible || !inc.feasible || !stretch.feasible ||
      !uniform.feasible || !nodvfs.feasible)
    return row;
  row.cont_energy = cont.energy;
  row.vdd = vdd.energy / cont.energy;
  row.disc = disc.energy / cont.energy;
  row.inc = inc.energy / cont.energy;
  row.stretch = stretch.energy / cont.energy;
  row.uniform = uniform.energy / cont.energy;
  row.nodvfs = nodvfs.energy / cont.energy;
  row.ok = true;
  return row;
}

/// One slack-sweep table over the random layered-DAG workload (8 seeds
/// per slack, engine-batched per model). Shared by Workload A (pure
/// power law) and Workload C (leakage-aware), which differ only in
/// `p_static`.
void layered_workload_table(const std::string& title, double p_static,
                            double s_max, const model::ModeSet& disc_modes,
                            const model::IncrementalModel& inc,
                            const std::vector<double>& slacks) {
  util::Table table(title, {"D/D_min", "Vdd-Hop", "Discrete", "Incremental",
                            "PATH-STRETCH", "UNIFORM", "NO-DVFS"});
  for (double slack : slacks) {
    constexpr std::size_t kSeeds = 8;
    std::vector<core::Instance> instances;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      util::Rng rng(600 + i);
      const auto app = graph::make_layered(4, 4, 0.5, rng);
      instances.push_back(
          bench::mapped_instance(app, 3, s_max, slack, 3.0, p_static));
    }
    // One engine batch per model; the engine shards each batch over the
    // pool and the eight seeds share their topology classifications.
    auto& eng = bench::shared_engine();
    const auto cont = eng.solve_batch(instances, model::ContinuousModel{s_max});
    const auto vdd =
        eng.solve_batch(instances, model::VddHoppingModel{disc_modes});
    const auto disc = eng.solve_batch(instances, model::DiscreteModel{disc_modes});
    const auto incr = eng.solve_batch(instances, inc);
    std::vector<double> v, d, ic, ps, u, n;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      const Row r =
          make_row(instances[i], cont[i], vdd[i], disc[i], incr[i], disc_modes);
      if (!r.ok) continue;
      v.push_back(r.vdd);
      d.push_back(r.disc);
      ic.push_back(r.inc);
      ps.push_back(r.stretch);
      u.push_back(r.uniform);
      n.push_back(r.nodvfs);
    }
    if (v.empty()) continue;
    table.add_row({util::Table::fmt(slack, 2),
                   util::Table::fmt_ratio(util::geometric_mean(v), 4),
                   util::Table::fmt_ratio(util::geometric_mean(d), 4),
                   util::Table::fmt_ratio(util::geometric_mean(ic), 4),
                   util::Table::fmt_ratio(util::geometric_mean(ps), 3),
                   util::Table::fmt_ratio(util::geometric_mean(u), 3),
                   util::Table::fmt_ratio(util::geometric_mean(n), 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace reclaim;
  bench::banner(
      "E6 comparative study of energy models (paper's conclusion)",
      "geo-mean energy ratio to Continuous vs deadline slack; Discrete modes "
      "{0.6, 1.0, 1.4, 2.0} (irregular), Incremental s in [0.5, 2.0] step "
      "0.25");

  const double s_max = 2.0;
  const model::ModeSet disc_modes({0.6, 1.0, 1.4, 2.0});
  const model::IncrementalModel inc(0.5, 2.0, 0.25);
  const std::vector<double> slacks{1.05, 1.2, 1.5, 2.0, 3.0, 5.0};

  // --- Workload A: random layered DAGs, 8 seeds per slack ---
  layered_workload_table("Workload A: layered DAGs (4x4, p=3; geo-mean of 8 seeds)",
                         0.0, s_max, disc_modes, inc, slacks);

  // --- Workload B: tiled Cholesky (deterministic) ---
  {
    util::Table table("Workload B: tiled Cholesky 5x5 (35 kernels, p=3)",
                      {"D/D_min", "E cont", "Vdd-Hop", "Discrete",
                       "Incremental", "PATH-STRETCH", "UNIFORM", "NO-DVFS"});
    const auto app = graph::make_tiled_cholesky(5);
    for (double slack : slacks) {
      auto instance = bench::mapped_instance(app, 3, s_max, slack);
      // Same mapped Cholesky topology at every slack: after the first row
      // the engine's dispatch cache answers the classification.
      auto& eng = bench::shared_engine();
      const Row r = make_row(
          instance, eng.solve_one(instance, model::ContinuousModel{s_max}),
          eng.solve_one(instance, model::VddHoppingModel{disc_modes}),
          eng.solve_one(instance, model::DiscreteModel{disc_modes}),
          eng.solve_one(instance, inc), disc_modes);
      if (!r.ok) continue;
      table.add_row({util::Table::fmt(slack, 2),
                     util::Table::fmt(r.cont_energy, 3),
                     util::Table::fmt_ratio(r.vdd, 4),
                     util::Table::fmt_ratio(r.disc, 4),
                     util::Table::fmt_ratio(r.inc, 4),
                     util::Table::fmt_ratio(r.stretch, 3),
                     util::Table::fmt_ratio(r.uniform, 3),
                     util::Table::fmt_ratio(r.nodvfs, 3)});
    }
    table.print(std::cout);
  }

  // --- Workload C: A's DAGs under the leakage-aware model P_stat + s^3,
  // s_crit = (0.5/2)^(1/3) ~ 0.63 ---
  layered_workload_table(
      "Workload C: layered DAGs under P(s) = 0.5 + s^3 (geo-mean of 8 seeds)",
      0.5, s_max, disc_modes, inc, slacks);

  bench::print_engine_stats();
  std::cout << "\nExpected shape: Continuous <= Vdd <= Discrete/Incremental "
               "<= UNIFORM <= NO-DVFS pointwise; NO-DVFS ratio grows like "
               "slack^2 (it never slows down); mode-based models flatten "
               "once every task reaches the slowest mode. Under leakage "
               "(Workload C) every ratio flattens at high slack: no model "
               "slows below the critical speed, so the gaps stop growing "
               "once s_crit binds.\n";
  return 0;
}
