// E6 — the headline comparative study the paper's conclusion announces:
// energy of every model as a function of deadline slack.
//
// Two workloads (random layered DAGs and a tiled Cholesky), mapped on 3
// processors; per slack point, geometric-mean energy ratio to the
// Continuous optimum over a batch of seeds (single row for Cholesky,
// which is deterministic). Also reports the two baselines.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace reclaim;

struct Row {
  double vdd = 0.0, disc = 0.0, inc = 0.0, stretch = 0.0, uniform = 0.0,
         nodvfs = 0.0;
  double cont_energy = 0.0;
  bool ok = false;
};

Row evaluate(const core::Instance& instance, const model::ModeSet& disc_modes,
             const model::ModeSet& inc_modes, double s_max) {
  Row row;
  const auto cont =
      core::solve_continuous(instance, model::ContinuousModel{s_max});
  if (!cont.feasible || cont.energy <= 0.0) return row;
  const auto vdd =
      core::solve_vdd_lp(instance, model::VddHoppingModel{disc_modes});
  const auto disc = core::solve_round_up(instance, disc_modes);
  const auto inc = core::solve_round_up(instance, inc_modes);
  const auto stretch =
      core::solve_path_stretch(instance, model::DiscreteModel{disc_modes});
  const auto uniform =
      core::solve_uniform(instance, model::DiscreteModel{disc_modes});
  const auto nodvfs =
      core::solve_no_dvfs(instance, model::DiscreteModel{disc_modes});
  if (!vdd.solution.feasible || !disc.solution.feasible ||
      !inc.solution.feasible || !stretch.feasible || !uniform.feasible ||
      !nodvfs.feasible)
    return row;
  row.cont_energy = cont.energy;
  row.vdd = vdd.solution.energy / cont.energy;
  row.disc = disc.solution.energy / cont.energy;
  row.inc = inc.solution.energy / cont.energy;
  row.stretch = stretch.energy / cont.energy;
  row.uniform = uniform.energy / cont.energy;
  row.nodvfs = nodvfs.energy / cont.energy;
  row.ok = true;
  return row;
}

}  // namespace

int main() {
  using namespace reclaim;
  bench::banner(
      "E6 comparative study of energy models (paper's conclusion)",
      "geo-mean energy ratio to Continuous vs deadline slack; Discrete modes "
      "{0.6, 1.0, 1.4, 2.0} (irregular), Incremental s in [0.5, 2.0] step "
      "0.25");

  const double s_max = 2.0;
  const model::ModeSet disc_modes({0.6, 1.0, 1.4, 2.0});
  const model::IncrementalModel inc(0.5, 2.0, 0.25);
  const std::vector<double> slacks{1.05, 1.2, 1.5, 2.0, 3.0, 5.0};

  // --- Workload A: random layered DAGs, 8 seeds per slack ---
  {
    util::Table table("Workload A: layered DAGs (4x4, p=3; geo-mean of 8 seeds)",
                      {"D/D_min", "Vdd-Hop", "Discrete", "Incremental",
                       "PATH-STRETCH", "UNIFORM", "NO-DVFS"});
    for (double slack : slacks) {
      constexpr std::size_t kSeeds = 8;
      std::vector<Row> rows(kSeeds);
      util::parallel_for(0, kSeeds, [&](std::size_t i) {
        util::Rng rng(600 + i);
        const auto app = graph::make_layered(4, 4, 0.5, rng);
        auto instance = bench::mapped_instance(app, 3, s_max, slack);
        rows[i] = evaluate(instance, disc_modes, inc.modes, s_max);
      });
      std::vector<double> v, d, ic, ps, u, n;
      for (const auto& r : rows) {
        if (!r.ok) continue;
        v.push_back(r.vdd);
        d.push_back(r.disc);
        ic.push_back(r.inc);
        ps.push_back(r.stretch);
        u.push_back(r.uniform);
        n.push_back(r.nodvfs);
      }
      if (v.empty()) continue;
      table.add_row({util::Table::fmt(slack, 2),
                     util::Table::fmt_ratio(util::geometric_mean(v), 4),
                     util::Table::fmt_ratio(util::geometric_mean(d), 4),
                     util::Table::fmt_ratio(util::geometric_mean(ic), 4),
                     util::Table::fmt_ratio(util::geometric_mean(ps), 3),
                     util::Table::fmt_ratio(util::geometric_mean(u), 3),
                     util::Table::fmt_ratio(util::geometric_mean(n), 3)});
    }
    table.print(std::cout);
  }

  // --- Workload B: tiled Cholesky (deterministic) ---
  {
    util::Table table("Workload B: tiled Cholesky 5x5 (35 kernels, p=3)",
                      {"D/D_min", "E cont", "Vdd-Hop", "Discrete",
                       "Incremental", "PATH-STRETCH", "UNIFORM", "NO-DVFS"});
    const auto app = graph::make_tiled_cholesky(5);
    for (double slack : slacks) {
      auto instance = bench::mapped_instance(app, 3, s_max, slack);
      const Row r = evaluate(instance, disc_modes, inc.modes, s_max);
      if (!r.ok) continue;
      table.add_row({util::Table::fmt(slack, 2),
                     util::Table::fmt(r.cont_energy, 3),
                     util::Table::fmt_ratio(r.vdd, 4),
                     util::Table::fmt_ratio(r.disc, 4),
                     util::Table::fmt_ratio(r.inc, 4),
                     util::Table::fmt_ratio(r.stretch, 3),
                     util::Table::fmt_ratio(r.uniform, 3),
                     util::Table::fmt_ratio(r.nodvfs, 3)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: Continuous <= Vdd <= Discrete/Incremental "
               "<= UNIFORM <= NO-DVFS pointwise; NO-DVFS ratio grows like "
               "slack^2 (it never slows down); mode-based models flatten "
               "once every task reaches the slowest mode.\n";
  return 0;
}
