// Shared helpers for the experiment harness (bench_e*).
#pragma once

#include <iostream>
#include <string>

#include "reclaim.hpp"

namespace reclaim::bench {

/// Process-wide batch engine for the harness. Every bench routes its
/// solves through this so repeated topologies hit the dispatch cache and
/// repeated sub-instances hit the solution memo.
inline engine::ReclaimEngine& shared_engine() {
  static engine::ReclaimEngine engine;
  return engine;
}

/// Standard experiment banner: what is being reproduced and from where.
/// Also constructs the shared engine, so its thread pool never starts up
/// inside a bench's first timed region.
inline void banner(const std::string& id, const std::string& claim) {
  (void)shared_engine();
  std::cout << "=== " << id << " ===\n" << claim << "\n";
}

/// One-line cache/throughput summary, printed at the end of a bench run.
inline void print_engine_stats(std::ostream& out = std::cout) {
  const auto s = shared_engine().stats();
  out << "[engine] threads " << shared_engine().threads() << ", batches "
      << s.batches << ", instances " << s.instances << ", fresh solves "
      << s.fresh_solves << ", memo hits " << s.memo_hits << ", shape hits "
      << s.shape_hits << "\n";
}

/// List-schedules `app` on `processors` at the fastest admissible speed
/// and returns the execution-graph instance with deadline slack * D_min.
/// A positive `p_static` solves under the leakage-aware power model
/// P(s) = p_static + s^alpha.
inline core::Instance mapped_instance(const graph::Digraph& app,
                                      std::size_t processors, double s_max,
                                      double slack, double alpha = 3.0,
                                      double p_static = 0.0) {
  const auto schedule = sched::list_schedule(app, processors, s_max);
  const auto exec = sched::build_execution_graph(app, schedule.mapping);
  const double d_min = core::min_deadline(exec, s_max);
  return core::make_instance(exec, slack * d_min,
                             model::make_power_model(alpha, p_static));
}

/// Evenly spaced m modes covering [lo, hi].
inline model::ModeSet spread_modes(std::size_t m, double lo, double hi) {
  std::vector<double> speeds;
  if (m == 1) return model::ModeSet({hi});
  for (std::size_t i = 0; i < m; ++i)
    speeds.push_back(lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(m - 1));
  return model::ModeSet(speeds);
}

}  // namespace reclaim::bench
