// E9 — solver scalability (the polynomial claims of Theorems 2-3 and the
// exponential reality of Theorem 4), measured with google-benchmark.
//
// Complexity expectations: tree/SP solvers ~ O(n); the barrier solver is
// polynomial with a dense O(n^3) Newton step; the Vdd LP is polynomial;
// branch-and-bound grows exponentially with n.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace reclaim;

void BM_TreeSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_random_out_tree(n, rng);
  auto instance = core::make_instance(g, 1.3 * core::min_deadline(g, 2.0));
  for (auto _ : state) {
    auto s = core::solve_tree(instance, model::ContinuousModel{2.0});
    benchmark::DoNotOptimize(s.energy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeSolver)->Arg(50)->Arg(200)->Arg(800)->Complexity();

void BM_SpSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_random_series_parallel(n, rng);
  auto instance = core::make_instance(g, 2.0 * core::min_deadline(g, 2.0));
  for (auto _ : state) {
    auto s = core::solve_sp(instance);
    benchmark::DoNotOptimize(s.energy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpSolver)->Arg(50)->Arg(200)->Arg(800)->Complexity();

void BM_NumericBarrier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_layered(n / 5, 5, 0.4, rng);
  auto instance = core::make_instance(g, 1.4 * core::min_deadline(g, 2.0));
  core::ContinuousOptions force;
  force.force_numeric = true;
  for (auto _ : state) {
    auto s = core::solve_continuous(instance, model::ContinuousModel{2.0}, force);
    benchmark::DoNotOptimize(s.energy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NumericBarrier)->Arg(25)->Arg(50)->Arg(100)->Complexity();

void BM_VddLp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_layered(n / 5, 5, 0.4, rng);
  auto instance = core::make_instance(g, 1.4 * core::min_deadline(g, 2.0));
  const auto modes = bench::spread_modes(4, 0.5, 2.0);
  for (auto _ : state) {
    auto s = core::solve_vdd_lp(instance, model::VddHoppingModel{modes});
    benchmark::DoNotOptimize(s.solution.energy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VddLp)->Arg(15)->Arg(30)->Arg(60)->Complexity();

void BM_DiscreteBb(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_layered(2, n / 2, 0.5, rng);
  auto instance = core::make_instance(g, 1.25 * core::min_deadline(g, 2.0));
  const auto modes = bench::spread_modes(4, 0.5, 2.0);
  for (auto _ : state) {
    auto s = core::solve_discrete_exact(instance, modes);
    benchmark::DoNotOptimize(s.solution.energy);
    state.counters["bb_nodes"] =
        static_cast<double>(s.nodes_explored);
  }
}
BENCHMARK(BM_DiscreteBb)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

void BM_SpDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto g = graph::make_random_series_parallel(n, rng);
  for (auto _ : state) {
    auto tree = graph::sp_decompose(g);
    benchmark::DoNotOptimize(tree->root);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpDecompose)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_EngineBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::Rng rng(909);
  std::vector<core::Instance> instances;
  auto add = [&instances](graph::Digraph g) {
    const double deadline = 1.4 * core::min_deadline(g, 2.0);
    instances.push_back(core::make_instance(std::move(g), deadline));
  };
  for (int k = 0; k < 16; ++k) {
    add(graph::make_chain(20, rng));
    add(graph::make_random_out_tree(24, rng));
    add(graph::make_fork_join_chain(3, 4, rng));
    add(graph::make_stencil(4, 5, rng));
  }
  engine::EngineOptions options;
  options.threads = threads;
  options.memoize = false;  // measure raw solve throughput, not cache hits
  engine::ReclaimEngine eng(options);
  for (auto _ : state) {
    auto out = eng.solve_batch(instances, model::ContinuousModel{2.0});
    benchmark::DoNotOptimize(out.back().energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    instances.size()));
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4);

void BM_ListSchedule(benchmark::State& state) {
  const auto tiles = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_tiled_cholesky(tiles);
  for (auto _ : state) {
    auto r = sched::list_schedule(g, 8, 1.0);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_ListSchedule)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== E9 solver scalability (Theorems 2-4) ===\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
