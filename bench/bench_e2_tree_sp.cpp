// E2 — Theorem 2: trees and series-parallel graphs solve in polynomial
// time, matching the numeric reference solver.
//
// Random out-trees (with a binding s_max to exercise saturation peeling)
// and random SP graphs vs the numeric solver: agreement + runtimes.
#include <iostream>

#include "bench_util.hpp"
#include "util/timer.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E2 trees & series-parallel (Theorem 2)",
                "tree/SP solvers vs numeric reference; rel diff ~ 0 while the "
                "polynomial algorithms stay ~1000x faster");

  util::Rng rng(202);
  util::Table table("Theorem 2 solvers vs numeric",
                    {"family", "n", "D/D_min", "E fast", "E numeric",
                     "rel diff", "t fast (ms)", "t numeric (ms)"});

  const double s_max = 2.0;
  for (std::size_t n : {10u, 50u, 150u}) {
    for (double slack : {1.15, 2.0}) {
      // --- out-tree ---
      {
        auto sub = rng.substream(n * 10 + static_cast<std::uint64_t>(slack));
        const auto g = graph::make_random_out_tree(n, sub);
        auto instance =
            core::make_instance(g, slack * core::min_deadline(g, s_max));
        util::Timer t1;
        const auto fast =
            bench::shared_engine().solve_one(instance, model::ContinuousModel{s_max});
        const double ms_fast = t1.millis();
        util::Timer t2;
        core::ContinuousOptions force;
        force.force_numeric = true;
        const auto ref =
            core::solve_continuous(instance, model::ContinuousModel{s_max}, force);
        const double ms_ref = t2.millis();
        table.add_row({"out-tree", util::Table::fmt(n), util::Table::fmt(slack, 2),
                       util::Table::fmt(fast.energy, 4),
                       util::Table::fmt(ref.energy, 4),
                       util::Table::fmt((ref.energy - fast.energy) / fast.energy, 8),
                       util::Table::fmt(ms_fast, 3), util::Table::fmt(ms_ref, 2)});
      }
      // --- series-parallel (s_max = inf regime as in the theorem) ---
      {
        auto sub = rng.substream(n * 10 + 5 + static_cast<std::uint64_t>(slack));
        const auto g = graph::make_random_series_parallel(n, sub);
        // SP algebra is exact for s_max = inf; use a generous deadline so
        // the unconstrained optimum respects the cap.
        auto instance =
            core::make_instance(g, 2.0 * slack * core::min_deadline(g, s_max));
        util::Timer t1;
        const auto fast = bench::shared_engine().solve_one(
            instance,
            model::ContinuousModel{std::numeric_limits<double>::infinity()});
        const double ms_fast = t1.millis();
        util::Timer t2;
        core::ContinuousOptions force;
        force.force_numeric = true;
        const auto ref = core::solve_continuous(
            instance, model::ContinuousModel{std::numeric_limits<double>::infinity()},
            force);
        const double ms_ref = t2.millis();
        table.add_row({"series-par", util::Table::fmt(n), util::Table::fmt(slack, 2),
                       util::Table::fmt(fast.energy, 4),
                       util::Table::fmt(ref.energy, 4),
                       util::Table::fmt((ref.energy - fast.energy) / fast.energy, 8),
                       util::Table::fmt(ms_fast, 3), util::Table::fmt(ms_ref, 2)});
      }
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();
  std::cout << "\nExpected shape: rel diff within the numeric duality gap "
               "(~1e-6); fast-solver time grows linearly with n.\n";
  return 0;
}
