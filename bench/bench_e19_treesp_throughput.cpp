// E19 — tree/SP sweep throughput: the batched fast path on the
// composition-plan families.
//
// PR 7's kernels covered the constant-speed closed forms (single / chain
// / fork). Trees and series-parallel graphs have closed forms too
// (Theorem 2's l_alpha composition), but the scalar path re-walks the
// topology on every solve (the engine's shape cache spares the SP
// re-decomposition, not the per-solve recursion or the memo probe). This
// bench measures what planning the topology once per run buys:
//
//   out-tree / in-tree / SP grids of one topology with per-instance
//   weights and deadlines, kernels ON vs scalar dispatch (memo ON — the
//   pre-kernel sweep configuration) vs scalar with the memo ablated.
//   Acceptance: >= 4x inst/s kernel vs scalar memo-ON at 1 thread on at
//   least one family, and bit-identical results (asserted in-process
//   here, fuzzed in tests/test_batch_kernels.cpp).
//
// The grids run uncapped: a finite top speed turns the rare instance
// whose l_alpha-composed equivalent weight outruns the critical-path
// deadline margin into a numeric-barrier solve on *both* paths (the
// kernel hands it back bit-identically), and a handful of ~ms barrier
// solves would dominate every column of a closed-form throughput
// measurement (~140 of 20k SP instances cost more than the other 19,860
// combined).
#include <cmath>
#include <iostream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

/// A homogeneous tree/SP grid: `count` instances sharing one randomly
/// generated topology, weights and deadlines varying per instance — the
/// kernel-batchable sweep shape. The topology seed is fixed per family so
/// every rep sweeps the same graph with distinct weights.
std::vector<core::Instance> grid(const std::string& family, std::size_t count,
                                 std::uint64_t seed) {
  util::Rng topo_rng(977 + family.size());
  graph::Digraph base = family == "outtree"
                            ? graph::make_random_out_tree(6, topo_rng)
                        : family == "intree"
                            ? graph::make_random_in_tree(6, topo_rng)
                            : graph::make_random_series_parallel(6, topo_rng);
  util::Rng rng(seed);
  std::vector<core::Instance> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    graph::Digraph g = base;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      g.set_weight(v, rng.uniform(0.5, 4.0));
    }
    const double d = rng.uniform(1.1, 3.0) * core::min_deadline(g, 2.0);
    out.push_back(core::make_instance(std::move(g), d));
  }
  return out;
}

struct Timing {
  double seconds = std::numeric_limits<double>::infinity();
  std::vector<core::Solution> solutions;
};

/// Best-of-N timed batches with the configs interleaved round-robin: each
/// rep times every engine back to back, so slow drift in host load (this
/// runs on shared CI workers) lands on all columns instead of skewing the
/// acceptance ratio. Grid 0 is an untimed warm-up (shape cache, arenas —
/// and a populated memo for the memoizing engines); grids 1.. hold
/// distinct instances so every timed solve is fresh work. threads == 1
/// isolates the per-instance cost the kernels remove. Each Timing carries
/// the best rep's seconds with the first timed grid's solutions.
std::vector<Timing> timed_batches(
    const std::vector<std::vector<core::Instance>>& grids,
    const model::EnergyModel& model,
    const std::vector<std::pair<bool, bool>>& memoize_kernels) {
  std::vector<std::unique_ptr<engine::ReclaimEngine>> engines;
  for (const auto& [memoize, use_kernels] : memoize_kernels) {
    engine::EngineOptions options;
    options.threads = 1;
    options.memoize = memoize;
    options.use_kernels = use_kernels;
    engines.push_back(std::make_unique<engine::ReclaimEngine>(options));
    (void)engines.back()->solve_batch(
        std::span<const core::Instance>(grids.front()), model, {});
  }
  std::vector<Timing> best(engines.size());
  for (std::size_t r = 1; r < grids.size(); ++r) {
    for (std::size_t c = 0; c < engines.size(); ++c) {
      util::Timer timer;
      auto out = engines[c]->solve_batch(
          std::span<const core::Instance>(grids[r]), model, {});
      const double seconds = timer.seconds();
      if (seconds < best[c].seconds) best[c].seconds = seconds;
      if (r == 1) best[c].solutions = std::move(out);
    }
  }
  return best;
}

void require_identical(const std::vector<core::Solution>& a,
                       const std::vector<core::Solution>& b,
                       const char* what) {
  if (a.size() != b.size()) throw NumericalError(std::string(what) + ": size");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].energy != b[i].energy ||
        a[i].method != b[i].method || a[i].speeds != b[i].speeds) {
      throw NumericalError(std::string(what) +
                           ": result diverged at instance " +
                           std::to_string(i));
    }
  }
}

}  // namespace

int main() {
  bench::banner("E19 tree/SP sweep throughput (composition-plan kernels)",
                "tree and series-parallel grid sweeps through the engine: "
                "plan-once SoA kernels vs scalar dispatch (acceptance: >= 4x "
                "inst/s vs scalar memo-ON at 1 thread, bit-identical)");

  const model::EnergyModel continuous =
      model::ContinuousModel{std::numeric_limits<double>::infinity()};
  const std::size_t kGrid = 20000;

  const auto measure = [&] {
    bool speedup_met = false;
    util::Table table("tree/SP grids: kernels vs scalar dispatch (1 thread)",
                      {"family", "instances", "scalar inst/s", "no-memo inst/s",
                       "kernel inst/s", "vs scalar", "vs no-memo"});
    for (const char* family : {"outtree", "intree", "sp"}) {
      // Best-of-10 timed reps (plus the warm-up grid): every column's
      // allocation churn is sensitive to host contention, and the
      // acceptance ratio below must hold on shared CI runners — best-of-N
      // per column converges to the contention-free cost as N grows.
      std::vector<std::vector<core::Instance>> grids;
      for (std::uint64_t r = 0; r < 11; ++r) {
        grids.push_back(grid(family, kGrid, 1906 + 41 * r));
      }
      const double n = static_cast<double>(kGrid);
      const std::vector<Timing> timings =
          timed_batches(grids, continuous,
                        {{/*memoize=*/true, /*use_kernels=*/false},
                         {/*memoize=*/false, /*use_kernels=*/false},
                         {/*memoize=*/true, /*use_kernels=*/true}});
      const Timing& scalar = timings[0];
      const Timing& no_memo = timings[1];
      const Timing& kernel = timings[2];
      require_identical(kernel.solutions, scalar.solutions, family);
      require_identical(kernel.solutions, no_memo.solutions, family);
      const double scalar_rate = n / scalar.seconds;
      const double no_memo_rate = n / no_memo.seconds;
      const double kernel_rate = n / kernel.seconds;
      if (kernel_rate >= 4.0 * scalar_rate) speedup_met = true;
      table.add_row({family, util::Table::fmt(kGrid),
                     util::Table::fmt(scalar_rate, 1),
                     util::Table::fmt(no_memo_rate, 1),
                     util::Table::fmt(kernel_rate, 1),
                     util::Table::fmt_ratio(kernel_rate / scalar_rate, 2),
                     util::Table::fmt_ratio(kernel_rate / no_memo_rate, 2)});
    }
    table.print(std::cout);
    std::cout << "kernel results verified bit-identical to the scalar path"
              << std::endl;
    return speedup_met;
  };

  bool speedup_met = measure();
  if (!speedup_met) {
    // One confirmation pass before failing: a contention burst on a shared
    // host can shave the ratio below the line even at best-of-10, while a
    // genuinely sub-4x host fails both attempts.
    std::cout << "\nbest ratio under 4x on the first attempt -- re-measuring "
                 "once before failing\n";
    speedup_met = measure();
  }
  if (!speedup_met) {
    std::cout.flush();
    throw NumericalError(
        "acceptance failed: no tree/SP family reached 4x inst/s with "
        "kernels on");
  }
  std::cout << "\nAcceptance met: >= 4x inst/s on at least one tree/SP grid "
               "sweep with kernels on, results bit-identical.\n";
  return 0;
}
