// E17 — serve-protocol throughput: instances/second through the full
// reclaim_serve stack (framing + wire codec + per-connection reader +
// engine submit) for 1, 2 and 4 concurrent clients over socketpairs,
// entirely in-process.
//
// Two regimes per client count:
//   (a) cold — every request is a distinct instance; measures protocol +
//       solve cost end to end.
//   (b) steady state — the same workload resubmitted against the warm
//       shared memo; measures the daemon's service rate once the cache
//       holds the working set, and reports the cross-client hit rate
//       (every client benefits from every other client's solves — the
//       reason the daemon exists).
#include <sys/socket.h>
#include <unistd.h>

#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/graph_io.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

/// Mixed workload as wire-ready SOLVE bodies: chains (closed form),
/// out-trees (tree DP), fork-join pipelines (SP algebra) and stencils
/// (numeric barrier), `per_family` of each.
std::vector<net::SolveRequest> wire_workload(std::size_t per_family,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<net::SolveRequest> requests;
  auto add = [&requests](const graph::Digraph& g) {
    net::SolveRequest request;
    // Slack relative to the *execution* graph the server will build (one
    // processor serializes everything), not the app graph's critical path.
    const auto exec = sched::build_execution_graph(
        g, sched::list_schedule(g, 1).mapping);
    request.deadline = 1.4 * core::min_deadline(exec, 2.0);
    request.model = model::ContinuousModel{2.0};
    std::ostringstream text;
    io::write_task_graph(text, g);
    request.graph_text = text.str();
    requests.push_back(std::move(request));
  };
  for (std::size_t k = 0; k < per_family; ++k) {
    add(graph::make_chain(16 + k % 8, rng));
    add(graph::make_random_out_tree(20 + k % 8, rng));
    add(graph::make_fork_join_chain(3, 3 + k % 3, rng));
    add(graph::make_stencil(4, 4 + k % 3, rng));
  }
  return requests;
}

/// One client: pipelines every request down its socket, then drains the
/// responses (completion order). Returns the number of RESULT replies.
std::size_t run_client(net::ServeClient& client,
                       const std::vector<net::SolveRequest>& requests) {
  std::thread sender([&] {
    for (const auto& request : requests) (void)client.send_solve(request);
  });
  std::size_t results = 0;
  for (std::size_t seen = 0; seen < requests.size(); ++seen) {
    const auto reply = client.read_message();
    util::require(reply.has_value(), "server closed mid-bench");
    if (const auto* result = std::get_if<net::SolveResult>(&reply->body)) {
      util::require(result->solution.feasible, "infeasible bench instance");
      ++results;
    } else {
      throw NumericalError("unexpected reply in bench");
    }
  }
  sender.join();
  return results;
}

/// Serves `clients` concurrent connections (each its own socketpair and
/// serve_stream thread), every client sending the full workload. Returns
/// wall seconds.
double run_round(net::ReclaimServer& server, std::size_t clients,
                 const std::vector<net::SolveRequest>& requests) {
  std::vector<std::thread> serve_threads;
  std::vector<std::thread> client_threads;
  std::vector<int> fds_to_close;
  util::Timer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    int pair[2];
    util::require(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0,
                  "socketpair failed");
    fds_to_close.insert(fds_to_close.end(), {pair[0], pair[1]});
    serve_threads.emplace_back(
        [&server, fd = pair[0]] { server.serve_stream(fd, fd); });
    client_threads.emplace_back([fd = pair[1], &requests] {
      auto client = net::ServeClient::from_fds(fd, fd);
      (void)run_client(client, requests);
      client.finish_sending();
    });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : serve_threads) t.join();
  const double seconds = timer.seconds();
  for (int fd : fds_to_close) ::close(fd);
  return seconds;
}

}  // namespace

int main() {
  bench::banner("E17 serve throughput (reclaim_serve stack)",
                "instances/second through framing + wire codec + shared "
                "engine for 1/2/4 concurrent clients; steady state shows "
                "the cross-client memo hit rate");

  const auto workload = wire_workload(16, 1717);  // 64 distinct instances

  util::Table table("Serve throughput over in-process socketpairs",
                    {"clients", "instances", "regime", "seconds", "inst/s",
                     "memo hit rate"});
  for (const std::size_t clients : {1u, 2u, 4u}) {
    net::ServerOptions options;
    options.engine.threads = 4;
    net::ReclaimServer server(options);

    const auto round = [&](const char* regime) {
      const double seconds = run_round(server, clients, workload);
      const std::size_t n = clients * workload.size();
      const net::StatsReply stats = server.stats();
      table.add_row({util::Table::fmt(clients),
                     util::Table::fmt(n), regime,
                     util::Table::fmt(seconds, 4),
                     util::Table::fmt(static_cast<double>(n) / seconds, 1),
                     util::Table::fmt(100.0 * stats.hit_rate(), 1) + "%"});
      return static_cast<double>(n) / seconds;
    };

    (void)round("cold");
    const double steady = round("steady");
    if (clients == 4) {
      // The headline figure for the perf-trajectory diff: warm-cache
      // service rate under the highest client count.
      std::cout << util::Table::fmt(steady, 1) << " inst/s steady-state at "
                << clients << " clients\n";
    }
  }
  table.print(std::cout);

  // Cross-client sharing, stated explicitly: with >= 2 clients the cold
  // round already has hits (client B's instances were solved for A).
  net::ServerOptions options;
  options.engine.threads = 4;
  net::ReclaimServer server(options);
  (void)run_round(server, 2, workload);
  const net::StatsReply stats = server.stats();
  std::cout << "2-client cold round: " << stats.memo_hits << "/"
            << stats.instances << " answered from the other client's solves ("
            << util::Table::fmt(100.0 * stats.hit_rate(), 1) << "%)\n";
  util::require(stats.memo_hits > 0,
                "shared cache produced no cross-client hits");
  return 0;
}
