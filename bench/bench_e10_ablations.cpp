// E10 — robustness ablations for the design choices DESIGN.md calls out:
//   (a) the power exponent alpha (the paper fixes alpha = 3; the library
//       generalizes to alpha > 1),
//   (b) static power (the paper ignores it; with a fixed deadline it adds
//       the same constant to every model, compressing *ratios* but never
//       reordering models),
//   (c) the chain DP's time-grid resolution vs the exact optimum
//       (Theorem 4 is weakly NP-hard on chains).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E10 ablations (exponent, static power, chain DP)",
                "the model comparison is robust to alpha and P_static; the "
                "chain DP converges with grid resolution");

  const double s_max = 2.0;
  const model::ModeSet modes({0.6, 1.0, 1.4, 2.0});

  // (a) exponent sweep on a fixed mapped workload.
  {
    util::Rng rng(1010);
    const auto app = graph::make_layered(4, 4, 0.5, rng);
    util::Table table("(a) power exponent alpha",
                      {"alpha", "E cont", "vdd/cont", "round/cont",
                       "certified round bound"});
    for (double alpha : {1.5, 2.0, 2.5, 3.0}) {
      auto instance = bench::mapped_instance(app, 3, s_max, 1.4, alpha);
      // Same topology across the alpha sweep: one classification, four hits.
      auto& eng = bench::shared_engine();
      const auto cont = eng.solve_one(instance, model::ContinuousModel{s_max});
      const auto vdd = eng.solve_one(instance, model::VddHoppingModel{modes});
      const auto round = eng.solve_one(instance, model::DiscreteModel{modes});
      if (!cont.feasible || !vdd.feasible || !round.feasible) continue;
      table.add_row(
          {util::Table::fmt(alpha, 1), util::Table::fmt(cont.energy, 3),
           util::Table::fmt_ratio(vdd.energy / cont.energy, 4),
           util::Table::fmt_ratio(round.energy / cont.energy, 4),
           util::Table::fmt_ratio(
               core::discrete_transfer_bound(modes, instance.power()), 4)});
    }
    table.print(std::cout);
  }

  // (b) static power: ratios compress, ordering is invariant.
  {
    util::Rng rng(1011);
    const auto app = graph::make_layered(4, 4, 0.5, rng);
    auto instance = bench::mapped_instance(app, 3, s_max, 1.5);
    const std::size_t processors = 3;
    auto& eng = bench::shared_engine();
    const auto cont = eng.solve_one(instance, model::ContinuousModel{s_max});
    const auto round = eng.solve_one(instance, model::DiscreteModel{modes});
    const auto nodvfs = core::solve_no_dvfs(instance, model::DiscreteModel{modes});
    util::Table table("(b) static power P_static (added as P*D*p to every model)",
                      {"P_static", "cont total", "round total", "nodvfs total",
                       "nodvfs/cont"});
    for (double p_static : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      const double e_cont = core::with_static_power(
          cont.energy, p_static, instance.deadline, processors);
      const double e_round = core::with_static_power(
          round.energy, p_static, instance.deadline, processors);
      const double e_nodvfs = core::with_static_power(
          nodvfs.energy, p_static, instance.deadline, processors);
      table.add_row({util::Table::fmt(p_static, 2), util::Table::fmt(e_cont, 2),
                     util::Table::fmt(e_round, 2), util::Table::fmt(e_nodvfs, 2),
                     util::Table::fmt_ratio(e_nodvfs / e_cont, 3)});
    }
    table.print(std::cout);
  }

  // (c) chain DP resolution vs the branch-and-bound optimum.
  {
    util::Rng rng(1012);
    const auto chain = graph::make_chain(10, rng);
    auto instance =
        core::make_instance(chain, 1.5 * core::min_deadline(chain, s_max));
    const auto exact = core::solve_discrete_exact(instance, modes);
    util::Table table("(c) chain DP grid resolution K (10-task chain)",
                      {"K", "grid cells", "E dp", "vs exact", "feasible"});
    for (std::size_t k : {2u, 8u, 32u, 128u, 512u}) {
      core::ChainDpOptions options;
      options.resolution = k;
      const auto dp = core::solve_chain_dp(instance, modes, options);
      table.add_row(
          {util::Table::fmt(k), util::Table::fmt(dp.grid_cells),
           dp.solution.feasible ? util::Table::fmt(dp.solution.energy, 4) : "-",
           dp.solution.feasible && exact.solution.feasible
               ? util::Table::fmt_ratio(dp.solution.energy /
                                            exact.solution.energy,
                                        4)
               : "-",
           dp.solution.feasible ? "yes" : "no"});
    }
    table.print(std::cout);
  }

  bench::print_engine_stats();
  std::cout << "\nExpected shape: (a) gaps shrink as alpha decreases (energy "
               "is less speed-sensitive); (b) ratios compress toward 1 with "
               "P_static but the ordering never flips; (c) DP energy is "
               "non-increasing in K and reaches the exact optimum.\n";
  return 0;
}
