// E1 — Theorem 1: the fork closed form is optimal (incl. saturation).
//
// For forks of growing width, compare the closed-form optimum against the
// independent numeric (geometric-programming) solver: relative energy
// difference must vanish, and the closed form is orders of magnitude
// faster. Also exercises the saturated branch (tight deadlines).
#include <iostream>

#include "bench_util.hpp"
#include "util/timer.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E1 fork closed form (Theorem 1)",
                "closed-form fork speeds vs numeric solver; saturated branch "
                "at slack 1.1, unsaturated at 2.0");

  util::Rng rng(101);
  util::Table table("Fork optimum: closed form vs numeric",
                    {"n leaves", "D/D_min", "branch", "E closed", "E numeric",
                     "rel diff", "t closed (ms)", "t numeric (ms)"});

  for (std::size_t leaves : {2u, 8u, 32u, 128u}) {
    for (double slack : {1.1, 2.0}) {
      auto sub = rng.substream(leaves * 100 + static_cast<std::uint64_t>(slack * 10));
      const auto g = graph::make_fork(leaves, sub);
      const double s_max = 2.0;
      const double d_min = core::min_deadline(g, s_max);
      auto instance = core::make_instance(g, slack * d_min);

      util::Timer t1;
      // Engine front door: the dispatch cache classifies the fork once and
      // routes to the Theorem 1 closed form.
      const auto closed =
          bench::shared_engine().solve_one(instance, model::ContinuousModel{s_max});
      const double ms_closed = t1.millis();

      util::Timer t2;
      core::ContinuousOptions force;
      force.force_numeric = true;
      const auto numeric =
          core::solve_continuous(instance, model::ContinuousModel{s_max}, force);
      const double ms_numeric = t2.millis();

      if (!closed.feasible || !numeric.feasible) {
        table.add_row({util::Table::fmt(leaves), util::Table::fmt(slack, 1),
                       "infeasible", "-", "-", "-", "-", "-"});
        continue;
      }
      const bool saturated = closed.speeds[g.sources().front()] >=
                             s_max * (1.0 - 1e-9);
      table.add_row(
          {util::Table::fmt(leaves), util::Table::fmt(slack, 1),
           saturated ? "saturated" : "interior",
           util::Table::fmt(closed.energy, 4), util::Table::fmt(numeric.energy, 4),
           util::Table::fmt((numeric.energy - closed.energy) /
                                closed.energy,
                            8),
           util::Table::fmt(ms_closed, 3), util::Table::fmt(ms_numeric, 2)});
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();
  std::cout << "\nExpected shape: rel diff ~ 0 (numeric >= closed by its "
               "duality gap); closed form is O(n) and far faster.\n";
  return 0;
}
