// E15 — heterogeneous platforms: engine mapped-batch throughput and energy
// effects as the processor count and the alpha spread grow.
//
// Two sweeps over processor count p x alpha spread delta:
//   (a) busy-only: each processor i gets alpha = 3 -/+ delta/2
//       (interpolated across the platform), P_stat = 0.5, cap 2.0; a mixed
//       random workload is list-scheduled onto p processors and solved as
//       one engine mapped batch. delta = 0 is the homogeneous control: it
//       routes through the uniform fast paths, so the rate drop from
//       delta = 0 to delta > 0 is the price of the per-task-bounded
//       numeric solver.
//   (b) with a sleep spec on every processor: the mapped batch runs the
//       engine-integrated race-to-idle route; the table reports how often
//       racing strictly beat the crawl.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

constexpr std::size_t kGraphsPerFamily = 12;

model::Platform hetero_platform(std::size_t processors, double spread,
                                double p_static,
                                const model::SleepSpec& sleep) {
  std::vector<model::ProcessorSpec> specs;
  for (std::size_t i = 0; i < processors; ++i) {
    const double t =
        processors == 1 ? 0.5
                        : static_cast<double>(i) /
                              static_cast<double>(processors - 1);
    const double alpha = 3.0 - 0.5 * spread + spread * t;
    specs.push_back(
        {model::make_power_model(alpha, p_static, sleep), /*s_max=*/2.0});
  }
  return model::Platform(std::move(specs));
}

std::vector<engine::MappedInstance> mapped_workload(
    std::size_t processors, const model::Platform& platform, double slack,
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<engine::MappedInstance> out;
  const auto add = [&](const graph::Digraph& app) {
    const auto mapping = sched::list_schedule(app, processors).mapping;
    auto exec = sched::build_execution_graph(app, mapping);
    const double deadline = slack * core::min_deadline(exec, 2.0);
    out.push_back({core::make_instance(std::move(exec), deadline, platform,
                                       mapping),
                   mapping});
  };
  for (std::size_t k = 0; k < kGraphsPerFamily; ++k) {
    add(graph::make_chain(12 + k % 6, rng));
    add(graph::make_random_out_tree(14 + k % 6, rng));
    add(graph::make_stencil(3, 3 + k % 3, rng));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E15 heterogeneous platforms",
                "engine mapped-batch throughput vs processor count x alpha "
                "spread; delta = 0 is the homogeneous (uniform fast path) "
                "control, delta > 0 pays for the per-task-bounded numeric "
                "solver");

  const model::EnergyModel continuous = model::ContinuousModel{2.0};
  const std::vector<std::size_t> processor_counts{1, 2, 4, 8};
  const std::vector<double> spreads{0.0, 0.5, 1.0};

  {
    util::Table table("(a) busy-only: wall time and rate per configuration",
                      {"procs", "spread", "instances", "feasible", "seconds",
                       "inst/s", "mean energy"});
    for (const std::size_t p : processor_counts) {
      for (const double spread : spreads) {
        const auto platform = hetero_platform(p, spread, 0.5, {});
        const auto workload = mapped_workload(p, platform, 1.5, 1500 + p);
        engine::ReclaimEngine eng(engine::EngineOptions{.threads = 0});
        util::Timer timer;
        const auto solutions = eng.solve_batch(workload, continuous);
        const double seconds = timer.seconds();
        std::size_t feasible = 0;
        double energy = 0.0;
        for (const auto& s : solutions) {
          if (!s.feasible) continue;
          ++feasible;
          energy += s.energy;
        }
        table.add_row(
            {util::Table::fmt(p), util::Table::fmt(spread, 2),
             util::Table::fmt(workload.size()), util::Table::fmt(feasible),
             util::Table::fmt(seconds, 4),
             util::Table::fmt(static_cast<double>(workload.size()) / seconds,
                              1),
             util::Table::fmt(
                 feasible > 0 ? energy / static_cast<double>(feasible) : 0.0,
                 4)});
      }
    }
    table.print(std::cout);
  }

  {
    // Sleep-enabled: the mapped batch routes through race-to-idle. A
    // higher P_stat (binding s_crit floors at this slack) plus an
    // expensive idle state is the regime where racing pays (DESIGN.md,
    // "Race-to-idle vs crawl-to-deadline").
    const auto sleep = model::make_sleep_spec(3.0, 0.0, 6.0);
    util::Table table(
        "(b) with power-down states: engine-integrated race-to-idle",
        {"procs", "spread", "instances", "seconds", "inst/s", "raced",
         "crawled"});
    for (const std::size_t p : processor_counts) {
      for (const double spread : spreads) {
        const auto platform = hetero_platform(p, spread, 2.0, sleep);
        const auto workload = mapped_workload(p, platform, 2.5, 2500 + p);
        engine::ReclaimEngine eng(engine::EngineOptions{.threads = 0});
        util::Timer timer;
        const auto solutions = eng.solve_batch(workload, continuous);
        const double seconds = timer.seconds();
        const auto stats = eng.stats();
        table.add_row(
            {util::Table::fmt(p), util::Table::fmt(spread, 2),
             util::Table::fmt(workload.size()), util::Table::fmt(seconds, 4),
             util::Table::fmt(static_cast<double>(workload.size()) / seconds,
                              1),
             util::Table::fmt(stats.raced_solves),
             util::Table::fmt(stats.crawl_solves)});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: (a) spread 0 rides the uniform fast paths; "
               "spread > 0 falls to the per-task numeric solver, so inst/s "
               "drops but stays deterministic. (b) racing wins most often on "
               "multi-processor platforms whose crawl leaves idle-charged "
               "interior gaps.\n";
  return 0;
}
