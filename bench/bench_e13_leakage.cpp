// E13 — leakage sweep for the StaticPowerLaw power model
// P(s) = P_stat + s^alpha: energy, busy time and the s_crit clamp as
// P_stat grows from 0 (the paper's pure-dynamic regime) to far past the
// point where the critical speed dominates every deadline-driven speed.
//
// Expected mechanics (DESIGN.md, "The critical speed"):
//   - s_crit = (P_stat/(alpha-1))^(1/alpha) grows like P_stat^(1/3);
//   - once s_crit exceeds a task's deadline-driven speed the task clamps
//     at s_crit, so the minimum optimal speed tracks max(deadline speed,
//     s_crit) and busy time shrinks;
//   - past s_crit >= s_max everything pins at the top speed and the
//     energy curve turns affine in P_stat (slope = total busy time at
//     s_max).
// All solves are engine-batched; instances across the sweep differ only
// in p_static, so the run doubles as a stress test of the memo key's
// power-model fields (every point must be a fresh solve, not a hit).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"

namespace {

double mean_of(const std::vector<double>& values) {
  reclaim::util::RunningStats stats;
  for (double v : values) stats.add(v);
  return stats.mean();
}

}  // namespace

int main() {
  using namespace reclaim;
  bench::banner("E13 leakage sweep (StaticPowerLaw)",
                "energy / busy time / speed floor vs P_stat at fixed slack "
                "1.5; layered DAGs (4x4, p=3), s_max = 2, alpha = 3");

  const double s_max = 2.0;
  const double slack = 1.5;
  const model::ModeSet modes({0.6, 1.0, 1.4, 2.0});
  // 0 -> pure dynamic; 16 -> s_crit = 2 = s_max (total leakage dominance).
  const std::vector<double> p_statics{0.0, 0.05, 0.25, 1.0, 4.0, 16.0, 32.0};
  constexpr std::size_t kSeeds = 8;

  util::Table cont_table("Continuous optimum vs P_stat (geo-mean of 8 seeds)",
                         {"P_stat", "s_crit", "E total", "leakage share",
                          "busy time", "min speed", "tasks at s_crit"});
  util::Table disc_table("Discrete (modes {0.6,1,1.4,2}) vs P_stat",
                         {"P_stat", "s_crit", "E total", "E/cont",
                          "min mode used"});

  auto& eng = bench::shared_engine();
  for (double p_static : p_statics) {
    std::vector<core::Instance> instances;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      util::Rng rng(1300 + i);
      const auto app = graph::make_layered(4, 4, 0.5, rng);
      instances.push_back(
          bench::mapped_instance(app, 3, s_max, slack, 3.0, p_static));
    }
    const double s_crit = instances.front().power().critical_speed();

    const auto cont = eng.solve_batch(instances, model::ContinuousModel{s_max});
    const auto disc =
        eng.solve_batch(instances, model::DiscreteModel{modes});

    std::vector<double> energies, shares, busies, min_speeds, at_crit,
        disc_energy, disc_ratio, disc_min;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      if (!cont[i].feasible || !disc[i].feasible) continue;
      const double busy = core::busy_time(instances[i], cont[i]);
      energies.push_back(cont[i].energy);
      shares.push_back(p_static * busy / cont[i].energy);
      busies.push_back(busy);
      double lo = s_max, lo_mode = s_max, clamped = 0.0, weighted = 0.0;
      for (graph::NodeId v = 0; v < instances[i].exec_graph.num_nodes(); ++v) {
        if (instances[i].exec_graph.weight(v) == 0.0) continue;
        weighted += 1.0;
        lo = std::min(lo, cont[i].speeds[v]);
        lo_mode = std::min(lo_mode, disc[i].speeds[v]);
        if (s_crit > 0.0 && cont[i].speeds[v] <= s_crit * (1.0 + 1e-6))
          clamped += 1.0;
      }
      min_speeds.push_back(lo);
      at_crit.push_back(weighted > 0.0 ? clamped / weighted : 0.0);
      disc_energy.push_back(disc[i].energy);
      disc_ratio.push_back(disc[i].energy / cont[i].energy);
      disc_min.push_back(lo_mode);
    }
    if (energies.empty()) continue;
    cont_table.add_row(
        {util::Table::fmt(p_static, 2), util::Table::fmt(s_crit, 3),
         util::Table::fmt(util::geometric_mean(energies), 3),
         util::Table::fmt_pct(mean_of(shares), 1),
         util::Table::fmt(mean_of(busies), 3),
         util::Table::fmt(*std::min_element(min_speeds.begin(),
                                            min_speeds.end()),
                          3),
         util::Table::fmt_pct(mean_of(at_crit), 1)});
    disc_table.add_row(
        {util::Table::fmt(p_static, 2), util::Table::fmt(s_crit, 3),
         util::Table::fmt(util::geometric_mean(disc_energy), 3),
         util::Table::fmt_ratio(util::geometric_mean(disc_ratio), 4),
         util::Table::fmt(*std::min_element(disc_min.begin(), disc_min.end()),
                          2)});
  }
  cont_table.print(std::cout);
  disc_table.print(std::cout);

  bench::print_engine_stats();
  std::cout << "\nExpected shape: min speed tracks max(deadline speed, "
               "s_crit) and the clamped fraction rises to 100%; busy time "
               "falls as leakage grows; the leakage share rises toward the "
               "affine regime once s_crit reaches s_max; the discrete "
               "minimum mode climbs off the slowest mode as s_crit passes "
               "it. Zero memo hits expected: the sweep varies only "
               "p_static, which the memo key must distinguish.\n";
  return 0;
}
