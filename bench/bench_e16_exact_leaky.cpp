// E16 — exact leaky solver: measured suboptimality of the s_crit
// reduction as the platform's P_stat spread and the DAG width grow.
//
// One sweep over P_stat spread x DAG width: a 2-processor platform gets
// P_stat = base -/+ spread/2 (spread 0 is the uniform-leakage control), a
// mixed workload of the given width is list-scheduled onto it, and every
// instance is solved twice through the engine — LeakageMode::kReduction
// vs kExact (distinct memo entries by the key's mode bit). The table
// reports the reduction's measured suboptimality (E_red / E_exact - 1)
// and the wall cost of exactness.
//
// Expected shape: width-1 uniform-spread cells are provably exact (gap
// 0); the gap grows with both the spread (mixed-P_stat chains shift
// duration toward low-leakage processors) and the width (slack-bearing
// parallel branches make busy time allocation-dependent).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

constexpr std::size_t kGraphsPerCell = 10;
constexpr double kBasePStatic = 1.5;

std::vector<engine::MappedInstance> workload(std::size_t width,
                                             const model::Platform& platform,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<engine::MappedInstance> out;
  for (std::size_t k = 0; k < kGraphsPerCell; ++k) {
    const auto app = width == 1
                         ? graph::make_chain(6 + k % 4, rng)
                         : graph::make_layered(3, width, 0.6, rng);
    // Chains are round-robined across the processors (a list schedule
    // would keep the whole chain on one processor and land in the
    // provably-exact uniform-P_stat class); parallel widths use the list
    // scheduler.
    sched::Mapping mapping(platform.size());
    if (width == 1) {
      for (graph::NodeId v = 0; v < app.num_nodes(); ++v) {
        mapping.assign(v % platform.size(), v);
      }
    } else {
      mapping = sched::list_schedule(app, platform.size()).mapping;
    }
    auto exec = sched::build_execution_graph(app, mapping);
    const double deadline = 1.45 * core::min_deadline(exec, 2.0);
    out.push_back({core::make_instance(std::move(exec), deadline, platform,
                                       mapping),
                   mapping});
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E16 exact leaky solver",
                "suboptimality of the s_crit reduction vs the exact "
                "duration-charged objective over P_stat spread x DAG width; "
                "uniform-P_stat chains are the provably-exact control");

  const model::EnergyModel continuous = model::ContinuousModel{2.0};
  const std::vector<double> spreads{0.0, 1.0, 2.0, 3.0};
  const std::vector<std::size_t> widths{1, 2, 4};

  core::SolveOptions reduction_options;
  core::SolveOptions exact_options;
  exact_options.leakage = core::LeakageMode::kExact;

  util::Table table("reduction vs exact: energy gap and wall cost",
                    {"spread", "width", "instances", "mean gap %", "max gap %",
                     "red s", "exact s", "inst/s exact"});
  for (const double spread : spreads) {
    const model::Platform platform(
        {{model::make_power_model(3.0, kBasePStatic - 0.5 * spread), 2.0},
         {model::make_power_model(3.0, kBasePStatic + 0.5 * spread), 2.0}});
    for (const std::size_t width : widths) {
      const auto instances = workload(
          width, platform,
          1600 + width + 16 * static_cast<std::uint64_t>(spread * 2.0));
      engine::ReclaimEngine eng(engine::EngineOptions{.threads = 0});

      util::Timer red_timer;
      const auto reduced =
          eng.solve_batch(instances, continuous, reduction_options);
      const double red_seconds = red_timer.seconds();

      util::Timer exact_timer;
      const auto exact = eng.solve_batch(instances, continuous, exact_options);
      const double exact_seconds = exact_timer.seconds();

      double mean_gap = 0.0;
      double max_gap = 0.0;
      std::size_t feasible = 0;
      for (std::size_t i = 0; i < instances.size(); ++i) {
        if (!reduced[i].feasible || !exact[i].feasible) continue;
        ++feasible;
        const double gap =
            100.0 * (reduced[i].energy / exact[i].energy - 1.0);
        mean_gap += gap;
        max_gap = std::max(max_gap, gap);
      }
      if (feasible > 0) mean_gap /= static_cast<double>(feasible);
      table.add_row(
          {util::Table::fmt(spread, 1), util::Table::fmt(width),
           util::Table::fmt(feasible), util::Table::fmt(mean_gap, 3),
           util::Table::fmt(max_gap, 3), util::Table::fmt(red_seconds, 4),
           util::Table::fmt(exact_seconds, 4),
           util::Table::fmt(
               static_cast<double>(instances.size()) / exact_seconds, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: gap ~ 0 for uniform-P_stat chains "
               "(spread 0, width 1), growing with spread (mixed-P_stat "
               "chains) and width (slack-bearing parallel branches); the "
               "exact column pays roughly one extra barrier solve per "
               "not-provably-exact instance.\n";
  return 0;
}
