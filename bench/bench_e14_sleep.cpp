// E14 — power-down sweep: race-to-idle vs crawl-to-deadline over a
// wake-cost x P_stat grid.
//
// Fixed layered DAGs on 3 processors with slack 2.5, idle power tied to
// the busy leakage (P_idle = P_stat + 0.5, a processor leaks whether or
// not it computes), sleep power 0. Expected mechanics (DESIGN.md,
// "Power-down / sleep states"):
//   - with E_wake = 0 every gap sleeps for free, racing buys nothing
//     beyond shaving the leakage-share of busy time — the crawl wins;
//   - as E_wake grows past P_idle x (typical gap), interior gaps fall
//     below the break-even length and idle at full P_idle; the crawl's
//     busy cost is flat at the s_crit floor, so racing (shrinking those
//     gaps) starts to win strictly;
//   - at extreme E_wake nothing ever sleeps, total idle time grows with
//     any speed-up, and the crawl wins again.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E14 power-down sweep (race-to-idle vs crawl)",
                "platform energy over wake-cost x P_stat; layered DAGs "
                "(4x4, p=3), slack 2.5, s_max = 2, alpha = 3, "
                "P_idle = P_stat + 0.5, P_sleep = 0");

  // Slack 2.5 puts the deadline-driven speed (~0.8) below s_crit for the
  // upper P_stat rows, the regime where the crawl is floor-bound and
  // racing can win.
  const double s_max = 2.0;
  const double slack = 2.5;
  const std::vector<double> p_statics{0.25, 1.0, 4.0, 8.0};
  const std::vector<double> wake_costs{0.0, 0.5, 2.0, 8.0, 32.0};
  constexpr std::size_t kSeeds = 8;

  util::Table table("Race-to-idle vs crawl (geo-mean of 8 seeds)",
                    {"P_stat", "E_wake", "s_crit", "break-even", "crawl E",
                     "raced E", "raced/crawl", "% raced", "mean speedup"});

  for (double p_static : p_statics) {
    for (double wake : wake_costs) {
      const auto sleep =
          model::make_sleep_spec(p_static + 0.5, 0.0, wake);
      const auto power = model::make_power_model(3.0, p_static, sleep);

      std::vector<double> crawl_e, raced_e, ratios, speedups;
      std::size_t raced_count = 0, feasible = 0;
      for (std::size_t i = 0; i < kSeeds; ++i) {
        util::Rng rng(1400 + i);
        const auto app = graph::make_layered(4, 4, 0.5, rng);
        const auto schedule = sched::list_schedule(app, 3, s_max);
        auto exec = sched::build_execution_graph(app, schedule.mapping);
        const double deadline = slack * core::min_deadline(exec, s_max);
        const auto instance =
            core::make_instance(std::move(exec), deadline, power);

        const auto r = core::solve_race_to_idle(
            instance, model::ContinuousModel{s_max}, schedule.mapping);
        if (!r.solution.feasible) continue;
        ++feasible;
        crawl_e.push_back(r.crawl.total());
        raced_e.push_back(r.chosen.total());
        ratios.push_back(r.chosen.total() / r.crawl.total());
        if (r.raced) {
          ++raced_count;
          speedups.push_back(r.speedup);
        }
      }
      if (feasible == 0) continue;
      table.add_row(
          {util::Table::fmt(p_static, 2), util::Table::fmt(wake, 2),
           util::Table::fmt(power.critical_speed(), 3),
           util::Table::fmt(sleep.break_even(), 3),
           util::Table::fmt(util::geometric_mean(crawl_e), 3),
           util::Table::fmt(util::geometric_mean(raced_e), 3),
           util::Table::fmt_ratio(util::geometric_mean(ratios), 4),
           util::Table::fmt_pct(static_cast<double>(raced_count) /
                                    static_cast<double>(feasible),
                                1),
           speedups.empty()
               ? "-"
               : util::Table::fmt_ratio(util::geometric_mean(speedups), 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: raced/crawl <= 1x everywhere (the layer "
               "only races when it strictly wins); the raced fraction peaks "
               "at intermediate wake costs, where interior gaps idle below "
               "the break-even length while the s_crit floor keeps the "
               "crawl's busy cost first-order flat under a speed-up.\n";
  return 0;
}
