// E8 — the paper's motivation: how much energy does a *frozen* mapping
// reclaim on real application graphs?
//
// Tiled Cholesky / tiled LU / FFT / stencil, list-scheduled on p
// processors; deadline = 1.25x the schedule's makespan; report the energy
// saved vs NO-DVFS under Continuous and under CONT-ROUND with a realistic
// mode ladder.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E8 reclaiming application schedules (paper Section 1)",
                "energy saved vs NO-DVFS at deadline = 1.25 x makespan(p)");

  const double s_max = 1.0;
  const model::ModeSet modes({0.3, 0.5, 0.7, 0.85, 1.0});

  util::Table table("Energy reclaimed on frozen list-schedule mappings",
                    {"application", "tasks", "p", "par. efficiency",
                     "saved (Continuous)", "saved (CONT-ROUND)"});

  util::Rng rng(808);
  const struct {
    std::string name;
    graph::Digraph graph;
  } apps[] = {
      {"Cholesky 6x6", graph::make_tiled_cholesky(6)},
      {"LU 4x4", graph::make_tiled_lu(4)},
      {"FFT 16pt", graph::make_fft(4)},
      {"Stencil 6x8", graph::make_stencil(6, 8, rng)},
  };

  for (const auto& app : apps) {
    for (std::size_t p : {2u, 4u, 8u}) {
      const auto schedule = sched::list_schedule(app.graph, p, s_max);
      const auto exec = sched::build_execution_graph(app.graph, schedule.mapping);
      auto instance = core::make_instance(exec, 1.25 * schedule.makespan);

      const auto nodvfs =
          core::solve_no_dvfs(instance, model::DiscreteModel{modes});
      auto& eng = bench::shared_engine();
      const auto cont = eng.solve_one(instance, model::ContinuousModel{s_max});
      const auto round = eng.solve_one(instance, model::DiscreteModel{modes});
      if (!nodvfs.feasible || !cont.feasible || !round.feasible) continue;

      const double serial = app.graph.total_weight() / s_max;
      const double efficiency =
          serial / (static_cast<double>(p) * schedule.makespan);
      table.add_row(
          {app.name, util::Table::fmt(exec.num_nodes()), util::Table::fmt(p),
           util::Table::fmt_pct(efficiency, 1),
           util::Table::fmt_pct(1.0 - cont.energy / nodvfs.energy, 1),
           util::Table::fmt_pct(1.0 - round.energy / nodvfs.energy, 1)});
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();

  std::cout << "\nExpected shape: lower parallel efficiency (idle slack on "
               "non-critical processors) => more energy to reclaim; the "
               "discrete ladder gives up a few points vs Continuous.\n";
  return 0;
}
