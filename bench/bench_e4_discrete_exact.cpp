// E4 — Theorem 4: Discrete MinEnergy is NP-complete; the exact
// branch-and-bound is exponential in the worst case but prunes well, and
// it matches the enumeration oracle where the oracle is affordable.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "util/timer.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E4 exact Discrete (Theorem 4)",
                "B&B nodes vs the m^n enumeration space; optimality "
                "cross-checked against the oracle for n <= 8");

  util::Rng rng(404);
  util::Table table("Branch-and-bound against the exponential wall",
                    {"n", "m", "m^n", "B&B nodes", "pruned to", "t (ms)",
                     "oracle match", "engine match"});

  const double s_max = 2.0;
  for (std::size_t n : {6u, 8u, 10u, 12u}) {
    for (std::size_t m : {3u, 5u}) {
      auto sub = rng.substream(n * 10 + m);
      const auto app = graph::make_layered(2, n / 2, 0.5, sub);
      auto instance = bench::mapped_instance(app, 2, s_max, 1.3);
      const auto modes = bench::spread_modes(m, 0.5, s_max);

      util::Timer timer;
      const auto bb = core::solve_discrete_exact(instance, modes);
      const double ms = timer.millis();

      const double space = std::pow(static_cast<double>(m),
                                    static_cast<double>(instance.exec_graph.num_nodes()));
      std::string match = "n/a";
      if (instance.exec_graph.num_nodes() <= 8) {
        const auto oracle = core::solve_discrete_enumerate(instance, modes);
        const bool same =
            oracle.feasible == bb.solution.feasible &&
            (!oracle.feasible ||
             std::abs(oracle.energy - bb.solution.energy) <=
                 1e-9 * (1.0 + oracle.energy));
        match = same ? "yes" : "NO";
      }
      // The engine routes small Discrete instances to the same B&B; its
      // batched answer must agree with the direct call bit for bit.
      const auto via_engine =
          bench::shared_engine().solve_one(instance, model::DiscreteModel{modes});
      const bool engine_same =
          via_engine.feasible == bb.solution.feasible &&
          (!via_engine.feasible || via_engine.energy == bb.solution.energy);
      table.add_row(
          {util::Table::fmt(instance.exec_graph.num_nodes()),
           util::Table::fmt(m), util::Table::fmt(space, 0),
           util::Table::fmt(bb.nodes_explored),
           util::Table::fmt_pct(static_cast<double>(bb.nodes_explored) / space, 4),
           util::Table::fmt(ms, 2), match, engine_same ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();
  std::cout << "\nExpected shape: the assignment space m^n explodes; the "
               "incumbent + bound pruning visits a vanishing fraction, yet "
               "matches the oracle exactly.\n";
  return 0;
}
