// E12 — ReclaimEngine batch throughput: instances/second on a mixed
// chain/tree/SP/general workload at 1, 2, 4 and hardware threads.
//
// Two regimes:
//   (a) memo OFF — pure solve throughput; the speedup column is the
//       parallel scaling of the engine's dynamic sharding (expect ~min(t,
//       cores)x on a multicore host; flat on a single-core one).
//   (b) memo ON with a 4x-repeated workload — service steady state; the
//       memo answers repeats, so throughput decouples from thread count.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

/// Mixed workload: chains (closed form), out-trees (tree DP), fork-join
/// pipelines (SP algebra) and stencils (numeric barrier), `per_family`
/// of each.
std::vector<core::Instance> mixed_workload(std::size_t per_family,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Instance> instances;
  auto add = [&instances](graph::Digraph g) {
    const double deadline = 1.4 * core::min_deadline(g, 2.0);
    instances.push_back(core::make_instance(std::move(g), deadline));
  };
  for (std::size_t k = 0; k < per_family; ++k) {
    add(graph::make_chain(16 + k % 8, rng));
    add(graph::make_random_out_tree(20 + k % 8, rng));
    add(graph::make_fork_join_chain(3, 3 + k % 3, rng));
    add(graph::make_stencil(4, 4 + k % 3, rng));
  }
  return instances;
}

double run_batch(engine::ReclaimEngine& eng,
                 const std::vector<core::Instance>& instances,
                 const model::EnergyModel& model) {
  util::Timer timer;
  const auto out = eng.solve_batch(instances, model);
  const double seconds = timer.seconds();
  for (const auto& s : out) {
    if (!s.feasible) throw reclaim::NumericalError("infeasible bench instance");
  }
  return seconds;
}

}  // namespace

int main() {
  bench::banner("E12 batch throughput (ReclaimEngine)",
                "instances/second on a mixed chain/tree/SP/general workload "
                "vs thread count; acceptance: >= 2x at 4 threads on "
                "multicore hosts");

  const model::EnergyModel continuous = model::ContinuousModel{2.0};
  const auto workload = mixed_workload(32, 1212);  // 128 distinct instances

  const std::vector<std::size_t> thread_counts{1, 2, 4, 0};

  double baseline = 0.0;
  {
    util::Table table("(a) memo OFF: parallel scaling of fresh solves",
                      {"threads", "instances", "seconds", "inst/s", "speedup"});
    for (std::size_t t : thread_counts) {
      engine::EngineOptions options;
      options.threads = t;
      options.memoize = false;
      engine::ReclaimEngine eng(options);
      (void)run_batch(eng, workload, continuous);  // warm the shape cache
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        best = std::min(best, run_batch(eng, workload, continuous));
      }
      const double rate = static_cast<double>(workload.size()) / best;
      if (t == 1) baseline = rate;
      table.add_row({util::Table::fmt(eng.threads()),
                     util::Table::fmt(workload.size()),
                     util::Table::fmt(best, 4), util::Table::fmt(rate, 1),
                     util::Table::fmt_ratio(rate / baseline, 2)});
    }
    table.print(std::cout);
  }

  {
    // 4x-repeated workload: 3/4 of the batch is memo hits in steady state.
    auto repeated = workload;
    for (int r = 0; r < 3; ++r)
      repeated.insert(repeated.end(), workload.begin(), workload.end());
    util::Table table("(b) memo ON: 4x-repeated workload (service steady state)",
                      {"threads", "instances", "seconds", "inst/s",
                       "memo hit rate"});
    for (std::size_t t : thread_counts) {
      engine::EngineOptions options;
      options.threads = t;
      engine::ReclaimEngine eng(options);
      (void)run_batch(eng, workload, continuous);  // populate the memo
      const double seconds = run_batch(eng, repeated, continuous);
      const auto stats = eng.stats();
      table.add_row(
          {util::Table::fmt(eng.threads()), util::Table::fmt(repeated.size()),
           util::Table::fmt(seconds, 4),
           util::Table::fmt(static_cast<double>(repeated.size()) / seconds, 1),
           util::Table::fmt_pct(static_cast<double>(stats.memo_hits) /
                                    static_cast<double>(stats.instances),
                                1)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: (a) speedup ~ min(threads, cores); (b) the "
               "memo makes repeated instances nearly free, so inst/s exceeds "
               "the fresh-solve rate regardless of thread count.\n";
  return 0;
}
