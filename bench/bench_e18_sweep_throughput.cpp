// E18 — sweep throughput: the batched fast path on homogeneous grids.
//
// A parameter sweep (Pareto curve, deadline grid) hands the engine
// thousands of instances sharing one topology and power model; only the
// task weights and the deadline vary. This bench measures what PR 7's
// fast path buys on that workload:
//
//   (a) closed-form grid sweeps (single / chain / fork), kernels ON vs
//       OFF — the structure-of-arrays kernels vs per-instance dispatch.
//       Acceptance: >= 5x inst/s with kernels on, and bit-identical
//       results (asserted in-process here, fuzzed in
//       tests/test_batch_kernels.cpp).
//   (b) a numeric-barrier deadline grid (general DAG), warm starts ON vs
//       OFF — each solve seeded from the previous grid point's speeds.
//       Results agree within the feasibility tolerance (asserted).
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "util/timer.hpp"

namespace {

using namespace reclaim;

/// A homogeneous grid: `count` instances of one family with weights and
/// deadlines varying per instance — the kernel-batchable shape.
std::vector<core::Instance> grid(const std::string& family, std::size_t count,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Instance> out;
  out.reserve(count);
  std::vector<double> weights(family == "single" ? 1 : 8);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& w : weights) w = rng.uniform(0.5, 4.0);
    graph::Digraph g = family == "chain"  ? graph::make_chain(weights)
                       : family == "fork" ? graph::make_fork(weights)
                                          : graph::make_chain({weights[0]});
    const double d = rng.uniform(1.1, 3.0) * core::min_deadline(g, 2.0);
    out.push_back(core::make_instance(std::move(g), d));
  }
  return out;
}

/// Deadline grid over one general DAG: every solve takes the numeric
/// barrier, which is what warm starts accelerate.
std::vector<core::Instance> barrier_grid(std::size_t count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::Digraph g = graph::make_stencil(4, 4, rng);
  const double d_min = core::min_deadline(g, 2.0);
  std::vector<core::Instance> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double slack = 1.2 + 1.6 * static_cast<double>(i) /
                                   static_cast<double>(count);
    graph::Digraph copy = g;
    out.push_back(core::make_instance(std::move(copy), slack * d_min,
                                      model::StaticPowerLaw(3.0, 0.3)));
  }
  return out;
}

struct Timing {
  double seconds = 0.0;
  std::vector<core::Solution> solutions;
};

/// Best-of-N timed batch through a fresh engine. `grids` holds one
/// distinct instance set per rep (a sweep never re-solves an instance, so
/// repeating one set would let the scalar engine's memo answer the
/// repeats and measure cache probes instead of sweep work). threads == 1
/// isolates the per-instance cost the kernels remove — at hardware
/// threads the pool's fixed costs dominate a millisecond-scale
/// closed-form batch and mask the overhead being measured. Returns the
/// best rate's timing with the *first* grid's solutions (for identity
/// checks).
Timing timed_batch(const std::vector<std::vector<core::Instance>>& grids,
                   const model::EnergyModel& model,
                   const core::SolveOptions& solve_options, bool memoize,
                   bool use_kernels, bool warm_start, std::size_t threads) {
  engine::EngineOptions options;
  options.threads = threads;
  options.memoize = memoize;
  options.use_kernels = use_kernels;
  options.warm_start = warm_start;
  engine::ReclaimEngine eng(options);
  // Warm-up on grid 0 (untimed): shape cache, arenas, pool — and for the
  // memoizing engine, a realistically populated memo to probe against.
  // Grids 1.. are timed; each holds distinct instances, so every timed
  // solve is fresh work under every engine configuration.
  (void)eng.solve_batch(std::span<const core::Instance>(grids.front()), model,
                        solve_options);
  Timing best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (std::size_t r = 1; r < grids.size(); ++r) {
    util::Timer timer;
    auto out = eng.solve_batch(std::span<const core::Instance>(grids[r]),
                               model, solve_options);
    const double seconds = timer.seconds();
    if (seconds < best.seconds) best.seconds = seconds;
    if (r == 1) best.solutions = std::move(out);
  }
  return best;
}

void require_identical(const std::vector<core::Solution>& a,
                       const std::vector<core::Solution>& b,
                       const char* what) {
  if (a.size() != b.size()) throw NumericalError(std::string(what) + ": size");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].energy != b[i].energy ||
        a[i].method != b[i].method || a[i].speeds != b[i].speeds) {
      throw NumericalError(std::string(what) +
                           ": result diverged at instance " +
                           std::to_string(i));
    }
  }
}

void require_within_tol(const std::vector<core::Solution>& a,
                        const std::vector<core::Solution>& b,
                        const char* what) {
  if (a.size() != b.size()) throw NumericalError(std::string(what) + ": size");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible) {
      throw NumericalError(std::string(what) + ": feasibility diverged");
    }
    const double tol =
        core::kFeasibilityRelTol * std::max(1.0, std::abs(b[i].energy));
    if (std::abs(a[i].energy - b[i].energy) > tol) {
      throw NumericalError(std::string(what) + ": energy diverged at " +
                           std::to_string(i));
    }
  }
}

}  // namespace

int main() {
  bench::banner("E18 sweep throughput (batched kernels + warm starts)",
                "homogeneous grid sweeps through the engine: SoA kernels vs "
                "scalar dispatch (acceptance: >= 5x inst/s, bit-identical), "
                "and warm-started barrier grids vs cold solves (within the "
                "feasibility tolerance)");

  const model::EnergyModel continuous = model::ContinuousModel{2.0};
  const std::size_t kGrid = 20000;

  bool speedup_met = false;
  {
    // Three engine configurations over the same grids:
    //   scalar    — the engine's default scalar path (memo ON: a sweep of
    //               distinct instances pays canonical-key construction and
    //               memo traffic for every solve; this is what sweeps ran
    //               through before the kernels),
    //   no-memo   — scalar dispatch with the memo ablated,
    //   kernel    — the batched fast path (plans the run once, bypasses
    //               dispatch and memo per instance).
    util::Table table("(a) closed-form grids: kernels vs scalar dispatch "
                      "(1 thread, per-instance cost)",
                      {"family", "instances", "scalar inst/s",
                       "no-memo inst/s", "kernel inst/s", "vs scalar",
                       "vs no-memo"});
    for (const char* family : {"single", "chain", "fork"}) {
      std::vector<std::vector<core::Instance>> grids;
      for (std::uint64_t r = 0; r < 4; ++r) {
        grids.push_back(grid(family, kGrid, 1818 + 31 * r));
      }
      const double n = static_cast<double>(kGrid);
      const Timing scalar =
          timed_batch(grids, continuous, {}, /*memoize=*/true,
                      /*use_kernels=*/false, /*warm_start=*/false, 1);
      const Timing no_memo =
          timed_batch(grids, continuous, {}, /*memoize=*/false,
                      /*use_kernels=*/false, /*warm_start=*/false, 1);
      const Timing kernel =
          timed_batch(grids, continuous, {}, /*memoize=*/true,
                      /*use_kernels=*/true, /*warm_start=*/false, 1);
      require_identical(kernel.solutions, scalar.solutions, family);
      require_identical(kernel.solutions, no_memo.solutions, family);
      const double scalar_rate = n / scalar.seconds;
      const double no_memo_rate = n / no_memo.seconds;
      const double kernel_rate = n / kernel.seconds;
      if (kernel_rate >= 5.0 * scalar_rate) speedup_met = true;
      table.add_row({family, util::Table::fmt(kGrid),
                     util::Table::fmt(scalar_rate, 1),
                     util::Table::fmt(no_memo_rate, 1),
                     util::Table::fmt(kernel_rate, 1),
                     util::Table::fmt_ratio(kernel_rate / scalar_rate, 2),
                     util::Table::fmt_ratio(kernel_rate / no_memo_rate, 2)});
    }
    table.print(std::cout);
    std::cout << "kernel results verified bit-identical to the scalar path"
              << std::endl;
  }

  {
    std::vector<std::vector<core::Instance>> grids;
    for (std::uint64_t r = 0; r < 3; ++r) {
      grids.push_back(barrier_grid(128, 1845 + 17 * r));
    }
    core::SolveOptions exact;
    exact.leakage = core::LeakageMode::kExact;
    const Timing cold =
        timed_batch(grids, continuous, exact, /*memoize=*/false,
                    /*use_kernels=*/true, /*warm_start=*/false, 0);
    const Timing warm =
        timed_batch(grids, continuous, exact, /*memoize=*/false,
                    /*use_kernels=*/true, /*warm_start=*/true, 0);
    require_within_tol(warm.solutions, cold.solutions, "warm-start grid");
    const double n = static_cast<double>(grids[1].size());
    const double cold_rate = n / cold.seconds;
    const double warm_rate = n / warm.seconds;
    util::Table table("(b) numeric-barrier deadline grid: warm starts",
                      {"instances", "cold s", "warm s", "cold inst/s",
                       "warm inst/s", "speedup"});
    table.add_row({util::Table::fmt(grids[1].size()),
                   util::Table::fmt(cold.seconds, 4),
                   util::Table::fmt(warm.seconds, 4),
                   util::Table::fmt(cold_rate, 1),
                   util::Table::fmt(warm_rate, 1),
                   util::Table::fmt_ratio(warm_rate / cold_rate, 2)});
    table.print(std::cout);
    std::cout << "warm-started energies verified within the feasibility "
                 "tolerance of cold solves\n";
  }

  if (!speedup_met) {
    std::cout.flush();
    throw NumericalError(
        "acceptance failed: no closed-form family reached 5x inst/s with "
        "kernels on");
  }
  std::cout << "\nAcceptance met: >= 5x inst/s on at least one "
               "homogeneous-grid sweep with kernels on, results "
               "bit-identical.\n";
  return 0;
}
