// E5 — Theorem 5 / Proposition 1: CONT-ROUND stays within
// (1 + delta/s_min)^2 (1 + 1/K)^2 of optimal under the Incremental model.
//
// Sweep delta and the relaxation accuracy (the 1/K knob); measure the
// worst observed ratio to the restricted continuous relaxation over a
// batch of random instances and compare against the certified factor.
// Instances are evaluated in parallel on the thread pool.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E5 CONT-ROUND approximation (Theorem 5, Proposition 1)",
                "worst measured E_round / E_relax over 20 instances vs the "
                "certified (1 + delta/s_min)^2 (1 + eps)^2");

  constexpr std::size_t kInstances = 20;
  constexpr double kSMin = 0.5;
  constexpr double kSMax = 2.0;

  util::Table table("Certified vs measured approximation factors",
                    {"delta", "eps (1/K)", "modes", "worst measured",
                     "geo-mean", "certified", "holds"});

  // The instance set is fixed across the (delta, eps) sweep; the engine
  // shards each batch over the pool and reuses its caches between sweeps.
  std::vector<core::Instance> instances;
  for (std::size_t i = 0; i < kInstances; ++i) {
    util::Rng rng(5000 + i);
    const auto app = graph::make_layered(3, 4, 0.5, rng);
    instances.push_back(bench::mapped_instance(
        app, 2, kSMax, 1.1 + 0.2 * static_cast<double>(i % 5)));
  }

  for (double delta : {1.0, 0.5, 0.25, 0.1}) {
    for (double eps : {1e-1, 1e-9}) {
      const model::IncrementalModel inc(kSMin, kSMax, delta);

      // CONT-ROUND through the engine (exact_discrete_up_to = 0 keeps the
      // polynomial rounding path, matching Theorem 5's algorithm)...
      core::SolveOptions round_options;
      round_options.exact_discrete_up_to = 0;
      round_options.rel_gap = eps;
      const auto rounded =
          bench::shared_engine().solve_batch(instances, inc, round_options);

      // ...and its restricted continuous relaxation (the certified bound's
      // denominator): speeds confined to [s_1, s_m] of the mode set.
      core::SolveOptions relax_options;
      relax_options.rel_gap = eps;
      relax_options.continuous_s_min = inc.modes.min_speed();
      const auto relaxed = bench::shared_engine().solve_batch(
          instances, model::ContinuousModel{inc.modes.max_speed()},
          relax_options);

      std::vector<double> ratios(kInstances, 0.0);
      for (std::size_t i = 0; i < kInstances; ++i) {
        if (rounded[i].feasible && relaxed[i].energy > 0.0)
          ratios[i] = rounded[i].energy / relaxed[i].energy;
      }

      std::vector<double> seen;
      double worst = 0.0;
      for (double r : ratios) {
        if (r <= 0.0) continue;
        seen.push_back(r);
        worst = std::max(worst, r);
      }
      const double certified =
          core::incremental_transfer_bound(delta, kSMin, model::PowerLaw(3.0)) *
          std::pow(1.0 + eps, 2.0);
      table.add_row({util::Table::fmt(delta, 3), util::Table::fmt(eps, 9),
                     util::Table::fmt(inc.modes.size()),
                     util::Table::fmt_ratio(worst, 4),
                     util::Table::fmt_ratio(util::geometric_mean(seen), 4),
                     util::Table::fmt_ratio(certified, 4),
                     worst <= certified * (1.0 + 1e-9) ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();
  std::cout << "\nExpected shape: measured << certified (the bound is per-task "
               "worst case); both approach 1x as delta -> 0 — 'such a model "
               "can be made arbitrarily efficient'.\n";
  return 0;
}
