// E3 — Theorem 3: Vdd-Hopping solves exactly in polynomial time via LP,
// and mode mixing "smooths out the discrete nature of the modes".
//
// Layered DAGs mapped on 3 processors; sweep deadline slack and mode
// count; report Vdd-LP and the two-mode heuristic as ratios to the
// Continuous lower bound, plus LP size/pivots.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace reclaim;
  bench::banner("E3 Vdd-Hopping LP (Theorem 3)",
                "E_cont <= E_vddLP <= E_two-mode; the gap to Continuous "
                "shrinks with the number of modes m");

  util::Rng rng(303);
  util::Table table("Vdd-Hopping vs the Continuous bound",
                    {"D/D_min", "m modes", "E cont", "vdd LP", "two-mode",
                     "LP vars", "pivots"});

  const double s_max = 2.0;
  for (double slack : {1.1, 1.5, 2.5}) {
    // One fixed instance per slack so the m-sweep is apples to apples.
    auto sub = rng.substream(static_cast<std::uint64_t>(slack * 100));
    const auto app = graph::make_layered(4, 4, 0.5, sub);
    auto instance = bench::mapped_instance(app, 3, s_max, slack);
    const auto cont =
        bench::shared_engine().solve_one(instance, model::ContinuousModel{s_max});
    for (std::size_t m : {2u, 3u, 5u, 8u}) {
      const auto modes = bench::spread_modes(m, 0.4, s_max);
      // Direct LP call: the table reports lp_variables, which the engine's
      // Solution does not carry.
      const auto lp =
          core::solve_vdd_lp(instance, model::VddHoppingModel{modes});
      const auto two =
          core::solve_vdd_two_mode(instance, model::VddHoppingModel{modes});
      if (!cont.feasible || !lp.solution.feasible || !two.feasible) {
        table.add_row({util::Table::fmt(slack, 2), util::Table::fmt(m),
                       "infeasible", "-", "-", "-", "-"});
        continue;
      }
      table.add_row({util::Table::fmt(slack, 2), util::Table::fmt(m),
                     util::Table::fmt(cont.energy, 3),
                     util::Table::fmt_ratio(lp.solution.energy / cont.energy, 4),
                     util::Table::fmt_ratio(two.energy / cont.energy, 4),
                     util::Table::fmt(lp.lp_variables),
                     util::Table::fmt(lp.solution.iterations)});
    }
  }
  table.print(std::cout);
  bench::print_engine_stats();
  std::cout << "\nExpected shape: vdd LP >= 1.0000x and decreasing in m; "
               "two-mode >= vdd LP; pivots grow polynomially.\n";
  return 0;
}
