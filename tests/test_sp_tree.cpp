// Unit tests for the series-parallel recognizer/decomposer.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/sp_tree.hpp"
#include "util/error.hpp"

namespace rg = reclaim::graph;
using reclaim::util::Rng;

namespace {

/// Collects the task ids on the leaves of the subtree under `node`.
std::multiset<rg::NodeId> leaf_tasks(const rg::SpTree& tree, std::size_t node) {
  std::multiset<rg::NodeId> out;
  std::function<void(std::size_t)> walk = [&](std::size_t id) {
    const auto& n = tree.nodes[id];
    if (n.kind == rg::SpKind::kLeaf) {
      if (n.task != rg::kNoNode) out.insert(n.task);
      return;
    }
    for (std::size_t c : n.children) walk(c);
  };
  walk(node);
  return out;
}

/// Every task appears exactly once as a leaf.
void expect_exact_cover(const rg::Digraph& g, const rg::SpTree& tree) {
  const auto tasks = leaf_tasks(tree, tree.root);
  EXPECT_EQ(tasks.size(), g.num_nodes());
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(tasks.count(v), 1u);
}

}  // namespace

TEST(SpTree, SingleTask) {
  rg::Digraph g;
  g.add_node(3.0);
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
  EXPECT_EQ(tree->nodes[tree->root].kind, rg::SpKind::kLeaf);
  EXPECT_EQ(tree->nodes[tree->root].task, 0u);
}

TEST(SpTree, ChainDecomposesToSeries) {
  const auto g = rg::make_chain({1.0, 2.0, 3.0});
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
  const auto& root = tree->nodes[tree->root];
  EXPECT_EQ(root.kind, rg::SpKind::kSeries);
  EXPECT_EQ(root.children.size(), 3u);
  // Series order is execution order.
  EXPECT_EQ(tree->nodes[root.children[0]].task, 0u);
  EXPECT_EQ(tree->nodes[root.children[2]].task, 2u);
}

TEST(SpTree, ForkDecomposesToSeriesOfRootAndParallel) {
  const auto g = rg::make_fork({1.0, 2.0, 3.0, 4.0});
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
  const auto& root = tree->nodes[tree->root];
  ASSERT_EQ(root.kind, rg::SpKind::kSeries);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(tree->nodes[root.children[0]].task, 0u);
  const auto& par = tree->nodes[root.children[1]];
  EXPECT_EQ(par.kind, rg::SpKind::kParallel);
  EXPECT_EQ(par.children.size(), 3u);
}

TEST(SpTree, IndependentTasksAreParallel) {
  rg::Digraph g(3, 1.0);  // no edges at all
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
  EXPECT_EQ(tree->nodes[tree->root].kind, rg::SpKind::kParallel);
}

TEST(SpTree, DiamondWithShortcutReducesToChain) {
  // a -> b -> c plus shortcut a -> c: energetically a pure series.
  rg::Digraph g(3, 1.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
  EXPECT_EQ(tree->nodes[tree->root].kind, rg::SpKind::kSeries);
}

TEST(SpTree, DiamondIsSeriesParallel) {
  Rng rng(1);
  const auto g = rg::make_diamond(4, rng);
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  expect_exact_cover(g, *tree);
}

TEST(SpTree, NGraphIsNotSp) {
  // The forbidden N: a -> c, a -> d, b -> d.
  rg::Digraph g(4, 1.0);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  EXPECT_FALSE(rg::sp_decompose(g).has_value());
  EXPECT_FALSE(rg::is_series_parallel(g));
}

TEST(SpTree, CrossedForkJoinIsNotSp) {
  // Complete bipartite {a1,a2} x {b1,b2} without a junction: not
  // two-terminal SP (the reduction gets stuck).
  rg::Digraph g(4, 1.0);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_FALSE(rg::is_series_parallel(g));
}

TEST(SpTree, StencilIsNotSp) {
  Rng rng(2);
  EXPECT_FALSE(rg::is_series_parallel(rg::make_stencil(3, 3, rng)));
}

TEST(SpTree, TreesAreSp) {
  Rng rng(3);
  EXPECT_TRUE(rg::is_series_parallel(rg::make_random_out_tree(40, rng)));
  EXPECT_TRUE(rg::is_series_parallel(rg::make_random_in_tree(40, rng)));
}

TEST(SpTree, GeneratedSpGraphsRoundTrip) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto g = rg::make_random_series_parallel(n, rng);
    const auto tree = rg::sp_decompose(g);
    ASSERT_TRUE(tree.has_value()) << "trial " << trial;
    expect_exact_cover(g, *tree);
  }
}

TEST(SpTree, TaskLeavesCountsRealTasksOnly) {
  const auto g = rg::make_fork({1.0, 2.0, 3.0});
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->task_leaves(tree->root), 3u);
}

TEST(SpTree, EmptyGraphThrows) {
  EXPECT_THROW((void)rg::sp_decompose(rg::Digraph{}), reclaim::InvalidArgument);
}

TEST(SpTree, CyclicGraphThrows) {
  rg::Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)rg::sp_decompose(g), reclaim::InvalidArgument);
}

TEST(SpTree, ForkJoinChainsDecompose) {
  Rng rng(5);
  for (std::size_t stages : {1u, 2u, 4u}) {
    for (std::size_t width : {1u, 3u}) {
      const auto g = rg::make_fork_join_chain(stages, width, rng);
      const auto tree = rg::sp_decompose(g);
      ASSERT_TRUE(tree.has_value());
      expect_exact_cover(g, *tree);
    }
  }
}
