// Heterogeneous-platform tests: model::Platform basics, Instance
// accessors, the uniform-Platform bit-identity regression (a homogeneous
// Platform must reproduce the single-PowerModel paths exactly, across
// every solver family), hand-computed heterogeneous optima (per-task
// s_crit floors and caps), per-processor idle/busy accounting, and the
// engine's mapped batch API (race-to-idle route + memo soundness across
// distinct platforms).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/analysis.hpp"
#include "core/baselines.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/instance_key.hpp"
#include "engine/reclaim_engine.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace re = reclaim::engine;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (std::size_t i = 0; i < a.profiles.size(); ++i) {
    ASSERT_EQ(a.profiles[i].segments.size(), b.profiles[i].segments.size());
    for (std::size_t s = 0; s < a.profiles[i].segments.size(); ++s) {
      EXPECT_EQ(a.profiles[i].segments[s].speed, b.profiles[i].segments[s].speed);
      EXPECT_EQ(a.profiles[i].segments[s].duration,
                b.profiles[i].segments[s].duration);
    }
  }
}

/// Two-task chain T0 -> T1 with T0 on processor 0 and T1 on processor 1.
rc::Instance two_proc_chain(double w0, double w1, double deadline,
                            const rm::ProcessorSpec& p0,
                            const rm::ProcessorSpec& p1) {
  auto g = rg::make_chain({w0, w1});
  rs::Mapping mapping(2);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  return rc::make_instance(std::move(g), deadline,
                           rm::Platform({p0, p1}), mapping);
}

}  // namespace

TEST(Platform, BasicsAndValidation) {
  const rm::Platform deflt;
  EXPECT_EQ(deflt.size(), 1u);
  EXPECT_TRUE(deflt.homogeneous());
  EXPECT_FALSE(deflt.has_sleep());
  EXPECT_EQ(deflt.cap(0), kInf);

  const auto pm = rm::make_power_model(3.0, 0.5);
  const rm::Platform single(pm);  // implicit PowerModel conversion
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.power(0), pm);

  const auto uni = rm::Platform::uniform(4, pm, 2.0);
  EXPECT_EQ(uni.size(), 4u);
  EXPECT_TRUE(uni.homogeneous());
  EXPECT_EQ(uni.cap(3), 2.0);

  const rm::Platform hetero(
      {{pm, 2.0},
       {rm::make_power_model(2.5, 0.0,
                             rm::make_sleep_spec(1.0, 0.1, 2.0)),
        1.5}});
  EXPECT_FALSE(hetero.homogeneous());
  EXPECT_TRUE(hetero.has_sleep());
  EXPECT_FALSE(rm::Platform({{pm, 2.0}}).has_sleep());

  EXPECT_THROW((void)rm::Platform(std::vector<rm::ProcessorSpec>{}),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rm::Platform({{pm, 0.0}}), reclaim::InvalidArgument);
  EXPECT_THROW((void)rm::Platform::uniform(0, pm), reclaim::InvalidArgument);
}

TEST(Platform, InstanceAccessorsAndHomogeneity) {
  const auto pure = rm::make_power_model(3.0, 0.0);
  const auto leaky = rm::make_power_model(3.0, 2.0);
  auto g = rg::make_chain({1.0, 1.0, 1.0});
  rs::Mapping mapping(2);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  mapping.assign(0, 2);

  const auto hetero = rc::make_instance(
      g, 10.0, rm::Platform({{pure, 2.0}, {leaky, 1.5}}), mapping);
  EXPECT_EQ(hetero.processor_of(0), 0u);
  EXPECT_EQ(hetero.processor_of(1), 1u);
  EXPECT_EQ(hetero.processor_of(2), 0u);
  EXPECT_EQ(hetero.power_of(1), leaky);
  EXPECT_EQ(hetero.cap_of(1), 1.5);
  EXPECT_FALSE(hetero.homogeneous_tasks());
  EXPECT_THROW((void)hetero.power(), reclaim::InvalidArgument);

  // Same platform, homogeneous specs: tasks agree, power() works.
  const auto uniform = rc::make_instance(
      g, 10.0, rm::Platform::uniform(2, leaky, 2.0), mapping);
  EXPECT_TRUE(uniform.homogeneous_tasks());
  EXPECT_EQ(uniform.power(), leaky);

  // Pre-platform instances: empty assignment, processor 0 everywhere.
  const auto classic = rc::make_instance(g, 10.0, leaky);
  EXPECT_TRUE(classic.assignment.empty());
  EXPECT_TRUE(classic.homogeneous_tasks());
  EXPECT_EQ(classic.power_of(2), leaky);
  EXPECT_EQ(classic.cap_of(2), kInf);

  // Validation: platform/mapping size mismatch, bad assignment entries.
  EXPECT_THROW((void)rc::make_instance(g, 10.0, rm::Platform(pure), mapping),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::make_instance(g, 10.0, rm::Platform(pure),
                                       std::vector<std::size_t>{0, 1, 0}),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::make_instance(g, 10.0, rm::Platform(pure),
                                       std::vector<std::size_t>{0, 0}),
               reclaim::InvalidArgument);
}

TEST(Platform, UniformPlatformBitIdenticalAcrossSolverFamilies) {
  // The acceptance regression: a homogeneous Platform of any size must
  // route every solver family exactly as the single embedded PowerModel
  // did — bit-identical solutions, not approximately equal.
  reclaim::util::Rng rng(7);
  std::vector<rg::Digraph> apps;
  apps.push_back(rg::make_chain(6, rng));
  apps.push_back(rg::make_fork(5, rng));
  apps.push_back(rg::make_random_out_tree(8, rng));
  apps.push_back(rg::make_fork_join_chain(2, 3, rng));
  apps.push_back(rg::make_stencil(3, 3, rng));

  const auto pm = rm::make_power_model(3.0, 0.5,
                                       rm::make_sleep_spec(0.8, 0.1, 1.0));
  const std::vector<rm::EnergyModel> models = {
      rm::ContinuousModel{2.0},
      rm::DiscreteModel{rm::ModeSet({0.5, 1.0, 1.5, 2.0})},
      rm::VddHoppingModel{rm::ModeSet({0.5, 1.0, 1.5, 2.0})},
      rm::IncrementalModel(0.5, 2.0, 0.25)};

  for (const auto& app : apps) {
    const auto mapping = rs::list_schedule(app, 2).mapping;
    const auto exec = rs::build_execution_graph(app, mapping);
    const double deadline = 1.5 * rc::min_deadline(exec, 2.0);
    const auto classic = rc::make_instance(exec, deadline, pm);
    const auto platformed = rc::make_instance(
        exec, deadline, rm::Platform::uniform(2, pm), mapping);
    ASSERT_TRUE(platformed.homogeneous_tasks());

    for (const auto& model : models) {
      expect_identical(rc::solve(classic, model), rc::solve(platformed, model));
    }
    for (auto* baseline :
         {rc::solve_no_dvfs, rc::solve_uniform, rc::solve_path_stretch}) {
      expect_identical(baseline(classic, models[0]),
                       baseline(platformed, models[0]));
    }

    // Race-to-idle: crawl, race decision and platform splits all agree.
    const auto r_classic = rc::solve_race_to_idle(
        classic, rm::ContinuousModel{2.0}, mapping);
    const auto r_platformed = rc::solve_race_to_idle(
        platformed, rm::ContinuousModel{2.0}, mapping);
    expect_identical(r_classic.solution, r_platformed.solution);
    EXPECT_EQ(r_classic.raced, r_platformed.raced);
    EXPECT_EQ(r_classic.speedup, r_platformed.speedup);
    EXPECT_EQ(r_classic.crawl.total(), r_platformed.crawl.total());
    EXPECT_EQ(r_classic.chosen.total(), r_platformed.chosen.total());
  }

  // Chain DP (the engine's large-discrete-chain route).
  auto chain = rg::make_chain(20, rng);
  const double d = 1.4 * rc::min_deadline(chain, 2.0);
  const auto mapping = rs::single_processor_mapping(chain);
  const rm::ModeSet modes({0.5, 1.0, 2.0});
  expect_identical(
      rc::solve_chain_dp(rc::make_instance(chain, d, pm), modes).solution,
      rc::solve_chain_dp(rc::make_instance(chain, d,
                                           rm::Platform::uniform(1, pm),
                                           mapping),
                         modes)
          .solution);
}

TEST(Platform, HeteroChainHandComputedOptimum) {
  // T0 (pure s^3) -> T1 (P_stat = 2, s_crit = 1), weights 1/1, D = 4.
  // The reduced problem minimizes 1/d0^2 + 1/d1^2 s.t. d0 + d1 <= 4 and
  // d1 <= 1 (T1's s_crit floor): d1 pins at 1, d0 = 3. Hence speeds
  // (1/3, 1) and energy (1/3)^2 + (2/1 + 1^2) = 1/9 + 3.
  const auto instance = two_proc_chain(
      1.0, 1.0, 4.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.method, "numeric-barrier");  // the floor binds: no closed form
  EXPECT_NEAR(s.speeds[0], 1.0 / 3.0, 1e-5);
  EXPECT_NEAR(s.speeds[1], 1.0, 1e-5);
  EXPECT_NEAR(s.energy, 1.0 / 9.0 + 3.0, 1e-5);
  EXPECT_NEAR(rc::recompute_energy(instance, s), s.energy, 1e-9);
}

TEST(Platform, HeteroChainClosedFormWhenExact) {
  // Same chain at D = 2: the common speed W/D = 1 clears T1's floor
  // exactly, so the single-exponent chain closed form applies: both tasks
  // at speed 1, energy 1 + (2 + 1) = 4, all exact.
  const auto instance = two_proc_chain(
      1.0, 1.0, 2.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.method, "closed-form-chain");
  EXPECT_DOUBLE_EQ(s.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(s.speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(s.energy, 4.0);

  // Mixed exponents must abandon the closed form even with no floor.
  const auto mixed = two_proc_chain(
      1.0, 1.0, 4.0, {rm::make_power_model(2.5, 0.0), kInf},
      {rm::make_power_model(3.0, 0.0), kInf});
  const auto sm = rc::solve_continuous(mixed, rm::ContinuousModel{2.0});
  ASSERT_TRUE(sm.feasible);
  EXPECT_EQ(sm.method, "numeric-barrier");
  EXPECT_NEAR(rc::recompute_energy(mixed, sm), sm.energy, 1e-9);
}

TEST(Platform, HeteroSingleTaskFloorsAndCaps) {
  auto g = rg::make_chain({1.0});
  rs::Mapping mapping(1);
  mapping.assign(0, 0);
  const auto leaky = rm::make_power_model(3.0, 2.0);  // s_crit = 1

  // Floor binds: w/D = 0.1 < s_crit -> run at s_crit, E = 2/1 + 1 = 3.
  const auto floored = rc::make_instance(
      g, 10.0, rm::Platform({{leaky, kInf}}), mapping);
  const auto s1 = rc::solve_continuous(floored, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s1.feasible);
  EXPECT_EQ(s1.method, "closed-form-single");
  EXPECT_DOUBLE_EQ(s1.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(s1.energy, 3.0);

  // Processor cap below s_crit: the floor clamps to the cap,
  // E = 2/0.5 + 0.5^2 = 4.25.
  const auto capped = rc::make_instance(
      g, 10.0, rm::Platform({{leaky, 0.5}}), mapping);
  const auto s2 = rc::solve_continuous(capped, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s2.feasible);
  EXPECT_DOUBLE_EQ(s2.speeds[0], 0.5);
  EXPECT_DOUBLE_EQ(s2.energy, 4.25);

  // Processor cap below the required speed: infeasible.
  const auto too_slow = rc::make_instance(
      g, 10.0, rm::Platform({{leaky, 0.05}}), mapping);
  EXPECT_FALSE(
      rc::solve_continuous(too_slow, rm::ContinuousModel{kInf}).feasible);
}

TEST(Platform, HeteroNumericRespectsPerTaskBounds) {
  reclaim::util::Rng rng(21);
  const auto app = rg::make_stencil(3, 3, rng);
  const auto mapping = rs::list_schedule(app, 2).mapping;
  auto exec = rs::build_execution_graph(app, mapping);
  const double deadline = 1.6 * rc::min_deadline(exec, 0.8);
  const rm::Platform platform({{rm::make_power_model(3.0, 0.0), 0.8},
                               {rm::make_power_model(2.5, 0.3), 2.0}});
  const auto instance =
      rc::make_instance(std::move(exec), deadline, platform, mapping);

  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  const auto& g = instance.exec_graph;
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    const auto& power = instance.power_of(v);
    const double floor = std::min(power.critical_speed(), instance.cap_of(v));
    EXPECT_LE(s.speeds[v], instance.cap_of(v) * (1.0 + 1e-9));
    EXPECT_GE(s.speeds[v], floor * (1.0 - 1e-9));
  }
  EXPECT_TRUE(rs::meets_deadline(
      g, rs::durations_from_speeds(g, s.speeds), instance.deadline));
  EXPECT_NEAR(rc::recompute_energy(instance, s), s.energy, 1e-9 * s.energy);
}

TEST(Platform, HeteroVddLpChargesPerProcessorPower) {
  // One mode forces both tasks to speed 1; the LP's objective coefficients
  // are each processor's own P(1): 1 for the pure law, 1 + 2 for the leaky
  // one -> total energy 1 + 3 = 4.
  const auto instance = two_proc_chain(
      1.0, 1.0, 2.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto s =
      rc::solve(instance, rm::VddHoppingModel{rm::ModeSet({1.0})});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.energy, 4.0, 1e-9);
  EXPECT_NEAR(rc::recompute_energy(instance, s), s.energy, 1e-9);
}

TEST(Platform, HeteroBaselinesUsePerTaskCurves) {
  // UNIFORM at needed = W/D = 0.5: the pure-law task keeps 0.5, the leaky
  // one clamps up to its critical speed 1.
  const auto instance = two_proc_chain(
      1.0, 1.0, 4.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto uniform =
      rc::solve_uniform(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(uniform.feasible);
  EXPECT_DOUBLE_EQ(uniform.speeds[0], 0.5);
  EXPECT_DOUBLE_EQ(uniform.speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(uniform.energy, 0.25 + 3.0);

  // NO-DVFS runs each task at its own processor cap and checks the
  // earliest-start makespan: caps 1 and 2 give makespan 1 + 0.5 = 1.5.
  const auto capped = two_proc_chain(
      1.0, 1.0, 1.6, {rm::make_power_model(3.0, 0.0), 1.0},
      {rm::make_power_model(3.0, 0.0), 2.0});
  const auto no_dvfs = rc::solve_no_dvfs(capped, rm::ContinuousModel{kInf});
  ASSERT_TRUE(no_dvfs.feasible);
  EXPECT_DOUBLE_EQ(no_dvfs.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(no_dvfs.speeds[1], 2.0);
  const auto tight = two_proc_chain(
      1.0, 1.0, 1.4, {rm::make_power_model(3.0, 0.0), 1.0},
      {rm::make_power_model(3.0, 0.0), 2.0});
  EXPECT_FALSE(rc::solve_no_dvfs(tight, rm::ContinuousModel{kInf}).feasible);
}

TEST(Platform, ModeSetsArePlatformWideDespiteCaps) {
  // Processor caps bind the continuous family only (DESIGN.md,
  // "Heterogeneous platforms"): under a mode-based model NO-DVFS must run
  // every task at the top *mode*, even on a continuous-capped processor,
  // matching the mode scans of the other baselines.
  const auto capped = two_proc_chain(
      1.0, 1.0, 2.0, {rm::make_power_model(3.0, 0.0), 1.5},
      {rm::make_power_model(3.0, 0.0), kInf});
  const rm::EnergyModel discrete =
      rm::DiscreteModel{rm::ModeSet({0.5, 1.0, 2.0})};
  const auto s = rc::solve_no_dvfs(capped, discrete);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.speeds[0], 2.0);
  EXPECT_DOUBLE_EQ(s.speeds[1], 2.0);
}

TEST(Platform, CapBelowSlowestModeDegradesGracefully) {
  // All modes above a processor's continuous cap: CONT-ROUND's restricted
  // relaxation (s_min = slowest mode) has no admissible speed on that
  // processor. It must report infeasible — never throw — so the exact
  // solver still runs (mode sets are platform-wide) and an engine batch
  // is never aborted by one capped instance.
  const auto capped = two_proc_chain(
      1.0, 1.0, 3.0, {rm::make_power_model(3.0, 0.0), 0.8},
      {rm::make_power_model(3.0, 0.0), kInf});
  const rm::ModeSet modes({1.0, 1.5, 2.0});

  const auto rounded = rc::solve_round_up(capped, modes);
  EXPECT_FALSE(rounded.solution.feasible);  // honest heuristic failure

  // The exact search is cap-agnostic by design and still solves it (the
  // warm start is simply skipped).
  const auto exact =
      rc::solve(capped, rm::DiscreteModel{modes});
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(exact.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(exact.speeds[1], 1.0);

  // A zero-weight task on the capped processor gets no floor (it runs in
  // zero time at no speed), so it must not trip the per-task validation.
  auto with_dummy = rg::make_chain({0.0, 1.0});
  rs::Mapping dummy_mapping(2);
  dummy_mapping.assign(0, 0);
  dummy_mapping.assign(1, 1);
  const auto dummy = rc::make_instance(
      with_dummy, 3.0,
      rm::Platform({{rm::make_power_model(3.0, 0.0), 0.8},
                    {rm::make_power_model(3.0, 2.0), kInf}}),
      dummy_mapping);
  EXPECT_NO_THROW((void)rc::solve_round_up(dummy, modes));

  // Homogeneous capped platform, all-zero weights: nothing needs to run,
  // so even a floor above the folded cap is vacuous — feasible at zero
  // energy, never a throw.
  auto zeros = rg::make_chain({0.0, 0.0});
  rs::Mapping zero_mapping(1);
  zero_mapping.assign(0, 0);
  zero_mapping.assign(0, 1);
  const auto all_zero = rc::make_instance(
      zeros, 3.0, rm::Platform::uniform(1, rm::make_power_model(3.0, 0.0), 0.8),
      zero_mapping);
  const auto zero_rounded = rc::solve_round_up(all_zero, modes);
  ASSERT_TRUE(zero_rounded.solution.feasible);
  EXPECT_DOUBLE_EQ(zero_rounded.solution.energy, 0.0);

  // Batch safety: the capped instance must not abort its neighbors.
  re::ReclaimEngine engine(re::EngineOptions{.threads = 2});
  const std::vector<rc::Instance> batch = {
      capped, rc::make_instance(rg::make_chain({1.0, 1.0}), 3.0)};
  const auto solutions = engine.solve_batch(batch, rm::DiscreteModel{modes});
  ASSERT_EQ(solutions.size(), 2u);
  EXPECT_TRUE(solutions[0].feasible);
  EXPECT_TRUE(solutions[1].feasible);
}

TEST(Platform, RoundUpCertificateUsesWeightedTasksOnly) {
  // An exponent on a processor hosting no work must not inflate the
  // Theorem 5 certificate: both tasks sit on the alpha = 3 processor, so
  // the bound is (1 + gap/s_1)^2, not (1 + gap/s_1)^4 from idle proc 0.
  auto g = rg::make_chain({1.0, 1.0});
  rs::Mapping mapping(2);
  mapping.assign(1, 0);
  mapping.assign(1, 1);
  const auto instance = rc::make_instance(
      g, 6.0,
      rm::Platform({{rm::make_power_model(5.0, 0.0), kInf},
                    {rm::make_power_model(3.0, 0.0), kInf}}),
      mapping);
  const rm::ModeSet modes({0.5, 1.0, 2.0});
  rc::RoundUpOptions options;
  const auto result = rc::solve_round_up(instance, modes, options);
  const double expected =
      std::pow(1.0 + modes.max_gap() / modes.min_speed(), 2.0) *
      std::pow(1.0 + options.continuous_rel_gap, 2.0);
  EXPECT_DOUBLE_EQ(result.certified_factor, expected);
}

TEST(Platform, PerProcessorIdleCurvesAndEnergySplit) {
  // A (2s) alone on P0; B (1s) on P1 inside a window of 4: P0 has a tail
  // gap of 2, P1 gaps totalling 3. P0 idles at 3 (no profitable sleep for
  // a gap of 2 given wake 8), P1 sleeps free after its break-even 0.
  rg::Digraph app;  // two independent tasks
  (void)app.add_node(2.0, "A");
  (void)app.add_node(1.0, "B");
  rs::Mapping mapping(2);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  const rm::Platform platform(
      {{rm::make_power_model(3.0, 0.0, rm::make_sleep_spec(3.0, 1.0, 8.0)),
        kInf},
       {rm::make_power_model(3.0, 0.0, rm::make_sleep_spec(2.0, 0.0, 0.0)),
        kInf}});
  const std::vector<double> durations = {2.0, 1.0};
  const double idle =
      rs::idle_energy(app, mapping, durations, 4.0, platform);
  // P0 tail gap 2: min(3*2, 1*2+8) = 6. P1 tail gap 3: min(2*3, 0+0) = 0.
  EXPECT_DOUBLE_EQ(idle, 6.0);

  // Broadcast semantics: a 1-proc platform charges every processor with
  // its model, bit-identical to the PowerModel overload.
  const auto pm =
      rm::make_power_model(3.0, 0.0, rm::make_sleep_spec(3.0, 1.0, 8.0));
  EXPECT_EQ(rs::idle_energy(app, mapping, durations, 4.0, rm::Platform(pm)),
            rs::idle_energy(app, mapping, durations, 4.0, pm));

  // per_processor_energy buckets busy energy by assignment and sums to
  // the solution's total; leakage_energy charges each task's own P_stat.
  const auto instance = two_proc_chain(
      1.0, 1.0, 2.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  const auto buckets = rc::per_processor_energy(instance, s);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0], 1.0);        // speed 1, pure: 1 * 1^2
  EXPECT_DOUBLE_EQ(buckets[1], 3.0);        // speed 1, leaky: 2/1 + 1
  EXPECT_NEAR(buckets[0] + buckets[1], s.energy, 1e-12);
  EXPECT_DOUBLE_EQ(rc::leakage_energy(instance, s), 2.0);  // P_stat * 1s busy
}

TEST(Platform, EngineMappedBatchRaceRouteAndStats) {
  // The canonical race-wins fixture of test_sleep: A alone on P0; B, C
  // chained on P1 with A -> C, binding s_crit floor, interior gap on P1.
  rg::Digraph app;
  const auto a = app.add_node(2.0, "A");
  const auto b = app.add_node(0.5, "B");
  const auto c = app.add_node(0.5, "C");
  app.add_edge(a, c);
  rs::Mapping mapping(2);
  mapping.assign(0, a);
  mapping.assign(1, b);
  mapping.assign(1, c);
  const auto exec = rs::build_execution_graph(app, mapping);
  // The spec test_sleep proves races strictly: idle 3, wake 6, s_crit
  // floor binding at P_stat = 2, D = 6.
  const auto pm = rm::PowerModel(rm::StaticPowerLaw(3.0, 2.0))
                      .with_sleep(rm::make_sleep_spec(3.0, 0.0, 6.0));
  const rm::EnergyModel cont = rm::ContinuousModel{kInf};

  re::MappedInstance mapped{
      rc::make_instance(exec, 6.0, rm::Platform::uniform(2, pm), mapping),
      mapping};

  // One thread: two identical entries in one batch would otherwise race
  // on the memo fill (both fresh-solve, first-in wins — harmless but
  // nondeterministic for the counters below).
  re::EngineOptions engine_options;
  engine_options.threads = 1;
  re::ReclaimEngine engine(engine_options);
  const std::vector<re::MappedInstance> batch = {mapped, mapped};
  const auto solutions = engine.solve_batch(batch, cont);
  ASSERT_EQ(solutions.size(), 2u);

  // Matches the direct race-to-idle solve bit-identically, and the second
  // (identical) entry is a memo hit.
  const auto direct = rc::solve_race_to_idle(
      mapped.instance, rm::ContinuousModel{kInf}, mapping);
  expect_identical(solutions[0], direct.solution);
  expect_identical(solutions[1], direct.solution);
  EXPECT_TRUE(direct.raced);
  EXPECT_EQ(solutions[0].method, "race-to-idle");

  const auto stats = engine.stats();
  EXPECT_EQ(stats.fresh_solves, 1u);
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.raced_solves, 1u);
  EXPECT_EQ(stats.crawl_solves, 0u);

  // Without a sleep spec the mapped route degenerates to the plain one
  // (and its memo entries are shared with unmapped batches).
  re::ReclaimEngine plain_engine(engine_options);
  const auto plain_pm = rm::PowerModel(rm::StaticPowerLaw(3.0, 2.0));
  const auto no_sleep = rc::make_instance(
      exec, 6.0, rm::Platform::uniform(2, plain_pm), mapping);
  const auto direct_solution = plain_engine.solve_one(no_sleep, cont);
  const auto mapped_solution =
      plain_engine.solve_one(re::MappedInstance{no_sleep, mapping}, cont);
  expect_identical(mapped_solution, direct_solution);
  EXPECT_EQ(plain_engine.stats().memo_hits, 1u);
  EXPECT_EQ(plain_engine.stats().raced_solves +
                plain_engine.stats().crawl_solves,
            0u);
}

TEST(Platform, RaceToIdleRacesPastCapPinnedTasks) {
  // big.LITTLE regression: A (w = 2) alone on the uncapped big core; B, C
  // (w = 0.5 each) on the little core whose cap 1.0 equals s_crit (P_stat
  // = 2, alpha = 3), so both its tasks are floor-pinned at the cap. The
  // old search stopped at min over tasks of cap/speed = 1 — any pinned
  // task froze the whole race. Pinned tasks must clamp while A races:
  // with idle 3 / sleep 0 / wake 6 the platform energy at factor k is
  //   E(k) = 2 (2/k + k^2) + 3 + 6 + 3 (2/k - 0.5) + 6
  //        = 10/k + 2 k^2 + 13.5
  // (A's busy cost, B+C pinned busy 3, P0 tail sleeps for 6, P1's
  // interior gap 2/k - 0.5 idles below break-even 2, P1 tail sleeps),
  // minimized at k* = 2.5^(1/3) ~ 1.357 with E ~ 24.55 < 25.5 = E(1).
  rg::Digraph app;
  const auto a = app.add_node(2.0, "A");
  const auto b = app.add_node(0.5, "B");
  const auto c = app.add_node(0.5, "C");
  app.add_edge(a, c);
  rs::Mapping mapping(2);
  mapping.assign(0, a);
  mapping.assign(1, b);
  mapping.assign(1, c);
  const auto exec = rs::build_execution_graph(app, mapping);
  const auto pm = rm::make_power_model(3.0, 2.0,  // s_crit = 1
                                       rm::make_sleep_spec(3.0, 0.0, 6.0));
  const rm::Platform platform({{pm, kInf}, {pm, 1.0}});
  const auto instance = rc::make_instance(exec, 6.0, platform, mapping);

  const auto r =
      rc::solve_race_to_idle(instance, rm::ContinuousModel{kInf}, mapping);
  ASSERT_TRUE(r.solution.feasible);
  EXPECT_NEAR(r.crawl.total(), 25.5, 1e-6);
  EXPECT_TRUE(r.raced);  // the little core's pinned tasks no longer freeze it
  const double k_star = std::cbrt(2.5);
  EXPECT_NEAR(r.speedup, k_star, 5e-3);
  EXPECT_NEAR(r.chosen.total(),
              10.0 / k_star + 2.0 * k_star * k_star + 13.5, 1e-4);
  EXPECT_LT(r.chosen.total(), r.crawl.total());

  // A raced, the pinned tasks clamped at their cap.
  EXPECT_NEAR(r.solution.speeds[a], k_star, 5e-3);
  EXPECT_DOUBLE_EQ(r.solution.speeds[b], 1.0);
  EXPECT_DOUBLE_EQ(r.solution.speeds[c], 1.0);

  // The raced schedule stays feasible with exact busy bookkeeping.
  rs::validate_constant_speeds(instance.exec_graph, r.solution.speeds,
                               rm::ContinuousModel{kInf}, instance.deadline);
  EXPECT_NEAR(rc::recompute_energy(instance, r.solution), r.solution.energy,
              1e-9 * r.solution.energy);
}

TEST(Platform, RaceWorthBoundIgnoresPinnedTasks) {
  // A heavy task pinned at its cap contributes nothing to the busy
  // increase at any speed-up, so it must not feed the k_worth bound:
  // summing it would truncate the search below the true optimum. H
  // (w = 200, cap 1.0) dominates the platform's dynamic energy; the true
  // optimum for racing A is k* = 16^(1/3) ~ 2.52, while the old
  // all-tasks bound sqrt((busy+idle)/dynamic) ~ 2.12 cut the search
  // short. With idle 30 / sleep 0 / wake 100 (break-even 10/3) and
  // D = 202 the platform energy at factor k is
  //   E(k) = 2 k^2 + 64/k + 848
  // (A's busy 2(2/k + k^2); B+C busy 3; H busy 600; P0/P1 tails sleep
  // for 100 each; P1's interior gap 2/k - 0.5 idles at 30; P2's tail 2
  // idles for 60).
  rg::Digraph app;
  const auto a = app.add_node(2.0, "A");
  const auto b = app.add_node(0.5, "B");
  const auto c = app.add_node(0.5, "C");
  const auto h = app.add_node(200.0, "H");
  app.add_edge(a, c);
  rs::Mapping mapping(3);
  mapping.assign(0, a);
  mapping.assign(1, b);
  mapping.assign(1, c);
  mapping.assign(2, h);
  const auto exec = rs::build_execution_graph(app, mapping);
  const auto pm = rm::make_power_model(3.0, 2.0,  // s_crit = 1
                                       rm::make_sleep_spec(30.0, 0.0, 100.0));
  const rm::Platform platform({{pm, kInf}, {pm, 1.0}, {pm, 1.0}});
  const auto instance = rc::make_instance(exec, 202.0, platform, mapping);

  const auto r =
      rc::solve_race_to_idle(instance, rm::ContinuousModel{kInf}, mapping);
  ASSERT_TRUE(r.solution.feasible);
  EXPECT_NEAR(r.crawl.total(), 914.0, 1e-4);
  EXPECT_TRUE(r.raced);
  const double k_star = std::cbrt(16.0);
  EXPECT_NEAR(r.speedup, k_star, 1e-2);
  EXPECT_NEAR(r.chosen.total(), 2.0 * k_star * k_star + 64.0 / k_star + 848.0,
              1e-2);
  EXPECT_DOUBLE_EQ(r.solution.speeds[h], 1.0);  // still pinned at its cap
}

TEST(Platform, EngineMemoNeverAliasesDistinctPlatforms) {
  auto g = rg::make_chain({1.0, 1.0});
  rs::Mapping mapping(2);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  const rm::EnergyModel cont = rm::ContinuousModel{kInf};
  const rc::SolveOptions opts;

  const auto pure = rm::make_power_model(3.0, 0.0);
  const auto leaky = rm::make_power_model(3.0, 2.0);
  const auto i_a =
      rc::make_instance(g, 4.0, rm::Platform({{pure, kInf}, {leaky, kInf}}),
                        mapping);
  const auto i_b =
      rc::make_instance(g, 4.0, rm::Platform({{leaky, kInf}, {pure, kInf}}),
                        mapping);
  const auto i_capped =
      rc::make_instance(g, 4.0, rm::Platform({{pure, 2.0}, {leaky, kInf}}),
                        mapping);

  // Distinct platforms (and the same platform with swapped processors)
  // produce distinct keys; identical inputs produce identical keys.
  EXPECT_NE(re::instance_key(i_a, cont, opts),
            re::instance_key(i_b, cont, opts));
  EXPECT_NE(re::instance_key(i_a, cont, opts),
            re::instance_key(i_capped, cont, opts));
  EXPECT_EQ(re::instance_key(i_a, cont, opts),
            re::instance_key(i_a, cont, opts));

  // The mapped key additionally separates execution orders.
  rs::Mapping swapped(2);
  swapped.assign(0, 1);
  swapped.assign(1, 0);
  EXPECT_NE(re::mapped_instance_key(i_a, mapping, cont, opts),
            re::mapped_instance_key(i_a, swapped, cont, opts));
  EXPECT_NE(re::instance_key(i_a, cont, opts),
            re::mapped_instance_key(i_a, mapping, cont, opts));

  // End to end: both hetero instances are fresh solves with different
  // optima (the leaky processor's floor binds a different task), then
  // repeat batches hit the memo with bit-identical answers.
  re::EngineOptions engine_options;
  engine_options.threads = 1;
  re::ReclaimEngine engine(engine_options);
  const std::vector<rc::Instance> batch = {i_a, i_b};
  const auto first = engine.solve_batch(batch, cont);
  EXPECT_EQ(engine.stats().fresh_solves, 2u);
  EXPECT_EQ(engine.stats().memo_hits, 0u);
  ASSERT_TRUE(first[0].feasible);
  ASSERT_TRUE(first[1].feasible);
  EXPECT_NE(first[0].speeds, first[1].speeds);

  const auto second = engine.solve_batch(batch, cont);
  EXPECT_EQ(engine.stats().memo_hits, 2u);
  expect_identical(second[0], first[0]);
  expect_identical(second[1], first[1]);
}
