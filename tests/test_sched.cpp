// Unit tests for sched/: mappings, execution graphs, the list scheduler,
// schedule evaluation and validators.
#include <gtest/gtest.h>

#include "graph/classify.hpp"
#include "graph/generators.hpp"
#include "graph/topo.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace rg = reclaim::graph;
namespace rs = reclaim::sched;
namespace rm = reclaim::model;
using reclaim::util::Rng;

TEST(Mapping, AssignAndLookup) {
  rs::Mapping m(2);
  m.assign(0, 0);
  m.assign(1, 1);
  m.assign(0, 2);
  EXPECT_EQ(m.num_processors(), 2u);
  EXPECT_EQ(m.tasks_on(0), (std::vector<rg::NodeId>{0, 2}));
  EXPECT_EQ(m.processor_of(1), 1u);
  EXPECT_THROW((void)m.processor_of(9), reclaim::InvalidArgument);
}

TEST(Mapping, ValidateComplete) {
  rg::Digraph g(3, 1.0);
  rs::Mapping good(2);
  good.assign(0, 0);
  good.assign(0, 1);
  good.assign(1, 2);
  EXPECT_NO_THROW(good.validate_complete(g));

  rs::Mapping missing(2);
  missing.assign(0, 0);
  EXPECT_THROW(missing.validate_complete(g), reclaim::InvalidArgument);

  rs::Mapping duplicated(2);
  duplicated.assign(0, 0);
  duplicated.assign(1, 0);
  duplicated.assign(0, 1);
  duplicated.assign(1, 2);
  EXPECT_THROW(duplicated.validate_complete(g), reclaim::InvalidArgument);
}

TEST(Mapping, CannedMappings) {
  Rng rng(1);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const auto single = rs::single_processor_mapping(g);
  EXPECT_EQ(single.num_processors(), 1u);
  EXPECT_NO_THROW(single.validate_complete(g));
  const auto rr = rs::round_robin_mapping(g, 3);
  EXPECT_EQ(rr.num_processors(), 3u);
  EXPECT_NO_THROW(rr.validate_complete(g));
}

TEST(ExecutionGraph, AddsChainingEdges) {
  // Two independent tasks forced into sequence on one processor.
  rg::Digraph g(2, 1.0);
  rs::Mapping m(1);
  m.assign(0, 1);
  m.assign(0, 0);
  const auto exec = rs::build_execution_graph(g, m);
  EXPECT_EQ(exec.num_edges(), 1u);
  EXPECT_TRUE(exec.has_edge(1, 0));
}

TEST(ExecutionGraph, KeepsPrecedenceEdgesWithoutDuplicates) {
  rg::Digraph g(2, 1.0);
  g.add_edge(0, 1);
  rs::Mapping m(1);
  m.assign(0, 0);
  m.assign(0, 1);
  const auto exec = rs::build_execution_graph(g, m);
  EXPECT_EQ(exec.num_edges(), 1u);  // chaining edge == precedence edge
}

TEST(ExecutionGraph, RejectsContradictoryOrder) {
  rg::Digraph g(2, 1.0);
  g.add_edge(0, 1);
  rs::Mapping m(1);
  m.assign(0, 1);  // processor order 1 then 0 contradicts 0 -> 1
  m.assign(0, 0);
  EXPECT_THROW((void)rs::build_execution_graph(g, m), reclaim::InvalidArgument);
}

TEST(ExecutionGraph, RejectsIncompleteMapping) {
  rg::Digraph g(2, 1.0);
  rs::Mapping m(1);
  m.assign(0, 0);
  EXPECT_THROW((void)rs::build_execution_graph(g, m), reclaim::InvalidArgument);
}

TEST(ExecutionGraph, SingleProcessorYieldsChain) {
  Rng rng(2);
  const auto g = rg::make_layered(3, 2, 0.6, rng);
  const auto exec =
      rs::build_execution_graph(g, rs::single_processor_mapping(g));
  // A full single-processor order makes the execution graph contain a
  // Hamiltonian path; its transitive reduction is exactly a chain.
  EXPECT_TRUE(rg::is_chain(rg::transitive_reduction(exec)));
}

TEST(ListScheduler, RespectsPrecedences) {
  Rng rng(3);
  const auto g = rg::make_layered(4, 4, 0.5, rng);
  const auto result = rs::list_schedule(g, 3);
  result.mapping.validate_complete(g);
  for (const auto& e : g.edges())
    EXPECT_GE(result.start[e.to], result.finish[e.from] - 1e-12);
}

TEST(ListScheduler, NoProcessorOverlap) {
  Rng rng(4);
  const auto g = rg::make_layered(4, 4, 0.5, rng);
  const auto result = rs::list_schedule(g, 2);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& list = result.mapping.tasks_on(p);
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(result.start[list[i]], result.finish[list[i - 1]] - 1e-12);
  }
}

TEST(ListScheduler, MakespanBounds) {
  Rng rng(5);
  const auto g = rg::make_layered(4, 4, 0.5, rng);
  const auto cp = rg::critical_path(g).length;
  const auto one = rs::list_schedule(g, 1);
  EXPECT_NEAR(one.makespan, g.total_weight(), 1e-9);  // serial == total work
  const auto four = rs::list_schedule(g, 4);
  EXPECT_GE(four.makespan, cp - 1e-9);                // >= critical path
  EXPECT_LE(four.makespan, one.makespan + 1e-9);      // more procs never worse here
}

TEST(ListScheduler, ReferenceSpeedScalesDurations) {
  Rng rng(6);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const auto slow = rs::list_schedule(g, 2, 1.0);
  const auto fast = rs::list_schedule(g, 2, 2.0);
  EXPECT_NEAR(fast.makespan, slow.makespan / 2.0, 1e-9);
}

TEST(ListScheduler, ExecutionGraphIsConsistent) {
  Rng rng(7);
  const auto g = rg::make_tiled_cholesky(4);
  const auto result = rs::list_schedule(g, 3);
  EXPECT_NO_THROW((void)rs::build_execution_graph(g, result.mapping));
}

TEST(SpeedProfile, Accounting) {
  rs::SpeedProfile p;
  p.segments.push_back({2.0, 1.0});
  p.segments.push_back({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.total_duration(), 3.0);
  EXPECT_DOUBLE_EQ(p.work(), 4.0);
  EXPECT_DOUBLE_EQ(p.energy(rm::PowerLaw(3.0)), 8.0 + 2.0);
}

TEST(Schedule, DurationsFromSpeeds) {
  rg::Digraph g;
  g.add_node(4.0);
  g.add_node(0.0);
  const auto d = rs::durations_from_speeds(g, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_THROW((void)rs::durations_from_speeds(g, {0.0, 0.0}),
               reclaim::InvalidArgument);
}

TEST(Schedule, TimingOnDiamond) {
  rg::Digraph g(4, 1.0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto timing = rs::compute_timing(g, {1.0, 2.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(timing.finish[0], 1.0);
  EXPECT_DOUBLE_EQ(timing.finish[1], 3.0);
  EXPECT_DOUBLE_EQ(timing.finish[2], 2.0);
  EXPECT_DOUBLE_EQ(timing.start[3], 3.0);
  EXPECT_DOUBLE_EQ(timing.makespan, 4.0);
}

TEST(Schedule, TotalEnergy) {
  rg::Digraph g;
  g.add_node(2.0);
  g.add_node(3.0);
  const double e = rs::total_energy(g, {1.0, 2.0}, rm::PowerLaw(3.0));
  EXPECT_DOUBLE_EQ(e, 2.0 * 1.0 + 3.0 * 4.0);
}

TEST(Schedule, MeetsDeadline) {
  rg::Digraph g = rg::make_chain({2.0, 2.0});
  EXPECT_TRUE(rs::meets_deadline(g, {1.0, 1.0}, 2.0));
  EXPECT_FALSE(rs::meets_deadline(g, {1.5, 1.0}, 2.0));
}

TEST(Schedule, ValidateConstantSpeeds) {
  rg::Digraph g = rg::make_chain({2.0, 2.0});
  const rm::EnergyModel disc = rm::DiscreteModel{rm::ModeSet({1.0, 2.0})};
  EXPECT_NO_THROW(rs::validate_constant_speeds(g, {2.0, 2.0}, disc, 2.0));
  // Inadmissible speed.
  EXPECT_THROW(rs::validate_constant_speeds(g, {1.5, 2.0}, disc, 4.0),
               reclaim::InvalidArgument);
  // Missed deadline.
  EXPECT_THROW(rs::validate_constant_speeds(g, {1.0, 1.0}, disc, 2.0),
               reclaim::InvalidArgument);
}

TEST(Schedule, ValidateProfiles) {
  rg::Digraph g;
  g.add_node(3.0);
  const rm::EnergyModel vdd = rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})};
  std::vector<rs::SpeedProfile> profiles(1);
  profiles[0].segments = {{2.0, 1.0}, {1.0, 1.0}};  // work = 3 in time 2
  EXPECT_NO_THROW(rs::validate_profiles(g, profiles, vdd, 2.0));
  // Wrong work.
  profiles[0].segments = {{2.0, 1.0}};
  EXPECT_THROW(rs::validate_profiles(g, profiles, vdd, 2.0),
               reclaim::InvalidArgument);
  // Non-mode speed.
  profiles[0].segments = {{1.5, 2.0}};
  EXPECT_THROW(rs::validate_profiles(g, profiles, vdd, 2.0),
               reclaim::InvalidArgument);
}

TEST(Schedule, ZeroWeightTasksNeedNoSpeed) {
  rg::Digraph g;
  g.add_node(0.0);
  g.add_node(2.0);
  g.add_edge(0, 1);
  const rm::EnergyModel cont = rm::ContinuousModel{10.0};
  EXPECT_NO_THROW(rs::validate_constant_speeds(g, {0.0, 1.0}, cont, 2.0));
}
