// Net-layer tests: wire codec round trips (canonical byte equality per
// message type), decode rejection of malformed payloads with the right
// protocol error codes, framing over real pipes, and the ReclaimServer
// end to end over socketpairs/pipes — error replies instead of crashes,
// out-of-order completion, and the shared cross-connection memo.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/solve.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"
#include "model/power_model.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"

namespace rn = reclaim::net;
namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
namespace rio = reclaim::io;

namespace {

constexpr const char* kChainGraph = "task a 1\ntask b 2\ntask c 1\nedge a b\nedge b c\n";

rn::SolveRequest chain_request(double deadline = 4.0) {
  rn::SolveRequest request;
  request.deadline = deadline;
  request.model = rm::ContinuousModel{2.0};
  request.graph_text = kChainGraph;
  return request;
}

/// The instance the server reconstructs from `request` (uniform power,
/// no explicit mapping): list schedule + execution graph + power law.
rc::Instance reference_instance(const rn::SolveRequest& request) {
  const auto app = rio::read_task_graph_from_string(request.graph_text);
  const auto mapping = rs::list_schedule(app, request.processors).mapping;
  auto exec = rs::build_execution_graph(app, mapping);
  return rc::make_instance(
      std::move(exec), request.deadline,
      rm::make_power_model(request.alpha, request.p_static, request.sleep));
}

void expect_round_trip(const rn::Message& message) {
  const std::string bytes = rn::encode(message);
  const rn::Message back = rn::decode(bytes);
  EXPECT_EQ(back.id, message.id);
  EXPECT_EQ(rn::type_of(back), rn::type_of(message));
  // Canonical encoding: decode(encode(m)) re-encodes to the same bytes.
  EXPECT_EQ(rn::encode(back), bytes);
}

// ------------------------------------------------------------ wire codec

TEST(Wire, RoundTripSolveUniformPower) {
  rn::SolveRequest request = chain_request();
  request.leakage = rc::LeakageMode::kExact;
  request.processors = 2;
  request.alpha = 2.5;
  request.p_static = 0.25;
  request.sleep = rm::make_sleep_spec(0.1, 0.01, 0.5);
  request.mapping_text = "proc a c\nproc b\n";
  expect_round_trip({7, request});
}

TEST(Wire, RoundTripSolveHeterogeneousPlatform) {
  rn::SolveRequest request = chain_request();
  request.model = rm::VddHoppingModel{rm::ModeSet({0.5, 1.0, 2.0})};
  rm::ProcessorSpec slow;
  slow.power = rm::make_power_model(3.0, 0.2, rm::make_sleep_spec(0.1, 0.0, 0.3));
  slow.s_max = 1.0;
  rm::ProcessorSpec fast;
  fast.power = rm::make_power_model(2.0, 0.0, rm::SleepSpec{});
  fast.s_max = std::numeric_limits<double>::infinity();  // uncapped is legal
  request.platform = {slow, fast};
  expect_round_trip({8, request});
}

TEST(Wire, RoundTripSolveEveryModelKind) {
  for (const rm::EnergyModel& model :
       {rm::EnergyModel{rm::ContinuousModel{2.0}},
        rm::EnergyModel{rm::DiscreteModel{rm::ModeSet({0.5, 1.5})}},
        rm::EnergyModel{rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})}},
        rm::EnergyModel{rm::IncrementalModel(0.5, 2.0, 0.5)}}) {
    rn::SolveRequest request = chain_request();
    request.model = model;
    expect_round_trip({1, request});
  }
}

TEST(Wire, RoundTripResult) {
  rn::SolveResult result;
  result.solution.feasible = true;
  result.solution.energy = 12.25;
  result.solution.method = "closed-form-chain";
  result.solution.iterations = 42;
  result.solution.speeds = {1.0, 1.5, 0.5};
  expect_round_trip({3, result});

  rn::SolveResult profiled;  // Vdd solutions carry per-task profiles
  profiled.solution.feasible = true;
  profiled.solution.energy = 3.5;
  profiled.solution.method = "vdd-lp";
  reclaim::sched::SpeedProfile profile;
  profile.segments.push_back({1.0, 0.5});
  profile.segments.push_back({2.0, 0.25});
  profiled.solution.profiles = {profile};
  expect_round_trip({4, profiled});

  rn::SolveResult infeasible;  // infeasible is a RESULT, not an ERROR
  infeasible.solution.feasible = false;
  infeasible.solution.energy = std::numeric_limits<double>::infinity();
  infeasible.solution.method = "kkt-newton";
  expect_round_trip({5, infeasible});
}

TEST(Wire, RoundTripErrorEveryCode) {
  for (const rn::ErrorCode code :
       {rn::ErrorCode::kBadFrame, rn::ErrorCode::kBadVersion,
        rn::ErrorCode::kBadMessage, rn::ErrorCode::kBadRequest,
        rn::ErrorCode::kInternal}) {
    expect_round_trip({9, rn::ErrorReply{code, "something broke"}});
  }
}

TEST(Wire, RoundTripEmptyBodies) {
  expect_round_trip({11, rn::StatsRequest{}});
  expect_round_trip({12, rn::Ping{}});
  expect_round_trip({13, rn::Pong{}});
}

TEST(Wire, RoundTripStatsReply) {
  rn::StatsReply stats;
  stats.uptime_ms = 123456;
  stats.clients_connected = 5;
  stats.clients_active = 2;
  stats.requests = 100;
  stats.results = 98;
  stats.errors = 2;
  stats.instances = 100;
  stats.fresh_solves = 40;
  stats.memo_hits = 60;
  stats.shape_hits = 90;
  stats.memo_entries = 40;
  stats.memo_bytes = 1 << 16;
  stats.memo_evictions = 3;
  stats.memo_oldest_age_ms = 2500;
  stats.raced_solves = 7;
  stats.crawl_solves = 9;
  stats.kernel_solves = 25;
  stats.warm_solves = 4;
  stats.joint_solves = 11;
  stats.joint_improved = 6;
  stats.clients = {{1, 50, 50, 0}, {2, 50, 48, 2}};
  expect_round_trip({14, stats});
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.6);
}

TEST(Wire, EncodeRejectsNaN) {
  rn::SolveRequest request = chain_request();
  request.deadline = std::nan("");
  try {
    (void)rn::encode(rn::Message{1, request});
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadMessage);
  }
}

TEST(Wire, DecodeRejectsNaNField) {
  std::string bytes = rn::encode(rn::Message{1, chain_request()});
  // The deadline f64 sits right after the 10-byte header; overwrite its
  // bit pattern with a NaN.
  const double nan = std::nan("");
  std::memcpy(bytes.data() + 10, &nan, sizeof nan);
  try {
    (void)rn::decode(bytes);
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadMessage);
  }
}

TEST(Wire, DecodeRejectsBadVersion) {
  std::string bytes = rn::encode(rn::Message{1, rn::Ping{}});
  bytes[0] = 0x2a;
  try {
    (void)rn::decode(bytes);
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadVersion);
  }
}

TEST(Wire, DecodeRejectsUnknownType) {
  std::string bytes = rn::encode(rn::Message{1, rn::Ping{}});
  bytes[1] = 0x7f;
  try {
    (void)rn::decode(bytes);
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadMessage);
  }
}

TEST(Wire, DecodeRejectsEveryTruncation) {
  // Every strict prefix of a valid payload must throw — never read past
  // the end, never return a half-decoded message.
  const std::string bytes = rn::encode(rn::Message{77, chain_request()});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)rn::decode(std::string_view(bytes).substr(0, cut)),
                 rn::WireError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Wire, DecodeRejectsTrailingBytes) {
  std::string bytes = rn::encode(rn::Message{1, chain_request()});
  bytes.push_back('\0');
  try {
    (void)rn::decode(bytes);
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadMessage);
  }
}

TEST(Wire, DecodeRejectsInvalidModeSpeedAsBadRequest) {
  rn::SolveRequest request = chain_request();
  request.model = rm::DiscreteModel{rm::ModeSet({0.5, 1.5})};
  std::string bytes = rn::encode(rn::Message{1, request});
  // First mode speed: header (10) + deadline f64 (8) + model kind u8 (1)
  // + mode count u32 (4) = offset 23. A negative speed is structurally a
  // fine f64, semantically invalid -> BAD_REQUEST, not BAD_MESSAGE.
  const double negative = -1.0;
  std::memcpy(bytes.data() + 23, &negative, sizeof negative);
  try {
    (void)rn::decode(bytes);
    FAIL() << "expected WireError";
  } catch (const rn::WireError& e) {
    EXPECT_EQ(e.code(), rn::ErrorCode::kBadRequest);
  }
}

TEST(Wire, PeekRequestId) {
  const std::string bytes = rn::encode(rn::Message{0xdeadbeef, rn::Ping{}});
  EXPECT_EQ(rn::peek_request_id(bytes), 0xdeadbeefu);
  EXPECT_EQ(rn::peek_request_id("short"), 0u);
}

// --------------------------------------------------------------- framing

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(Framing, RoundTripOverPipe) {
  Pipe pipe;
  rn::write_frame(pipe.fds[1], "hello");
  rn::write_frame(pipe.fds[1], std::string(1000, 'x'));
  std::string payload;
  ASSERT_TRUE(rn::read_frame(pipe.fds[0], payload));
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(rn::read_frame(pipe.fds[0], payload));
  EXPECT_EQ(payload, std::string(1000, 'x'));
}

TEST(Framing, CleanEofReturnsFalse) {
  Pipe pipe;
  pipe.close_write();
  std::string payload;
  EXPECT_FALSE(rn::read_frame(pipe.fds[0], payload));
}

TEST(Framing, TruncatedStreamThrows) {
  Pipe pipe;
  const std::uint32_t announced = 100;
  ASSERT_EQ(::write(pipe.fds[1], &announced, sizeof announced),
            static_cast<ssize_t>(sizeof announced));
  ASSERT_EQ(::write(pipe.fds[1], "only", 4), 4);
  pipe.close_write();
  std::string payload;
  try {
    (void)rn::read_frame(pipe.fds[0], payload);
    FAIL() << "expected FrameError";
  } catch (const rn::FrameError& e) {
    EXPECT_EQ(e.kind(), rn::FrameError::Kind::kTruncated);
  }
}

TEST(Framing, OversizedAnnouncementThrows) {
  Pipe pipe;
  const std::uint32_t announced = 4096;
  ASSERT_EQ(::write(pipe.fds[1], &announced, sizeof announced),
            static_cast<ssize_t>(sizeof announced));
  std::string payload;
  try {
    (void)rn::read_frame(pipe.fds[0], payload, /*max_payload=*/1024);
    FAIL() << "expected FrameError";
  } catch (const rn::FrameError& e) {
    EXPECT_EQ(e.kind(), rn::FrameError::Kind::kOversized);
  }
}

TEST(Framing, EmptyAnnouncementThrows) {
  Pipe pipe;
  const std::uint32_t announced = 0;
  ASSERT_EQ(::write(pipe.fds[1], &announced, sizeof announced),
            static_cast<ssize_t>(sizeof announced));
  std::string payload;
  try {
    (void)rn::read_frame(pipe.fds[0], payload);
    FAIL() << "expected FrameError";
  } catch (const rn::FrameError& e) {
    EXPECT_EQ(e.kind(), rn::FrameError::Kind::kEmpty);
  }
}

TEST(Framing, WriteRejectsOversizedPayload) {
  Pipe pipe;
  EXPECT_THROW(
      rn::write_frame(pipe.fds[1], std::string(2048, 'x'), /*max_payload=*/1024),
      rn::FrameError);
}

// ---------------------------------------------------------------- server

/// One live connection to `server` over a socketpair, with the server's
/// reader on its own thread. The destructor closes the client side
/// (EOF), joins, and closes the server side.
struct TestConnection {
  explicit TestConnection(rn::ReclaimServer& server) {
    int pair[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
    server_fd = pair[0];
    client_fd = pair[1];
    reader = std::thread(
        [&server, fd = server_fd] { server.serve_stream(fd, fd); });
    client.emplace(rn::ServeClient::from_fds(client_fd, client_fd));
  }
  /// For tests where the *server* ends the connection: joins its reader
  /// (serve_stream has returned) and closes the server-side fd so the
  /// client observes EOF. Without this the fd would stay open in this
  /// process and the client's next read would block forever.
  void await_server_close() {
    reader.join();
    ::close(server_fd);
    server_fd = -1;
  }
  ~TestConnection() {
    if (reader.joinable()) {
      ::shutdown(client_fd, SHUT_RDWR);
      reader.join();
    }
    if (server_fd >= 0) ::close(server_fd);
    ::close(client_fd);
  }

  int server_fd = -1;
  int client_fd = -1;
  std::thread reader;
  std::optional<rn::ServeClient> client;
};

TEST(Server, SolveMatchesCoreSolve) {
  rn::ReclaimServer server;
  TestConnection conn(server);

  const rn::SolveRequest request = chain_request();
  const std::uint64_t id = conn.client->send_solve(request);
  const auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, id);
  const auto* result = std::get_if<rn::SolveResult>(&reply->body);
  ASSERT_NE(result, nullptr);
  ASSERT_TRUE(result->solution.feasible);

  const rc::Solution expected =
      rc::solve(reference_instance(request), request.model);
  EXPECT_DOUBLE_EQ(result->solution.energy, expected.energy);
  ASSERT_EQ(result->solution.speeds.size(), expected.speeds.size());
  for (std::size_t i = 0; i < expected.speeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->solution.speeds[i], expected.speeds[i]);
  }
}

TEST(Server, RepliesToPing) {
  rn::ReclaimServer server;
  TestConnection conn(server);
  const std::uint64_t id = conn.client->send_ping();
  const auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, id);
  EXPECT_TRUE(std::holds_alternative<rn::Pong>(reply->body));
}

TEST(Server, GarbagePayloadGetsErrorAndConnectionSurvives) {
  rn::ReclaimServer server;
  TestConnection conn(server);

  // Wrong version byte with a parseable header: BAD_VERSION, id echoed.
  std::string bad = rn::encode(rn::Message{31, rn::Ping{}});
  bad[0] = 0x42;
  rn::write_frame(conn.client_fd, bad);
  auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 31u);
  {
    const auto* error = std::get_if<rn::ErrorReply>(&reply->body);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, rn::ErrorCode::kBadVersion);
  }

  // Pure garbage, too short for a header: BAD_MESSAGE with id 0.
  rn::write_frame(conn.client_fd, "garbage");
  reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 0u);
  {
    const auto* error = std::get_if<rn::ErrorReply>(&reply->body);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, rn::ErrorCode::kBadMessage);
  }

  // The connection is still fully usable afterwards.
  const std::uint64_t id = conn.client->send_solve(chain_request());
  reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, id);
  EXPECT_TRUE(std::holds_alternative<rn::SolveResult>(reply->body));
}

TEST(Server, OversizedFrameGetsBadFrameThenClose) {
  rn::ServerOptions options;
  options.max_frame_bytes = 1024;
  rn::ReclaimServer server(options);
  TestConnection conn(server);

  const std::uint32_t announced = 1 << 20;
  ASSERT_EQ(::send(conn.client_fd, &announced, sizeof announced, 0),
            static_cast<ssize_t>(sizeof announced));
  const auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 0u);  // nothing to attribute a desynced stream to
  const auto* error = std::get_if<rn::ErrorReply>(&reply->body);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, rn::ErrorCode::kBadFrame);
  // The server closed its side: the next read is clean EOF.
  conn.await_server_close();
  EXPECT_FALSE(conn.client->read_message().has_value());
}

TEST(Server, SemanticErrorsGetBadRequestWithIdEchoed) {
  rn::ReclaimServer server;
  TestConnection conn(server);

  std::vector<std::uint64_t> ids;
  rn::SolveRequest bad_deadline = chain_request(-1.0);
  ids.push_back(conn.client->send_solve(bad_deadline));

  rn::SolveRequest bad_graph = chain_request();
  bad_graph.graph_text = "task a 1\nedge a nonexistent\n";
  ids.push_back(conn.client->send_solve(bad_graph));

  rn::SolveRequest bad_mapping = chain_request();
  bad_mapping.mapping_text = "proc a b unknown_task\n";
  ids.push_back(conn.client->send_solve(bad_mapping));

  for (const std::uint64_t expected_id : ids) {
    const auto reply = conn.client->read_message();
    ASSERT_TRUE(reply.has_value());
    // BAD_REQUEST is produced on the reader thread, in request order.
    EXPECT_EQ(reply->id, expected_id);
    const auto* error = std::get_if<rn::ErrorReply>(&reply->body);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, rn::ErrorCode::kBadRequest);
  }

  // A bad request never poisons the connection or the engine.
  const std::uint64_t good = conn.client->send_solve(chain_request());
  const auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, good);
  EXPECT_TRUE(std::holds_alternative<rn::SolveResult>(reply->body));
}

TEST(Server, OutOfOrderCompletionMatchedByRequestId) {
  rn::ServerOptions options;
  options.engine.threads = 4;  // several solver lanes -> reordering
  rn::ReclaimServer server(options);
  TestConnection conn(server);

  // One heavy general DAG first, then a pile of trivial chains: the
  // chains overtake the stencil on the other pool threads, so replies
  // cannot come back in submission order.
  reclaim::util::Rng rng(99);
  const auto heavy_graph = rg::make_stencil(10, 10, rng);
  std::ostringstream heavy_text;
  rio::write_task_graph(heavy_text, heavy_graph);
  rn::SolveRequest heavy;
  heavy.model = rm::ContinuousModel{2.0};
  heavy.graph_text = heavy_text.str();
  heavy.deadline =
      1.4 * rc::min_deadline(rs::build_execution_graph(
                                 heavy_graph,
                                 rs::list_schedule(heavy_graph, 1).mapping),
                             2.0);

  const std::uint64_t heavy_id = conn.client->send_solve(heavy);
  constexpr std::size_t kLight = 40;
  for (std::size_t i = 0; i < kLight; ++i) {
    (void)conn.client->send_solve(chain_request());
  }

  std::vector<std::uint64_t> arrival_order;
  for (std::size_t i = 0; i < kLight + 1; ++i) {
    const auto reply = conn.client->read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(std::holds_alternative<rn::SolveResult>(reply->body));
    ASSERT_TRUE(std::get<rn::SolveResult>(reply->body).solution.feasible);
    arrival_order.push_back(reply->id);
  }
  // Every request answered exactly once, matched by id...
  std::vector<std::uint64_t> sorted = arrival_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], i + 1);
  }
  // ...and the heavy one did NOT come back first: at least one later
  // submission overtook it.
  EXPECT_NE(arrival_order.front(), heavy_id);
}

TEST(Server, SecondConnectionHitsFirstConnectionsMemo) {
  rn::ReclaimServer server;
  const rn::SolveRequest request = chain_request();
  {
    TestConnection first(server);
    (void)first.client->send_solve(request);
    ASSERT_TRUE(first.client->read_message().has_value());
  }
  TestConnection second(server);
  (void)second.client->send_solve(request);
  const auto reply = second.client->read_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(std::holds_alternative<rn::SolveResult>(reply->body));

  (void)second.client->send_stats();
  const auto stats_reply = second.client->read_message();
  ASSERT_TRUE(stats_reply.has_value());
  const auto* stats = std::get_if<rn::StatsReply>(&stats_reply->body);
  ASSERT_NE(stats, nullptr);
  // The whole point of the daemon: client 2's solve was answered from
  // client 1's memo entry.
  EXPECT_EQ(stats->instances, 2u);
  EXPECT_GE(stats->memo_hits, 1u);
  EXPECT_GT(stats->hit_rate(), 0.0);
  EXPECT_EQ(stats->clients_connected, 2u);
  EXPECT_EQ(stats->clients_active, 1u);  // first already disconnected
  ASSERT_EQ(stats->clients.size(), 2u);  // ...but keeps its counter row
  EXPECT_EQ(stats->clients[0].requests, 1u);
  EXPECT_EQ(stats->clients[0].results, 1u);
  EXPECT_EQ(stats->memo_entries, 1u);
  EXPECT_GT(stats->memo_bytes, 0u);
}

TEST(Server, StdioStylePipesEndToEnd) {
  // The --stdio transport: requests and responses on two plain pipes
  // (exercises the ENOTSOCK write fallback), out-of-order completion
  // allowed, EOF drains in-flight solves before the server returns.
  Pipe to_server;
  Pipe to_client;
  rn::ServerOptions options;
  options.engine.threads = 4;
  rn::ReclaimServer server(options);
  std::thread reader([&] {
    server.serve_stream(to_server.fds[0], to_client.fds[1]);
  });

  auto client =
      rn::ServeClient::from_fds(to_client.fds[0], to_server.fds[1]);
  constexpr std::size_t kRequests = 8;
  for (std::size_t i = 0; i < kRequests; ++i) {
    (void)client.send_solve(chain_request(3.0 + 0.5 * static_cast<double>(i)));
  }
  to_server.close_write();  // EOF: no more requests

  std::size_t results = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto reply = client.read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(std::holds_alternative<rn::SolveResult>(reply->body));
    EXPECT_TRUE(std::get<rn::SolveResult>(reply->body).solution.feasible);
    ++results;
  }
  reader.join();
  EXPECT_EQ(results, kRequests);
  EXPECT_EQ(server.stats().results, kRequests);
}

TEST(Server, UnexpectedClientMessageTypeIsBadMessage) {
  rn::ReclaimServer server;
  TestConnection conn(server);
  rn::write_frame(conn.client_fd,
                  rn::encode(rn::Message{55, rn::Pong{}}));
  const auto reply = conn.client->read_message();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 55u);
  const auto* error = std::get_if<rn::ErrorReply>(&reply->body);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, rn::ErrorCode::kBadMessage);
}

}  // namespace
