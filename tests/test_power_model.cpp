// Power-model layer tests: StaticPowerLaw math, P_stat = 0 equivalence
// with the seed PowerLaw behavior (bit-identical, across all four energy
// models), the s_crit reduction (optimal speeds never fall below the
// critical speed), and recompute_energy cross-checks of the solver
// bookkeeping under leakage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/continuous/closed_form.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "core/vdd/lp_solver.hpp"
#include "graph/generators.hpp"
#include "model/power_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mixed shapes spanning every continuous routing path (closed forms,
/// tree, SP, numeric) plus general DAGs for the discrete/Vdd solvers.
std::vector<rg::Digraph> mixed_graphs(std::uint64_t seed) {
  reclaim::util::Rng rng(seed);
  std::vector<rg::Digraph> graphs;
  graphs.push_back(rg::make_chain({2.0}));
  graphs.push_back(rg::make_chain(6, rng));
  graphs.push_back(rg::make_fork(5, rng));
  graphs.push_back(rg::make_random_out_tree(8, rng));
  graphs.push_back(rg::make_fork_join_chain(2, 3, rng));
  graphs.push_back(rg::make_stencil(3, 3, rng));
  return graphs;
}

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (std::size_t i = 0; i < a.profiles.size(); ++i) {
    ASSERT_EQ(a.profiles[i].segments.size(), b.profiles[i].segments.size());
    for (std::size_t s = 0; s < a.profiles[i].segments.size(); ++s) {
      EXPECT_EQ(a.profiles[i].segments[s].speed, b.profiles[i].segments[s].speed);
      EXPECT_EQ(a.profiles[i].segments[s].duration,
                b.profiles[i].segments[s].duration);
    }
  }
}

}  // namespace

TEST(StaticPowerLaw, MatchesDefinition) {
  const rm::StaticPowerLaw p(3.0, 2.0);
  EXPECT_DOUBLE_EQ(p.alpha(), 3.0);
  EXPECT_DOUBLE_EQ(p.p_static(), 2.0);
  EXPECT_DOUBLE_EQ(p.power(2.0), 8.0 + 2.0);
  EXPECT_DOUBLE_EQ(p.energy(2.0, 0.5), 5.0);
  // w * (P_stat/s + s^2) = 3 * (1 + 4).
  EXPECT_DOUBLE_EQ(p.task_energy(3.0, 2.0), 15.0);
  // w^3/d^2 + P_stat * d = 8/16 + 8.
  EXPECT_DOUBLE_EQ(p.window_energy(2.0, 4.0), 8.5);
  EXPECT_DOUBLE_EQ(p.task_energy(0.0, 2.0), 0.0);
  // s_crit = (P_stat/(alpha-1))^(1/alpha) = 1.
  EXPECT_DOUBLE_EQ(p.critical_speed(), 1.0);
  EXPECT_NEAR(rm::StaticPowerLaw(3.0, 0.25).critical_speed(),
              std::cbrt(0.125), 1e-15);
}

TEST(StaticPowerLaw, CriticalSpeedMinimizesTaskEnergy) {
  const rm::StaticPowerLaw p(2.5, 1.3);
  const double s_crit = p.critical_speed();
  const double at_crit = p.task_energy(1.0, s_crit);
  for (double s : {0.25 * s_crit, 0.9 * s_crit, 1.1 * s_crit, 4.0 * s_crit}) {
    EXPECT_GT(p.task_energy(1.0, s), at_crit);
  }
}

TEST(StaticPowerLaw, InvalidInputsThrow) {
  EXPECT_THROW(rm::StaticPowerLaw(1.0, 0.5), reclaim::InvalidArgument);
  EXPECT_THROW(rm::StaticPowerLaw(3.0, -0.1), reclaim::InvalidArgument);
  const rm::StaticPowerLaw p(3.0, 0.5);
  EXPECT_THROW((void)p.power(-1.0), reclaim::InvalidArgument);
  EXPECT_THROW((void)p.task_energy(1.0, 0.0), reclaim::InvalidArgument);
  EXPECT_THROW((void)p.window_energy(1.0, 0.0), reclaim::InvalidArgument);
}

TEST(PowerModel, WrapsBothConcreteModels) {
  const rm::PowerModel pure = rm::PowerLaw(2.0);
  EXPECT_EQ(pure.kind(), rm::PowerModel::Kind::kPowerLaw);
  EXPECT_FALSE(pure.has_static_power());
  EXPECT_DOUBLE_EQ(pure.p_static(), 0.0);
  EXPECT_DOUBLE_EQ(pure.critical_speed(), 0.0);
  EXPECT_EQ(pure.name(), "s^2");

  const rm::PowerModel leaky = rm::StaticPowerLaw(3.0, 0.5);
  EXPECT_EQ(leaky.kind(), rm::PowerModel::Kind::kStaticPowerLaw);
  EXPECT_TRUE(leaky.has_static_power());
  EXPECT_DOUBLE_EQ(leaky.p_static(), 0.5);
  EXPECT_EQ(leaky.name(), "0.5 + s^3");
  EXPECT_DOUBLE_EQ(leaky.dynamic_law().alpha(), 3.0);

  EXPECT_EQ(pure, rm::PowerModel(rm::PowerLaw(2.0)));
  EXPECT_NE(leaky, rm::PowerModel(rm::StaticPowerLaw(3.0, 0.6)));
  // The default-constructed model is the paper's cube law.
  EXPECT_EQ(rm::PowerModel(), rm::PowerModel(rm::PowerLaw(3.0)));
}

TEST(PowerModel, ZeroStaticPowerIsBitIdenticalToPowerLaw) {
  const rm::PowerModel pure = rm::PowerLaw(3.0);
  const rm::PowerModel zero = rm::StaticPowerLaw(3.0, 0.0);
  for (double s : {0.3, 1.0, 1.7, 2.0}) {
    EXPECT_EQ(pure.power(s), zero.power(s));
    EXPECT_EQ(pure.energy(s, 1.3), zero.energy(s, 1.3));
    EXPECT_EQ(pure.task_energy(2.5, s), zero.task_energy(2.5, s));
    EXPECT_EQ(pure.window_energy(2.5, s), zero.window_energy(2.5, s));
  }
  EXPECT_EQ(pure.parallel_compose(1.0, 2.0), zero.parallel_compose(1.0, 2.0));
}

TEST(PowerModel, MakePowerModelPicksTheKind) {
  EXPECT_EQ(rm::make_power_model(3.0, 0.0).kind(),
            rm::PowerModel::Kind::kPowerLaw);
  EXPECT_EQ(rm::make_power_model(3.0, 0.5).kind(),
            rm::PowerModel::Kind::kStaticPowerLaw);
}

// With P_stat = 0 the StaticPowerLaw instance must reproduce the seed
// (PowerLaw) solutions bit-identically under all four energy models.
TEST(LeakageReduction, ZeroPStatReproducesSeedSolutions) {
  const rm::ModeSet modes({0.5, 1.0, 1.4, 2.0});
  const std::vector<rm::EnergyModel> models = {
      rm::ContinuousModel{2.0}, rm::DiscreteModel{modes},
      rm::VddHoppingModel{modes}, rm::IncrementalModel(0.5, 2.0, 0.25)};
  for (const auto& g : mixed_graphs(71)) {
    const double deadline = 1.5 * rc::min_deadline(g, 2.0);
    const auto pure = rc::make_instance(g, deadline, 3.0);
    const auto zero =
        rc::make_instance(g, deadline, rm::StaticPowerLaw(3.0, 0.0));
    for (const auto& model : models) {
      expect_identical(rc::solve(pure, model), rc::solve(zero, model));
    }
  }
}

// The s_crit reduction: no positive-weight task of a Continuous optimum
// ever runs below min(s_crit, s_max), on any routing path.
TEST(LeakageReduction, ContinuousSpeedsNeverFallBelowCriticalSpeed) {
  const double s_max = 2.0;
  for (double p_static : {0.25, 1.0, 4.0, 16.0, 40.0}) {
    const rm::PowerModel power = rm::StaticPowerLaw(3.0, p_static);
    const double floor = std::min(power.critical_speed(), s_max);
    for (const auto& g : mixed_graphs(73)) {
      const double deadline = 1.6 * rc::min_deadline(g, s_max);
      const auto instance = rc::make_instance(g, deadline, power);
      const auto s = rc::solve(instance, rm::ContinuousModel{s_max});
      ASSERT_TRUE(s.feasible) << s.method;
      for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.weight(v) == 0.0) continue;
        EXPECT_GE(s.speeds[v], floor * (1.0 - 1e-6))
            << "task " << v << " via " << s.method << " at P_stat "
            << p_static;
      }
    }
  }
}

// recompute_energy rebuilds the energy from the power model and the
// speeds/profiles alone; solver bookkeeping must agree under leakage.
TEST(LeakageReduction, RecomputeEnergyCrossChecksSolvers) {
  const rm::ModeSet modes({0.5, 1.0, 1.4, 2.0});
  const std::vector<rm::EnergyModel> models = {
      rm::ContinuousModel{2.0}, rm::DiscreteModel{modes},
      rm::VddHoppingModel{modes}, rm::IncrementalModel(0.5, 2.0, 0.25)};
  for (const auto& g : mixed_graphs(79)) {
    const double deadline = 1.5 * rc::min_deadline(g, 2.0);
    const auto instance =
        rc::make_instance(g, deadline, rm::StaticPowerLaw(3.0, 0.7));
    for (const auto& model : models) {
      const auto s = rc::solve(instance, model);
      ASSERT_TRUE(s.feasible) << s.method;
      EXPECT_NEAR(s.energy, rc::recompute_energy(instance, s),
                  1e-9 * std::max(1.0, s.energy))
          << s.method;
    }
  }
}

TEST(LeakageReduction, ChainClampsAtCriticalSpeedGoldenValue) {
  // Chain {1, 2, 1}, D = 8, P(s) = 2 + s^3: s_crit = 1 > W/D = 0.5, so
  // every task runs at s_crit and E = W * (P_stat/1 + 1^2) = 4 * 3 = 12.
  const auto instance =
      rc::make_instance(rg::make_chain({1.0, 2.0, 1.0}), 8.0,
                        rm::StaticPowerLaw(3.0, 2.0));
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.method, "closed-form-chain");
  for (std::size_t v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(s.speeds[v], 1.0);
  EXPECT_DOUBLE_EQ(s.energy, 12.0);
  // The clamp never pushes past the deadline-driven speed: at D = 2 the
  // chain needs speed 2 > s_crit and the pure-dynamic optimum returns.
  const auto tight = rc::make_instance(rg::make_chain({1.0, 2.0, 1.0}), 2.0,
                                       rm::StaticPowerLaw(3.0, 2.0));
  const auto st = rc::solve_continuous(tight, rm::ContinuousModel{kInf});
  ASSERT_TRUE(st.feasible);
  EXPECT_DOUBLE_EQ(st.speeds[0], 2.0);
  // E = W * (P_stat/2 + 2^2) = 4 * 5 = 20.
  EXPECT_DOUBLE_EQ(st.energy, 20.0);
}

// The leakage-aware branch-and-bound (non-monotone per-mode cost) must
// still match the brute-force enumeration oracle.
TEST(LeakageReduction, DiscreteExactMatchesEnumerationUnderLeakage) {
  const rm::ModeSet modes({0.5, 1.0, 2.0});
  reclaim::util::Rng rng(83);
  std::vector<rg::Digraph> graphs;
  graphs.push_back(rg::make_chain(5, rng));
  graphs.push_back(rg::make_fork(5, rng));
  graphs.push_back(rg::make_stencil(2, 3, rng));
  for (double p_static : {0.0, 0.4, 1.5, 6.0}) {
    for (const auto& g : graphs) {
      const double deadline = 1.4 * rc::min_deadline(g, 2.0);
      const auto instance =
          rc::make_instance(g, deadline, rm::StaticPowerLaw(3.0, p_static));
      const auto bb = rc::solve_discrete_exact(instance, modes);
      const auto oracle = rc::solve_discrete_enumerate(instance, modes);
      ASSERT_TRUE(bb.solution.feasible);
      ASSERT_TRUE(oracle.feasible);
      EXPECT_TRUE(bb.proven_optimal);
      EXPECT_NEAR(bb.solution.energy, oracle.energy,
                  1e-12 * std::max(1.0, oracle.energy))
          << "P_stat " << p_static;
    }
  }
}

TEST(LeakageReduction, VddLpChargesLeakagePerBusySecond) {
  // w = 3, D = 2, modes {1, 2}, P(s) = 3 + s^3. Minimize
  // a*(1+3) + b*(8+3) st a + 2b = 3, a + b <= 2  ->  a = b = 1, E = 15.
  const auto instance = rc::make_instance(rg::make_chain({3.0}), 2.0,
                                          rm::StaticPowerLaw(3.0, 3.0));
  const auto r =
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})});
  ASSERT_TRUE(r.solution.feasible);
  EXPECT_NEAR(r.solution.energy, 15.0, 1e-8);
  EXPECT_NEAR(rc::recompute_energy(instance, r.solution), 15.0, 1e-8);
}

TEST(LeakageReduction, LeakyOptimumIsNeverCheaperThanItsDynamicPart) {
  // Sanity across solvers: the reported energy under leakage is at least
  // the pure-dynamic energy of the same speeds, and at least the
  // pure-dynamic optimum (leakage only ever adds cost).
  for (const auto& g : mixed_graphs(89)) {
    const double deadline = 1.5 * rc::min_deadline(g, 2.0);
    const auto pure = rc::make_instance(g, deadline, 3.0);
    const auto leaky =
        rc::make_instance(g, deadline, rm::StaticPowerLaw(3.0, 1.2));
    const auto s_pure = rc::solve(pure, rm::ContinuousModel{2.0});
    const auto s_leaky = rc::solve(leaky, rm::ContinuousModel{2.0});
    ASSERT_TRUE(s_pure.feasible);
    ASSERT_TRUE(s_leaky.feasible);
    EXPECT_GE(s_leaky.energy, s_pure.energy * (1.0 - 1e-9));
  }
}
