// Stress and optimality-certification suite.
//
// The numeric solver is the reference for general DAGs, where no closed
// form exists to compare against. These tests certify its output directly:
// random feasible perturbations of the optimal durations must never lower
// the energy beyond second-order noise (first-order optimality), across
// graph families, exponents and speed ranges — plus stress coverage of the
// heterogeneous per-task-cap extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/continuous/dispatch.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/problem.hpp"
#include "core/vdd/lp_solver.hpp"
#include "graph/generators.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First-order optimality certificate: multiplicatively perturb the
/// solution's durations within the feasible box, keep only deadline-
/// feasible perturbations, and check the energy never drops by more than
/// second-order noise.
void expect_perturbation_optimal(const rc::Instance& instance,
                                 const rc::Solution& solution, double s_min,
                                 const std::vector<double>& caps,
                                 std::uint64_t seed) {
  const auto& g = instance.exec_graph;
  const auto base_durations = rs::durations_from_speeds(g, solution.speeds);
  const double eta = 1e-3;
  const double slack_tolerance = 3e-5 * (1.0 + solution.energy);

  Rng rng(seed);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto durations = base_durations;
    for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;
      durations[v] *= 1.0 + eta * rng.uniform(-1.0, 1.0);
      const double cap = caps.empty() ? kInf : caps[v];
      if (cap != kInf) durations[v] = std::max(durations[v], w / cap);
      if (s_min > 0.0) durations[v] = std::min(durations[v], w / s_min);
    }
    if (!rs::meets_deadline(g, durations, instance.deadline, 0.0)) continue;
    ++accepted;
    double energy = 0.0;
    for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double w = g.weight(v);
      if (w == 0.0) continue;
      energy += instance.power().task_energy(w, w / durations[v]);
    }
    EXPECT_GE(energy, solution.energy - slack_tolerance)
        << "perturbation " << trial << " improved the 'optimal' energy";
  }
  // The optimum saturates the deadline, so most perturbations are
  // rejected; a few survive by shrinking durations. Require at least one.
  EXPECT_GT(accepted, 0u);
}

struct StressParam {
  std::uint64_t seed;
  double alpha;
  double slack;
};

class NumericOptimality : public testing::TestWithParam<StressParam> {};

}  // namespace

TEST_P(NumericOptimality, GeneralDagFirstOrderCertificate) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  const auto g = rg::make_erdos_renyi_dag(14, 0.25, rng);
  const double s_max = 2.0;
  const double d = rc::min_deadline(g, s_max) * p.slack;
  auto instance = rc::make_instance(g, d, p.alpha);

  rc::ContinuousOptions force;
  force.force_numeric = true;
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{s_max}, force);
  ASSERT_TRUE(s.feasible);
  rs::validate_constant_speeds(g, s.speeds, rm::ContinuousModel{s_max}, d, 1e-6);
  expect_perturbation_optimal(instance, s, 0.0,
                              std::vector<double>(s.speeds.size(), s_max),
                              p.seed * 7 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NumericOptimality,
    testing::Values(StressParam{1, 3.0, 1.15}, StressParam{2, 3.0, 1.6},
                    StressParam{3, 2.0, 1.3}, StressParam{4, 2.5, 2.2},
                    StressParam{5, 1.5, 1.4}, StressParam{6, 3.0, 3.0}),
    [](const testing::TestParamInfo<StressParam>& info) {
      return "s" + std::to_string(info.param.seed) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) + "_k" +
             std::to_string(static_cast<int>(info.param.slack * 100));
    });

TEST(NumericStress, WideRandomAgreementWithDispatch) {
  Rng rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    auto sub = rng.substream(trial);
    rg::Digraph g;
    switch (trial % 4) {
      case 0: g = rg::make_random_out_tree(10, sub); break;
      case 1: g = rg::make_random_series_parallel(9, sub); break;
      case 2: g = rg::make_fork_join_chain(2, 3, sub); break;
      default: g = rg::make_layered(3, 3, 0.5, sub); break;
    }
    const double s_max = 2.0;
    const double d = rc::min_deadline(g, s_max) * sub.uniform(1.1, 2.5);
    auto instance = rc::make_instance(g, d);
    const auto fancy = rc::solve_continuous(instance, rm::ContinuousModel{s_max});
    rc::ContinuousOptions force;
    force.force_numeric = true;
    const auto numeric =
        rc::solve_continuous(instance, rm::ContinuousModel{s_max}, force);
    ASSERT_EQ(fancy.feasible, numeric.feasible) << trial;
    if (!fancy.feasible) continue;
    EXPECT_NEAR(numeric.energy, fancy.energy, 5e-5 * fancy.energy)
        << "trial " << trial << " method " << fancy.method;
  }
}

TEST(PerTaskCaps, UniformCapsMatchGlobalCap) {
  Rng rng(801);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d = rc::min_deadline(g, 2.0) * 1.4;
  auto instance = rc::make_instance(g, d);
  const auto global = rc::solve_numeric(instance, rm::ContinuousModel{2.0});
  rc::NumericOptions options;
  options.s_max_per_task.assign(g.num_nodes(), 2.0);
  const auto per_task =
      rc::solve_numeric(instance, rm::ContinuousModel{kInf}, options);
  ASSERT_TRUE(global.feasible && per_task.feasible);
  EXPECT_NEAR(per_task.energy, global.energy, 1e-5 * global.energy);
}

TEST(PerTaskCaps, BindingCapClampsAndCostsEnergy) {
  Rng rng(802);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d = rc::min_deadline(g, 2.0) * 1.3;
  auto instance = rc::make_instance(g, d);
  const auto unconstrained = rc::solve_numeric(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(unconstrained.feasible);

  // Cap the fastest task well below its unconstrained speed.
  const auto hottest = static_cast<rg::NodeId>(
      std::max_element(unconstrained.speeds.begin(), unconstrained.speeds.end()) -
      unconstrained.speeds.begin());
  rc::NumericOptions options;
  options.s_max_per_task.assign(g.num_nodes(), 2.0);
  options.s_max_per_task[hottest] = 0.8 * unconstrained.speeds[hottest];

  const auto capped = rc::solve_numeric(instance, rm::ContinuousModel{2.0}, options);
  if (!capped.feasible) return;  // the cap may make the deadline unreachable
  EXPECT_LE(capped.speeds[hottest],
            options.s_max_per_task[hottest] * (1.0 + 1e-9));
  EXPECT_GE(capped.energy, unconstrained.energy * (1.0 - 1e-9));
  rs::validate_constant_speeds(g, capped.speeds, rm::ContinuousModel{2.0}, d, 1e-6);
  expect_perturbation_optimal(instance, capped, 0.0, options.s_max_per_task, 99);
}

TEST(PerTaskCaps, TwoTaskChainMatchesGridOracle) {
  // Chain {2, 3}, D = 4, caps {1.2, 4}: exhaustive grid over s1.
  const auto g = rg::make_chain({2.0, 3.0});
  auto instance = rc::make_instance(g, 4.0);
  rc::NumericOptions options;
  options.s_max_per_task = {1.2, 4.0};
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{kInf}, options);
  ASSERT_TRUE(s.feasible);

  double best = kInf;
  for (int i = 1; i <= 20000; ++i) {
    const double s1 = 1.2 * static_cast<double>(i) / 20000.0;
    const double remaining = 4.0 - 2.0 / s1;
    if (remaining <= 3.0 / 4.0) continue;  // s2 would exceed its cap
    const double s2 = 3.0 / remaining;
    best = std::min(best, 2.0 * s1 * s1 + 3.0 * s2 * s2);
  }
  EXPECT_NEAR(s.energy, best, 1e-4 * best);
}

TEST(PerTaskCaps, InfeasibleWhenCapsTooLow) {
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 3.0);
  rc::NumericOptions options;
  options.s_max_per_task = {1.0, 1.0};  // needs 4/3 average speed
  EXPECT_FALSE(
      rc::solve_numeric(instance, rm::ContinuousModel{kInf}, options).feasible);
}

TEST(PerTaskCaps, BoundaryPinsEveryTaskAtItsCap) {
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 3.0);
  rc::NumericOptions options;
  options.s_max_per_task = {2.0, 1.0};  // exactly 1 + 2 = 3 time units
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{kInf}, options);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.speeds[0], 2.0);
  EXPECT_DOUBLE_EQ(s.speeds[1], 1.0);
}

TEST(PerTaskCaps, ValidationOfOptions) {
  const auto g = rg::make_chain({1.0, 1.0});
  auto instance = rc::make_instance(g, 4.0);
  rc::NumericOptions wrong_size;
  wrong_size.s_max_per_task = {1.0};
  EXPECT_THROW((void)rc::solve_numeric(instance, rm::ContinuousModel{2.0}, wrong_size),
               reclaim::InvalidArgument);
  rc::NumericOptions with_floor;
  with_floor.s_max_per_task = {1.0, 1.0};
  with_floor.s_min = 0.5;
  EXPECT_THROW((void)rc::solve_numeric(instance, rm::ContinuousModel{2.0}, with_floor),
               reclaim::InvalidArgument);
  rc::NumericOptions bad_cap;
  bad_cap.s_max_per_task = {1.0, 0.0};
  EXPECT_THROW((void)rc::solve_numeric(instance, rm::ContinuousModel{2.0}, bad_cap),
               reclaim::InvalidArgument);
}

TEST(PerTaskCaps, MixedCappedAndUncappedTasks) {
  // One capped, one uncapped task in sequence: the uncapped one absorbs
  // whatever the capped one cannot.
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 3.0);
  rc::NumericOptions options;
  options.s_max_per_task = {1.0, kInf};
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{kInf}, options);
  ASSERT_TRUE(s.feasible);
  EXPECT_LE(s.speeds[0], 1.0 + 1e-9);
  // Oracle over s0 in (2/3 needed? task 0 at its cap is best: d0 = 2,
  // leaving 1 time unit: s1 = 2. Check against grid.
  double best = kInf;
  for (int i = 1; i <= 20000; ++i) {
    const double s0 = static_cast<double>(i) / 20000.0;
    const double remaining = 3.0 - 2.0 / s0;
    if (remaining <= 0.0) continue;
    const double s1 = 2.0 / remaining;
    best = std::min(best, 2.0 * s0 * s0 + 2.0 * s1 * s1);
  }
  EXPECT_NEAR(s.energy, best, 1e-4 * best);
}

TEST(NumericStress, LargerVddInstanceStaysConsistent) {
  Rng rng(803);
  const auto g = rg::make_layered(6, 5, 0.4, rng);  // 30 tasks
  const rm::ModeSet modes({0.5, 1.0, 1.5, 2.0});
  const double d = rc::min_deadline(g, 2.0) * 1.35;
  auto instance = rc::make_instance(g, d);
  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  const auto vdd = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
  ASSERT_TRUE(cont.feasible && vdd.solution.feasible);
  EXPECT_GE(vdd.solution.energy, cont.energy * (1.0 - 1e-7));
  rs::validate_profiles(g, vdd.solution.profiles, rm::VddHoppingModel{modes}, d,
                        1e-6);
}

TEST(NumericStress, DeepChainNumericStability) {
  // A 200-task chain: the barrier solver must match the closed form.
  Rng rng(804);
  const auto g = rg::make_chain(200, rng);
  const double d = g.total_weight() / 1.1;  // uniform speed 1.1
  auto instance = rc::make_instance(g, d);
  rc::ContinuousOptions force;
  force.force_numeric = true;
  const auto numeric =
      rc::solve_continuous(instance, rm::ContinuousModel{2.0}, force);
  const auto closed = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(numeric.feasible && closed.feasible);
  EXPECT_EQ(closed.method, "closed-form-chain");
  EXPECT_NEAR(numeric.energy, closed.energy, 1e-4 * closed.energy);
}
