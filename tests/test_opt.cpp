// Unit tests for opt/: simplex (vs hand-solved and enumerated LPs),
// barrier interior point (vs closed-form convex optima), root finding.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/barrier.hpp"
#include "opt/roots.hpp"
#include "opt/simplex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ro = reclaim::opt;
namespace la = reclaim::la;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), value 36.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(-3.0);  // minimize the negation
  const auto y = lp.add_variable(-5.0);
  lp.add_constraint({{{x, 1.0}}, ro::Relation::kLessEqual, 4.0});
  lp.add_constraint({{{y, 2.0}}, ro::Relation::kLessEqual, 12.0});
  lp.add_constraint({{{x, 3.0}, {y, 2.0}}, ro::Relation::kLessEqual, 18.0});
  const auto sol = ro::solve_lp(lp);
  ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-8);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
}

TEST(Simplex, EqualityAndGreaterConstraints) {
  // min x + 2y s.t. x + y = 4, x - y >= 0, y >= 1  => x = 3, y = 1? No:
  // y >= 1 via kGreaterEqual; optimum x = 3, y = 1, value 5.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, -1.0}}, ro::Relation::kGreaterEqual, 0.0});
  lp.add_constraint({{{y, 1.0}}, ro::Relation::kGreaterEqual, 1.0});
  const auto sol = ro::solve_lp(lp);
  ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[x], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-8);
  EXPECT_NEAR(sol.objective, 5.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  ro::LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}}, ro::Relation::kLessEqual, 1.0});
  lp.add_constraint({{{x, 1.0}}, ro::Relation::kGreaterEqual, 2.0});
  EXPECT_EQ(ro::solve_lp(lp).status, ro::LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  ro::LinearProgram lp;
  const auto x = lp.add_variable(-1.0);  // minimize -x, x unbounded above
  lp.add_constraint({{{x, -1.0}}, ro::Relation::kLessEqual, 0.0});
  EXPECT_EQ(ro::solve_lp(lp).status, ro::LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x >= 2 written as -x <= -2.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{{x, -1.0}}, ro::Relation::kLessEqual, -2.0});
  const auto sol = ro::solve_lp(lp);
  ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-8);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Classic degeneracy: multiple tight constraints at the optimum.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-1.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kLessEqual, 1.0});
  lp.add_constraint({{{x, 1.0}}, ro::Relation::kLessEqual, 1.0});
  lp.add_constraint({{{y, 1.0}}, ro::Relation::kLessEqual, 1.0});
  lp.add_constraint({{{x, 2.0}, {y, 1.0}}, ro::Relation::kLessEqual, 2.0});
  const auto sol = ro::solve_lp(lp);
  ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-8);
}

TEST(Simplex, RandomLpsAgreeWithGridOracle) {
  // 2-variable random LPs: compare against a dense grid scan of the
  // feasible box (coarse oracle, tolerant comparison).
  reclaim::util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    ro::LinearProgram lp;
    const double cx = rng.uniform(0.1, 2.0);
    const double cy = rng.uniform(0.1, 2.0);
    const auto x = lp.add_variable(cx);
    const auto y = lp.add_variable(cy);
    // Box 0 <= x,y <= 3 plus a coupling constraint x + y >= b.
    const double b = rng.uniform(0.5, 3.5);
    lp.add_constraint({{{x, 1.0}}, ro::Relation::kLessEqual, 3.0});
    lp.add_constraint({{{y, 1.0}}, ro::Relation::kLessEqual, 3.0});
    lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kGreaterEqual, b});
    const auto sol = ro::solve_lp(lp);
    ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
    // Oracle: fill the cheaper coordinate first (capped at 3), then the
    // other one.
    const double cheap = std::min(cx, cy);
    const double dear = std::max(cx, cy);
    const double expected = cheap * std::min(b, 3.0) + dear * std::max(0.0, b - 3.0);
    EXPECT_NEAR(sol.objective, expected, 1e-6) << "trial " << trial;
  }
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicated equality row leaves a basic artificial on a zero row.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kEqual, 2.0});
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kEqual, 2.0});
  const auto sol = ro::solve_lp(lp);
  ASSERT_EQ(sol.status, ro::LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

namespace {

/// f(x) = sum (x_i - c_i)^2, a strictly convex quadratic.
class Quadratic final : public ro::ConvexObjective {
 public:
  explicit Quadratic(la::Vector centers) : centers_(std::move(centers)) {}

  double value(const la::Vector& x) const override {
    double v = 0.0;
    for (std::size_t i = 0; i < centers_.size(); ++i)
      v += (x[i] - centers_[i]) * (x[i] - centers_[i]);
    return v;
  }
  void add_gradient(const la::Vector& x, la::Vector& grad) const override {
    for (std::size_t i = 0; i < centers_.size(); ++i)
      grad[i] += 2.0 * (x[i] - centers_[i]);
  }
  void add_hessian(const la::Vector&, la::Matrix& hess) const override {
    for (std::size_t i = 0; i < centers_.size(); ++i) hess(i, i) += 2.0;
  }

 private:
  la::Vector centers_;
};

}  // namespace

TEST(Barrier, UnconstrainedInteriorOptimum) {
  // Center (1, 2) inside the box [0,5]^2: barrier should find it.
  const Quadratic f({1.0, 2.0});
  std::vector<ro::SparseInequality> ineqs;
  for (std::size_t i = 0; i < 2; ++i) {
    ineqs.push_back({{{i, -1.0}}, 0.0});   // x_i >= 0
    ineqs.push_back({{{i, 1.0}}, 5.0});    // x_i <= 5
  }
  const auto result =
      ro::minimize_with_barrier(f, ineqs, la::Vector{2.5, 2.5});
  EXPECT_NEAR(result.x[0], 1.0, 1e-5);
  EXPECT_NEAR(result.x[1], 2.0, 1e-5);
  EXPECT_NEAR(result.objective, 0.0, 1e-6);
}

TEST(Barrier, ActiveConstraintOptimum) {
  // Center (4, 4) but x + y <= 4: optimum at (2, 2), value 8.
  const Quadratic f({4.0, 4.0});
  std::vector<ro::SparseInequality> ineqs;
  ineqs.push_back({{{0ul, 1.0}, {1ul, 1.0}}, 4.0});
  ineqs.push_back({{{0ul, -1.0}}, 0.0});
  ineqs.push_back({{{1ul, -1.0}}, 0.0});
  const auto result =
      ro::minimize_with_barrier(f, ineqs, la::Vector{1.0, 1.0});
  EXPECT_NEAR(result.x[0], 2.0, 1e-4);
  EXPECT_NEAR(result.x[1], 2.0, 1e-4);
  EXPECT_NEAR(result.objective, 8.0, 1e-4);
}

TEST(Barrier, RejectsInfeasibleStart) {
  const Quadratic f({0.0});
  std::vector<ro::SparseInequality> ineqs;
  ineqs.push_back({{{0ul, 1.0}}, 1.0});  // x <= 1
  EXPECT_THROW(
      (void)ro::minimize_with_barrier(f, ineqs, la::Vector{2.0}),
      reclaim::InvalidArgument);
}

TEST(Barrier, ReportsGapAndSteps) {
  const Quadratic f({1.0});
  std::vector<ro::SparseInequality> ineqs;
  ineqs.push_back({{{0ul, -1.0}}, 0.0});
  ineqs.push_back({{{0ul, 1.0}}, 3.0});
  const auto result = ro::minimize_with_barrier(f, ineqs, la::Vector{1.5});
  EXPECT_GT(result.newton_steps, 0u);
  EXPECT_LE(result.gap, 1e-9 * 1.0 + 1e-9);
}

TEST(Roots, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  const double root = ro::find_root(f, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(Roots, EndpointRoots) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(ro::find_root(f, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ro::find_root(f, -1.0, 0.0), 0.0);
}

TEST(Roots, RequiresSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)ro::find_root(f, -1.0, 1.0), reclaim::InvalidArgument);
}

TEST(Roots, MonotoneDecreasing) {
  const auto f = [](double x) { return 1.0 - std::exp(x); };
  EXPECT_NEAR(ro::find_root(f, -2.0, 2.0), 0.0, 1e-10);
}
