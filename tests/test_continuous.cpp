// Tests for the Continuous-model solvers: Theorem 1 closed forms, the
// Theorem 2 tree/SP algorithms, the numeric geometric-programming solver,
// and the dispatcher — all cross-checked against each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/baselines.hpp"
#include "core/continuous/closed_form.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/continuous/sp_solver.hpp"
#include "core/continuous/tree_solver.hpp"
#include "core/problem.hpp"
#include "graph/generators.hpp"
#include "graph/sp_tree.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_feasible_under(const rc::Instance& instance, const rc::Solution& s,
                           double s_max) {
  ASSERT_TRUE(s.feasible);
  rs::validate_constant_speeds(instance.exec_graph, s.speeds,
                               rm::ContinuousModel{s_max}, instance.deadline,
                               1e-7);
  EXPECT_NEAR(s.energy, rc::recompute_energy(instance, s),
              1e-9 * (1.0 + s.energy));
}

}  // namespace

TEST(ClosedForm, SingleTask) {
  auto instance = rc::make_instance(rg::make_chain({6.0}), 3.0);
  const auto s = rc::solve_single(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.speeds[0], 2.0, 1e-12);
  EXPECT_NEAR(s.energy, 6.0 * 4.0, 1e-12);  // w s^2
}

TEST(ClosedForm, SingleTaskInfeasible) {
  auto instance = rc::make_instance(rg::make_chain({6.0}), 1.0);
  const auto s = rc::solve_single(instance, rm::ContinuousModel{2.0});
  EXPECT_FALSE(s.feasible);
}

TEST(ClosedForm, ChainUsesOneSpeed) {
  auto instance = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}), 3.0);
  const auto s = rc::solve_chain(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  for (double v : s.speeds) EXPECT_NEAR(v, 2.0, 1e-12);
  EXPECT_NEAR(s.energy, 6.0 * 4.0, 1e-12);
  expect_feasible_under(instance, s, kInf);
}

TEST(ClosedForm, ChainRespectsSmax) {
  auto instance = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}), 3.0);
  EXPECT_FALSE(rc::solve_chain(instance, rm::ContinuousModel{1.5}).feasible);
  EXPECT_TRUE(rc::solve_chain(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(ClosedForm, ForkMatchesTheorem1) {
  // Thm 1: s_0 = ((sum w_i^3)^(1/3) + w_0)/D, s_i = s_0 w_i / l.
  const std::vector<double> w{2.0, 1.0, 2.0, 3.0};
  auto instance = rc::make_instance(rg::make_fork(w), 5.0);
  const auto s = rc::solve_fork(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  const double l = std::cbrt(1.0 + 8.0 + 27.0);
  const double s0 = (l + 2.0) / 5.0;
  EXPECT_NEAR(s.speeds[0], s0, 1e-12);
  for (std::size_t i = 1; i < w.size(); ++i)
    EXPECT_NEAR(s.speeds[i], s0 * w[i] / l, 1e-12);
  expect_feasible_under(instance, s, kInf);
  // The deadline is exactly saturated at the optimum.
  const auto durations = rs::durations_from_speeds(instance.exec_graph, s.speeds);
  EXPECT_NEAR(rs::compute_timing(instance.exec_graph, durations).makespan, 5.0,
              1e-9);
}

TEST(ClosedForm, ForkSaturatedBranch) {
  // Force s_0 above s_max: the source is pinned at s_max, leaves share the
  // remaining window D' = D - w0/s_max (the paper's "otherwise" branch).
  // Here (l + w0)/D = ((0.9^3 + 0.8^3)^(1/3) + 4)/2.5 = 2.03 > s_max = 2,
  // and the leaf speeds 0.9/0.5 and 0.8/0.5 stay below s_max.
  const std::vector<double> w{4.0, 0.9, 0.8};
  auto tight = rc::make_instance(rg::make_fork(w), 2.5);
  const rm::ContinuousModel capped{2.0};
  const auto s = rc::solve_fork(tight, capped);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.speeds[0], 2.0, 1e-12);
  const double leaf_window = 2.5 - 4.0 / 2.0;
  EXPECT_NEAR(s.speeds[1], 0.9 / leaf_window, 1e-12);
  EXPECT_NEAR(s.speeds[2], 0.8 / leaf_window, 1e-12);
  expect_feasible_under(tight, s, 2.0);
}

TEST(ClosedForm, ForkSaturatedInfeasible) {
  // Even the saturated branch cannot fit: leaves would exceed s_max.
  const std::vector<double> w{4.0, 3.0};
  auto instance = rc::make_instance(rg::make_fork(w), 2.5);
  EXPECT_FALSE(rc::solve_fork(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(ClosedForm, ForkWithZeroWeightLeaves) {
  const std::vector<double> w{2.0, 0.0, 3.0};
  auto instance = rc::make_instance(rg::make_fork(w), 4.0);
  const auto s = rc::solve_fork(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.speeds[1], 0.0);
  expect_feasible_under(instance, s, kInf);
}

TEST(ClosedForm, JoinMirrorsFork) {
  const std::vector<double> w{2.0, 1.0, 2.0, 3.0};
  auto fork_instance = rc::make_instance(rg::make_fork(w), 5.0);
  auto join_instance = rc::make_instance(rg::make_join(w), 5.0);
  const auto f = rc::solve_fork(fork_instance, rm::ContinuousModel{kInf});
  const auto j = rc::solve_join(join_instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(f.feasible && j.feasible);
  EXPECT_NEAR(f.energy, j.energy, 1e-12);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(f.speeds[i], j.speeds[i], 1e-12);
  expect_feasible_under(join_instance, j, kInf);
}

TEST(SpSolver, ForkAgreesWithClosedForm) {
  const std::vector<double> w{2.0, 1.0, 2.0, 3.0};
  auto instance = rc::make_instance(rg::make_fork(w), 5.0);
  const auto closed = rc::solve_fork(instance, rm::ContinuousModel{kInf});
  const auto sp = rc::solve_sp(instance);
  ASSERT_TRUE(sp.feasible);
  EXPECT_NEAR(sp.energy, closed.energy, 1e-10);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(sp.speeds[i], closed.speeds[i], 1e-10);
}

TEST(SpSolver, EquivalentWeightOfFork) {
  const std::vector<double> w{2.0, 1.0, 2.0, 3.0};
  const auto g = rg::make_fork(w);
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  const double weq =
      rc::sp_equivalent_weight(g, *tree, rm::PowerLaw(3.0));
  EXPECT_NEAR(weq, 2.0 + std::cbrt(36.0), 1e-12);
}

TEST(SpSolver, EnergyIsWeqFormula) {
  Rng rng(11);
  const auto g = rg::make_random_series_parallel(15, rng);
  auto instance = rc::make_instance(g, 20.0);
  const auto tree = rg::sp_decompose(g);
  ASSERT_TRUE(tree.has_value());
  const auto s = rc::solve_sp(instance, *tree);
  const double weq = rc::sp_equivalent_weight(g, *tree, instance.power());
  EXPECT_NEAR(s.energy, std::pow(weq, 3.0) / (20.0 * 20.0),
              1e-9 * (1.0 + s.energy));
  expect_feasible_under(instance, s, kInf);
}

TEST(SpSolver, DeadlineSaturatedAtOptimum) {
  Rng rng(12);
  const auto g = rg::make_fork_join_chain(3, 3, rng);
  auto instance = rc::make_instance(g, 30.0);
  const auto s = rc::solve_sp(instance);
  const auto durations = rs::durations_from_speeds(g, s.speeds);
  EXPECT_NEAR(rs::compute_timing(g, durations).makespan, 30.0, 1e-8);
}

TEST(TreeSolver, ChainAgreesWithClosedForm) {
  auto instance = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}), 3.0);
  const auto chain = rc::solve_chain(instance, rm::ContinuousModel{kInf});
  const auto tree = rc::solve_tree(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(tree.feasible);
  EXPECT_NEAR(tree.energy, chain.energy, 1e-10);
}

TEST(TreeSolver, ForkAgreesWithClosedFormIncludingSaturation) {
  const std::vector<double> w{4.0, 1.0, 1.5};
  for (double deadline : {2.4, 3.0, 5.0}) {
    auto instance = rc::make_instance(rg::make_fork(w), deadline);
    for (double cap : {2.0, 3.0, kInf}) {
      const auto closed = rc::solve_fork(instance, rm::ContinuousModel{cap});
      const auto tree = rc::solve_tree(instance, rm::ContinuousModel{cap});
      ASSERT_EQ(closed.feasible, tree.feasible)
          << "D=" << deadline << " cap=" << cap;
      if (!closed.feasible) continue;
      EXPECT_NEAR(tree.energy, closed.energy, 1e-9 * (1.0 + closed.energy));
      for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(tree.speeds[i], closed.speeds[i], 1e-9);
    }
  }
}

TEST(TreeSolver, InTreeMirrorsOutTree) {
  Rng rng(13);
  const auto out = rg::make_random_out_tree(25, rng);
  auto out_instance = rc::make_instance(out, 30.0);
  auto in_instance = rc::make_instance(out.reversed(), 30.0);
  const auto a = rc::solve_tree(out_instance, rm::ContinuousModel{2.0});
  const auto b = rc::solve_tree(in_instance, rm::ContinuousModel{2.0});
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_NEAR(a.energy, b.energy, 1e-9 * (1.0 + a.energy));
    expect_feasible_under(in_instance, b, 2.0);
  }
}

TEST(TreeSolver, SpeedsDecreaseDownTheTree) {
  Rng rng(14);
  const auto g = rg::make_random_out_tree(30, rng);
  auto instance = rc::make_instance(g, 40.0);
  const auto s = rc::solve_tree(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  for (const auto& e : g.edges()) {
    if (g.weight(e.from) == 0.0 || g.weight(e.to) == 0.0) continue;
    EXPECT_GE(s.speeds[e.from], s.speeds[e.to] - 1e-9);
  }
}

TEST(TreeSolver, InfeasibleWhenDeadlineBelowCriticalPath) {
  Rng rng(15);
  const auto g = rg::make_random_out_tree(20, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, 0.8 * d_min);
  EXPECT_FALSE(rc::solve_tree(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(NumericSolver, SingleTaskMatchesClosedForm) {
  auto instance = rc::make_instance(rg::make_chain({6.0}), 3.0);
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.speeds[0], 2.0, 1e-5);
  EXPECT_NEAR(s.energy, 24.0, 1e-4);
}

TEST(NumericSolver, ForkMatchesTheorem1) {
  const std::vector<double> w{2.0, 1.0, 2.0, 3.0};
  auto instance = rc::make_instance(rg::make_fork(w), 5.0);
  const auto closed = rc::solve_fork(instance, rm::ContinuousModel{kInf});
  const auto numeric = rc::solve_numeric(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(numeric.feasible);
  EXPECT_NEAR(numeric.energy, closed.energy, 1e-5 * closed.energy);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(numeric.speeds[i], closed.speeds[i], 1e-4);
}

TEST(NumericSolver, ForkSaturatedMatchesClosedForm) {
  const std::vector<double> w{4.0, 0.9, 0.8};
  auto instance = rc::make_instance(rg::make_fork(w), 2.5);
  const rm::ContinuousModel capped{2.0};
  const auto closed = rc::solve_fork(instance, capped);
  const auto numeric = rc::solve_numeric(instance, capped);
  ASSERT_TRUE(closed.feasible && numeric.feasible);
  EXPECT_NEAR(numeric.energy, closed.energy, 1e-5 * closed.energy);
  expect_feasible_under(instance, numeric, 2.0);
}

TEST(NumericSolver, TreeAgreement) {
  Rng rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = rg::make_random_out_tree(12, rng);
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.2, 3.0);
    auto instance = rc::make_instance(g, d);
    const auto tree = rc::solve_tree(instance, rm::ContinuousModel{2.0});
    const auto numeric = rc::solve_numeric(instance, rm::ContinuousModel{2.0});
    ASSERT_TRUE(tree.feasible && numeric.feasible) << "trial " << trial;
    EXPECT_NEAR(numeric.energy, tree.energy, 2e-5 * tree.energy)
        << "trial " << trial;
  }
}

TEST(NumericSolver, SpAgreement) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = rg::make_random_series_parallel(10, rng);
    auto instance = rc::make_instance(g, 25.0);
    const auto sp = rc::solve_sp(instance);
    const auto numeric = rc::solve_numeric(instance, rm::ContinuousModel{kInf});
    ASSERT_TRUE(sp.feasible && numeric.feasible);
    EXPECT_NEAR(numeric.energy, sp.energy, 2e-5 * sp.energy) << "trial " << trial;
  }
}

TEST(NumericSolver, GeneralDagFeasibleAndDeadlineTight) {
  Rng rng(18);
  const auto g = rg::make_stencil(4, 4, rng);
  const double d = rc::min_deadline(g, 3.0) * 1.8;
  auto instance = rc::make_instance(g, d);
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{3.0});
  ASSERT_TRUE(s.feasible);
  expect_feasible_under(instance, s, 3.0);
  // At the optimum the deadline is tight (energy strictly decreases in D).
  const auto durations = rs::durations_from_speeds(g, s.speeds);
  EXPECT_NEAR(rs::compute_timing(g, durations).makespan, d, 1e-5 * d);
}

TEST(NumericSolver, InfeasibleDetection) {
  Rng rng(19);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, 0.9 * d_min);
  EXPECT_FALSE(rc::solve_numeric(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(NumericSolver, BoundaryDeadlineReturnsAllSmax) {
  Rng rng(20);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, d_min);
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s.feasible);
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) > 0.0) {
      EXPECT_DOUBLE_EQ(s.speeds[v], 2.0);
    }
  }
}

TEST(NumericSolver, SpeedFloorIsHonoured) {
  Rng rng(21);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d = rc::min_deadline(g, 2.0) * 4.0;  // lots of slack
  auto instance = rc::make_instance(g, d);
  rc::NumericOptions options;
  options.s_min = 1.0;
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{2.0}, options);
  ASSERT_TRUE(s.feasible);
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) > 0.0) {
      EXPECT_GE(s.speeds[v], 1.0 - 1e-6);
    }
  }
}

TEST(NumericSolver, ZeroWeightTasksSupported) {
  rg::Digraph g;
  g.add_node(2.0);
  g.add_node(0.0);
  g.add_node(3.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto instance = rc::make_instance(g, 5.0);
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{kInf});
  ASSERT_TRUE(s.feasible);
  // Energetically a 2-task chain of total weight 5 and deadline 5.
  EXPECT_NEAR(s.energy, 5.0 * 1.0, 1e-4);
}

TEST(NumericSolver, AllZeroWeights) {
  rg::Digraph g(3, 0.0);
  g.add_edge(0, 1);
  auto instance = rc::make_instance(g, 1.0);
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
}

TEST(Dispatch, PicksClosedFormsAndAgreesWithNumeric) {
  Rng rng(22);
  const struct {
    rg::Digraph graph;
    const char* expected;
  } cases[] = {
      {rg::make_chain(6, rng), "closed-form-chain"},
      {rg::make_fork(5, rng), "closed-form-fork"},
      {rg::make_join(5, rng), "closed-form-join"},
      {rg::make_random_out_tree(12, rng), "tree"},
      {rg::make_random_series_parallel(12, rng), "series-parallel"},
      {rg::make_stencil(3, 3, rng), "numeric-barrier"},
  };
  for (const auto& c : cases) {
    const double d = rc::min_deadline(c.graph, 2.0) * 2.0;
    auto instance = rc::make_instance(c.graph, d);
    const auto fancy =
        rc::solve_continuous(instance, rm::ContinuousModel{kInf});
    EXPECT_EQ(fancy.method, c.expected);
    rc::ContinuousOptions force;
    force.force_numeric = true;
    const auto numeric =
        rc::solve_continuous(instance, rm::ContinuousModel{kInf}, force);
    ASSERT_TRUE(fancy.feasible && numeric.feasible);
    EXPECT_NEAR(numeric.energy, fancy.energy, 3e-5 * fancy.energy)
        << c.expected;
  }
}

TEST(Dispatch, SpWithBindingCapFallsBackToNumeric) {
  Rng rng(23);
  const auto g = rg::make_diamond(3, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, 1.05 * d_min);  // cap must bind
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.method, "numeric-barrier");
  expect_feasible_under(instance, s, 2.0);
}

TEST(Dispatch, EmptyGraphTrivial) {
  auto instance = rc::make_instance(rg::Digraph{}, 1.0);
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{1.0});
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
}

TEST(Dispatch, GeneralizedExponentAgreement) {
  Rng rng(24);
  const auto g = rg::make_fork(4, rng);
  for (double alpha : {1.5, 2.0, 2.5}) {
    const double d = rc::min_deadline(g, 2.0) * 2.0;
    auto instance = rc::make_instance(g, d, alpha);
    const auto closed = rc::solve_fork(instance, rm::ContinuousModel{kInf});
    rc::ContinuousOptions force;
    force.force_numeric = true;
    const auto numeric =
        rc::solve_continuous(instance, rm::ContinuousModel{kInf}, force);
    ASSERT_TRUE(closed.feasible && numeric.feasible) << alpha;
    EXPECT_NEAR(numeric.energy, closed.energy, 3e-5 * closed.energy)
        << "alpha=" << alpha;
  }
}

TEST(MonotoneInDeadline, EnergyDecreasesWithSlack) {
  Rng rng(25);
  const auto g = rg::make_layered(4, 3, 0.5, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  double previous = kInf;
  for (double factor : {1.1, 1.5, 2.0, 3.0, 5.0}) {
    auto instance = rc::make_instance(g, factor * d_min);
    const auto s = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
    ASSERT_TRUE(s.feasible);
    EXPECT_LE(s.energy, previous * (1.0 + 1e-9));
    previous = s.energy;
  }
}

// Regression for the shared feasibility tolerance (core::kFeasibilityRelTol):
// instances whose minimum makespan sits exactly at the deadline — or a few
// ulps past it, because D = W / s_max rounds differently than the solver's
// own sum of w_i / s_max — must be feasible and pinned at the caps on every
// routing path, instead of tripping the old ad-hoc 1e-12/1e-9 guards.
TEST(DeadlineTight, ExactlyTightChainIsFeasibleOnEveryPath) {
  // 31 tasks of weight 0.1: W accumulates rounding, and the deadline is
  // computed from the rounded sum, so solver-side re-accumulation lands
  // within ulps of the boundary on either side.
  std::vector<double> weights(31, 0.1);
  const auto g = rg::make_chain(weights);
  const double s_max = 1.3;
  const double deadline = g.total_weight() / s_max;

  auto instance = rc::make_instance(g, deadline);
  const auto closed = rc::solve_chain(instance, rm::ContinuousModel{s_max});
  ASSERT_TRUE(closed.feasible);
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(closed.speeds[v], s_max);  // clamped, never above the cap
    EXPECT_GE(closed.speeds[v], s_max * (1.0 - 1e-9));
  }

  rc::ContinuousOptions force;
  force.force_numeric = true;
  const auto numeric =
      rc::solve_continuous(instance, rm::ContinuousModel{s_max}, force);
  ASSERT_TRUE(numeric.feasible) << "numeric solver rejected a tight instance";
  EXPECT_NEAR(numeric.energy, closed.energy, 1e-9 * closed.energy);

  const auto dispatched =
      rc::solve_continuous(instance, rm::ContinuousModel{s_max});
  ASSERT_TRUE(dispatched.feasible);
}

TEST(DeadlineTight, ExactlyTightSingleTaskAndFork) {
  const auto single = rc::make_instance(rg::make_chain({7.0}), 7.0 / 1.7);
  const auto s1 = rc::solve_single(single, rm::ContinuousModel{1.7});
  ASSERT_TRUE(s1.feasible);
  EXPECT_LE(s1.speeds[0], 1.7);

  // Fork whose root saturates exactly: w0 = 2, s_max = 2, leaves share
  // the remaining window exactly.
  auto fork = rg::Digraph{};
  const auto root = fork.add_node(2.0);
  const auto l1 = fork.add_node(1.0);
  const auto l2 = fork.add_node(1.0);
  fork.add_edge(root, l1);
  fork.add_edge(root, l2);
  const double deadline = 2.0 / 2.0 + 1.0 / 2.0;  // root + leaves at s_max
  const auto instance = rc::make_instance(fork, deadline);
  const auto s2 = rc::solve_fork(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s2.feasible);
  for (double v : s2.speeds) EXPECT_LE(v, 2.0);
}

TEST(DeadlineTight, BaselinesAcceptTightDeadlines) {
  std::vector<double> weights(17, 0.3);
  const auto g = rg::make_chain(weights);
  const double s_max = 1.1;
  const auto instance =
      rc::make_instance(g, g.total_weight() / s_max);
  const rm::EnergyModel cont = rm::ContinuousModel{s_max};
  EXPECT_TRUE(rc::solve_no_dvfs(instance, cont).feasible);
  EXPECT_TRUE(rc::solve_uniform(instance, cont).feasible);
  EXPECT_TRUE(rc::solve_path_stretch(instance, cont).feasible);
}

TEST(DeadlineTight, WithinDeadlineHelperIsSymmetricallyTolerant) {
  EXPECT_TRUE(rc::within_deadline(1.0, 1.0));
  EXPECT_TRUE(rc::within_deadline(1.0 + 0.5 * rc::kFeasibilityRelTol, 1.0));
  EXPECT_FALSE(rc::within_deadline(1.0 + 2.0 * rc::kFeasibilityRelTol, 1.0));
  EXPECT_TRUE(rc::within_speed_cap(2.0, 2.0));
  EXPECT_TRUE(rc::within_speed_cap(2.0 * (1.0 + 0.5 * rc::kFeasibilityRelTol), 2.0));
  EXPECT_FALSE(rc::within_speed_cap(2.0 * (1.0 + 2.0 * rc::kFeasibilityRelTol), 2.0));
}
