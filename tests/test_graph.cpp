// Unit tests for graph/: container invariants, topological algorithms,
// classification, generators, DOT export.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/classify.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/sp_tree.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"

namespace rg = reclaim::graph;
using reclaim::util::Rng;

namespace {

/// Checks a topological order: every edge goes forward.
void expect_valid_topo(const rg::Digraph& g) {
  const auto order = rg::topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(g.num_nodes());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const auto& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

}  // namespace

TEST(Digraph, AddNodesAndEdges) {
  rg::Digraph g;
  const auto a = g.add_node(2.0, "a");
  const auto b = g.add_node(3.0);
  g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  EXPECT_EQ(g.name(a), "a");
  EXPECT_DOUBLE_EQ(g.weight(b), 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(Digraph, RejectsBadEdges) {
  rg::Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), reclaim::InvalidArgument);  // duplicate
  EXPECT_THROW(g.add_edge(0, 0), reclaim::InvalidArgument);  // self loop
  EXPECT_THROW(g.add_edge(0, 5), reclaim::InvalidArgument);  // unknown node
  EXPECT_FALSE(g.add_edge_if_absent(0, 1));
  EXPECT_TRUE(g.add_edge_if_absent(1, 0));
}

TEST(Digraph, RejectsNegativeWeights) {
  rg::Digraph g;
  EXPECT_THROW(g.add_node(-1.0), reclaim::InvalidArgument);
  const auto v = g.add_node(1.0);
  EXPECT_THROW(g.set_weight(v, -2.0), reclaim::InvalidArgument);
}

TEST(Digraph, SourcesSinksAndReverse) {
  rg::Digraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.sources(), (std::vector<rg::NodeId>{0, 1}));
  EXPECT_EQ(g.sinks(), (std::vector<rg::NodeId>{3}));
  const auto r = g.reversed();
  EXPECT_EQ(r.sources(), (std::vector<rg::NodeId>{3}));
  EXPECT_EQ(r.sinks(), (std::vector<rg::NodeId>{0, 1}));
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_TRUE(r.has_edge(3, 2));
}

TEST(Topo, OrderOnDagAndCycleDetection) {
  rg::Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  expect_valid_topo(g);
  EXPECT_TRUE(rg::is_acyclic(g));
  g.add_edge(2, 0);
  EXPECT_FALSE(rg::is_acyclic(g));
  EXPECT_FALSE(rg::topological_order(g).has_value());
}

TEST(Topo, OrderIsCanonical) {
  rg::Digraph g(4);
  g.add_edge(3, 1);
  const auto order = rg::topological_order(g);
  ASSERT_TRUE(order.has_value());
  // Smallest-id-first Kahn: 0, 2, 3 ready initially.
  EXPECT_EQ(*order, (std::vector<rg::NodeId>{0, 2, 3, 1}));
}

TEST(Topo, LongestPathsOnDiamond) {
  // 0 -> {1 w=5, 2 w=1} -> 3.
  rg::Digraph g;
  g.add_node(1.0);
  g.add_node(5.0);
  g.add_node(1.0);
  g.add_node(2.0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto to = rg::longest_path_to(g);
  EXPECT_DOUBLE_EQ(to[0], 1.0);
  EXPECT_DOUBLE_EQ(to[1], 6.0);
  EXPECT_DOUBLE_EQ(to[3], 8.0);
  const auto from = rg::longest_path_from(g);
  EXPECT_DOUBLE_EQ(from[0], 8.0);
  EXPECT_DOUBLE_EQ(from[2], 3.0);
  const auto cp = rg::critical_path(g);
  EXPECT_DOUBLE_EQ(cp.length, 8.0);
  EXPECT_EQ(cp.nodes, (std::vector<rg::NodeId>{0, 1, 3}));
}

TEST(Topo, CriticalPathSingleNode) {
  rg::Digraph g;
  g.add_node(4.2);
  const auto cp = rg::critical_path(g);
  EXPECT_DOUBLE_EQ(cp.length, 4.2);
  EXPECT_EQ(cp.nodes.size(), 1u);
}

TEST(Topo, TransitiveClosureAndReduction) {
  rg::Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // implied
  const auto reach = rg::transitive_closure(g);
  EXPECT_TRUE(reach[0][2]);
  EXPECT_TRUE(reach[0][1]);
  EXPECT_FALSE(reach[2][0]);
  const auto reduced = rg::transitive_reduction(g);
  EXPECT_EQ(reduced.num_edges(), 2u);
  EXPECT_FALSE(reduced.has_edge(0, 2));
}

TEST(Topo, WeakConnectivity) {
  rg::Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(rg::is_weakly_connected(g));
  g.add_edge(1, 2);
  EXPECT_TRUE(rg::is_weakly_connected(g));
}

TEST(Classify, RecognizesBasicShapes) {
  Rng rng(1);
  EXPECT_EQ(rg::classify(rg::make_chain(5, rng)), rg::GraphShape::kChain);
  EXPECT_EQ(rg::classify(rg::make_fork(4, rng)), rg::GraphShape::kFork);
  EXPECT_EQ(rg::classify(rg::make_join(4, rng)), rg::GraphShape::kJoin);
  rg::Digraph single;
  single.add_node(1.0);
  EXPECT_EQ(rg::classify(single), rg::GraphShape::kSingleTask);
  EXPECT_EQ(rg::classify(rg::Digraph{}), rg::GraphShape::kEmpty);
}

TEST(Classify, TreesAndSp) {
  Rng rng(2);
  const auto out_tree = rg::make_random_out_tree(20, rng);
  EXPECT_TRUE(rg::is_out_tree(out_tree));
  // A 20-node random tree is exceedingly unlikely to be a chain/fork.
  EXPECT_EQ(rg::classify(out_tree), rg::GraphShape::kOutTree);
  const auto in_tree = rg::make_random_in_tree(20, rng);
  EXPECT_EQ(rg::classify(in_tree), rg::GraphShape::kInTree);
  const auto diamond = rg::make_diamond(3, rng);
  EXPECT_EQ(rg::classify(diamond), rg::GraphShape::kSeriesParallel);
}

TEST(Classify, StencilIsGeneral) {
  Rng rng(3);
  const auto stencil = rg::make_stencil(3, 3, rng);
  EXPECT_EQ(rg::classify(stencil), rg::GraphShape::kGeneral);
}

TEST(Classify, ToStringCoversShapes) {
  EXPECT_EQ(rg::to_string(rg::GraphShape::kChain), "chain");
  EXPECT_EQ(rg::to_string(rg::GraphShape::kGeneral), "general");
  EXPECT_EQ(rg::to_string(rg::GraphShape::kSeriesParallel), "series-parallel");
}

TEST(Generators, ChainShape) {
  const auto g = rg::make_chain({1.0, 2.0, 3.0});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(rg::is_chain(g));
  EXPECT_DOUBLE_EQ(g.weight(1), 2.0);
}

TEST(Generators, ForkAndJoinShapes) {
  const auto fork = rg::make_fork({1.0, 2.0, 3.0, 4.0});
  EXPECT_TRUE(rg::is_fork(fork));
  EXPECT_EQ(fork.out_degree(0), 3u);
  const auto join = rg::make_join({1.0, 2.0, 3.0});
  EXPECT_TRUE(rg::is_join(join));
  EXPECT_EQ(join.in_degree(0), 2u);
}

TEST(Generators, LayeredIsConnectedAcyclic) {
  Rng rng(4);
  const auto g = rg::make_layered(5, 4, 0.4, rng);
  EXPECT_EQ(g.num_nodes(), 20u);
  expect_valid_topo(g);
  // Every non-first-layer node has a predecessor.
  for (rg::NodeId v = 4; v < 20; ++v) EXPECT_GE(g.in_degree(v), 1u);
}

TEST(Generators, ErdosRenyiAcyclic) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = rg::make_erdos_renyi_dag(30, 0.3, rng);
    EXPECT_TRUE(rg::is_acyclic(g));
  }
}

TEST(Generators, RandomSpIsSeriesParallel) {
  Rng rng(6);
  for (std::size_t n : {1u, 2u, 5u, 12u, 30u}) {
    const auto g = rg::make_random_series_parallel(n, rng);
    EXPECT_TRUE(rg::is_acyclic(g));
    EXPECT_TRUE(rg::is_series_parallel(g)) << "n=" << n;
  }
}

TEST(Generators, ForkJoinChainIsSp) {
  Rng rng(7);
  const auto g = rg::make_fork_join_chain(3, 4, rng);
  EXPECT_EQ(g.num_nodes(), 3u * 6u);
  EXPECT_TRUE(rg::is_series_parallel(g));
}

TEST(Generators, TiledCholeskyStructure) {
  const auto g = rg::make_tiled_cholesky(4);
  // t POTRF + sum_k (t-1-k) TRSM + SYRK + GEMMs.
  EXPECT_EQ(g.num_nodes(), 20u);  // 4 + 6 + 6 + 4
  expect_valid_topo(g);
  EXPECT_TRUE(rg::is_weakly_connected(g));
  // The first POTRF is the unique source.
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.name(g.sources().front()), "POTRF(0)");
}

TEST(Generators, TiledLuStructure) {
  const auto g = rg::make_tiled_lu(3);
  // k=0: 1+2+2+4; k=1: 1+1+1+1; k=2: 1  => 14 tasks.
  EXPECT_EQ(g.num_nodes(), 14u);
  expect_valid_topo(g);
  EXPECT_EQ(g.sources().size(), 1u);
}

TEST(Generators, FftStructure) {
  const auto g = rg::make_fft(3);  // 8 points, 3 stages + loads
  EXPECT_EQ(g.num_nodes(), 32u);
  expect_valid_topo(g);
  // All loads are sources; all last-stage tasks are sinks.
  EXPECT_EQ(g.sources().size(), 8u);
  EXPECT_EQ(g.sinks().size(), 8u);
  // Butterfly tasks have exactly two predecessors.
  for (rg::NodeId v = 8; v < 32; ++v) EXPECT_EQ(g.in_degree(v), 2u);
}

TEST(Generators, StencilWavefront) {
  Rng rng(8);
  const auto g = rg::make_stencil(3, 4, rng);
  EXPECT_EQ(g.num_nodes(), 12u);
  expect_valid_topo(g);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.num_edges(), 2u * 3u * 4u - 3u - 4u);
}

TEST(Generators, DeterministicInSeed) {
  Rng rng1(99), rng2(99);
  const auto a = rg::make_layered(4, 3, 0.5, rng1);
  const auto b = rg::make_layered(4, 3, 0.5, rng2);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (rg::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v));
    EXPECT_EQ(a.successors(v), b.successors(v));
  }
}

TEST(Generators, InvalidArguments) {
  Rng rng(1);
  EXPECT_THROW((void)rg::make_chain(std::vector<double>{}), reclaim::InvalidArgument);
  EXPECT_THROW((void)rg::make_fork({1.0}), reclaim::InvalidArgument);
  EXPECT_THROW((void)rg::make_layered(0, 3, 0.5, rng), reclaim::InvalidArgument);
  EXPECT_THROW((void)rg::make_layered(3, 3, 1.5, rng), reclaim::InvalidArgument);
  EXPECT_THROW((void)rg::make_tiled_cholesky(0), reclaim::InvalidArgument);
  rg::WeightRange bad{5.0, 1.0};
  EXPECT_THROW((void)rg::make_chain(3, rng, bad), reclaim::InvalidArgument);
}

TEST(Dot, ContainsNodesAndEdges) {
  rg::Digraph g;
  g.add_node(1.5, "first");
  g.add_node(2.0);
  g.add_edge(0, 1);
  const auto dot = rg::to_dot(g, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("first"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}
