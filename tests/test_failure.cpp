// Failure injection and degenerate-input tests: every solver and
// substrate must either handle the edge case or fail with a typed,
// descriptive exception — never crash, hang, or return garbage.
#include <gtest/gtest.h>

#include <limits>

#include "core/baselines.hpp"
#include "core/continuous/closed_form.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/numeric_solver.hpp"
#include "core/continuous/sp_solver.hpp"
#include "core/continuous/tree_solver.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "core/vdd/lp_solver.hpp"
#include "core/vdd/two_mode.hpp"
#include "graph/generators.hpp"
#include "opt/simplex.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
namespace ro = reclaim::opt;
using reclaim::util::Rng;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TEST(Failure, InstanceValidation) {
  rg::Digraph cyclic(2, 1.0);
  cyclic.add_edge(0, 1);
  cyclic.add_edge(1, 0);
  EXPECT_THROW((void)rc::make_instance(cyclic, 1.0), reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::make_instance(rg::make_chain({1.0}), 0.0),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::make_instance(rg::make_chain({1.0}), -1.0),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::make_instance(rg::make_chain({1.0}), 1.0, 1.0),
               reclaim::InvalidArgument);  // alpha must exceed 1
}

TEST(Failure, SolversRejectWrongShapes) {
  // Note: a 2-node fork IS a chain (and vice versa), so use 3+ nodes.
  auto fork = rc::make_instance(rg::make_fork({1.0, 1.0, 1.0}), 2.0);
  EXPECT_THROW((void)rc::solve_chain(fork, rm::ContinuousModel{kInf}),
               reclaim::InvalidArgument);
  auto chain = rc::make_instance(rg::make_chain({1.0, 1.0, 1.0}), 3.0);
  EXPECT_THROW((void)rc::solve_fork(chain, rm::ContinuousModel{kInf}),
               reclaim::InvalidArgument);
  Rng rng(1);
  auto stencil = rc::make_instance(rg::make_stencil(3, 3, rng), 50.0);
  EXPECT_THROW((void)rc::solve_tree(stencil, rm::ContinuousModel{kInf}),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::solve_sp(stencil), reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::solve_chain_dp(stencil, rm::ModeSet({1.0})),
               reclaim::InvalidArgument);
}

TEST(Failure, SingleNodeEveryModel) {
  auto instance = rc::make_instance(rg::make_chain({2.0}), 2.0);
  const rm::ModeSet modes({1.0, 2.0});
  EXPECT_TRUE(rc::solve(instance, rm::ContinuousModel{2.0}).feasible);
  EXPECT_TRUE(rc::solve(instance, rm::VddHoppingModel{modes}).feasible);
  EXPECT_TRUE(rc::solve(instance, rm::DiscreteModel{modes}).feasible);
  EXPECT_TRUE(rc::solve(instance, rm::IncrementalModel(1.0, 2.0, 0.5)).feasible);
}

TEST(Failure, AllZeroWeightGraphEveryModel) {
  rg::Digraph g(4, 0.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  auto instance = rc::make_instance(g, 1.0);
  const rm::ModeSet modes({1.0, 2.0});
  for (const rm::EnergyModel& model :
       {rm::EnergyModel{rm::ContinuousModel{2.0}},
        rm::EnergyModel{rm::VddHoppingModel{modes}},
        rm::EnergyModel{rm::DiscreteModel{modes}}}) {
    const auto s = rc::solve(instance, model);
    EXPECT_TRUE(s.feasible) << rm::model_name(model);
    EXPECT_DOUBLE_EQ(s.energy, 0.0) << rm::model_name(model);
  }
  EXPECT_DOUBLE_EQ(rc::solve_no_dvfs(instance, rm::DiscreteModel{modes}).energy,
                   0.0);
  EXPECT_DOUBLE_EQ(rc::solve_uniform(instance, rm::DiscreteModel{modes}).energy,
                   0.0);
  EXPECT_DOUBLE_EQ(
      rc::solve_path_stretch(instance, rm::DiscreteModel{modes}).energy, 0.0);
}

TEST(Failure, ExtremeDeadlines) {
  const auto g = rg::make_chain({1.0, 1.0});
  // Absurdly tight: everything infeasible, nothing crashes.
  auto tight = rc::make_instance(g, 1e-9);
  EXPECT_FALSE(rc::solve(tight, rm::ContinuousModel{2.0}).feasible);
  EXPECT_FALSE(rc::solve(tight, rm::DiscreteModel{rm::ModeSet({1.0})}).feasible);
  // Absurdly loose: feasible, energy at the model floor.
  auto loose = rc::make_instance(g, 1e9);
  const auto cont = rc::solve(loose, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont.feasible);
  EXPECT_LT(cont.energy, 1e-9);
  const auto disc = rc::solve(loose, rm::DiscreteModel{rm::ModeSet({0.5, 2.0})});
  ASSERT_TRUE(disc.feasible);
  EXPECT_NEAR(disc.energy, 2.0 * 0.25, 1e-9);  // both at the slowest mode
}

TEST(Failure, ExtremeWeightScales) {
  // 1e6-scale weights: the numeric solver must stay stable.
  const auto g = rg::make_fork({2e6, 1e6, 3e6});
  auto instance = rc::make_instance(g, 4e6);
  rc::ContinuousOptions force;
  force.force_numeric = true;
  const auto numeric = rc::solve_continuous(instance, rm::ContinuousModel{2.0}, force);
  const auto closed = rc::solve_fork(instance, rm::ContinuousModel{2.0});
  ASSERT_EQ(numeric.feasible, closed.feasible);
  if (closed.feasible) {
    EXPECT_NEAR(numeric.energy, closed.energy, 1e-4 * closed.energy);
  }
}

TEST(Failure, TinyWeightScales) {
  const auto g = rg::make_fork({2e-6, 1e-6, 3e-6});
  auto instance = rc::make_instance(g, 4e-6);
  rc::ContinuousOptions force;
  force.force_numeric = true;
  const auto numeric =
      rc::solve_continuous(instance, rm::ContinuousModel{2.0}, force);
  const auto closed = rc::solve_fork(instance, rm::ContinuousModel{2.0});
  ASSERT_EQ(numeric.feasible, closed.feasible);
  if (closed.feasible) {
    EXPECT_NEAR(numeric.energy, closed.energy, 1e-4 * closed.energy);
  }
}

TEST(Failure, NumericSolverInvalidSpeedRange) {
  auto instance = rc::make_instance(rg::make_chain({1.0}), 2.0);
  rc::NumericOptions options;
  options.s_min = 3.0;  // above s_max
  EXPECT_THROW(
      (void)rc::solve_numeric(instance, rm::ContinuousModel{2.0}, options),
      reclaim::InvalidArgument);
}

TEST(Failure, DegenerateSpeedRangeCollapses) {
  // s_min == s_max: the only continuous policy is the single speed.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 5.0);
  rc::NumericOptions options;
  options.s_min = 2.0;
  const auto s = rc::solve_numeric(instance, rm::ContinuousModel{2.0}, options);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.speeds[0], 2.0);
  EXPECT_DOUBLE_EQ(s.speeds[1], 2.0);
}

TEST(Failure, BranchAndBoundNodeBudgetReportsAbort) {
  Rng rng(2);
  const auto g = rg::make_layered(3, 5, 0.4, rng);
  auto instance = rc::make_instance(g, 1.4 * rc::min_deadline(g, 2.0));
  rc::BranchBoundOptions options;
  options.max_nodes = 10;
  options.warm_start = false;
  const auto result =
      rc::solve_discrete_exact(instance, rm::ModeSet({0.5, 1.0, 2.0}), options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.nodes_explored, 10u);
}

TEST(Failure, EnumerationOracleRefusesLargeInstances) {
  Rng rng(3);
  const auto g = rg::make_layered(4, 4, 0.5, rng);
  auto instance = rc::make_instance(g, 100.0);
  EXPECT_THROW((void)rc::solve_discrete_enumerate(instance, rm::ModeSet({1.0})),
               reclaim::InvalidArgument);
}

TEST(Failure, SimplexPivotBudget) {
  // A solvable LP with an absurd pivot budget of 1 must raise, not loop.
  ro::LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ro::Relation::kLessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}}, ro::Relation::kLessEqual, 2.0});
  ro::SimplexOptions options;
  options.max_pivots = 1;
  EXPECT_THROW((void)ro::solve_lp(lp, options), reclaim::NumericalError);
}

TEST(Failure, VddWithUnreachableModes) {
  // Deadline requires average speed above the top mode: infeasible.
  auto instance = rc::make_instance(rg::make_chain({10.0}), 1.0);
  const rm::VddHoppingModel model{rm::ModeSet({1.0, 2.0})};
  EXPECT_FALSE(rc::solve_vdd_lp(instance, model).solution.feasible);
  EXPECT_FALSE(rc::solve_vdd_two_mode(instance, model).feasible);
}

TEST(Failure, RoundUpWithSingleMode) {
  // One mode: CONT-ROUND degenerates to "that mode everywhere".
  auto instance = rc::make_instance(rg::make_chain({1.0, 1.0}), 3.0);
  const auto result = rc::solve_round_up(instance, rm::ModeSet({1.0}));
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_DOUBLE_EQ(result.solution.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(result.solution.energy, 2.0);
  // Certified factor with zero gap collapses to ~1.
  EXPECT_NEAR(result.certified_factor, 1.0, 1e-6);
}

TEST(Failure, ChainDpResolutionOne) {
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 4.0);
  rc::ChainDpOptions options;
  options.resolution = 1;  // 2 grid cells total
  const auto dp = rc::solve_chain_dp(instance, rm::ModeSet({1.0, 2.0}), options);
  // Coarse but well-defined; if feasible it must validate.
  if (dp.solution.feasible) {
    rs::validate_constant_speeds(instance.exec_graph, dp.solution.speeds,
                                 rm::DiscreteModel{rm::ModeSet({1.0, 2.0})},
                                 instance.deadline, 1e-7);
  }
}

TEST(Failure, EmptyGraphAcrossTheBoard) {
  auto instance = rc::make_instance(rg::Digraph{}, 1.0);
  const rm::ModeSet modes({1.0});
  EXPECT_TRUE(rc::solve(instance, rm::ContinuousModel{1.0}).feasible);
  EXPECT_TRUE(rc::solve(instance, rm::VddHoppingModel{modes}).feasible);
  EXPECT_TRUE(rc::solve(instance, rm::DiscreteModel{modes}).feasible);
  EXPECT_TRUE(rc::solve_no_dvfs(instance, rm::DiscreteModel{modes}).feasible);
  EXPECT_TRUE(rc::solve_path_stretch(instance, rm::DiscreteModel{modes}).feasible);
}

TEST(Failure, DeadlineExactlyAtCriticalPath) {
  // D == D_min exactly: feasible boundary, all solvers agree on all-s_max.
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 2.0);  // (2+2)/2.0 with s_max = 2
  const auto cont = rc::solve(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont.feasible);
  EXPECT_NEAR(cont.energy, 16.0, 1e-6);
  const auto bb = rc::solve_discrete_exact(instance, rm::ModeSet({1.0, 2.0}));
  ASSERT_TRUE(bb.solution.feasible);
  EXPECT_DOUBLE_EQ(bb.solution.energy, 16.0);
}

TEST(Failure, DisconnectedGraphsAreFine) {
  rg::Digraph g;
  g.add_node(2.0);
  g.add_node(3.0);  // two isolated tasks
  auto instance = rc::make_instance(g, 2.0);
  const auto cont = rc::solve(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont.feasible);
  // Independent tasks: each at w/D.
  EXPECT_NEAR(cont.speeds[0], 1.0, 1e-9);
  EXPECT_NEAR(cont.speeds[1], 1.5, 1e-9);
}
