// Property-based suites (TEST_P sweeps over seeds, graph families, slack
// and exponents): the invariants the theory forces on every instance.
//
//   E_Continuous <= E_VddLP <= { E_TwoMode, E_Discrete-exact }
//   E_Discrete-exact <= E_CONT-ROUND <= certified * E_relaxation
//   E_* <= E_NO-DVFS; all returned schedules validate; determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/analysis.hpp"
#include "core/baselines.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/vdd/lp_solver.hpp"
#include "core/vdd/two_mode.hpp"
#include "graph/generators.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

namespace {

enum class Family { kChain, kFork, kTree, kSp, kLayered, kStencil };

std::string family_name(Family f) {
  switch (f) {
    case Family::kChain: return "chain";
    case Family::kFork: return "fork";
    case Family::kTree: return "tree";
    case Family::kSp: return "sp";
    case Family::kLayered: return "layered";
    case Family::kStencil: return "stencil";
  }
  return "?";
}

rg::Digraph make_family(Family f, Rng& rng) {
  switch (f) {
    case Family::kChain: return rg::make_chain(6, rng);
    case Family::kFork: return rg::make_fork(5, rng);
    case Family::kTree: return rg::make_random_out_tree(8, rng);
    case Family::kSp: return rg::make_random_series_parallel(7, rng);
    case Family::kLayered: return rg::make_layered(3, 3, 0.5, rng);
    case Family::kStencil: return rg::make_stencil(3, 3, rng);
  }
  return rg::Digraph{};
}

struct Param {
  Family family;
  std::uint64_t seed;
  double slack;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  const auto& p = info.param;
  std::string slack = std::to_string(static_cast<int>(p.slack * 100.0));
  return family_name(p.family) + "_s" + std::to_string(p.seed) + "_k" + slack;
}

class ModelOrdering : public testing::TestWithParam<Param> {};

}  // namespace

TEST_P(ModelOrdering, TheChainOfDominanceHolds) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  const auto g = make_family(p.family, rng);
  const rm::ModeSet modes({0.6, 1.1, 1.6, 2.0});
  const double d = rc::min_deadline(g, modes.max_speed()) * p.slack;
  auto instance = rc::make_instance(g, d);

  const auto cont =
      rc::solve_continuous(instance, rm::ContinuousModel{modes.max_speed()});
  const auto vdd_lp = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
  const auto two_mode =
      rc::solve_vdd_two_mode(instance, rm::VddHoppingModel{modes});
  const auto bb = rc::solve_discrete_exact(instance, modes);
  const auto round = rc::solve_round_up(instance, modes);
  const auto nodvfs = rc::solve_no_dvfs(instance, rm::DiscreteModel{modes});

  // Everything is feasible: the deadline has slack >= 1.05 over D_min at
  // the fastest mode, and s_max is one of the modes.
  ASSERT_TRUE(cont.feasible);
  ASSERT_TRUE(vdd_lp.solution.feasible);
  ASSERT_TRUE(two_mode.feasible);
  ASSERT_TRUE(bb.solution.feasible);
  ASSERT_TRUE(bb.proven_optimal);
  ASSERT_TRUE(round.solution.feasible);
  ASSERT_TRUE(nodvfs.feasible);

  const double tol = 1.0 + 1e-6;
  EXPECT_LE(cont.energy, vdd_lp.solution.energy * tol);
  EXPECT_LE(vdd_lp.solution.energy, two_mode.energy * tol);
  EXPECT_LE(vdd_lp.solution.energy, bb.solution.energy * tol);
  EXPECT_LE(bb.solution.energy, round.solution.energy * tol);
  EXPECT_LE(round.solution.energy, nodvfs.energy * tol);
  EXPECT_LE(bb.solution.energy, nodvfs.energy * tol);

  // Every schedule validates under its own model.
  rs::validate_constant_speeds(g, cont.speeds,
                               rm::ContinuousModel{modes.max_speed()}, d, 1e-6);
  rs::validate_profiles(g, vdd_lp.solution.profiles,
                        rm::VddHoppingModel{modes}, d, 1e-6);
  rs::validate_profiles(g, two_mode.profiles, rm::VddHoppingModel{modes}, d,
                        1e-6);
  rs::validate_constant_speeds(g, bb.solution.speeds, rm::DiscreteModel{modes},
                               d, 1e-6);
  rs::validate_constant_speeds(g, round.solution.speeds,
                               rm::DiscreteModel{modes}, d, 1e-6);

  // The CONT-ROUND certificate (Thm 5 / Prop 1) holds.
  const auto cert = rc::certify_round_up(round.solution, round.relaxation,
                                         modes, instance.power(), 1e-9);
  EXPECT_TRUE(cert.holds) << "measured " << cert.measured << " certified "
                          << cert.certified;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelOrdering,
    testing::Values(
        Param{Family::kChain, 1, 1.15}, Param{Family::kChain, 2, 1.8},
        Param{Family::kFork, 3, 1.15}, Param{Family::kFork, 4, 2.5},
        Param{Family::kTree, 5, 1.2}, Param{Family::kTree, 6, 1.9},
        Param{Family::kSp, 7, 1.25}, Param{Family::kSp, 8, 2.2},
        Param{Family::kLayered, 9, 1.15}, Param{Family::kLayered, 10, 1.7},
        Param{Family::kStencil, 11, 1.3}, Param{Family::kStencil, 12, 2.8}),
    param_name);

namespace {

class ExponentSweep : public testing::TestWithParam<double> {};

}  // namespace

TEST_P(ExponentSweep, OrderingAndCertificatesForGeneralAlpha) {
  const double alpha = GetParam();
  Rng rng(1234);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const rm::IncrementalModel inc(0.5, 2.0, 0.25);
  const double d = rc::min_deadline(g, 2.0) * 1.4;
  auto instance = rc::make_instance(g, d, alpha);

  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  const auto vdd =
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{inc.modes});
  const auto round = rc::solve_round_up(instance, inc.modes);
  ASSERT_TRUE(cont.feasible && vdd.solution.feasible &&
              round.solution.feasible);

  EXPECT_LE(cont.energy, vdd.solution.energy * (1.0 + 1e-6));
  EXPECT_LE(vdd.solution.energy, round.solution.energy * (1.0 + 1e-6));
  const auto cert = rc::certify_round_up(round.solution, round.relaxation,
                                         inc.modes, instance.power(), 1e-9);
  EXPECT_TRUE(cert.holds) << "alpha " << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, ExponentSweep,
                         testing::Values(1.5, 2.0, 2.5, 3.0),
                         [](const testing::TestParamInfo<double>& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10.0));
                         });

TEST(Determinism, WholeStackIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    const auto g = rg::make_layered(3, 3, 0.5, rng);
    const rm::ModeSet modes({0.7, 1.3, 2.0});
    const double d = rc::min_deadline(g, 2.0) * 1.4;
    auto instance = rc::make_instance(g, d);
    const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
    const auto vdd = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
    const auto round = rc::solve_round_up(instance, modes);
    return std::tuple{cont.energy, vdd.solution.energy, round.solution.energy};
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(std::get<0>(run(99)), std::get<0>(run(100)));
}

TEST(Monotonicity, VddEnergyNonIncreasingInDeadline) {
  Rng rng(71);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const rm::ModeSet modes({0.6, 1.2, 2.0});
  const double d_min = rc::min_deadline(g, 2.0);
  double previous = std::numeric_limits<double>::infinity();
  for (double slack : {1.05, 1.2, 1.5, 2.0, 4.0, 10.0}) {
    auto instance = rc::make_instance(g, slack * d_min);
    const auto vdd = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
    ASSERT_TRUE(vdd.solution.feasible) << slack;
    EXPECT_LE(vdd.solution.energy, previous * (1.0 + 1e-7)) << slack;
    previous = vdd.solution.energy;
  }
  // Far past the point where everything runs at s_1, energy floors at
  // sum w * s_1^2.
  double floor_energy = 0.0;
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v)
    floor_energy += g.weight(v) * 0.6 * 0.6;
  EXPECT_NEAR(previous, floor_energy, 1e-5 * floor_energy);
}

TEST(Monotonicity, ContinuousEnergyScalesAsInverseSquareOfDeadline) {
  // E(c D) = E(D)/c^2 for alpha = 3 (pure scaling of all speeds).
  Rng rng(72);
  const auto g = rg::make_stencil(3, 3, rng);
  const double d = rc::min_deadline(g, 100.0) * 50.0;  // cap never binds
  auto a = rc::make_instance(g, d);
  auto b = rc::make_instance(g, 2.0 * d);
  const auto ea = rc::solve_continuous(a, rm::ContinuousModel{100.0});
  const auto eb = rc::solve_continuous(b, rm::ContinuousModel{100.0});
  ASSERT_TRUE(ea.feasible && eb.feasible);
  EXPECT_NEAR(eb.energy, ea.energy / 4.0, 2e-4 * ea.energy);
}

TEST(WorkConservation, ProfilesProcessExactlyTheWeights) {
  Rng rng(73);
  const auto g = rg::make_layered(3, 3, 0.6, rng);
  const rm::ModeSet modes({0.5, 1.0, 2.0});
  auto instance = rc::make_instance(g, rc::min_deadline(g, 2.0) * 1.5);
  const auto vdd = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
  ASSERT_TRUE(vdd.solution.feasible);
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(vdd.solution.profiles[v].work(), g.weight(v),
                1e-6 * (1.0 + g.weight(v)));
  }
}

TEST(Infeasibility, AllSolversAgreeBelowDmin) {
  Rng rng(74);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const rm::ModeSet modes({0.6, 1.2, 2.0});
  auto instance = rc::make_instance(g, rc::min_deadline(g, 2.0) * 0.8);
  EXPECT_FALSE(
      rc::solve_continuous(instance, rm::ContinuousModel{2.0}).feasible);
  EXPECT_FALSE(
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes}).solution.feasible);
  EXPECT_FALSE(rc::solve_discrete_exact(instance, modes).solution.feasible);
  EXPECT_FALSE(rc::solve_round_up(instance, modes).solution.feasible);
  EXPECT_FALSE(rc::solve_no_dvfs(instance, rm::DiscreteModel{modes}).feasible);
}

TEST(TightDeadline, DiscreteMatchesNoDvfsAtDmin) {
  // At D == D_min (fastest-mode critical path), every task on the critical
  // path must run flat out; with a single-path chain the discrete optimum
  // IS the NO-DVFS schedule.
  const auto g = rg::make_chain({2.0, 3.0});
  const rm::ModeSet modes({1.0, 2.0});
  auto instance = rc::make_instance(g, 2.5);  // = (2+3)/2
  const auto bb = rc::solve_discrete_exact(instance, modes);
  const auto nodvfs = rc::solve_no_dvfs(instance, rm::DiscreteModel{modes});
  ASSERT_TRUE(bb.solution.feasible && nodvfs.feasible);
  EXPECT_NEAR(bb.solution.energy, nodvfs.energy, 1e-9);
}
