// Exact leaky solver (LeakageMode::kExact): hand-computed optima on the
// two canonical shapes where the s_crit reduction is provably suboptimal
// (a mixed-P_stat deadline-bound chain and a slack-bearing fork), the
// bit-identity guarantees (uniform-P_stat chains, binding floors,
// P_stat = 0), the engine memo-key mode bit, and a seeded randomized
// differential suite cross-checking Exact vs Reduction vs the Vdd LP over
// ~200 random DAG/platform instances (DESIGN.md, "Exact leaky solver").
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "core/continuous/dispatch.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/instance_key.hpp"
#include "engine/reclaim_engine.hpp"
#include "fuzz_harness.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace re = reclaim::engine;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
namespace rt = reclaim::testing;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
}

rc::Solution solve_mode(const rc::Instance& instance, double s_max,
                        rc::LeakageMode mode) {
  rc::ContinuousOptions options;
  options.leakage = mode;
  return rc::solve_continuous(instance, rm::ContinuousModel{s_max}, options);
}

/// Golden-section minimizer of a strictly convex function on [lo, hi];
/// deterministic, precise to ~(hi-lo) * 0.618^iters.
double golden_min(const std::function<double(double)>& f, double lo, double hi,
                  std::size_t iters = 160) {
  constexpr double kGolden = 0.6180339887498949;
  double a = hi - kGolden * (hi - lo);
  double b = lo + kGolden * (hi - lo);
  double fa = f(a);
  double fb = f(b);
  for (std::size_t i = 0; i < iters; ++i) {
    if (fa <= fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kGolden * (hi - lo);
      fa = f(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kGolden * (hi - lo);
      fb = f(b);
    }
  }
  return 0.5 * (lo + hi);
}

/// Two-task chain T0 -> T1 mapped on two processors.
rc::Instance two_proc_chain(double w0, double w1, double deadline,
                            const rm::ProcessorSpec& p0,
                            const rm::ProcessorSpec& p1) {
  auto g = rg::make_chain({w0, w1});
  rs::Mapping mapping(2);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  return rc::make_instance(std::move(g), deadline, rm::Platform({p0, p1}),
                           mapping);
}

/// Deadline- and cap-feasibility of a constant-speed solution, checked
/// from first principles.
void expect_schedule_feasible(const rc::Instance& instance,
                              const rc::Solution& s) {
  ASSERT_TRUE(s.feasible);
  const auto& g = instance.exec_graph;
  ASSERT_EQ(s.speeds.size(), g.num_nodes());
  for (rg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) == 0.0) continue;
    EXPECT_GT(s.speeds[v], 0.0);
    EXPECT_LE(s.speeds[v],
              instance.cap_of(v) * (1.0 + rc::kFeasibilityRelTol));
  }
  const auto durations = rs::durations_from_speeds(g, s.speeds);
  EXPECT_TRUE(rs::meets_deadline(g, durations, instance.deadline));
  EXPECT_NEAR(rc::recompute_energy(instance, s), s.energy,
              1e-9 * (1.0 + s.energy));
}

}  // namespace

TEST(ExactLeaky, MixedPstatChainBeatsReductionByOverOnePercent) {
  // T0 on a pure s^3 processor, T1 on P_stat = 12 (s_crit = 6^(1/3) ~
  // 1.817), weights 1/1, D = 1. The common speed W/D = 2 clears T1's
  // floor, so the reduction keeps the equal-speed closed form: energy
  // 2^2 + (12/2 + 2^2) = 14. The true optimum shifts duration toward the
  // leakage-free processor: minimize f(d0) = 1/d0^2 + 1/(1-d0)^2 +
  // 12 (1-d0), whose optimum f(~0.5597) ~ 13.634 — a ~2.7% gap, the
  // pinned > 1% acceptance case.
  const auto instance = two_proc_chain(
      1.0, 1.0, 1.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 12.0), kInf});

  const auto reduction = solve_mode(instance, kInf, rc::LeakageMode::kReduction);
  ASSERT_TRUE(reduction.feasible);
  EXPECT_EQ(reduction.method, "closed-form-chain");
  EXPECT_DOUBLE_EQ(reduction.energy, 14.0);

  const auto exact = solve_mode(instance, kInf, rc::LeakageMode::kExact);
  ASSERT_TRUE(exact.feasible);
  // Chains take the scalar waterfilling route, not a second barrier run.
  EXPECT_EQ(exact.method, "waterfill-exact-leaky");
  expect_schedule_feasible(instance, exact);

  const auto f = [](double d0) {
    const double d1 = 1.0 - d0;
    return 1.0 / (d0 * d0) + 1.0 / (d1 * d1) + 12.0 * d1;
  };
  const double d0_star = golden_min(f, 0.1, 0.9);
  EXPECT_NEAR(d0_star, 0.5597, 1e-3);
  EXPECT_NEAR(exact.energy, f(d0_star), 1e-5 * f(d0_star));
  EXPECT_NEAR(exact.speeds[0], 1.0 / d0_star, 1e-3);
  EXPECT_NEAR(exact.speeds[1], 1.0 / (1.0 - d0_star), 1e-3);

  // The acceptance gap: strictly better by more than 1%.
  EXPECT_LT(exact.energy, reduction.energy * 0.99);
}

TEST(ExactLeaky, SlackForkBeatsReduction) {
  // Uniform-P_stat fork (root 1 -> leaves 1, 1; P_stat = 3, alpha = 3,
  // D = 1.5): both leaf constraints bind, so busy time = 2D - d0 varies
  // with the root duration — DESIGN.md's canonical not-exact shape. The
  // reduction keeps Theorem 1's fork closed form (its speeds clear the
  // s_crit floor 1.1447); the true optimum runs the root slower:
  // E(d0) = 1/d0^2 + 2/(1.5-d0)^2 + 3 (3 - d0).
  const auto app = rg::make_fork({1.0, 1.0, 1.0});
  const auto instance =
      rc::make_instance(app, 1.5, rm::make_power_model(3.0, 3.0));

  const auto reduction = solve_mode(instance, kInf, rc::LeakageMode::kReduction);
  ASSERT_TRUE(reduction.feasible);
  EXPECT_EQ(reduction.method, "closed-form-fork");

  const auto exact = solve_mode(instance, kInf, rc::LeakageMode::kExact);
  ASSERT_TRUE(exact.feasible);
  // Forks take the scalar single-variable waterfill, not a barrier run.
  EXPECT_EQ(exact.method, "waterfill-exact-leaky");
  expect_schedule_feasible(instance, exact);

  const auto energy_at = [](double d0) {
    const double leaf = 1.5 - d0;
    return 1.0 / (d0 * d0) + 2.0 / (leaf * leaf) + 3.0 * (3.0 - d0);
  };
  const double d0_star = golden_min(energy_at, 0.1, 1.0 / 1.1447);
  EXPECT_NEAR(exact.energy, energy_at(d0_star), 1e-5 * energy_at(d0_star));
  // Root strictly slower than the reduction's dynamic optimum, leaves
  // slightly faster.
  EXPECT_LT(exact.speeds[0], reduction.speeds[0] * (1.0 - 1e-3));
  EXPECT_LT(exact.energy, reduction.energy * (1.0 - 1e-3));
}

TEST(ExactLeaky, MixedPstatForkWaterfillMatchesGolden) {
  // Fork root -> two leaves on three processors with distinct leakage:
  // root pure s^3, leaf 1 P_stat = 3 (free duration 1/(3/2)^(1/3) ~
  // 0.8736), leaf 2 pure (always window-bound). D = 1.5. The exact
  // optimum couples through the single root duration d0:
  //   f(d0) = 1/d0^2
  //         + [D - d0 < 0.8736] squeezed leaf-1 cost, else its free cost
  //         + 1/(D-d0)^2 + (D-d0) pure-leaf dynamic charge... computed
  // below exactly as the duration-charged objective.
  const auto app = rg::make_fork({1.0, 1.0, 1.0});
  rs::Mapping mapping(3);
  mapping.assign(0, 0);
  mapping.assign(1, 1);
  mapping.assign(2, 2);
  const auto instance = rc::make_instance(
      app, 1.5,
      rm::Platform({{rm::make_power_model(3.0, 0.0), kInf},
                    {rm::make_power_model(3.0, 3.0), kInf},
                    {rm::make_power_model(3.0, 0.0), kInf}}),
      mapping);

  const auto reduction = solve_mode(instance, kInf, rc::LeakageMode::kReduction);
  const auto exact = solve_mode(instance, kInf, rc::LeakageMode::kExact);
  ASSERT_TRUE(reduction.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.method, "waterfill-exact-leaky");
  expect_schedule_feasible(instance, exact);

  // Duration-charged objective with leaf 1 free below its critical
  // duration d1_free (cost flat beyond it) and both pure tasks always
  // window/deadline-bound.
  const double d1_free = 1.0 / std::cbrt(3.0 / 2.0);
  const auto f = [&](double d0) {
    const double window = 1.5 - d0;
    const double d1 = std::min(window, d1_free);
    return 1.0 / (d0 * d0) + (3.0 * d1 + 1.0 / (d1 * d1)) +
           1.0 / (window * window);
  };
  const double d0_star = golden_min(f, 0.2, 1.2);
  EXPECT_NEAR(exact.energy, f(d0_star), 1e-5 * f(d0_star));
  EXPECT_LE(exact.energy, reduction.energy * (1.0 + rc::kFeasibilityRelTol));
}

TEST(ExactLeaky, BitIdenticalWhereReductionIsExact) {
  reclaim::util::Rng rng(41);

  // (a) Uniform-P_stat chains: deadline-bound (slack 1.3) and floor-bound
  // (slack 6) both delegate to the reduction, method included.
  for (const double slack : {1.3, 6.0}) {
    const auto chain = rg::make_chain(6, rng);
    const double deadline = slack * rc::min_deadline(chain, 2.0);
    const auto instance =
        rc::make_instance(chain, deadline, rm::make_power_model(3.0, 0.8));
    expect_identical(solve_mode(instance, 2.0, rc::LeakageMode::kReduction),
                     solve_mode(instance, 2.0, rc::LeakageMode::kExact));
  }

  // (b) P_stat = 0: every shape delegates (the floor is 0), closed forms
  // and all.
  std::vector<rg::Digraph> apps;
  apps.push_back(rg::make_chain(5, rng));
  apps.push_back(rg::make_fork(4, rng));
  apps.push_back(rg::make_random_out_tree(7, rng));
  apps.push_back(rg::make_stencil(3, 3, rng));
  for (const auto& app : apps) {
    const double deadline = 1.4 * rc::min_deadline(app, 2.0);
    const auto instance =
        rc::make_instance(app, deadline, rm::make_power_model(3.0, 0.0));
    expect_identical(solve_mode(instance, 2.0, rc::LeakageMode::kReduction),
                     solve_mode(instance, 2.0, rc::LeakageMode::kExact));
  }

  // (c) Binding floors on a parallel shape: a fork with ample slack puts
  // every task at s_crit, where the reduction is exact but only
  // detectably so a posteriori — the exact route must keep the
  // reduction's (floored-numeric) solution bit-identically instead of
  // churning it within barrier noise.
  {
    const auto fork = rg::make_fork({1.0, 1.0, 2.0});
    const auto instance =
        rc::make_instance(fork, 50.0, rm::make_power_model(3.0, 2.0));
    const auto reduction =
        solve_mode(instance, kInf, rc::LeakageMode::kReduction);
    ASSERT_TRUE(reduction.feasible);
    EXPECT_EQ(reduction.method, "numeric-barrier");  // the floor binds
    expect_identical(reduction, solve_mode(instance, kInf,
                                           rc::LeakageMode::kExact));
  }

}

TEST(ExactLeaky, FlooredMixedPstatChainStillImproves) {
  // PR 4's hand-computed floored fixture (T0 pure -> T1 with s_crit = 1,
  // D = 4): the reduction pins d1 = 1 at the floor and gives the rest to
  // d0 (energy 1/9 + 3). The deadline binds, so the true optimum trades
  // at the margin: T1 runs slightly *above* its critical speed (its cost
  // is flat there to first order) to hand the leakage-free task more
  // duration — minimize f(d1) = 1/(4-d1)^2 + 1/d1^2 + 2 d1 over d1 in
  // (0, 1], optimal at d1 ~ 0.988. A small but genuine gap even on a
  // floored chain.
  const auto instance = two_proc_chain(
      1.0, 1.0, 4.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 2.0), kInf});
  const auto reduction = solve_mode(instance, kInf, rc::LeakageMode::kReduction);
  const auto exact = solve_mode(instance, kInf, rc::LeakageMode::kExact);
  ASSERT_TRUE(reduction.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(reduction.energy, 1.0 / 9.0 + 3.0, 1e-5);
  EXPECT_EQ(exact.method, "waterfill-exact-leaky");
  expect_schedule_feasible(instance, exact);

  const auto f = [](double d1) {
    const double d0 = 4.0 - d1;
    return 1.0 / (d0 * d0) + 1.0 / (d1 * d1) + 2.0 * d1;
  };
  const double d1_star = golden_min(f, 0.5, 1.0);
  EXPECT_NEAR(d1_star, 0.988, 2e-3);
  EXPECT_NEAR(exact.energy, f(d1_star), 1e-6 * f(d1_star));
  EXPECT_LT(exact.energy, reduction.energy);
}

TEST(ExactLeaky, ThreadsThroughSolveAndEngineWithDistinctMemoKeys) {
  const auto instance = two_proc_chain(
      1.0, 1.0, 1.0, {rm::make_power_model(3.0, 0.0), kInf},
      {rm::make_power_model(3.0, 12.0), kInf});
  const rm::EnergyModel cont = rm::ContinuousModel{kInf};

  rc::SolveOptions reduction_options;
  rc::SolveOptions exact_options;
  exact_options.leakage = rc::LeakageMode::kExact;

  // core::solve routes the mode into the continuous dispatcher.
  const auto reduction = rc::solve(instance, cont, reduction_options);
  const auto exact = rc::solve(instance, cont, exact_options);
  ASSERT_TRUE(reduction.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_LT(exact.energy, reduction.energy * 0.99);

  // The memo key carries a mode bit: Exact and Reduction solutions of the
  // same instance must never alias.
  EXPECT_NE(re::instance_key(instance, cont, reduction_options),
            re::instance_key(instance, cont, exact_options));

  re::EngineOptions engine_options;
  engine_options.threads = 1;
  re::ReclaimEngine engine(engine_options);
  const auto e_reduction = engine.solve_one(instance, cont, reduction_options);
  const auto e_exact = engine.solve_one(instance, cont, exact_options);
  expect_identical(e_reduction, reduction);
  expect_identical(e_exact, exact);
  EXPECT_EQ(engine.stats().fresh_solves, 2u);
  EXPECT_EQ(engine.stats().memo_hits, 0u);

  // Repeats hit the memo, each mode its own entry.
  expect_identical(engine.solve_one(instance, cont, exact_options), e_exact);
  expect_identical(engine.solve_one(instance, cont, reduction_options),
                   e_reduction);
  EXPECT_EQ(engine.stats().memo_hits, 2u);
}

// Seeded randomized differential suite, driven through the shared fuzz
// harness (tests/fuzz_harness.hpp): random DAG/platform instances
// cross-checking Exact vs Reduction (never worse, both deadline- and
// cap-feasible, bookkeeping exact) and, on uncapped instances, vs the
// Vdd-Hopping LP (whose mode-profile optimum is an upper bound on the
// continuous one by Jensen's inequality). Seed 20260729 with the
// harness's draw order reproduces the pre-harness instances
// bit-identically.
TEST(ExactLeakyFuzz, DifferentialAgainstReductionAndVddLp) {
  const double s_top = 2.0;
  const rm::ModeSet modes({0.4, 0.7, 1.0, 1.3, 1.6, 2.0});
  const std::size_t trials = rt::fuzz_trials(200);

  rt::FuzzOptions fuzz;
  fuzz.seed = 20260729;
  fuzz.trials = trials;
  fuzz.s_top = s_top;
  fuzz.app = rt::six_family_app;
  // 1-3 processors; every 4th trial is fully uncapped so the Vdd LP
  // cross-check is a valid upper bound (mode sets are platform-wide; caps
  // bind the continuous family only).
  fuzz.procs = [](std::size_t trial) { return 1 + trial % 3; };
  fuzz.platform = [&](std::size_t trial, std::size_t procs,
                      reclaim::util::Rng& rng) {
    return rt::mixed_leaky_platform(trial, procs, rng, s_top);
  };

  std::size_t improved = 0;
  std::size_t vdd_checked = 0;
  rt::run_fuzz(fuzz, [&](const rt::FuzzTrial& t) {
    const std::size_t trial = t.index;
    const rc::Instance& instance = t.instance;
    const auto reduction =
        solve_mode(instance, s_top, rc::LeakageMode::kReduction);
    const auto exact = solve_mode(instance, s_top, rc::LeakageMode::kExact);
    ASSERT_TRUE(reduction.feasible) << "trial " << trial;
    ASSERT_TRUE(exact.feasible) << "trial " << trial;

    expect_schedule_feasible(instance, reduction);
    expect_schedule_feasible(instance, exact);

    // The acceptance invariant: Exact never worse than Reduction.
    EXPECT_LE(exact.energy,
              reduction.energy * (1.0 + rc::kFeasibilityRelTol))
        << "trial " << trial;
    if (exact.energy < reduction.energy * (1.0 - 1e-6)) ++improved;

    if (trial % 4 == 0) {
      // Vdd-Hopping upper bound: any mode profile induces per-task
      // windows whose constant-speed execution is no more expensive
      // (P(s) is convex), so the continuous exact optimum is cheaper
      // within solver tolerance.
      const auto vdd = rc::solve(instance, rm::VddHoppingModel{modes});
      ASSERT_TRUE(vdd.feasible) << "trial " << trial;
      EXPECT_LE(exact.energy, vdd.energy * (1.0 + 1e-6))
          << "trial " << trial;
      ++vdd_checked;
    }
  });
  // The sweep must genuinely exercise both sides of the differential —
  // but only a full-length run can meet the full-run quotas.
  if (trials >= 200) {
    EXPECT_GE(improved, 10u);
    EXPECT_GE(vdd_checked, 50u);
  }
}
