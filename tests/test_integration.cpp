// End-to-end integration tests: task graph -> mapping -> execution graph
// -> MinEnergy under every model, with the full cross-model ordering chain
// the theory implies, on realistic application DAGs.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/baselines.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/vdd/lp_solver.hpp"
#include "core/vdd/two_mode.hpp"
#include "graph/generators.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

namespace {

/// Builds the execution graph of `g` list-scheduled on `p` processors and
/// an instance with deadline = slack * list-schedule makespan at s_max.
rc::Instance pipeline_instance(const rg::Digraph& g, std::size_t p,
                               double s_max, double slack) {
  const auto schedule = rs::list_schedule(g, p, s_max);
  const auto exec = rs::build_execution_graph(g, schedule.mapping);
  return rc::make_instance(exec, slack * schedule.makespan);
}

}  // namespace

TEST(Pipeline, CholeskyEndToEnd) {
  const auto g = rg::make_tiled_cholesky(4);
  auto instance = pipeline_instance(g, 3, 2.0, 1.5);
  const rm::ModeSet modes({0.5, 1.0, 1.5, 2.0});

  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  const auto vdd = rc::solve_vdd_lp(instance, rm::VddHoppingModel{modes});
  const auto round = rc::solve_round_up(instance, modes);
  const auto nodvfs =
      rc::solve_no_dvfs(instance, rm::DiscreteModel{modes});
  const auto uniform =
      rc::solve_uniform(instance, rm::DiscreteModel{modes});

  ASSERT_TRUE(cont.feasible);
  ASSERT_TRUE(vdd.solution.feasible);
  ASSERT_TRUE(round.solution.feasible);
  ASSERT_TRUE(nodvfs.feasible);
  ASSERT_TRUE(uniform.feasible);

  // The theory's ordering chain.
  EXPECT_LE(cont.energy, vdd.solution.energy * (1.0 + 1e-7));
  EXPECT_LE(vdd.solution.energy, round.solution.energy * (1.0 + 1e-7));
  EXPECT_LE(round.solution.energy, nodvfs.energy * (1.0 + 1e-7));
  EXPECT_LE(uniform.energy, nodvfs.energy * (1.0 + 1e-7));

  // Reclaiming is worthwhile: with 1.5x slack, the continuous optimum
  // saves a lot over running flat out.
  EXPECT_LT(cont.energy, 0.7 * nodvfs.energy);
}

TEST(Pipeline, LuWithVddProfilesValidates) {
  const auto g = rg::make_tiled_lu(3);
  auto instance = pipeline_instance(g, 2, 2.0, 1.4);
  const rm::VddHoppingModel model{rm::ModeSet({0.5, 1.0, 2.0})};
  const auto vdd = rc::solve_vdd_lp(instance, model);
  ASSERT_TRUE(vdd.solution.feasible);
  rs::validate_profiles(instance.exec_graph, vdd.solution.profiles,
                        rm::EnergyModel{model}, instance.deadline, 1e-6);
  const auto two_mode = rc::solve_vdd_two_mode(instance, model);
  ASSERT_TRUE(two_mode.feasible);
  EXPECT_GE(two_mode.energy, vdd.solution.energy * (1.0 - 1e-7));
}

TEST(Pipeline, FftMoreProcessorsMoreParallelSlack) {
  const auto g = rg::make_fft(3);
  // Same absolute deadline; more processors => shorter list schedule =>
  // more reclaimable slack => lower energy.
  const double deadline = rs::list_schedule(g, 1, 2.0).makespan;  // serial time
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t p : {1u, 2u, 4u}) {
    const auto schedule = rs::list_schedule(g, p, 2.0);
    const auto exec = rs::build_execution_graph(g, schedule.mapping);
    auto instance = rc::make_instance(exec, deadline);
    const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
    ASSERT_TRUE(cont.feasible) << p;
    EXPECT_LE(cont.energy, previous * (1.0 + 1e-9)) << p;
    previous = cont.energy;
  }
}

TEST(Pipeline, StencilRoundRobinVsListMapping) {
  Rng rng(61);
  const auto g = rg::make_stencil(4, 4, rng);
  const double s_max = 2.0;
  // A fixed absolute deadline derived from the list schedule.
  const auto list = rs::list_schedule(g, 2, s_max);
  const double deadline = 1.5 * list.makespan;

  const auto exec_list = rs::build_execution_graph(g, list.mapping);
  auto list_instance = rc::make_instance(exec_list, deadline);
  const auto e_list =
      rc::solve_continuous(list_instance, rm::ContinuousModel{s_max});

  const auto exec_rr =
      rs::build_execution_graph(g, rs::round_robin_mapping(g, 2));
  auto rr_instance = rc::make_instance(exec_rr, deadline);
  const auto e_rr =
      rc::solve_continuous(rr_instance, rm::ContinuousModel{s_max});

  // Both mappings must be solvable; the list mapping's execution graph has
  // a shorter critical path, so it can only reclaim more (or equal).
  ASSERT_TRUE(e_list.feasible);
  if (e_rr.feasible) {
    EXPECT_LE(e_list.energy, e_rr.energy * (1.0 + 1e-7));
  }
}

TEST(Pipeline, SingleProcessorChainBehavesLikeChain) {
  Rng rng(62);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const auto exec =
      rs::build_execution_graph(g, rs::single_processor_mapping(g));
  const double total = g.total_weight();
  auto instance = rc::make_instance(exec, total);  // uniform speed 1 fits
  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont.feasible);
  // On one processor the optimum runs everything at total/D = 1.
  for (rg::NodeId v = 0; v < exec.num_nodes(); ++v) {
    if (exec.weight(v) > 0.0) {
      EXPECT_NEAR(cont.speeds[v], 1.0, 1e-5);
    }
  }
  EXPECT_NEAR(cont.energy, total, 1e-4 * total);
}

TEST(Pipeline, TighterDeadlineCostsMore) {
  const auto g = rg::make_tiled_cholesky(3);
  const auto schedule = rs::list_schedule(g, 2, 2.0);
  const auto exec = rs::build_execution_graph(g, schedule.mapping);
  const rm::ModeSet modes({0.5, 1.0, 1.5, 2.0});
  double previous = 0.0;
  for (double slack : {3.0, 2.0, 1.5, 1.2, 1.05}) {
    auto instance = rc::make_instance(exec, slack * schedule.makespan);
    const auto round = rc::solve_round_up(instance, modes);
    ASSERT_TRUE(round.solution.feasible) << slack;
    EXPECT_GE(round.solution.energy, previous * (1.0 - 1e-9)) << slack;
    previous = round.solution.energy;
  }
}

TEST(Pipeline, InfeasibleMappingOrderSurfacesEarly) {
  rg::Digraph g(2, 1.0);
  g.add_edge(0, 1);
  rs::Mapping bad(2);
  bad.assign(0, 1);
  bad.assign(0, 0);
  EXPECT_THROW((void)rs::build_execution_graph(g, bad),
               reclaim::InvalidArgument);
}

TEST(Pipeline, BaselinesOnInfeasibleDeadline) {
  const auto g = rg::make_tiled_cholesky(3);
  const auto schedule = rs::list_schedule(g, 2, 2.0);
  const auto exec = rs::build_execution_graph(g, schedule.mapping);
  auto instance = rc::make_instance(exec, 0.5 * schedule.makespan);
  const rm::ModeSet modes({1.0, 2.0});
  EXPECT_FALSE(rc::solve_no_dvfs(instance, rm::DiscreteModel{modes}).feasible);
  EXPECT_FALSE(rc::solve_uniform(instance, rm::DiscreteModel{modes}).feasible);
  EXPECT_FALSE(
      rc::solve_continuous(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(Pipeline, UniformBaselineContinuousVsDiscrete) {
  const auto g = rg::make_chain({2.0, 2.0, 2.0});
  auto instance = rc::make_instance(g, 8.0);
  // Continuous uniform: speed 6/8 = 0.75.
  const auto cont_uniform =
      rc::solve_uniform(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont_uniform.feasible);
  EXPECT_NEAR(cont_uniform.speeds[0], 0.75, 1e-12);
  // Discrete uniform rounds up to the next mode.
  const auto disc_uniform =
      rc::solve_uniform(instance, rm::DiscreteModel{rm::ModeSet({0.5, 1.0, 2.0})});
  ASSERT_TRUE(disc_uniform.feasible);
  EXPECT_DOUBLE_EQ(disc_uniform.speeds[0], 1.0);
  // On a chain the continuous uniform baseline IS the continuous optimum.
  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  EXPECT_NEAR(cont.energy, cont_uniform.energy, 1e-9);
}

TEST(Pipeline, EnergyRatioHelpers) {
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 4.0);
  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  const auto nodvfs = rc::solve_no_dvfs(
      instance, rm::DiscreteModel{rm::ModeSet({1.0, 2.0})});
  ASSERT_TRUE(cont.feasible && nodvfs.feasible);
  const double ratio = rc::energy_ratio(nodvfs, cont);
  EXPECT_GE(ratio, 1.0);
  // Chain at uniform speed 1 vs all at 2: energies 4 vs 16 -> ratio 4.
  EXPECT_NEAR(ratio, 4.0, 1e-6);
}
