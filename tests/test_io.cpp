// Unit tests for io/: task-graph and mapping parsing, round trips,
// solution output, and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/continuous/dispatch.hpp"
#include "core/problem.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"
#include "sched/execution_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ri = reclaim::io;
namespace rg = reclaim::graph;
namespace rc = reclaim::core;
namespace rs = reclaim::sched;
namespace rm = reclaim::model;
using reclaim::util::Rng;

namespace {

constexpr const char* kDiamond = R"(
# a diamond
task a 2.0
task b 3.5
task c 1.0
task d 4.0
edge a b
edge a c
edge b d
edge c d
)";

}  // namespace

TEST(GraphIo, ParsesTasksAndEdges) {
  const auto g = ri::read_task_graph_from_string(kDiamond);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.name(0), "a");
  EXPECT_DOUBLE_EQ(g.weight(1), 3.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  const auto g = ri::read_task_graph_from_string(
      "task x 1  # trailing comment\n\n   \n# full comment\ntask y 2\n");
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GraphIo, RoundTrip) {
  Rng rng(1);
  const auto original = rg::make_layered(3, 3, 0.6, rng);
  std::ostringstream out;
  ri::write_task_graph(out, original);
  const auto parsed = ri::read_task_graph_from_string(out.str());
  ASSERT_EQ(parsed.num_nodes(), original.num_nodes());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (rg::NodeId v = 0; v < original.num_nodes(); ++v) {
    EXPECT_NEAR(parsed.weight(v), original.weight(v), 1e-9);
    EXPECT_EQ(parsed.successors(v), original.successors(v));
  }
}

TEST(GraphIo, ErrorsCarryLineNumbers) {
  try {
    (void)ri::read_task_graph_from_string("task a 1\nbogus b c\n");
    FAIL() << "expected a throw";
  } catch (const reclaim::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW((void)ri::read_task_graph_from_string("task a\n"),
               reclaim::InvalidArgument);  // missing weight
  EXPECT_THROW((void)ri::read_task_graph_from_string("task a -1\n"),
               reclaim::InvalidArgument);  // negative weight
  EXPECT_THROW((void)ri::read_task_graph_from_string("task a 1x\n"),
               reclaim::InvalidArgument);  // trailing junk
  EXPECT_THROW((void)ri::read_task_graph_from_string("task a 1\ntask a 2\n"),
               reclaim::InvalidArgument);  // duplicate name
  EXPECT_THROW((void)ri::read_task_graph_from_string("edge a b\n"),
               reclaim::InvalidArgument);  // unknown endpoints
  EXPECT_THROW((void)ri::read_task_graph_from_string(
                   "task a 1\ntask b 1\nedge a b\nedge a b\n"),
               reclaim::InvalidArgument);  // duplicate edge
}

TEST(MappingIo, ParsesAndRoundTrips) {
  const auto g = ri::read_task_graph_from_string(kDiamond);
  const auto mapping =
      ri::read_mapping_from_string("proc a b d\nproc c\n", g);
  EXPECT_EQ(mapping.num_processors(), 2u);
  EXPECT_EQ(mapping.tasks_on(0), (std::vector<rg::NodeId>{0, 1, 3}));
  EXPECT_EQ(mapping.tasks_on(1), (std::vector<rg::NodeId>{2}));

  std::ostringstream out;
  ri::write_mapping(out, mapping, g);
  const auto reparsed = ri::read_mapping_from_string(out.str(), g);
  EXPECT_EQ(reparsed.tasks_on(0), mapping.tasks_on(0));
  EXPECT_EQ(reparsed.tasks_on(1), mapping.tasks_on(1));

  // The parsed mapping builds a valid execution graph.
  EXPECT_NO_THROW((void)rs::build_execution_graph(g, mapping));
}

TEST(MappingIo, RejectsUnknownTasksAndDirectives) {
  const auto g = ri::read_task_graph_from_string(kDiamond);
  EXPECT_THROW((void)ri::read_mapping_from_string("proc nope\n", g),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)ri::read_mapping_from_string("cpu a\n", g),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)ri::read_mapping_from_string("", g),
               reclaim::InvalidArgument);
}

TEST(SolutionIo, ConstantSpeedOutput) {
  const auto g = ri::read_task_graph_from_string("task a 2\ntask b 2\nedge a b\n");
  auto instance = rc::make_instance(g, 4.0);
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  std::ostringstream out;
  ri::write_solution(out, instance, s);
  const std::string text = out.str();
  EXPECT_NE(text.find("a 1 2"), std::string::npos);  // speed 1, energy w*s^2=2
  EXPECT_NE(text.find("total 4"), std::string::npos);
}

TEST(SolutionIo, InfeasibleOutput) {
  const auto g = ri::read_task_graph_from_string("task a 2\n");
  auto instance = rc::make_instance(g, 4.0);
  std::ostringstream out;
  ri::write_solution(out, instance, rc::infeasible_solution("x"));
  EXPECT_EQ(out.str(), "infeasible\n");
}

TEST(SolutionIo, UnnamedTasksGetSyntheticNames) {
  rg::Digraph g(2, 1.0);
  std::ostringstream out;
  ri::write_task_graph(out, g);
  EXPECT_NE(out.str().find("task T0 1"), std::string::npos);
  EXPECT_NE(out.str().find("task T1 1"), std::string::npos);
}
