// Tests for the unified solve() front door, the PATH-STRETCH baseline,
// and the energy/deadline tradeoff utilities.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "core/tradeoff.hpp"
#include "core/vdd/lp_solver.hpp"
#include "graph/generators.hpp"
#include "graph/topo.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

TEST(Solve, DispatchesPerModel) {
  Rng rng(81);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const rm::ModeSet modes({0.6, 1.2, 2.0});
  auto instance = rc::make_instance(g, rc::min_deadline(g, 2.0) * 1.4);

  const auto cont = rc::solve(instance, rm::ContinuousModel{2.0});
  EXPECT_TRUE(cont.feasible);

  const auto vdd = rc::solve(instance, rm::VddHoppingModel{modes});
  EXPECT_TRUE(vdd.feasible);
  EXPECT_EQ(vdd.method, "vdd-lp");
  EXPECT_TRUE(vdd.uses_profiles());

  // 9 tasks <= exact_discrete_up_to: exact solver.
  const auto disc = rc::solve(instance, rm::DiscreteModel{modes});
  EXPECT_TRUE(disc.feasible);
  EXPECT_EQ(disc.method, "discrete-bb");

  const auto inc = rc::solve(instance, rm::IncrementalModel(0.5, 2.0, 0.25));
  EXPECT_TRUE(inc.feasible);
}

TEST(Solve, LargeDiscreteFallsBackToRounding) {
  Rng rng(82);
  const auto g = rg::make_layered(4, 4, 0.5, rng);  // 16 tasks > 12
  const rm::ModeSet modes({0.6, 1.2, 2.0});
  auto instance = rc::make_instance(g, rc::min_deadline(g, 2.0) * 1.4);
  const auto disc = rc::solve(instance, rm::DiscreteModel{modes});
  EXPECT_TRUE(disc.feasible);
  EXPECT_EQ(disc.method, "cont-round");

  rc::SolveOptions force_exact;
  force_exact.exact_discrete_up_to = 16;
  const auto exact = rc::solve(instance, rm::DiscreteModel{modes}, force_exact);
  EXPECT_EQ(exact.method, "discrete-bb");
  EXPECT_LE(exact.energy, disc.energy * (1.0 + 1e-7));
}

TEST(PathStretch, FeasibleAndSandwiched) {
  Rng rng(83);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = rg::make_layered(4, 3, 0.5, rng);
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.1, 2.5);
    auto instance = rc::make_instance(g, d);
    const rm::EnergyModel cont = rm::ContinuousModel{2.0};

    const auto stretch = rc::solve_path_stretch(instance, cont);
    const auto optimal = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
    const auto uniform = rc::solve_uniform(instance, cont);
    ASSERT_TRUE(stretch.feasible && optimal.feasible && uniform.feasible);

    rs::validate_constant_speeds(g, stretch.speeds, cont, d, 1e-7);
    // E_Continuous <= E_PATH-STRETCH <= E_UNIFORM.
    EXPECT_GE(stretch.energy, optimal.energy * (1.0 - 1e-9)) << trial;
    EXPECT_LE(stretch.energy, uniform.energy * (1.0 + 1e-9)) << trial;
  }
}

TEST(PathStretch, CriticalTasksRunAtUniformSpeed) {
  Rng rng(84);
  const auto g = rg::make_layered(4, 3, 0.5, rng);
  const double d = rc::min_deadline(g, 2.0) * 1.5;
  auto instance = rc::make_instance(g, d);
  const auto stretch =
      rc::solve_path_stretch(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(stretch.feasible);
  const double uniform_speed = rc::critical_weight(g) / d;
  const auto cp = rg::critical_path(g);
  for (rg::NodeId v : cp.nodes) {
    if (g.weight(v) > 0.0) {
      EXPECT_NEAR(stretch.speeds[v], uniform_speed, 1e-9);
    }
  }
}

TEST(PathStretch, ModeRoundingStaysFeasible) {
  Rng rng(85);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const rm::ModeSet modes({0.5, 1.0, 1.5, 2.0});
  const double d = rc::min_deadline(g, 2.0) * 1.3;
  auto instance = rc::make_instance(g, d);
  const rm::EnergyModel disc = rm::DiscreteModel{modes};
  const auto stretch = rc::solve_path_stretch(instance, disc);
  ASSERT_TRUE(stretch.feasible);
  rs::validate_constant_speeds(g, stretch.speeds, disc, d, 1e-7);
}

TEST(PathStretch, InfeasibleBelowDmin) {
  const auto g = rg::make_chain({4.0, 4.0});
  auto instance = rc::make_instance(g, 1.0);
  EXPECT_FALSE(
      rc::solve_path_stretch(instance, rm::ContinuousModel{2.0}).feasible);
}

TEST(PathStretch, ChainEqualsUniformEqualsOptimal) {
  // On a chain every task lies on the single path: PATH-STRETCH == UNIFORM
  // == the Continuous optimum.
  const auto g = rg::make_chain({1.0, 3.0, 2.0});
  auto instance = rc::make_instance(g, 6.0);
  const auto stretch =
      rc::solve_path_stretch(instance, rm::ContinuousModel{2.0});
  const auto optimal = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(stretch.feasible && optimal.feasible);
  EXPECT_NEAR(stretch.energy, optimal.energy, 1e-9);
}

TEST(Tradeoff, CurveIsMonotoneAndFlagsInfeasiblePoints) {
  Rng rng(86);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  auto instance = rc::make_instance(g, 1.0);  // deadline replaced per point
  const double d_min = rc::min_deadline(g, 2.0);
  const auto curve = rc::energy_deadline_curve(
      instance, rm::ContinuousModel{2.0}, 0.8 * d_min, 3.0 * d_min, 12);
  ASSERT_EQ(curve.size(), 12u);
  double previous = std::numeric_limits<double>::infinity();
  bool seen_feasible = false;
  for (const auto& point : curve) {
    if (point.deadline < d_min * (1.0 - 1e-9)) {
      EXPECT_FALSE(point.feasible);
      continue;
    }
    ASSERT_TRUE(point.feasible);
    seen_feasible = true;
    EXPECT_LE(point.energy, previous * (1.0 + 1e-9));
    previous = point.energy;
  }
  EXPECT_TRUE(seen_feasible);
}

TEST(Tradeoff, DeadlineForEnergyInvertsTheCurve) {
  Rng rng(87);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, d_min);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  // Pick a target deadline, read its optimal energy, then invert.
  const double target = 1.7 * d_min;
  rc::Instance at{instance.exec_graph, target, instance.platform,
                  instance.assignment};
  const auto reference = rc::solve(at, cont);
  ASSERT_TRUE(reference.feasible);

  const auto inverted = rc::deadline_for_energy(
      instance, cont, reference.energy * (1.0 + 1e-6), d_min, 5.0 * d_min, 1e-7);
  ASSERT_TRUE(inverted.achievable);
  EXPECT_NEAR(inverted.deadline, target, 1e-3 * target);
  EXPECT_LE(inverted.energy, reference.energy * (1.0 + 1e-5));
}

TEST(Tradeoff, UnachievableBudget) {
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 1.0);
  // Even at the loosest deadline the energy floor is > 0.01.
  const auto result = rc::deadline_for_energy(
      instance, rm::ContinuousModel{2.0}, 0.01, 2.0, 4.0);
  EXPECT_FALSE(result.achievable);
}

TEST(Tradeoff, BudgetAlreadyMetAtLowerBound) {
  const auto g = rg::make_chain({2.0, 2.0});
  auto instance = rc::make_instance(g, 1.0);
  const auto result = rc::deadline_for_energy(
      instance, rm::ContinuousModel{2.0}, 1e9, 2.1, 10.0);
  ASSERT_TRUE(result.achievable);
  EXPECT_DOUBLE_EQ(result.deadline, 2.1);
}

TEST(Tradeoff, InvalidArguments) {
  const auto g = rg::make_chain({1.0});
  auto instance = rc::make_instance(g, 1.0);
  EXPECT_THROW((void)rc::energy_deadline_curve(instance, rm::ContinuousModel{1.0},
                                               2.0, 1.0, 3),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::energy_deadline_curve(instance, rm::ContinuousModel{1.0},
                                               1.0, 2.0, 0),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rc::deadline_for_energy(instance, rm::ContinuousModel{1.0},
                                             -1.0, 1.0, 2.0),
               reclaim::InvalidArgument);
}

TEST(Tradeoff, VddCurveDominatedByContinuousCurve) {
  Rng rng(88);
  const auto g = rg::make_layered(3, 2, 0.6, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  auto instance = rc::make_instance(g, d_min);
  const rm::ModeSet modes({0.5, 1.0, 2.0});
  const auto cont = rc::energy_deadline_curve(
      instance, rm::ContinuousModel{2.0}, 1.1 * d_min, 3.0 * d_min, 6);
  const auto vdd = rc::energy_deadline_curve(
      instance, rm::VddHoppingModel{modes}, 1.1 * d_min, 3.0 * d_min, 6);
  for (std::size_t i = 0; i < cont.size(); ++i) {
    ASSERT_TRUE(cont[i].feasible && vdd[i].feasible);
    EXPECT_GE(vdd[i].energy, cont[i].energy * (1.0 - 1e-7));
  }
}
