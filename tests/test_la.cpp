// Unit tests for la/: dense matrix ops, Cholesky, LU.
#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace la = reclaim::la;

namespace {

la::Matrix random_matrix(std::size_t n, reclaim::util::Rng& rng) {
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
  return m;
}

la::Matrix random_spd(std::size_t n, reclaim::util::Rng& rng) {
  // A^T A + n I is comfortably SPD.
  const la::Matrix a = random_matrix(n, rng);
  la::Matrix spd = a.transposed().multiply(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

la::Vector random_vector(std::size_t n, reclaim::util::Rng& rng) {
  la::Vector v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

}  // namespace

TEST(Matrix, IdentityMultiply) {
  const auto eye = la::Matrix::identity(4);
  const la::Vector x{1.0, -2.0, 3.0, 0.5};
  const auto y = eye.multiply(la::Vector(x));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, MultiplyKnownValues) {
  la::Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const auto y = a.multiply(la::Vector{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const auto z = a.multiply_transposed(la::Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  la::Matrix a(2, 3);
  EXPECT_THROW((void)a.multiply(la::Vector{1.0, 2.0}), reclaim::InvalidArgument);
  EXPECT_THROW((void)a.multiply_transposed(la::Vector{1.0, 2.0, 3.0}),
               reclaim::InvalidArgument);
}

TEST(Matrix, MatrixMatrixMultiplyAgainstTranspose) {
  reclaim::util::Rng rng(5);
  const auto a = random_matrix(6, rng);
  const auto at = a.transposed();
  const auto prod = a.multiply(at);
  // (A A^T) is symmetric.
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_NEAR(prod(r, c), prod(c, r), 1e-12);
}

TEST(VectorOps, DotNormAxpy) {
  la::Vector a{1.0, 2.0, 2.0};
  la::Vector b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(la::dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(la::norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(la::norm_inf(b), 2.0);
  la::axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[2], 4.0);
  la::scale(a, 0.5);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

TEST(Cholesky, SolvesKnownSystem) {
  la::Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 3.0;
  const la::Cholesky chol(a);
  const auto x = chol.solve({2.0, 3.0});
  // Solution of [[4,2],[2,3]] x = [2,3]: x = [0, 1].
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Cholesky, RandomSpdResidualsSmall) {
  reclaim::util::Rng rng(31);
  for (std::size_t n : {3u, 8u, 25u, 60u}) {
    const auto a = random_spd(n, rng);
    const auto b = random_vector(n, rng);
    const la::Cholesky chol(a);
    const auto x = chol.solve(b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3 and -1
  EXPECT_THROW(la::Cholesky{a}, reclaim::NumericalError);
}

TEST(Cholesky, JitterLiftsNearSingular) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;  // singular
  EXPECT_NO_THROW(la::Cholesky(a, 1e-8));
}

TEST(Cholesky, LogDetMatchesKnown) {
  la::Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 0.0;
  a(1, 0) = 0.0; a(1, 1) = 9.0;
  const la::Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-12);
}

TEST(Lu, SolvesKnownSystem) {
  la::Matrix a(3, 3);
  a(0, 0) = 0.0; a(0, 1) = 2.0; a(0, 2) = 1.0;  // needs pivoting
  a(1, 0) = 1.0; a(1, 1) = 1.0; a(1, 2) = 1.0;
  a(2, 0) = 2.0; a(2, 1) = 0.0; a(2, 2) = 3.0;
  const la::Lu lu(a);
  const auto x = lu.solve({5.0, 6.0, 13.0});
  const auto b = a.multiply(x);
  EXPECT_NEAR(b[0], 5.0, 1e-10);
  EXPECT_NEAR(b[1], 6.0, 1e-10);
  EXPECT_NEAR(b[2], 13.0, 1e-10);
}

TEST(Lu, RandomSystemsRoundTrip) {
  reclaim::util::Rng rng(77);
  for (std::size_t n : {2u, 5u, 20u, 50u}) {
    const auto a = random_matrix(n, rng);
    const auto b = random_vector(n, rng);
    const la::Lu lu(a);
    const auto x = lu.solve(b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
  }
}

TEST(Lu, SingularThrows) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(la::Lu{a}, reclaim::NumericalError);
}

TEST(Lu, DeterminantKnownValues) {
  la::Matrix a(2, 2);
  a(0, 0) = 3.0; a(0, 1) = 1.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_NEAR(la::Lu(a).det(), 10.0, 1e-12);
}

TEST(Lu, DeterminantSignWithPivoting) {
  la::Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;  // det = -1
  EXPECT_NEAR(la::Lu(a).det(), -1.0, 1e-12);
}
