// Golden-value regression tests: hand-computed optima pinned to exact
// numbers, so algorithmic regressions show up as value drift rather than
// only as cross-solver disagreement.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/continuous/closed_form.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/problem.hpp"
#include "core/vdd/lp_solver.hpp"
#include "graph/generators.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TEST(Golden, SingleTaskEnergyIsWCubedOverDSquared) {
  // E = w^3 / D^2 = 27 / 4.
  auto instance = rc::make_instance(rg::make_chain({3.0}), 2.0);
  const auto s = rc::solve_single(instance, rm::ContinuousModel{kInf});
  EXPECT_DOUBLE_EQ(s.energy, 27.0 / 4.0);
}

TEST(Golden, TwoTaskChain) {
  // Chain {1, 2}, D = 3: speed 1, E = 1*1 + 2*1 = 3.
  auto instance = rc::make_instance(rg::make_chain({1.0, 2.0}), 3.0);
  const auto s = rc::solve_chain(instance, rm::ContinuousModel{kInf});
  EXPECT_DOUBLE_EQ(s.energy, 3.0);
}

TEST(Golden, UnitForkTheoremOneNumbers) {
  // Fork w0 = 1 with two unit leaves, D = 2:
  // l = 2^(1/3); s0 = (2^(1/3) + 1)/2; s_i = s0/2^(1/3).
  auto instance = rc::make_instance(rg::make_fork({1.0, 1.0, 1.0}), 2.0);
  const auto s = rc::solve_fork(instance, rm::ContinuousModel{kInf});
  const double l = std::cbrt(2.0);
  const double s0 = (l + 1.0) / 2.0;
  EXPECT_NEAR(s.speeds[0], s0, 1e-14);
  EXPECT_NEAR(s.speeds[1], s0 / l, 1e-14);
  // E = s0^2 * (l + 1) = (l+1)^3 / 4.
  EXPECT_NEAR(s.energy, std::pow(l + 1.0, 3.0) / 4.0, 1e-12);
}

TEST(Golden, DiamondEquivalentWeight) {
  // Diamond: src(1) -> {2, 2} -> sink(1); W_eq = 1 + 2*2^(1/3)... no:
  // parallel(2,2) = (8+8)^(1/3) = 2 * 2^(1/3); series adds the endpoints.
  rg::Digraph g;
  const auto a = g.add_node(1.0);
  const auto b = g.add_node(2.0);
  const auto c = g.add_node(2.0);
  const auto d = g.add_node(1.0);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  auto instance = rc::make_instance(g, 4.0);
  const auto s = rc::solve_continuous(instance, rm::ContinuousModel{kInf});
  const double weq = 2.0 + 2.0 * std::cbrt(2.0);
  EXPECT_NEAR(s.energy, std::pow(weq, 3.0) / 16.0, 1e-10);
}

TEST(Golden, VddSingleTaskMixEnergy) {
  // w = 3, D = 2, modes {1, 2}: 1s at speed 2 + 1s at speed 1 -> E = 9.
  auto instance = rc::make_instance(rg::make_chain({3.0}), 2.0);
  const auto r =
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})});
  EXPECT_NEAR(r.solution.energy, 9.0, 1e-8);
}

TEST(Golden, VddChainKnownOptimum) {
  // Chain {2, 2}, D = 3, modes {1, 2}. Required average speed 4/3.
  // Optimal: both tasks mix to average 4/3 (convexity => split evenly):
  // per task: a + b = 1.5, a + 2b = 2 -> b = 0.5, a = 1.0;
  // E per task = 1*1 + 8*0.5 = 5 -> total 10.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 3.0);
  const auto r =
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})});
  EXPECT_NEAR(r.solution.energy, 10.0, 1e-8);
}

TEST(Golden, DiscreteTwoTaskKnapsack) {
  // Chain {2, 2}, D = 3, modes {1, 2}: one task at 2, one at 1
  // (duration 1 + 2 = 3). E = 2*4 + 2*1 = 10.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 3.0);
  const auto r = rc::solve_discrete_exact(instance, rm::ModeSet({1.0, 2.0}));
  ASSERT_TRUE(r.solution.feasible);
  EXPECT_DOUBLE_EQ(r.solution.energy, 10.0);
}

TEST(Golden, DiscreteMatchesVddWhenNoMixingHelps) {
  // Chain {2, 2}, D = 3: Vdd = 10 (above) and Discrete = 10 — mixing
  // gains nothing here because the knapsack packs exactly.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 3.0);
  const auto vdd =
      rc::solve_vdd_lp(instance, rm::VddHoppingModel{rm::ModeSet({1.0, 2.0})});
  const auto bb = rc::solve_discrete_exact(instance, rm::ModeSet({1.0, 2.0}));
  EXPECT_NEAR(vdd.solution.energy, bb.solution.energy, 1e-8);
}

TEST(Golden, UniformBaselineChain) {
  // Chain {2, 2, 2}, D = 8: uniform speed 6/8 = 0.75, E = 6 * 0.5625.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0, 2.0}), 8.0);
  const auto s = rc::solve_uniform(instance, rm::ContinuousModel{2.0});
  EXPECT_DOUBLE_EQ(s.energy, 6.0 * 0.5625);
}

TEST(Golden, NoDvfsEnergyIsIndependentOfDeadline) {
  const auto g = rg::make_chain({2.0, 2.0});
  const rm::EnergyModel disc = rm::DiscreteModel{rm::ModeSet({1.0, 2.0})};
  auto a = rc::make_instance(g, 2.0);
  auto b = rc::make_instance(g, 20.0);
  EXPECT_DOUBLE_EQ(rc::solve_no_dvfs(a, disc).energy,
                   rc::solve_no_dvfs(b, disc).energy);
  EXPECT_DOUBLE_EQ(rc::solve_no_dvfs(a, disc).energy, 16.0);  // 4 * 2^2
}

TEST(Golden, PathStretchDiamondNumbers) {
  // Diamond: src(1) -> {b(2), c(1)} -> sink(1), D = 4.
  // Paths through b: 1+2+1 = 4; through c: 1+1+1 = 3; critical = 4.
  // s_src = s_b = s_sink = 1, s_c = 3/4.
  rg::Digraph g;
  const auto a = g.add_node(1.0);
  const auto b = g.add_node(2.0);
  const auto c = g.add_node(1.0);
  const auto d = g.add_node(1.0);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  auto instance = rc::make_instance(g, 4.0);
  const auto s = rc::solve_path_stretch(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.speeds[a], 1.0);
  EXPECT_DOUBLE_EQ(s.speeds[b], 1.0);
  EXPECT_DOUBLE_EQ(s.speeds[c], 0.75);
  EXPECT_DOUBLE_EQ(s.speeds[d], 1.0);
  EXPECT_DOUBLE_EQ(s.energy, 1.0 + 2.0 + 1.0 * 0.5625 + 1.0);
}

TEST(Golden, SaturatedForkExactNumbers) {
  // Fork {4; 0.9, 0.8}, D = 2.5, s_max = 2 (the E1/E2 saturated case):
  // s0 = 2, window = 0.5, E = 4*4 + 0.9*(1.8)^2 + 0.8*(1.6)^2.
  auto instance = rc::make_instance(rg::make_fork({4.0, 0.9, 0.8}), 2.5);
  const auto s = rc::solve_fork(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.energy, 16.0 + 0.9 * 3.24 + 0.8 * 2.56, 1e-12);
}

TEST(Golden, AlphaTwoChain) {
  // alpha = 2: E = sum w * s. Chain {1, 2}, D = 3 -> speed 1, E = 3.
  auto instance = rc::make_instance(rg::make_chain({1.0, 2.0}), 3.0, 2.0);
  const auto s = rc::solve_chain(instance, rm::ContinuousModel{kInf});
  EXPECT_DOUBLE_EQ(s.energy, 3.0);
  // Tighter deadline D = 1.5 -> speed 2, E = 6 (linear in speed).
  auto tight = rc::make_instance(rg::make_chain({1.0, 2.0}), 1.5, 2.0);
  const auto t = rc::solve_chain(tight, rm::ContinuousModel{kInf});
  EXPECT_DOUBLE_EQ(t.energy, 6.0);
}
