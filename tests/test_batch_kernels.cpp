// Batched fast-path tests: kernel-vs-scalar bit-identity (fuzzed),
// warm-start determinism under the acceptance guard, arena scratch reuse
// (no steady-state allocation growth), and the EngineStats counters that
// split kernel-path from scalar-path solves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/analysis.hpp"
#include "core/continuous/batch_kernels.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/reclaim_engine.hpp"
#include "graph/generators.hpp"
#include "model/energy_model.hpp"
#include "model/platform.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace re = reclaim::engine;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace ru = reclaim::util;

namespace {

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
}

/// A homogeneous sweep: one topology family, shared power model, weights
/// and deadlines varying per instance — exactly the shape the kernels
/// batch. `tight_fraction` of the deadlines are squeezed toward D_min so
/// cap-saturated and infeasible branches get exercised too.
std::vector<rc::Instance> homogeneous_sweep(std::uint64_t seed,
                                            std::size_t count,
                                            const std::string& family,
                                            rm::PowerModel power,
                                            double tight_fraction = 0.25) {
  ru::Rng rng(seed);
  std::vector<rc::Instance> out;
  out.reserve(count);
  // One topology per sweep: same node count and edge set, varying weights.
  // Tree/SP families share one randomly generated base topology (the very
  // thing the batch planner keys on); everything else is rebuilt from the
  // weights directly.
  const std::size_t n = 6;
  std::optional<rg::Digraph> base;
  if (family == "outtree") {
    base = rg::make_random_out_tree(8, rng);
  } else if (family == "intree") {
    base = rg::make_random_in_tree(8, rng);
  } else if (family == "sp") {
    base = rg::make_random_series_parallel(8, rng);
  }
  std::vector<double> weights(family == "single" ? 1
                              : base              ? base->num_nodes()
                                                  : n);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& w : weights) w = rng.uniform(0.5, 4.0);
    if (i % 7 == 3 && weights.size() > 2) weights[1] = 0.0;  // zero-weight task
    rg::Digraph g;
    if (base) {
      g = *base;
      for (rg::NodeId v = 0; v < g.num_nodes(); ++v) g.set_weight(v, weights[v]);
    } else {
      g = family == "chain"  ? rg::make_chain(weights)
          : family == "fork" ? rg::make_fork(weights)
                             : rg::make_chain({weights[0]});
    }
    const double d_min = rc::min_deadline(g, 2.0);
    const double slack =
        (i % 4 == 0 && tight_fraction > 0.0) ? rng.uniform(0.4, 1.05)
                                             : rng.uniform(1.1, 3.0);
    out.push_back(rc::make_instance(std::move(g), slack * d_min, power));
  }
  return out;
}

/// A big.LITTLE-style sweep: one chain topology whose task slots alternate
/// between two processor specs sharing one exponent (the hetero kernel's
/// compatibility rule) but differing in P_stat and cap.
std::vector<rc::Instance> hetero_chain_sweep(std::uint64_t seed,
                                             std::size_t count,
                                             double big_alpha = 3.0,
                                             double little_alpha = 3.0) {
  ru::Rng rng(seed);
  const rm::Platform platform({{rm::make_power_model(big_alpha, 0.2), 2.0},
                               {rm::make_power_model(little_alpha, 0.6), 1.2}});
  const std::size_t n = 6;
  std::vector<std::size_t> assignment(n);
  for (std::size_t v = 0; v < n; ++v) assignment[v] = v % 2;
  std::vector<double> weights(n);
  std::vector<rc::Instance> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& w : weights) w = rng.uniform(0.5, 4.0);
    if (i % 7 == 3) weights[1] = 0.0;
    rg::Digraph g = rg::make_chain(weights);
    // Feasible-by-construction deadlines against the slower cap; every
    // 4th instance squeezed so the cap/floor hand-back branch fires too.
    const double d_min = rc::min_deadline(g, 1.2);
    const double slack =
        i % 4 == 0 ? rng.uniform(0.5, 1.05) : rng.uniform(1.1, 3.0);
    out.push_back(rc::make_instance(std::move(g), slack * d_min, platform,
                                    assignment));
  }
  return out;
}

void expect_batches_identical(std::span<const rc::Instance> instances,
                              const rm::EnergyModel& model,
                              const rc::SolveOptions& options) {
  // threads == 1 takes the fused discover/plan/solve pass, threads > 1
  // the sharded pass-1/pass-2 pipeline — both must match the scalar path.
  re::EngineOptions kernel_opts;
  kernel_opts.threads = 1;
  kernel_opts.memoize = false;  // force every instance through a solver
  re::EngineOptions pooled_opts = kernel_opts;
  pooled_opts.threads = 4;
  re::EngineOptions scalar_opts = kernel_opts;
  scalar_opts.use_kernels = false;

  re::ReclaimEngine with_kernels(kernel_opts);
  re::ReclaimEngine pooled(pooled_opts);
  re::ReclaimEngine scalar(scalar_opts);
  const auto fast = with_kernels.solve_batch(instances, model, options);
  const auto pooled_fast = pooled.solve_batch(instances, model, options);
  const auto slow = scalar.solve_batch(instances, model, options);
  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(pooled_fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    expect_identical(fast[i], slow[i]);
    expect_identical(pooled_fast[i], slow[i]);
  }
  // The sweep is one long homogeneous run: the kernel engine must have
  // actually taken the fast path, and the scalar engine must not have.
  EXPECT_GT(with_kernels.stats().kernel_solves, 0u);
  EXPECT_EQ(scalar.stats().kernel_solves, 0u);
}

}  // namespace

// ------------------------------------------------------ bit-identity fuzz

TEST(BatchKernels, ChainSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(homogeneous_sweep(17, 200, "chain", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, SingleTaskSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.5};
  expect_batches_identical(homogeneous_sweep(19, 150, "single", rm::PowerLaw(3.0)), cont,
                           {});
}

TEST(BatchKernels, ForkSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(homogeneous_sweep(23, 200, "fork", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, LeakyChainSweepBitIdentical) {
  // Static power engages the s_crit floor in the closed forms.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(29, 200, "chain", rm::StaticPowerLaw(3.0, 0.5)), cont,
      {});
}

TEST(BatchKernels, LeakyForkSweepBitIdenticalUnderReduction) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(31, 200, "fork", rm::StaticPowerLaw(3.0, 0.8)), cont,
      {});
}

TEST(BatchKernels, OutTreeSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(101, 200, "outtree", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, InTreeSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(103, 200, "intree", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, SpSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(homogeneous_sweep(107, 200, "sp", rm::PowerLaw(3.0)),
                           cont, {});
}

TEST(BatchKernels, LeakyTreeAndSpSweepsBitIdenticalUnderReduction) {
  // Static power engages the s_crit floor: under-floor solutions must
  // hand back to the scalar path and still match it bit for bit.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(109, 150, "outtree", rm::StaticPowerLaw(3.0, 0.5)),
      cont, {});
  expect_batches_identical(
      homogeneous_sweep(113, 150, "sp", rm::StaticPowerLaw(3.0, 0.8)), cont,
      {});
}

TEST(BatchKernels, ExactLeakyTreeAndSpWithoutStaticPowerBitIdentical) {
  // P_stat = 0 makes the reduction exact a priori, so the tree/SP kernels
  // stay eligible under LeakageMode::kExact.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.leakage = rc::LeakageMode::kExact;
  expect_batches_identical(
      homogeneous_sweep(127, 120, "intree", rm::PowerLaw(3.0)), cont, options);
  expect_batches_identical(homogeneous_sweep(131, 120, "sp", rm::PowerLaw(3.0)),
                           cont, options);
}

TEST(BatchKernels, SminFloorTreeSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.continuous_s_min = 0.9;
  expect_batches_identical(
      homogeneous_sweep(137, 150, "outtree", rm::PowerLaw(3.0)), cont, options);
}

TEST(BatchKernels, HeteroChainSweepBitIdentical) {
  // Shared exponent, per-slot P_stat and caps: the hetero chain kernel
  // must reproduce solve_chain_hetero bit for bit, including the
  // infeasible and hand-back branches on the squeezed instances.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(hetero_chain_sweep(139, 200), cont, {});
}

TEST(BatchKernels, ExactLeakyChainSweepBitIdentical) {
  // Homogeneous leaky chains are exact a priori under the reduction, so
  // the kernels stay valid under LeakageMode::kExact.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.leakage = rc::LeakageMode::kExact;
  expect_batches_identical(
      homogeneous_sweep(37, 150, "chain", rm::StaticPowerLaw(3.0, 0.5)), cont,
      options);
}

TEST(BatchKernels, SminFloorSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.continuous_s_min = 0.9;
  expect_batches_identical(homogeneous_sweep(41, 150, "chain", rm::PowerLaw(3.0)), cont,
                           options);
}

TEST(BatchKernels, MixedFamiliesAndStragglersBitIdentical) {
  // Alternate runs of chains and forks with a general DAG wedged between
  // them: the planner must segment runs correctly and hand the stencil to
  // the scalar path.
  ru::Rng rng(43);
  std::vector<rc::Instance> instances;
  const auto chains = homogeneous_sweep(47, 20, "chain", rm::PowerLaw(3.0));
  const auto forks = homogeneous_sweep(53, 20, "fork", rm::PowerLaw(3.0));
  instances.insert(instances.end(), chains.begin(), chains.end());
  {
    auto g = rg::make_stencil(3, 3, rng);
    const double d = 1.5 * rc::min_deadline(g, 2.0);
    instances.push_back(rc::make_instance(std::move(g), d));
  }
  instances.insert(instances.end(), forks.begin(), forks.end());
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(instances, cont, {});
}

// ----------------------------------------------------- planner predicates

TEST(BatchKernels, PlannerRejectsIneligibleInstances) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions options;
  ru::Rng rng(59);

  // General DAG: no closed form.
  auto stencil = rg::make_stencil(3, 3, rng);
  const auto general =
      rc::make_instance(std::move(stencil), 50.0, 3.0);
  EXPECT_FALSE(rc::plan_kernel(general, cont, options).has_value());

  // Exact-leaky fork with static power: the exact route runs a barrier
  // pass on top of the reduction — not batchable.
  auto fork = rg::make_fork({1.0, 2.0, 3.0});
  const auto leaky_fork = rc::make_instance(std::move(fork), 50.0,
                                            rm::StaticPowerLaw(3.0, 0.5));
  rc::SolveOptions exact;
  exact.leakage = rc::LeakageMode::kExact;
  EXPECT_FALSE(rc::plan_kernel(leaky_fork, cont, exact).has_value());
  EXPECT_TRUE(rc::plan_kernel(leaky_fork, cont, options).has_value());

  // Mode-based models never take the continuous closed forms.
  const rm::EnergyModel discrete =
      rm::DiscreteModel{rm::ModeSet{{0.5, 1.0, 2.0}}};
  auto chain = rg::make_chain({1.0, 2.0});
  const auto chain_inst = rc::make_instance(std::move(chain), 10.0, 3.0);
  EXPECT_FALSE(rc::plan_kernel(chain_inst, discrete, options).has_value());

  // Joins are in-trees structurally but route to solve_join in the scalar
  // dispatcher — the kernel planner must refuse them the same way.
  const auto join =
      rc::make_instance(rg::make_join({1.0, 2.0, 3.0}), 50.0, 3.0);
  EXPECT_FALSE(rc::plan_kernel(join, cont, options).has_value());

  // Exact-leaky trees/SP with static power run best-of(reduction, numeric)
  // — not batchable; without static power the reduction is exact a priori
  // and the kernel stays eligible.
  ru::Rng tree_rng(61);
  const auto tree = rc::make_instance(rg::make_random_out_tree(7, tree_rng),
                                      50.0, rm::StaticPowerLaw(3.0, 0.5));
  EXPECT_FALSE(rc::plan_kernel(tree, cont, exact).has_value());
  EXPECT_TRUE(rc::plan_kernel(tree, cont, options).has_value());
  const auto sp =
      rc::make_instance(rg::make_random_series_parallel(7, tree_rng), 50.0,
                        rm::StaticPowerLaw(3.0, 0.5));
  EXPECT_FALSE(rc::plan_kernel(sp, cont, exact).has_value());
  EXPECT_TRUE(rc::plan_kernel(sp, cont, options).has_value());
}

TEST(BatchKernels, HeteroPlannerRequiresSharedExponentAndReduction) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions options;

  // Shared exponent across slots: plannable, and marked hetero.
  const auto shared = hetero_chain_sweep(149, 1).front();
  const auto plan = rc::plan_kernel(shared, cont, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->hetero);
  EXPECT_EQ(plan->family, rc::KernelFamily::kChain);

  // Mixed exponents fall to the scalar path (solve_chain_hetero's own
  // mixed-alpha bailout), as does LeakageMode::kExact (the hetero exact
  // route is the numeric one).
  const auto mixed = hetero_chain_sweep(151, 1, 3.0, 2.5).front();
  EXPECT_FALSE(rc::plan_kernel(mixed, cont, options).has_value());
  rc::SolveOptions exact;
  exact.leakage = rc::LeakageMode::kExact;
  EXPECT_FALSE(rc::plan_kernel(shared, cont, exact).has_value());
}

TEST(BatchKernels, RunCompatibilityIsPerSlotOnHeteroPlatforms) {
  // Same topology and per-slot specs: compatible.
  const auto a = hetero_chain_sweep(157, 1).front();
  const auto b = hetero_chain_sweep(163, 1).front();
  EXPECT_TRUE(rc::kernel_run_compatible(a, b));

  // Same topology, one slot on a different processor spec: incompatible.
  const rm::Platform flipped({{rm::make_power_model(3.0, 0.2), 2.0},
                              {rm::make_power_model(3.0, 0.9), 1.2}});
  auto g = a.exec_graph;
  std::vector<std::size_t> assignment(g.num_nodes());
  for (std::size_t v = 0; v < assignment.size(); ++v) assignment[v] = v % 2;
  const auto c =
      rc::make_instance(std::move(g), a.deadline, flipped, assignment);
  EXPECT_FALSE(rc::kernel_run_compatible(a, c));
}

TEST(BatchKernels, RunCompatibilityRequiresSharedTopologyAndModel) {
  const auto a = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}), 10.0, 3.0);
  const auto b = rc::make_instance(rg::make_chain({4.0, 5.0, 6.0}), 20.0, 3.0);
  EXPECT_TRUE(rc::kernel_run_compatible(a, b));

  const auto other_shape =
      rc::make_instance(rg::make_fork({1.0, 2.0, 3.0}), 10.0, 3.0);
  EXPECT_FALSE(rc::kernel_run_compatible(a, other_shape));

  const auto other_power = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}),
                                             10.0, rm::StaticPowerLaw(3.0, 0.5));
  EXPECT_FALSE(rc::kernel_run_compatible(a, other_power));
}

TEST(BatchKernels, ShortRunsStayScalar) {
  // kKernelMinRun instances amortize the plan; fewer must not engage it.
  const auto sweep = homogeneous_sweep(61, re::kKernelMinRun - 1, "chain", rm::PowerLaw(3.0));
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  EXPECT_EQ(engine.stats().kernel_solves, 0u);
  EXPECT_EQ(engine.stats().fresh_solves, sweep.size());
}

TEST(BatchKernels, StatsCountKernelSolves) {
  const auto sweep = homogeneous_sweep(67, 40, "chain", rm::PowerLaw(3.0));
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  const auto stats = engine.stats();
  EXPECT_EQ(stats.instances, sweep.size());
  EXPECT_EQ(stats.fresh_solves, sweep.size());
  EXPECT_EQ(stats.kernel_solves, sweep.size());
  engine.clear_caches();
  EXPECT_EQ(engine.stats().kernel_solves, 0u);
}

TEST(BatchKernels, KernelMinRunIsConfigurable) {
  // A pair of compatible instances is below the default threshold but
  // engages the kernels once kernel_min_run is lowered to 2; values < 2
  // are rejected at construction.
  const auto pair = homogeneous_sweep(73, 2, "chain", rm::PowerLaw(3.0), 0.0);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine standard(opts);
  (void)standard.solve_batch(std::span<const rc::Instance>(pair), cont, {});
  EXPECT_EQ(standard.stats().kernel_solves, 0u);

  opts.kernel_min_run = 2;
  re::ReclaimEngine eager(opts);
  (void)eager.solve_batch(std::span<const rc::Instance>(pair), cont, {});
  EXPECT_EQ(eager.stats().kernel_solves, pair.size());

  opts.kernel_min_run = 1;
  EXPECT_THROW((void)re::ReclaimEngine(opts), reclaim::InvalidArgument);
}

TEST(BatchKernels, StatsSplitKernelSolvesPerFamily) {
  // One run per family, no squeezed deadlines (hand-backs would land in
  // the scalar counters): the per-family split must tile kernel_solves.
  std::vector<rc::Instance> instances;
  for (const char* family : {"single", "chain", "fork", "outtree", "sp"}) {
    auto sweep = homogeneous_sweep(211, 10, family, rm::PowerLaw(3.0), 0.0);
    for (auto& inst : sweep) instances.push_back(std::move(inst));
  }
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(instances), cont, {});
  const auto stats = engine.stats();
  EXPECT_EQ(stats.kernel_single, 10u);
  EXPECT_EQ(stats.kernel_chain, 10u);
  EXPECT_EQ(stats.kernel_fork, 10u);
  EXPECT_EQ(stats.kernel_tree, 10u);
  EXPECT_EQ(stats.kernel_sp, 10u);
  EXPECT_EQ(stats.kernel_single + stats.kernel_chain + stats.kernel_fork +
                stats.kernel_tree + stats.kernel_sp,
            stats.kernel_solves);
  engine.clear_caches();
  EXPECT_EQ(engine.stats().kernel_tree, 0u);
}

TEST(BatchKernels, KernelPlannerReusesShapeCache) {
  // The planner consults the dispatch cache for the cached decomposition
  // and composition plan: the second batch of a topology must hit it
  // (shape_hits counts kernel-path planning too) and still kernel-solve
  // every instance.
  const auto sweep =
      homogeneous_sweep(227, 40, "outtree", rm::PowerLaw(3.0), 0.0);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  const auto stats = engine.stats();
  EXPECT_EQ(stats.kernel_tree, 2 * sweep.size());
  EXPECT_GE(stats.shape_hits, 1u);
  EXPECT_EQ(stats.shape_entries, 1u);
}

// ----------------------------------------------------------- warm starts

namespace {

/// A sweep over one general-DAG topology (numeric-barrier route) with a
/// deadline grid — the workload warm starts are for.
std::vector<rc::Instance> barrier_sweep(std::uint64_t seed, std::size_t count,
                                        double p_static = 0.0) {
  ru::Rng rng(seed);
  rg::Digraph g = rg::make_stencil(3, 3, rng);
  std::vector<rc::Instance> out;
  out.reserve(count);
  const double d_min = rc::min_deadline(g, 2.0);
  for (std::size_t i = 0; i < count; ++i) {
    const double slack = 1.2 + 0.08 * static_cast<double>(i % 25);
    rg::Digraph copy = g;
    out.push_back(rc::make_instance(
        std::move(copy), slack * d_min,
        p_static > 0.0 ? rm::PowerModel(rm::StaticPowerLaw(3.0, p_static))
                       : rm::PowerModel(rm::PowerLaw(3.0))));
  }
  return out;
}

}  // namespace

TEST(WarmStart, WithinFeasibilityTolOfColdSolves) {
  const auto sweep = barrier_sweep(71, 30);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  re::EngineOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.memoize = false;
  re::EngineOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;

  re::ReclaimEngine cold(cold_opts);
  re::ReclaimEngine warm(warm_opts);
  const auto cold_solutions =
      cold.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  const auto warm_solutions =
      warm.solve_batch(std::span<const rc::Instance>(sweep), cont, {});

  ASSERT_EQ(cold_solutions.size(), warm_solutions.size());
  for (std::size_t i = 0; i < cold_solutions.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    ASSERT_TRUE(cold_solutions[i].feasible);
    ASSERT_TRUE(warm_solutions[i].feasible);
    // The acceptance guard keeps a warm solve no worse than its own cold
    // start; both converge to the duality-gap target, so the energies
    // agree within the feasibility tolerance.
    EXPECT_NEAR(warm_solutions[i].energy, cold_solutions[i].energy,
                rc::kFeasibilityRelTol *
                    std::max(1.0, cold_solutions[i].energy));
    EXPECT_EQ(warm_solutions[i].method, cold_solutions[i].method);
  }
  // After the first solve of the topology every solve saw a seed.
  EXPECT_GE(warm.stats().warm_solves, sweep.size() - 1);
  EXPECT_EQ(cold.stats().warm_solves, 0u);
}

TEST(WarmStart, FirstSolveOfShapeIsBitIdenticalToCold) {
  // No seed exists yet for a topology's first solve: the warm engine must
  // produce the cold result bit for bit.
  const auto sweep = barrier_sweep(73, 1);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  re::EngineOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.memoize = false;
  re::EngineOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;

  re::ReclaimEngine cold(cold_opts);
  re::ReclaimEngine warm(warm_opts);
  const auto a = cold.solve_one(sweep[0], cont);
  const auto b = warm.solve_one(sweep[0], cont);
  expect_identical(a, b);
  EXPECT_EQ(warm.stats().warm_solves, 0u);
}

TEST(WarmStart, DeterministicGivenSolveOrder) {
  const auto sweep = barrier_sweep(79, 20, 0.4);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.leakage = rc::LeakageMode::kExact;

  re::EngineOptions warm_opts;
  warm_opts.threads = 1;  // fixed solve order
  warm_opts.memoize = false;
  warm_opts.warm_start = true;

  re::ReclaimEngine first(warm_opts);
  re::ReclaimEngine second(warm_opts);
  const auto a =
      first.solve_batch(std::span<const rc::Instance>(sweep), cont, options);
  const auto b =
      second.solve_batch(std::span<const rc::Instance>(sweep), cont, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    expect_identical(a[i], b[i]);
  }
}

// ---------------------------------------------------------- arena scratch

TEST(Arena, ScopedAllocationsRewind) {
  ru::Arena arena(256);
  {
    const ru::Arena::Scope scope(arena);
    auto a = arena.alloc<double>(10);
    EXPECT_EQ(a.size(), 10u);
    for (double v : a) EXPECT_EQ(v, 0.0);
    auto b = arena.alloc<std::uint8_t>(3);
    auto c = arena.alloc<double>(5);  // realigns after the byte span
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(double),
              0u);
    b[0] = 1;
    EXPECT_GT(arena.stats().bytes_used, 0u);
  }
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  {
    // Oversized request: grows a new block rather than failing.
    const ru::Arena::Scope scope(arena);
    auto big = arena.alloc<double>(4096);
    EXPECT_EQ(big.size(), 4096u);
  }
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, VectorPoolRecyclesCapacity) {
  ru::Arena arena;
  std::vector<double> v = arena.lease_doubles();
  v.assign(100, 1.0);
  const double* data = v.data();
  arena.recycle_doubles(std::move(v));
  EXPECT_EQ(arena.stats().pooled_vectors, 1u);
  std::vector<double> w = arena.lease_doubles();
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), 100u);
  EXPECT_EQ(w.data(), data);  // the very buffer came back
  EXPECT_EQ(arena.stats().pooled_vectors, 0u);
}

TEST(Arena, NoAllocationGrowthAcrossSolves) {
  // Steady state: repeated solves must not grow the thread's arena — the
  // warm-up pass sizes the blocks and every later solve reuses them.
  const auto chains = homogeneous_sweep(83, 10, "chain", rm::PowerLaw(3.0), 0.0);
  const auto barriers = barrier_sweep(89, 5, 0.3);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions exact;
  exact.leakage = rc::LeakageMode::kExact;

  re::EngineOptions opts;
  opts.threads = 1;  // inline: all scratch goes through this thread's arena
  opts.memoize = false;
  re::ReclaimEngine engine(opts);

  const auto solve_everything = [&] {
    (void)engine.solve_batch(std::span<const rc::Instance>(chains), cont, {});
    (void)engine.solve_batch(std::span<const rc::Instance>(barriers), cont,
                             exact);
  };
  solve_everything();  // warm-up sizes the blocks and the vector pool
  const ru::ArenaStats after_warmup = ru::Arena::scratch().stats();
  for (int round = 0; round < 5; ++round) solve_everything();
  const ru::ArenaStats steady = ru::Arena::scratch().stats();

  EXPECT_EQ(steady.blocks, after_warmup.blocks);
  EXPECT_EQ(steady.bytes_reserved, after_warmup.bytes_reserved);
  EXPECT_EQ(steady.bytes_peak, after_warmup.bytes_peak);
  EXPECT_EQ(steady.bytes_used, 0u);  // every Scope unwound
}
