// Batched fast-path tests: kernel-vs-scalar bit-identity (fuzzed),
// warm-start determinism under the acceptance guard, arena scratch reuse
// (no steady-state allocation growth), and the EngineStats counters that
// split kernel-path from scalar-path solves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/analysis.hpp"
#include "core/continuous/batch_kernels.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/reclaim_engine.hpp"
#include "graph/generators.hpp"
#include "model/energy_model.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace re = reclaim::engine;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace ru = reclaim::util;

namespace {

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
}

/// A homogeneous sweep: one topology family, shared power model, weights
/// and deadlines varying per instance — exactly the shape the kernels
/// batch. `tight_fraction` of the deadlines are squeezed toward D_min so
/// cap-saturated and infeasible branches get exercised too.
std::vector<rc::Instance> homogeneous_sweep(std::uint64_t seed,
                                            std::size_t count,
                                            const std::string& family,
                                            rm::PowerModel power,
                                            double tight_fraction = 0.25) {
  ru::Rng rng(seed);
  std::vector<rc::Instance> out;
  out.reserve(count);
  // One topology per sweep: same node count and edge set, varying weights.
  const std::size_t n = 6;
  std::vector<double> weights(family == "single" ? 1 : n);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& w : weights) w = rng.uniform(0.5, 4.0);
    if (i % 7 == 3 && weights.size() > 2) weights[1] = 0.0;  // zero-weight task
    rg::Digraph g = family == "chain"  ? rg::make_chain(weights)
                    : family == "fork" ? rg::make_fork(weights)
                                       : rg::make_chain({weights[0]});
    const double d_min = rc::min_deadline(g, 2.0);
    const double slack =
        (i % 4 == 0 && tight_fraction > 0.0) ? rng.uniform(0.4, 1.05)
                                             : rng.uniform(1.1, 3.0);
    out.push_back(rc::make_instance(std::move(g), slack * d_min, power));
  }
  return out;
}

void expect_batches_identical(std::span<const rc::Instance> instances,
                              const rm::EnergyModel& model,
                              const rc::SolveOptions& options) {
  re::EngineOptions kernel_opts;
  kernel_opts.threads = 1;
  kernel_opts.memoize = false;  // force every instance through a solver
  re::EngineOptions scalar_opts = kernel_opts;
  scalar_opts.use_kernels = false;

  re::ReclaimEngine with_kernels(kernel_opts);
  re::ReclaimEngine scalar(scalar_opts);
  const auto fast = with_kernels.solve_batch(instances, model, options);
  const auto slow = scalar.solve_batch(instances, model, options);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    expect_identical(fast[i], slow[i]);
  }
  // The sweep is one long homogeneous run: the kernel engine must have
  // actually taken the fast path, and the scalar engine must not have.
  EXPECT_GT(with_kernels.stats().kernel_solves, 0u);
  EXPECT_EQ(scalar.stats().kernel_solves, 0u);
}

}  // namespace

// ------------------------------------------------------ bit-identity fuzz

TEST(BatchKernels, ChainSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(homogeneous_sweep(17, 200, "chain", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, SingleTaskSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.5};
  expect_batches_identical(homogeneous_sweep(19, 150, "single", rm::PowerLaw(3.0)), cont,
                           {});
}

TEST(BatchKernels, ForkSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(homogeneous_sweep(23, 200, "fork", rm::PowerLaw(3.0)), cont, {});
}

TEST(BatchKernels, LeakyChainSweepBitIdentical) {
  // Static power engages the s_crit floor in the closed forms.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(29, 200, "chain", rm::StaticPowerLaw(3.0, 0.5)), cont,
      {});
}

TEST(BatchKernels, LeakyForkSweepBitIdenticalUnderReduction) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(
      homogeneous_sweep(31, 200, "fork", rm::StaticPowerLaw(3.0, 0.8)), cont,
      {});
}

TEST(BatchKernels, ExactLeakyChainSweepBitIdentical) {
  // Homogeneous leaky chains are exact a priori under the reduction, so
  // the kernels stay valid under LeakageMode::kExact.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.leakage = rc::LeakageMode::kExact;
  expect_batches_identical(
      homogeneous_sweep(37, 150, "chain", rm::StaticPowerLaw(3.0, 0.5)), cont,
      options);
}

TEST(BatchKernels, SminFloorSweepBitIdentical) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.continuous_s_min = 0.9;
  expect_batches_identical(homogeneous_sweep(41, 150, "chain", rm::PowerLaw(3.0)), cont,
                           options);
}

TEST(BatchKernels, MixedFamiliesAndStragglersBitIdentical) {
  // Alternate runs of chains and forks with a general DAG wedged between
  // them: the planner must segment runs correctly and hand the stencil to
  // the scalar path.
  ru::Rng rng(43);
  std::vector<rc::Instance> instances;
  const auto chains = homogeneous_sweep(47, 20, "chain", rm::PowerLaw(3.0));
  const auto forks = homogeneous_sweep(53, 20, "fork", rm::PowerLaw(3.0));
  instances.insert(instances.end(), chains.begin(), chains.end());
  {
    auto g = rg::make_stencil(3, 3, rng);
    const double d = 1.5 * rc::min_deadline(g, 2.0);
    instances.push_back(rc::make_instance(std::move(g), d));
  }
  instances.insert(instances.end(), forks.begin(), forks.end());
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  expect_batches_identical(instances, cont, {});
}

// ----------------------------------------------------- planner predicates

TEST(BatchKernels, PlannerRejectsIneligibleInstances) {
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions options;
  ru::Rng rng(59);

  // General DAG: no closed form.
  auto stencil = rg::make_stencil(3, 3, rng);
  const auto general =
      rc::make_instance(std::move(stencil), 50.0, 3.0);
  EXPECT_FALSE(rc::plan_kernel(general, cont, options).has_value());

  // Exact-leaky fork with static power: the exact route runs a barrier
  // pass on top of the reduction — not batchable.
  auto fork = rg::make_fork({1.0, 2.0, 3.0});
  const auto leaky_fork = rc::make_instance(std::move(fork), 50.0,
                                            rm::StaticPowerLaw(3.0, 0.5));
  rc::SolveOptions exact;
  exact.leakage = rc::LeakageMode::kExact;
  EXPECT_FALSE(rc::plan_kernel(leaky_fork, cont, exact).has_value());
  EXPECT_TRUE(rc::plan_kernel(leaky_fork, cont, options).has_value());

  // Mode-based models never take the continuous closed forms.
  const rm::EnergyModel discrete =
      rm::DiscreteModel{rm::ModeSet{{0.5, 1.0, 2.0}}};
  auto chain = rg::make_chain({1.0, 2.0});
  const auto chain_inst = rc::make_instance(std::move(chain), 10.0, 3.0);
  EXPECT_FALSE(rc::plan_kernel(chain_inst, discrete, options).has_value());
}

TEST(BatchKernels, RunCompatibilityRequiresSharedTopologyAndModel) {
  const auto a = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}), 10.0, 3.0);
  const auto b = rc::make_instance(rg::make_chain({4.0, 5.0, 6.0}), 20.0, 3.0);
  EXPECT_TRUE(rc::kernel_run_compatible(a, b));

  const auto other_shape =
      rc::make_instance(rg::make_fork({1.0, 2.0, 3.0}), 10.0, 3.0);
  EXPECT_FALSE(rc::kernel_run_compatible(a, other_shape));

  const auto other_power = rc::make_instance(rg::make_chain({1.0, 2.0, 3.0}),
                                             10.0, rm::StaticPowerLaw(3.0, 0.5));
  EXPECT_FALSE(rc::kernel_run_compatible(a, other_power));
}

TEST(BatchKernels, ShortRunsStayScalar) {
  // kKernelMinRun instances amortize the plan; fewer must not engage it.
  const auto sweep = homogeneous_sweep(61, re::kKernelMinRun - 1, "chain", rm::PowerLaw(3.0));
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  EXPECT_EQ(engine.stats().kernel_solves, 0u);
  EXPECT_EQ(engine.stats().fresh_solves, sweep.size());
}

TEST(BatchKernels, StatsCountKernelSolves) {
  const auto sweep = homogeneous_sweep(67, 40, "chain", rm::PowerLaw(3.0));
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  re::EngineOptions opts;
  opts.threads = 1;
  opts.memoize = false;
  re::ReclaimEngine engine(opts);
  (void)engine.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  const auto stats = engine.stats();
  EXPECT_EQ(stats.instances, sweep.size());
  EXPECT_EQ(stats.fresh_solves, sweep.size());
  EXPECT_EQ(stats.kernel_solves, sweep.size());
  engine.clear_caches();
  EXPECT_EQ(engine.stats().kernel_solves, 0u);
}

// ----------------------------------------------------------- warm starts

namespace {

/// A sweep over one general-DAG topology (numeric-barrier route) with a
/// deadline grid — the workload warm starts are for.
std::vector<rc::Instance> barrier_sweep(std::uint64_t seed, std::size_t count,
                                        double p_static = 0.0) {
  ru::Rng rng(seed);
  rg::Digraph g = rg::make_stencil(3, 3, rng);
  std::vector<rc::Instance> out;
  out.reserve(count);
  const double d_min = rc::min_deadline(g, 2.0);
  for (std::size_t i = 0; i < count; ++i) {
    const double slack = 1.2 + 0.08 * static_cast<double>(i % 25);
    rg::Digraph copy = g;
    out.push_back(rc::make_instance(
        std::move(copy), slack * d_min,
        p_static > 0.0 ? rm::PowerModel(rm::StaticPowerLaw(3.0, p_static))
                       : rm::PowerModel(rm::PowerLaw(3.0))));
  }
  return out;
}

}  // namespace

TEST(WarmStart, WithinFeasibilityTolOfColdSolves) {
  const auto sweep = barrier_sweep(71, 30);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  re::EngineOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.memoize = false;
  re::EngineOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;

  re::ReclaimEngine cold(cold_opts);
  re::ReclaimEngine warm(warm_opts);
  const auto cold_solutions =
      cold.solve_batch(std::span<const rc::Instance>(sweep), cont, {});
  const auto warm_solutions =
      warm.solve_batch(std::span<const rc::Instance>(sweep), cont, {});

  ASSERT_EQ(cold_solutions.size(), warm_solutions.size());
  for (std::size_t i = 0; i < cold_solutions.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    ASSERT_TRUE(cold_solutions[i].feasible);
    ASSERT_TRUE(warm_solutions[i].feasible);
    // The acceptance guard keeps a warm solve no worse than its own cold
    // start; both converge to the duality-gap target, so the energies
    // agree within the feasibility tolerance.
    EXPECT_NEAR(warm_solutions[i].energy, cold_solutions[i].energy,
                rc::kFeasibilityRelTol *
                    std::max(1.0, cold_solutions[i].energy));
    EXPECT_EQ(warm_solutions[i].method, cold_solutions[i].method);
  }
  // After the first solve of the topology every solve saw a seed.
  EXPECT_GE(warm.stats().warm_solves, sweep.size() - 1);
  EXPECT_EQ(cold.stats().warm_solves, 0u);
}

TEST(WarmStart, FirstSolveOfShapeIsBitIdenticalToCold) {
  // No seed exists yet for a topology's first solve: the warm engine must
  // produce the cold result bit for bit.
  const auto sweep = barrier_sweep(73, 1);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  re::EngineOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.memoize = false;
  re::EngineOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;

  re::ReclaimEngine cold(cold_opts);
  re::ReclaimEngine warm(warm_opts);
  const auto a = cold.solve_one(sweep[0], cont);
  const auto b = warm.solve_one(sweep[0], cont);
  expect_identical(a, b);
  EXPECT_EQ(warm.stats().warm_solves, 0u);
}

TEST(WarmStart, DeterministicGivenSolveOrder) {
  const auto sweep = barrier_sweep(79, 20, 0.4);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions options;
  options.leakage = rc::LeakageMode::kExact;

  re::EngineOptions warm_opts;
  warm_opts.threads = 1;  // fixed solve order
  warm_opts.memoize = false;
  warm_opts.warm_start = true;

  re::ReclaimEngine first(warm_opts);
  re::ReclaimEngine second(warm_opts);
  const auto a =
      first.solve_batch(std::span<const rc::Instance>(sweep), cont, options);
  const auto b =
      second.solve_batch(std::span<const rc::Instance>(sweep), cont, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    expect_identical(a[i], b[i]);
  }
}

// ---------------------------------------------------------- arena scratch

TEST(Arena, ScopedAllocationsRewind) {
  ru::Arena arena(256);
  {
    const ru::Arena::Scope scope(arena);
    auto a = arena.alloc<double>(10);
    EXPECT_EQ(a.size(), 10u);
    for (double v : a) EXPECT_EQ(v, 0.0);
    auto b = arena.alloc<std::uint8_t>(3);
    auto c = arena.alloc<double>(5);  // realigns after the byte span
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(double),
              0u);
    b[0] = 1;
    EXPECT_GT(arena.stats().bytes_used, 0u);
  }
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  {
    // Oversized request: grows a new block rather than failing.
    const ru::Arena::Scope scope(arena);
    auto big = arena.alloc<double>(4096);
    EXPECT_EQ(big.size(), 4096u);
  }
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, VectorPoolRecyclesCapacity) {
  ru::Arena arena;
  std::vector<double> v = arena.lease_doubles();
  v.assign(100, 1.0);
  const double* data = v.data();
  arena.recycle_doubles(std::move(v));
  EXPECT_EQ(arena.stats().pooled_vectors, 1u);
  std::vector<double> w = arena.lease_doubles();
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), 100u);
  EXPECT_EQ(w.data(), data);  // the very buffer came back
  EXPECT_EQ(arena.stats().pooled_vectors, 0u);
}

TEST(Arena, NoAllocationGrowthAcrossSolves) {
  // Steady state: repeated solves must not grow the thread's arena — the
  // warm-up pass sizes the blocks and every later solve reuses them.
  const auto chains = homogeneous_sweep(83, 10, "chain", rm::PowerLaw(3.0), 0.0);
  const auto barriers = barrier_sweep(89, 5, 0.3);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  rc::SolveOptions exact;
  exact.leakage = rc::LeakageMode::kExact;

  re::EngineOptions opts;
  opts.threads = 1;  // inline: all scratch goes through this thread's arena
  opts.memoize = false;
  re::ReclaimEngine engine(opts);

  const auto solve_everything = [&] {
    (void)engine.solve_batch(std::span<const rc::Instance>(chains), cont, {});
    (void)engine.solve_batch(std::span<const rc::Instance>(barriers), cont,
                             exact);
  };
  solve_everything();  // warm-up sizes the blocks and the vector pool
  const ru::ArenaStats after_warmup = ru::Arena::scratch().stats();
  for (int round = 0; round < 5; ++round) solve_everything();
  const ru::ArenaStats steady = ru::Arena::scratch().stats();

  EXPECT_EQ(steady.blocks, after_warmup.blocks);
  EXPECT_EQ(steady.bytes_reserved, after_warmup.bytes_reserved);
  EXPECT_EQ(steady.bytes_peak, after_warmup.bytes_peak);
  EXPECT_EQ(steady.bytes_used, 0u);  // every Scope unwound
}
