// ReclaimEngine tests: batch/single-shot parity, determinism across thread
// counts, memo and dispatch-cache behavior, and exception propagation from
// a poisoned instance mid-batch.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "engine/instance_key.hpp"
#include "engine/reclaim_engine.hpp"
#include "graph/generators.hpp"
#include "model/energy_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace re = reclaim::engine;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;

namespace {

/// Mixed chain/fork/tree/SP/general instances (the DAG itself is used as
/// the execution graph; any DAG is a valid execution graph).
std::vector<rc::Instance> mixed_instances(std::uint64_t seed,
                                          std::size_t per_family = 4) {
  reclaim::util::Rng rng(seed);
  std::vector<rg::Digraph> graphs;
  for (std::size_t k = 0; k < per_family; ++k) {
    graphs.push_back(rg::make_chain(6 + k, rng));
    graphs.push_back(rg::make_fork(4 + k, rng));
    graphs.push_back(rg::make_random_out_tree(8 + k, rng));
    graphs.push_back(rg::make_fork_join_chain(2, 2 + k, rng));
    graphs.push_back(rg::make_stencil(3, 3 + k, rng));
  }
  std::vector<rc::Instance> instances;
  for (auto& g : graphs) {
    const double d_min = rc::min_deadline(g, 1.0);
    instances.push_back(rc::make_instance(std::move(g), 1.5 * d_min));
  }
  return instances;
}

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (std::size_t i = 0; i < a.profiles.size(); ++i) {
    ASSERT_EQ(a.profiles[i].segments.size(), b.profiles[i].segments.size());
    for (std::size_t s = 0; s < a.profiles[i].segments.size(); ++s) {
      EXPECT_EQ(a.profiles[i].segments[s].speed, b.profiles[i].segments[s].speed);
      EXPECT_EQ(a.profiles[i].segments[s].duration,
                b.profiles[i].segments[s].duration);
    }
  }
}

}  // namespace

TEST(InstanceKey, DistinguishesWeightsDeadlinesAndModels) {
  reclaim::util::Rng rng(5);
  auto g1 = rg::make_chain({1.0, 2.0, 3.0});
  auto g2 = rg::make_chain({1.0, 2.0, 4.0});
  const auto i1 = rc::make_instance(g1, 10.0);
  const auto i2 = rc::make_instance(g2, 10.0);
  const auto i3 = rc::make_instance(g1, 11.0);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rm::EnergyModel disc = rm::DiscreteModel{rm::ModeSet({1.0, 2.0})};
  const rc::SolveOptions opts;

  EXPECT_EQ(re::topology_key(i1.exec_graph), re::topology_key(i2.exec_graph));
  EXPECT_EQ(re::instance_key(i1, cont, opts), re::instance_key(i1, cont, opts));
  EXPECT_NE(re::instance_key(i1, cont, opts), re::instance_key(i2, cont, opts));
  EXPECT_NE(re::instance_key(i1, cont, opts), re::instance_key(i3, cont, opts));
  EXPECT_NE(re::instance_key(i1, cont, opts), re::instance_key(i1, disc, opts));
}

TEST(InstanceKey, DistinguishesEveryPowerModelField) {
  // Regression for the aliasing risk class: the key must encode the full
  // power model (kind, alpha, p_static), not just alpha — otherwise two
  // instances differing only in p_static would share a memo entry.
  const auto g = rg::make_chain({1.0, 2.0, 3.0});
  const auto pure = rc::make_instance(g, 10.0, 3.0);
  const auto zero = rc::make_instance(g, 10.0, rm::StaticPowerLaw(3.0, 0.0));
  const auto half = rc::make_instance(g, 10.0, rm::StaticPowerLaw(3.0, 0.5));
  const auto one = rc::make_instance(g, 10.0, rm::StaticPowerLaw(3.0, 1.0));
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions opts;

  EXPECT_NE(re::instance_key(pure, cont, opts), re::instance_key(half, cont, opts));
  EXPECT_NE(re::instance_key(half, cont, opts), re::instance_key(one, cont, opts));
  // Same math, different kind: still distinct (conservative, never aliases).
  EXPECT_NE(re::instance_key(pure, cont, opts), re::instance_key(zero, cont, opts));
}

TEST(InstanceKey, DistinguishesSleepSpecFields) {
  const auto g = rg::make_chain({1.0, 2.0});
  const auto base = rm::make_power_model(3.0, 0.5);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions opts;
  const auto key = [&](const rm::PowerModel& p) {
    return re::instance_key(rc::make_instance(g, 10.0, p), cont, opts);
  };
  EXPECT_NE(key(base), key(base.with_sleep(rm::make_sleep_spec(1.0, 0.0, 0.0))));
  EXPECT_NE(key(base.with_sleep(rm::make_sleep_spec(1.0, 0.0, 0.0))),
            key(base.with_sleep(rm::make_sleep_spec(0.0, 1.0, 0.0))));
  EXPECT_NE(key(base.with_sleep(rm::make_sleep_spec(0.0, 1.0, 0.0))),
            key(base.with_sleep(rm::make_sleep_spec(0.0, 0.0, 1.0))));
}

TEST(InstanceKey, CanonicalizesNegativeZeroAndRejectsNaN) {
  // -0.0 and 0.0 are mathematically identical instances; the raw bit
  // pattern differs in the sign bit and used to produce two memo keys.
  auto plus = rg::make_chain({1.0, 2.0});
  auto minus = rg::make_chain({1.0, 2.0});
  plus.set_weight(0, 0.0);
  minus.set_weight(0, -0.0);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  const rc::SolveOptions opts;
  EXPECT_EQ(re::instance_key(rc::make_instance(plus, 10.0), cont, opts),
            re::instance_key(rc::make_instance(minus, 10.0), cont, opts));

  // p_static = -0.0 (e.g. parsed from "-0" input) aliases to 0.0 too.
  const auto p_plus = rc::make_instance(plus, 10.0, rm::StaticPowerLaw(3.0, 0.0));
  const auto p_minus =
      rc::make_instance(plus, 10.0, rm::StaticPowerLaw(3.0, -0.0));
  EXPECT_EQ(re::instance_key(p_plus, cont, opts),
            re::instance_key(p_minus, cont, opts));

  // NaN can only poison the memo (never equal to itself): clear error.
  // Digraph and make_instance already reject NaN weights/deadlines, so
  // smuggle one in through the unvalidated aggregate.
  const rc::Instance bad{rg::make_chain({1.0, 2.0}),
                         std::numeric_limits<double>::quiet_NaN(),
                         rm::PowerModel()};
  EXPECT_THROW((void)re::instance_key(bad, cont, opts),
               reclaim::InvalidArgument);
}

TEST(ReclaimEngine, MixedFeasibilityBatchTabulates) {
  // One infeasible row (deadline below W / s_max) must not abort the
  // batch, and the feasible rows must still tabulate busy_time (the CLI's
  // leakage/idle columns) — the infeasible row simply renders as NA.
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};
  std::vector<rc::Instance> instances;
  instances.push_back(rc::make_instance(rg::make_chain({2.0, 2.0}), 8.0,
                                        rm::StaticPowerLaw(3.0, 0.5)));
  instances.push_back(rc::make_instance(rg::make_chain({4.0, 4.0}), 1.0,
                                        rm::StaticPowerLaw(3.0, 0.5)));
  instances.push_back(rc::make_instance(rg::make_chain({1.0, 1.0, 1.0}), 6.0,
                                        rm::StaticPowerLaw(3.0, 0.5)));

  re::EngineOptions engine_options;
  engine_options.threads = 2;
  re::ReclaimEngine engine(engine_options);
  const auto solutions = engine.solve_batch(instances, cont);

  ASSERT_EQ(solutions.size(), 3u);
  EXPECT_TRUE(solutions[0].feasible);
  EXPECT_FALSE(solutions[1].feasible);
  EXPECT_TRUE(solutions[2].feasible);
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    if (solutions[i].feasible) {
      EXPECT_GT(rc::busy_time(instances[i], solutions[i]), 0.0);
    } else {
      // The guard the CLI relies on: busy_time refuses infeasible rows
      // loudly instead of reading garbage speeds.
      EXPECT_THROW((void)rc::busy_time(instances[i], solutions[i]),
                   reclaim::InvalidArgument);
    }
  }
}

TEST(ReclaimEngine, MemoDistinguishesPowerModels) {
  // End-to-end: identical graph/deadline/energy-model, different p_static
  // must be fresh solves with different optima, never memo hits.
  const auto g = rg::make_chain({2.0, 2.0});  // W = 4
  re::EngineOptions engine_options;
  engine_options.threads = 1;
  re::ReclaimEngine engine(engine_options);
  const rm::EnergyModel cont = rm::ContinuousModel{2.0};

  const auto pure =
      engine.solve_one(rc::make_instance(g, 8.0, 3.0), cont);
  const auto leaky = engine.solve_one(
      rc::make_instance(g, 8.0, rm::StaticPowerLaw(3.0, 2.0)), cont);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.fresh_solves, 2u);
  EXPECT_EQ(stats.memo_hits, 0u);
  ASSERT_TRUE(pure.feasible);
  ASSERT_TRUE(leaky.feasible);
  // Pure: speed 0.5, E = 4 * 0.25 = 1. Leaky: s_crit = 1, E = 4 * 3 = 12.
  EXPECT_DOUBLE_EQ(pure.energy, 1.0);
  EXPECT_DOUBLE_EQ(leaky.energy, 12.0);
}

TEST(ReclaimEngine, MatchesSingleShotSolve) {
  const auto instances = mixed_instances(11);
  re::EngineOptions engine_options;
  engine_options.threads = 2;
  engine_options.chain_dp = false;  // exact parity with core::solve routing
  re::ReclaimEngine engine(engine_options);

  const std::vector<rm::EnergyModel> models = {
      rm::ContinuousModel{2.0},
      rm::DiscreteModel{rm::ModeSet({0.5, 1.0, 1.5, 2.0})}};
  for (const auto& model : models) {
    const auto batch = engine.solve_batch(instances, model);
    ASSERT_EQ(batch.size(), instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      expect_identical(batch[i], rc::solve(instances[i], model));
    }
  }
}

TEST(ReclaimEngine, DeterministicAcrossThreadCounts) {
  const auto instances = mixed_instances(23);
  const rm::EnergyModel model = rm::ContinuousModel{2.0};

  std::vector<std::vector<rc::Solution>> runs;
  for (std::size_t threads : {1, 2, 4}) {
    re::EngineOptions engine_options;
    engine_options.threads = threads;
    re::ReclaimEngine engine(engine_options);
    runs.push_back(engine.solve_batch(instances, model));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      expect_identical(runs[r][i], runs[0][i]);
    }
  }
}

TEST(ReclaimEngine, MemoHitIsBitIdenticalToFreshSolve) {
  const auto instances = mixed_instances(37);
  const rm::EnergyModel model = rm::ContinuousModel{2.0};
  re::EngineOptions engine_options;
  engine_options.threads = 2;
  re::ReclaimEngine engine(engine_options);

  const auto fresh = engine.solve_batch(instances, model);
  const auto first = engine.stats();
  EXPECT_EQ(first.fresh_solves, instances.size());
  EXPECT_EQ(first.memo_hits, 0u);

  const auto memoized = engine.solve_batch(instances, model);
  const auto second = engine.stats();
  EXPECT_EQ(second.fresh_solves, instances.size());  // nothing re-solved
  EXPECT_EQ(second.memo_hits, instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    expect_identical(memoized[i], fresh[i]);
  }
}

TEST(ReclaimEngine, DispatchCacheReusesShapes) {
  // Same topology, different weights/deadlines: the memo cannot help, the
  // shape cache must.
  reclaim::util::Rng rng(41);
  std::vector<rc::Instance> instances;
  for (int k = 0; k < 8; ++k) {
    auto g = rg::make_stencil(3, 3, rng);  // same 3x3 wavefront topology
    const double d_min = rc::min_deadline(g, 1.0);
    instances.push_back(rc::make_instance(std::move(g), (1.2 + 0.1 * k) * d_min));
  }
  re::EngineOptions engine_options;
  engine_options.threads = 1;
  re::ReclaimEngine engine(engine_options);
  const auto batch = engine.solve_batch(instances, rm::ContinuousModel{2.0});
  for (const auto& s : batch) EXPECT_TRUE(s.feasible);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.fresh_solves, instances.size());
  // Classified once — by the kernel planner probing the run's head (the
  // planner then rejects the family), so every scalar solve is a hit.
  EXPECT_EQ(stats.shape_hits, instances.size());
}

TEST(ReclaimEngine, ChainDpRoutesLargeDiscreteChains) {
  reclaim::util::Rng rng(43);
  auto g = rg::make_chain(40, rng);
  const double d_min = rc::min_deadline(g, 2.0);
  const auto instance = rc::make_instance(std::move(g), 1.4 * d_min);
  re::ReclaimEngine engine(re::EngineOptions{.threads = 1});
  const auto s =
      engine.solve_one(instance, rm::DiscreteModel{rm::ModeSet({0.5, 1.0, 2.0})});
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.method, "chain-dp");
}

TEST(ReclaimEngine, MemoEvictsLeastRecentlyUsed) {
  const auto instances = mixed_instances(47, 1);  // 5 distinct instances
  re::EngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.memo_capacity = 2;
  re::ReclaimEngine engine(engine_options);

  // Two sequential scans of a 5-instance working set through a 2-entry
  // LRU — the worst case for LRU: by the time the scan comes around
  // again, every entry has already been pushed out, so the second batch
  // is all fresh solves and every insertion past the first two evicts.
  const auto first = engine.solve_batch(instances, rm::ContinuousModel{2.0});
  const auto second = engine.solve_batch(instances, rm::ContinuousModel{2.0});
  auto stats = engine.stats();
  EXPECT_EQ(stats.memo_hits, 0u);
  EXPECT_EQ(stats.fresh_solves, 2 * instances.size());
  EXPECT_EQ(stats.memo_entries, 2u);
  EXPECT_EQ(stats.memo_evictions, 2 * instances.size() - 2);
  EXPECT_GT(stats.memo_bytes, 0u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    expect_identical(second[i], first[i]);  // eviction changes cost, not answers
  }

  // The two most recently inserted entries ARE resident: re-asking for
  // the last instance is a memo hit, not a fresh solve.
  expect_identical(engine.solve_one(instances.back(), rm::ContinuousModel{2.0}),
                   first.back());
  stats = engine.stats();
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.fresh_solves, 2 * instances.size());
}

TEST(ReclaimEngine, MemoByteCapBoundsResidentBytes) {
  const auto instances = mixed_instances(59);
  const rm::EnergyModel model = rm::ContinuousModel{2.0};

  // Measure the working set's unbounded footprint first, then cap a
  // second engine at half of it.
  re::EngineOptions unbounded;
  unbounded.threads = 1;
  unbounded.memo_capacity = 0;
  re::ReclaimEngine reference(unbounded);
  const auto fresh = reference.solve_batch(instances, model);
  const std::size_t full_bytes = reference.stats().memo_bytes;
  ASSERT_GT(full_bytes, 0u);

  re::EngineOptions capped;
  capped.threads = 1;
  capped.memo_capacity = 0;  // the byte cap alone must bound the cache
  capped.memo_bytes = full_bytes / 2;
  re::ReclaimEngine engine(capped);
  const auto solutions = engine.solve_batch(instances, model);
  const auto stats = engine.stats();
  EXPECT_GT(stats.memo_evictions, 0u);
  EXPECT_LT(stats.memo_bytes, full_bytes);
  // Within the cap — except for the sole-entry escape hatch (the cache
  // never evicts its only entry, even when that entry alone exceeds it).
  EXPECT_TRUE(stats.memo_bytes <= capped.memo_bytes || stats.memo_entries == 1);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    expect_identical(solutions[i], fresh[i]);
  }
}

TEST(ReclaimEngine, SubmitMatchesSolveOne) {
  const auto instances = mixed_instances(71, 1);
  re::EngineOptions engine_options;
  engine_options.threads = 2;
  re::ReclaimEngine engine(engine_options);
  re::ReclaimEngine reference(re::EngineOptions{.threads = 1});
  const rm::EnergyModel model = rm::ContinuousModel{2.0};

  for (const auto& instance : instances) {
    std::promise<rc::Solution> promise;
    engine.submit({instance, reclaim::sched::Mapping(1)}, model, {},
                  [&promise](rc::Solution solution, std::exception_ptr error) {
                    EXPECT_EQ(error, nullptr);
                    promise.set_value(std::move(solution));
                  });
    expect_identical(promise.get_future().get(),
                     reference.solve_one(instance, model));
  }
  EXPECT_EQ(engine.stats().instances, instances.size());
}

TEST(ReclaimEngine, SubmitReportsPoisonedInstanceViaExceptionPtr) {
  rc::Instance poisoned;  // bypass make_instance's validation on purpose
  poisoned.exec_graph = rg::make_chain({1.0, 2.0});
  poisoned.deadline = -1.0;

  for (const std::size_t threads : {1u, 4u}) {
    re::EngineOptions engine_options;
    engine_options.threads = threads;
    re::ReclaimEngine engine(engine_options);
    std::promise<std::exception_ptr> promise;
    engine.submit({poisoned, reclaim::sched::Mapping(1)},
                  rm::ContinuousModel{2.0}, {},
                  [&promise](rc::Solution, std::exception_ptr error) {
                    promise.set_value(error);
                  });
    const std::exception_ptr error = promise.get_future().get();
    ASSERT_NE(error, nullptr);  // delivered to the callback, never thrown
    EXPECT_THROW(std::rethrow_exception(error), reclaim::InvalidArgument);
  }
}

TEST(ReclaimEngine, StatsSampledLiveWhileSolvesInFlight) {
  // The daemon's STATS endpoint samples the counters from another thread
  // while workers are mid-solve; every snapshot must be a sane
  // point-in-time value (and under TSan/ASan, a clean one).
  const auto instances = mixed_instances(67);
  re::EngineOptions engine_options;
  engine_options.threads = 4;
  re::ReclaimEngine engine(engine_options);
  std::atomic<std::size_t> done{0};
  for (const auto& instance : instances) {
    engine.submit({instance, reclaim::sched::Mapping(1)},
                  rm::ContinuousModel{2.0}, {},
                  [&done](rc::Solution solution, std::exception_ptr error) {
                    EXPECT_EQ(error, nullptr);
                    EXPECT_TRUE(solution.feasible);
                    done.fetch_add(1, std::memory_order_relaxed);
                  });
  }
  while (done.load(std::memory_order_relaxed) < instances.size()) {
    const auto live = engine.stats();
    EXPECT_LE(live.fresh_solves + live.memo_hits, live.instances);
    EXPECT_LE(live.instances, instances.size());
    EXPECT_LE(live.memo_entries, instances.size());
    std::this_thread::yield();
  }
  const auto final_stats = engine.stats();
  EXPECT_EQ(final_stats.instances, instances.size());
  EXPECT_EQ(final_stats.fresh_solves + final_stats.memo_hits,
            instances.size());
}

TEST(ReclaimEngine, PoisonedInstanceAbortsBatchWithException) {
  auto instances = mixed_instances(53);
  rc::Instance poisoned;  // bypass make_instance's validation on purpose
  poisoned.exec_graph = rg::make_chain({1.0, 2.0});
  poisoned.deadline = -1.0;
  instances.insert(instances.begin() + instances.size() / 2, poisoned);

  for (std::size_t threads : {1, 4}) {
    re::EngineOptions engine_options;
    engine_options.threads = threads;
    re::ReclaimEngine engine(engine_options);
    EXPECT_THROW(
        { auto result = engine.solve_batch(instances, rm::ContinuousModel{2.0}); },
        reclaim::InvalidArgument);
  }
}

TEST(ReclaimEngine, EmptyBatchAndClearCaches) {
  re::ReclaimEngine engine;
  const auto empty =
      engine.solve_batch(std::span<const rc::Instance>{}, rm::ContinuousModel{2.0});
  EXPECT_TRUE(empty.empty());

  const auto instances = mixed_instances(61, 1);
  (void)engine.solve_batch(instances, rm::ContinuousModel{2.0});
  EXPECT_GT(engine.stats().fresh_solves, 0u);
  engine.clear_caches();
  EXPECT_EQ(engine.stats().fresh_solves, 0u);
  EXPECT_EQ(engine.stats().memo_hits, 0u);

  // Cleared caches must not change answers.
  const auto again = engine.solve_batch(instances, rm::ContinuousModel{2.0});
  ASSERT_EQ(again.size(), instances.size());
  for (const auto& s : again) EXPECT_TRUE(s.feasible);
}
