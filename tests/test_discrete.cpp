// Tests for the Discrete-model solvers: exact branch-and-bound (vs the
// enumeration oracle), the chain DP, and the Theorem 5 CONT-ROUND
// approximation with its certificate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/discrete/chain_dp.hpp"
#include "core/discrete/exact_bb.hpp"
#include "core/discrete/round_up.hpp"
#include "core/problem.hpp"
#include "core/vdd/lp_solver.hpp"
#include "graph/generators.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;
using reclaim::util::Rng;

namespace {

rm::ModeSet modes(std::initializer_list<double> speeds) {
  return rm::ModeSet(std::vector<double>(speeds));
}

void expect_valid_discrete(const rc::Instance& instance, const rm::ModeSet& m,
                           const rc::Solution& s) {
  ASSERT_TRUE(s.feasible);
  rs::validate_constant_speeds(instance.exec_graph, s.speeds,
                               rm::EnergyModel{rm::DiscreteModel{m}},
                               instance.deadline, 1e-6);
  EXPECT_NEAR(s.energy, rc::recompute_energy(instance, s),
              1e-9 * (1.0 + s.energy));
}

}  // namespace

TEST(ExactBb, SingleTaskPicksCheapestFeasibleMode) {
  auto instance = rc::make_instance(rg::make_chain({3.0}), 2.5);
  const auto m = modes({1.0, 1.5, 2.0});
  const auto result = rc::solve_discrete_exact(instance, m);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_TRUE(result.proven_optimal);
  // Needs speed >= 3/2.5 = 1.2 -> mode 1.5.
  EXPECT_DOUBLE_EQ(result.solution.speeds[0], 1.5);
  expect_valid_discrete(instance, m, result.solution);
}

TEST(ExactBb, MatchesEnumerationOracle) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = rg::make_layered(2, 3, 0.5, rng);  // 6 tasks
    const auto m = modes({0.7, 1.2, 2.0});
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.05, 2.0);
    auto instance = rc::make_instance(g, d);
    const auto bb = rc::solve_discrete_exact(instance, m);
    const auto oracle = rc::solve_discrete_enumerate(instance, m);
    ASSERT_EQ(bb.solution.feasible, oracle.feasible) << trial;
    if (!oracle.feasible) continue;
    EXPECT_TRUE(bb.proven_optimal);
    EXPECT_NEAR(bb.solution.energy, oracle.energy, 1e-9 * (1.0 + oracle.energy))
        << trial;
    expect_valid_discrete(instance, m, bb.solution);
  }
}

TEST(ExactBb, ChainMatchesOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = rg::make_chain(5, rng);
    const auto m = modes({0.5, 1.0, 2.0});
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.1, 3.0);
    auto instance = rc::make_instance(g, d);
    const auto bb = rc::solve_discrete_exact(instance, m);
    const auto oracle = rc::solve_discrete_enumerate(instance, m);
    ASSERT_EQ(bb.solution.feasible, oracle.feasible) << trial;
    if (oracle.feasible) {
      EXPECT_NEAR(bb.solution.energy, oracle.energy,
                  1e-9 * (1.0 + oracle.energy));
    }
  }
}

TEST(ExactBb, InfeasibleDeadline) {
  auto instance = rc::make_instance(rg::make_chain({4.0, 4.0}), 1.0);
  const auto result = rc::solve_discrete_exact(instance, modes({1.0, 2.0}));
  EXPECT_FALSE(result.solution.feasible);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(ExactBb, WarmStartDoesNotChangeOptimum) {
  Rng rng(43);
  const auto g = rg::make_layered(2, 3, 0.6, rng);
  const auto m = modes({0.8, 1.4, 2.0});
  const double d = rc::min_deadline(g, 2.0) * 1.3;
  auto instance = rc::make_instance(g, d);
  rc::BranchBoundOptions cold;
  cold.warm_start = false;
  const auto warm = rc::solve_discrete_exact(instance, m);
  const auto no_warm = rc::solve_discrete_exact(instance, m, cold);
  ASSERT_TRUE(warm.solution.feasible && no_warm.solution.feasible);
  EXPECT_NEAR(warm.solution.energy, no_warm.solution.energy, 1e-9);
  // Warm starting can only shrink the search tree.
  EXPECT_LE(warm.nodes_explored, no_warm.nodes_explored);
}

TEST(ExactBb, DominatedByVddAndDominatesRoundUp) {
  Rng rng(44);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = rg::make_layered(2, 3, 0.5, rng);
    const auto m = modes({0.7, 1.2, 2.0});
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.1, 2.0);
    auto instance = rc::make_instance(g, d);
    const auto bb = rc::solve_discrete_exact(instance, m);
    if (!bb.solution.feasible) continue;
    // Vdd-Hopping relaxes Discrete: E_vdd <= E_disc.
    const auto lp = rc::solve_vdd_lp(instance, rm::VddHoppingModel{m});
    ASSERT_TRUE(lp.solution.feasible);
    EXPECT_LE(lp.solution.energy, bb.solution.energy * (1.0 + 1e-7));
    // CONT-ROUND is a feasible discrete solution: E_disc <= E_round.
    const auto round = rc::solve_round_up(instance, m);
    ASSERT_TRUE(round.solution.feasible);
    EXPECT_LE(bb.solution.energy, round.solution.energy * (1.0 + 1e-7));
  }
}

TEST(ExactBb, ZeroWeightTasksSingleBranch) {
  rg::Digraph g;
  g.add_node(0.0);
  g.add_node(2.0);
  g.add_edge(0, 1);
  auto instance = rc::make_instance(g, 2.0);
  const auto result = rc::solve_discrete_exact(instance, modes({1.0, 2.0}));
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_DOUBLE_EQ(result.solution.speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(result.solution.speeds[0], 0.0);
}

TEST(ExactBb, NodeBudgetAbort) {
  Rng rng(45);
  const auto g = rg::make_layered(3, 4, 0.4, rng);  // 12 tasks
  const auto m = modes({0.6, 0.9, 1.3, 1.7, 2.0});
  const double d = rc::min_deadline(g, 2.0) * 1.5;
  auto instance = rc::make_instance(g, d);
  rc::BranchBoundOptions options;
  options.max_nodes = 50;  // absurdly small
  options.warm_start = true;
  const auto result = rc::solve_discrete_exact(instance, m, options);
  EXPECT_FALSE(result.proven_optimal);
  // The warm-start incumbent is still returned.
  EXPECT_TRUE(result.solution.feasible);
}

TEST(ChainDp, MatchesExactOnGridAlignedInstances) {
  // Durations land exactly on the grid: DP is exact.
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 4.0);
  const auto m = modes({1.0, 2.0});
  rc::ChainDpOptions options;
  options.resolution = 8;  // delta = 4 / 16 = 0.25; durations 1 or 2
  const auto dp = rc::solve_chain_dp(instance, m, options);
  const auto exact = rc::solve_discrete_exact(instance, m);
  ASSERT_TRUE(dp.solution.feasible && exact.solution.feasible);
  EXPECT_NEAR(dp.solution.energy, exact.solution.energy, 1e-9);
  expect_valid_discrete(instance, m, dp.solution);
}

TEST(ChainDp, ApproachesExactWithResolution) {
  Rng rng(46);
  const auto g = rg::make_chain(6, rng);
  const auto m = modes({0.6, 1.1, 1.7, 2.0});
  const double d = rc::min_deadline(g, 2.0) * 1.6;
  auto instance = rc::make_instance(g, d);
  const auto exact = rc::solve_discrete_exact(instance, m);
  ASSERT_TRUE(exact.solution.feasible);
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t k : {4u, 16u, 64u, 256u}) {
    rc::ChainDpOptions options;
    options.resolution = k;
    const auto dp = rc::solve_chain_dp(instance, m, options);
    if (!dp.solution.feasible) continue;  // coarse grids may round past D
    expect_valid_discrete(instance, m, dp.solution);
    // DP energy >= exact optimum, and non-increasing in resolution.
    EXPECT_GE(dp.solution.energy, exact.solution.energy * (1.0 - 1e-9));
    EXPECT_LE(dp.solution.energy, previous * (1.0 + 1e-9));
    previous = dp.solution.energy;
  }
  EXPECT_NEAR(previous, exact.solution.energy,
              0.1 * exact.solution.energy + 1e-9);
}

TEST(ChainDp, RejectsNonChains) {
  Rng rng(47);
  auto instance = rc::make_instance(rg::make_fork(3, rng), 10.0);
  EXPECT_THROW((void)rc::solve_chain_dp(instance, modes({1.0})),
               reclaim::InvalidArgument);
}

TEST(ChainDp, InfeasibleDetected) {
  auto instance = rc::make_instance(rg::make_chain({4.0, 4.0}), 1.0);
  const auto dp = rc::solve_chain_dp(instance, modes({1.0, 2.0}));
  EXPECT_FALSE(dp.solution.feasible);
}

TEST(ChainDp, SingleTask) {
  auto instance = rc::make_instance(rg::make_chain({3.0}), 2.0);
  const auto dp = rc::solve_chain_dp(instance, modes({1.0, 1.5, 2.0}));
  ASSERT_TRUE(dp.solution.feasible);
  EXPECT_DOUBLE_EQ(dp.solution.speeds[0], 1.5);
}

TEST(RoundUp, FeasibleAndCertified) {
  Rng rng(48);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = rg::make_layered(3, 3, 0.5, rng);
    const rm::IncrementalModel inc(0.5, 2.0, 0.25);
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.1, 3.0);
    auto instance = rc::make_instance(g, d);
    const auto result = rc::solve_round_up(instance, inc.modes);
    if (!result.solution.feasible) {
      EXPECT_FALSE(result.relaxation.feasible);
      continue;
    }
    expect_valid_discrete(instance, inc.modes, result.solution);
    const auto cert = rc::certify_round_up(result.solution, result.relaxation,
                                           inc.modes, instance.power(), 1e-9);
    EXPECT_TRUE(cert.holds) << "trial " << trial << " measured "
                            << cert.measured << " certified " << cert.certified;
    // For alpha = 3 the certified factor is (1 + delta/s_min)^2 = 2.25.
    EXPECT_NEAR(cert.certified, std::pow(1.0 + 0.25 / 0.5, 2.0), 1e-6);
  }
}

TEST(RoundUp, BoundHoldsAgainstDiscreteOptimum) {
  // The theorem bounds E_round vs the *discrete optimum*; verify on small
  // instances where branch-and-bound is exact.
  Rng rng(49);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = rg::make_layered(2, 3, 0.5, rng);
    const rm::IncrementalModel inc(0.5, 2.0, 0.5);
    const double d = rc::min_deadline(g, 2.0) * rng.uniform(1.1, 2.5);
    auto instance = rc::make_instance(g, d);
    const auto round = rc::solve_round_up(instance, inc.modes);
    const auto exact = rc::solve_discrete_exact(instance, inc.modes);
    if (!exact.solution.feasible) continue;
    ASSERT_TRUE(round.solution.feasible);
    const double bound =
        rc::incremental_transfer_bound(0.5, 0.5, instance.power());
    EXPECT_LE(round.solution.energy,
              bound * exact.solution.energy * (1.0 + 1e-6))
        << trial;
  }
}

TEST(RoundUp, TightensWithSmallerDelta) {
  Rng rng(50);
  const auto g = rg::make_layered(3, 3, 0.5, rng);
  const double d = rc::min_deadline(g, 2.0) * 1.8;
  auto instance = rc::make_instance(g, d);
  const auto cont = rc::solve_continuous(instance, rm::ContinuousModel{2.0});
  ASSERT_TRUE(cont.feasible);
  double previous_ratio = std::numeric_limits<double>::infinity();
  for (double delta : {0.5, 0.25, 0.125, 0.0625}) {
    const rm::IncrementalModel inc(0.25, 2.0, delta);
    const auto result = rc::solve_round_up(instance, inc.modes);
    ASSERT_TRUE(result.solution.feasible);
    const double ratio = result.solution.energy / cont.energy;
    EXPECT_GE(ratio, 1.0 - 1e-7);
    EXPECT_LE(ratio, previous_ratio * (1.0 + 1e-4));
    previous_ratio = ratio;
  }
  EXPECT_LT(previous_ratio, 1.2);
}

TEST(RoundUp, InfeasibleWhenRelaxationInfeasible) {
  auto instance = rc::make_instance(rg::make_chain({4.0, 4.0}), 1.0);
  const auto result = rc::solve_round_up(instance, modes({1.0, 2.0}));
  EXPECT_FALSE(result.solution.feasible);
  EXPECT_FALSE(result.relaxation.feasible);
}

TEST(RoundUp, GeneralizedExponentCertificate) {
  Rng rng(51);
  const auto g = rg::make_layered(2, 3, 0.6, rng);
  const rm::IncrementalModel inc(0.5, 2.0, 0.25);
  const double d = rc::min_deadline(g, 2.0) * 1.5;
  for (double alpha : {2.0, 2.5, 3.0}) {
    auto instance = rc::make_instance(g, d, alpha);
    const auto result = rc::solve_round_up(instance, inc.modes);
    ASSERT_TRUE(result.solution.feasible) << alpha;
    const auto cert = rc::certify_round_up(result.solution, result.relaxation,
                                           inc.modes, instance.power(), 1e-9);
    EXPECT_TRUE(cert.holds) << "alpha=" << alpha;
    EXPECT_NEAR(cert.certified, std::pow(1.5, alpha - 1.0), 1e-6);
  }
}

TEST(Analysis, TransferBounds) {
  const rm::PowerLaw p(3.0);
  EXPECT_NEAR(rc::incremental_transfer_bound(0.5, 1.0, p), 2.25, 1e-12);
  EXPECT_NEAR(rc::discrete_transfer_bound(modes({1.0, 1.5, 2.5}), p),
              std::pow(2.0, 2.0), 1e-12);
}

TEST(Analysis, StaticPowerShiftsAllModelsEqually) {
  const double shift = rc::with_static_power(0.0, 2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(shift, 80.0);
  EXPECT_DOUBLE_EQ(rc::with_static_power(5.0, 2.0, 10.0, 4), 85.0);
}

TEST(Analysis, DeadlineSlack) {
  auto instance = rc::make_instance(rg::make_chain({2.0, 2.0}), 6.0);
  rc::Solution s;
  s.feasible = true;
  s.speeds = {1.0, 1.0};
  EXPECT_NEAR(rc::deadline_slack(instance, s), 2.0, 1e-12);
}
