// Power-down / sleep-state tests: SleepSpec math (break-even threshold),
// idle-interval enumeration, whole-platform energy accounting, the
// zero-parameter bit-identity regression (sleep accounting off must
// reproduce pre-sleep behavior exactly, across every solver family), and
// the race-to-idle layer (never worse than the crawl; strictly better when
// the crawl leaves idle-charged interior gaps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/baselines.hpp"
#include "core/continuous/dispatch.hpp"
#include "core/continuous/race_to_idle.hpp"
#include "core/problem.hpp"
#include "core/solve.hpp"
#include "graph/generators.hpp"
#include "model/power_model.hpp"
#include "sched/execution_graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rc = reclaim::core;
namespace rg = reclaim::graph;
namespace rm = reclaim::model;
namespace rs = reclaim::sched;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The canonical race-wins fixture: A alone on P0; B, C chained on P1 with
/// A -> C, so P1 has an interior gap while A runs. Under a binding s_crit
/// floor the crawl's busy cost is flat to first order in a uniform
/// speed-up, and shrinking the idle-charged interior gap is a first-order
/// saving — racing must win strictly.
struct RaceFixture {
  rc::Instance instance;
  rs::Mapping mapping{2};
};

RaceFixture make_race_fixture(const rm::SleepSpec& sleep) {
  rg::Digraph app;
  const auto a = app.add_node(2.0, "A");
  const auto b = app.add_node(0.5, "B");
  const auto c = app.add_node(0.5, "C");
  app.add_edge(a, c);
  RaceFixture fx;
  fx.mapping.assign(0, a);
  fx.mapping.assign(1, b);
  fx.mapping.assign(1, c);
  const auto exec = rs::build_execution_graph(app, fx.mapping);
  // P_stat = 2, alpha = 3 -> s_crit = 1; D = 6 leaves the floor binding.
  fx.instance = rc::make_instance(
      exec, 6.0,
      rm::PowerModel(rm::StaticPowerLaw(3.0, 2.0)).with_sleep(sleep));
  return fx;
}

/// Mapped instance + mapping for property tests over mixed app graphs.
struct MappedInstance {
  rc::Instance instance;
  rs::Mapping mapping{1};
};

MappedInstance mapped(const rg::Digraph& app, std::size_t processors,
                      double slack, const rm::PowerModel& power) {
  MappedInstance m;
  m.mapping = rs::list_schedule(app, processors).mapping;
  auto exec = rs::build_execution_graph(app, m.mapping);
  const double d_min = rc::min_deadline(exec, 2.0);
  m.instance = rc::make_instance(std::move(exec), slack * d_min, power);
  return m;
}

void expect_identical(const rc::Solution& a, const rc::Solution& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not approximately equal
  EXPECT_EQ(a.method, b.method);
  ASSERT_EQ(a.speeds.size(), b.speeds.size());
  for (std::size_t i = 0; i < a.speeds.size(); ++i) {
    EXPECT_EQ(a.speeds[i], b.speeds[i]);
  }
}

}  // namespace

TEST(SleepSpec, BreakEvenMatchesDefinition) {
  const auto spec = rm::make_sleep_spec(3.0, 1.0, 4.0);
  // L* = e_wake / (p_idle - p_sleep) = 4 / 2.
  EXPECT_DOUBLE_EQ(spec.break_even(), 2.0);
  EXPECT_TRUE(spec.enabled());

  // Sleeping never pays off when it is no cheaper than idling.
  EXPECT_EQ(rm::make_sleep_spec(1.0, 1.0, 2.0).break_even(), kInf);
  EXPECT_EQ(rm::make_sleep_spec(1.0, 2.0, 2.0).break_even(), kInf);
  // Free wake-up: always sleep.
  EXPECT_DOUBLE_EQ(rm::make_sleep_spec(1.0, 0.0, 0.0).break_even(), 0.0);

  EXPECT_FALSE(rm::SleepSpec{}.enabled());
  EXPECT_THROW((void)rm::make_sleep_spec(-1.0, 0.0, 0.0),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rm::make_sleep_spec(0.0, -1.0, 0.0),
               reclaim::InvalidArgument);
  EXPECT_THROW((void)rm::make_sleep_spec(0.0, 0.0, -1.0),
               reclaim::InvalidArgument);
}

TEST(SleepSpec, GapEnergyPicksCheaperBranch) {
  const auto spec = rm::make_sleep_spec(3.0, 1.0, 4.0);  // break-even 2
  // Below break-even: idle wins.
  EXPECT_DOUBLE_EQ(spec.gap_energy(1.0), 3.0);       // idle 3 < sleep 5
  // Above break-even: sleep wins.
  EXPECT_DOUBLE_EQ(spec.gap_energy(4.0), 8.0);       // sleep 8 < idle 12
  // At break-even both branches agree.
  EXPECT_DOUBLE_EQ(spec.gap_energy(2.0), 6.0);
  EXPECT_DOUBLE_EQ(spec.gap_energy(0.0), 0.0);
  EXPECT_THROW((void)spec.gap_energy(-1.0), reclaim::InvalidArgument);

  // The all-zero spec charges exactly 0.0 for any gap.
  EXPECT_EQ(rm::SleepSpec{}.gap_energy(123.456), 0.0);
}

TEST(SleepSpec, PowerModelCarriesTheSpec) {
  const auto base = rm::make_power_model(3.0, 0.5);
  EXPECT_FALSE(base.has_sleep());
  const auto spec = rm::make_sleep_spec(0.5, 0.05, 2.0);
  const auto with = base.with_sleep(spec);
  EXPECT_TRUE(with.has_sleep());
  EXPECT_EQ(with.sleep(), spec);
  EXPECT_DOUBLE_EQ(with.idle_energy(1.0), 0.5);
  // Busy quantities are untouched...
  EXPECT_EQ(with.task_energy(2.0, 1.5), base.task_energy(2.0, 1.5));
  // ...but the models compare (and hence memo-key) differently.
  EXPECT_NE(with, base);
  EXPECT_NE(with.name(), base.name());
  EXPECT_EQ(rm::make_power_model(3.0, 0.5, spec), with);
}

TEST(IdleIntervals, EnumeratesHeadInteriorAndTailGaps) {
  // A on P0; B, C chained on P1; A -> C. At unit speeds: A [0,2),
  // B [0,0.5), C [2,2.5). Window 6.
  const auto fx = make_race_fixture(rm::SleepSpec{});
  const auto& g = fx.instance.exec_graph;
  const std::vector<double> durations = {2.0, 0.5, 0.5};
  const auto gaps = rs::idle_intervals(g, fx.mapping, durations, 6.0);

  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (rs::IdleInterval{0, 2.0, 6.0}));    // P0 tail
  EXPECT_EQ(gaps[1], (rs::IdleInterval{1, 0.5, 2.0}));    // P1 interior
  EXPECT_EQ(gaps[2], (rs::IdleInterval{1, 2.5, 6.0}));    // P1 tail
}

TEST(IdleIntervals, HeadGapsEmptyProcessorsAndZeroDurations) {
  // Chain X -> Y with X on P0 and Y on P1: P1 idles before Y starts (head
  // gap); P2 is empty and idles the whole window; the zero-weight task Z
  // occupies no time at all.
  rg::Digraph app;
  const auto x = app.add_node(1.0, "X");
  const auto y = app.add_node(2.0, "Y");
  const auto z = app.add_node(0.0, "Z");
  app.add_edge(x, y);
  rs::Mapping mapping(3);
  mapping.assign(0, x);
  mapping.assign(0, z);
  mapping.assign(1, y);
  const auto exec = rs::build_execution_graph(app, mapping);
  const std::vector<double> durations = {1.0, 2.0, 0.0};
  const auto gaps = rs::idle_intervals(exec, mapping, durations, 4.0);

  ASSERT_EQ(gaps.size(), 4u);
  EXPECT_EQ(gaps[0], (rs::IdleInterval{0, 1.0, 4.0}));  // P0 tail
  EXPECT_EQ(gaps[1], (rs::IdleInterval{1, 0.0, 1.0}));  // P1 head
  EXPECT_EQ(gaps[2], (rs::IdleInterval{1, 3.0, 4.0}));  // P1 tail
  EXPECT_EQ(gaps[3], (rs::IdleInterval{2, 0.0, 4.0}));  // P2 fully idle

  // A schedule that does not fit in the window is rejected.
  EXPECT_THROW((void)rs::idle_intervals(exec, mapping, durations, 2.0),
               reclaim::InvalidArgument);
}

TEST(IdleEnergy, ChargesEachGapAtTheCheaperBranch) {
  const auto fx = make_race_fixture(rm::SleepSpec{});
  const auto& g = fx.instance.exec_graph;
  const std::vector<double> durations = {2.0, 0.5, 0.5};
  // Gaps: 4.0 (P0 tail), 1.5 (P1 interior), 3.5 (P1 tail).
  // Spec: idle 3, sleep 0, wake 6 -> break-even 2: the interior gap is
  // shorter than break-even and idles, both tails sleep.
  const auto power =
      rm::make_power_model(3.0, 2.0, rm::make_sleep_spec(3.0, 0.0, 6.0));
  const double idle = rs::idle_energy(g, fx.mapping, durations, 6.0, power);
  EXPECT_DOUBLE_EQ(idle, 6.0 + 4.5 + 6.0);

  // Zero spec: exactly 0.0, bit-identical to charging nothing.
  EXPECT_EQ(rs::idle_energy(g, fx.mapping, durations, 6.0,
                            rm::make_power_model(3.0, 2.0)),
            0.0);
}

TEST(IdleIntervals, ExactFitLeavesNoZeroLengthGaps) {
  // Two chained tasks abutting exactly and filling the window to the
  // deadline: neither the interior boundary nor the tail may surface as a
  // zero-length gap, and the charge is exactly 0.0 — not an epsilon-length
  // gap times a finite power, and no spurious e_wake.
  rg::Digraph app;
  const auto x = app.add_node(1.0, "X");
  const auto y = app.add_node(1.0, "Y");
  app.add_edge(x, y);
  rs::Mapping mapping(1);
  mapping.assign(0, x);
  mapping.assign(0, y);
  const auto exec = rs::build_execution_graph(app, mapping);
  const std::vector<double> durations = {1.5, 2.5};
  EXPECT_TRUE(rs::idle_intervals(exec, mapping, durations, 4.0).empty());
  // Even a spec with a huge wake cost charges exactly nothing.
  EXPECT_EQ(rs::idle_energy(exec, mapping, durations, 4.0,
                            rm::make_power_model(3.0, 2.0,
                                                 rm::make_sleep_spec(
                                                     5.0, 0.0, 100.0))),
            0.0);
}

TEST(IdleEnergy, GapExactlyAtBreakEvenChargesEitherBranchEqually) {
  // One unit task in a window of 3: tail gap of length exactly the
  // break-even L* = 4 / (3 - 1) = 2, where idle (3 * 2 = 6) and
  // sleep + wake (1 * 2 + 4 = 6) agree — the charge must be that common
  // value, whichever branch the implementation picks at the tie.
  rg::Digraph app;
  app.add_node(1.0, "T");
  rs::Mapping mapping(1);
  mapping.assign(0, 0);
  const auto exec = rs::build_execution_graph(app, mapping);
  const std::vector<double> durations = {1.0};
  const auto power =
      rm::make_power_model(3.0, 2.0, rm::make_sleep_spec(3.0, 1.0, 4.0));
  EXPECT_DOUBLE_EQ(rs::idle_energy(exec, mapping, durations, 3.0, power),
                   6.0);
}

TEST(IdleIntervals, TailGapRunsExactlyToTheDeadline) {
  // The tail gap's end is the window itself, exactly — and a trailing
  // zero-weight task occupies no time and must not split or shorten it.
  rg::Digraph app;
  const auto x = app.add_node(1.0, "X");
  const auto z = app.add_node(0.0, "Z");
  app.add_edge(x, z);
  rs::Mapping mapping(1);
  mapping.assign(0, x);
  mapping.assign(0, z);
  const auto exec = rs::build_execution_graph(app, mapping);
  const std::vector<double> durations = {1.0, 0.0};
  const auto gaps = rs::idle_intervals(exec, mapping, durations, 5.0);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (rs::IdleInterval{0, 1.0, 5.0}));
  EXPECT_EQ(gaps[0].end, 5.0);  // exactly the deadline, not deadline - eps
}

TEST(IdleEnergy, BackToBackWakesChargeEachTransition) {
  // Race fixture at unit speeds: gaps 4.0 (P0 tail), 1.5 (P1 interior),
  // 3.5 (P1 tail). Spec idle 3, sleep 0, wake 3 -> break-even 1: every
  // gap sleeps, so P1 pays e_wake twice back-to-back (wake for C at t = 2,
  // wake again at the deadline) — gap charges never merge across the busy
  // interval between them: 3 + 3 + 3, not 3 + 3.
  const auto fx = make_race_fixture(rm::SleepSpec{});
  const auto& g = fx.instance.exec_graph;
  const std::vector<double> durations = {2.0, 0.5, 0.5};
  const auto power =
      rm::make_power_model(3.0, 2.0, rm::make_sleep_spec(3.0, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(rs::idle_energy(g, fx.mapping, durations, 6.0, power),
                   9.0);
}

TEST(PlatformEnergy, SplitsBusyAndIdleOverTheDeadlineWindow) {
  const auto fx =
      make_race_fixture(rm::make_sleep_spec(3.0, 0.0, 6.0));
  rc::ContinuousOptions options;
  const auto crawl =
      rc::solve_continuous(fx.instance, rm::ContinuousModel{kInf}, options);
  ASSERT_TRUE(crawl.feasible);
  // s_crit floor binds: every task at speed 1, busy = 3 * g(1) = 9.
  EXPECT_NEAR(crawl.energy, 9.0, 1e-6);
  const auto split =
      rc::platform_energy(fx.instance, crawl, fx.mapping);
  EXPECT_NEAR(split.busy, 9.0, 1e-9);
  EXPECT_NEAR(split.idle, 16.5, 1e-6);  // 6 (P0 tail) + 4.5 (interior) + 6
  EXPECT_NEAR(split.total(), 25.5, 1e-6);
  EXPECT_NEAR(rc::idle_energy(fx.instance, crawl, fx.mapping), 16.5, 1e-6);
}

// Zero-parameter regression: with all sleep parameters zero, every solver
// family's energy is bit-identical to solving without a sleep spec, and
// the platform accounting adds exactly 0.0.
TEST(ZeroSleepRegression, EverySolverFamilyIsBitIdentical) {
  const rm::ModeSet modes({0.5, 1.0, 1.4, 2.0});
  const std::vector<rm::EnergyModel> models = {
      rm::ContinuousModel{2.0}, rm::DiscreteModel{modes},
      rm::VddHoppingModel{modes}, rm::IncrementalModel(0.5, 2.0, 0.25)};
  reclaim::util::Rng rng(131);
  std::vector<rg::Digraph> apps;
  apps.push_back(rg::make_chain(6, rng));
  apps.push_back(rg::make_fork(5, rng));
  apps.push_back(rg::make_layered(3, 3, 0.5, rng));
  for (const auto& app : apps) {
    for (std::size_t processors : {1, 2}) {
      const auto plain =
          mapped(app, processors, 1.5, rm::make_power_model(3.0, 0.7));
      const auto zeroed = mapped(
          app, processors, 1.5,
          rm::make_power_model(3.0, 0.7).with_sleep(rm::SleepSpec{}));
      for (const auto& model : models) {
        const auto a = rc::solve(plain.instance, model);
        const auto b = rc::solve(zeroed.instance, model);
        expect_identical(a, b);
        if (!a.feasible || a.uses_profiles()) continue;
        const auto split =
            rc::platform_energy(zeroed.instance, b, zeroed.mapping);
        EXPECT_EQ(split.idle, 0.0);
        EXPECT_EQ(split.total(), b.energy);  // bit-identical accounting
      }
      // Baselines too.
      const auto base_a = rc::solve_uniform(plain.instance, models[0]);
      const auto base_b = rc::solve_uniform(zeroed.instance, models[0]);
      expect_identical(base_a, base_b);
      const auto ps_a = rc::solve_path_stretch(plain.instance, models[0]);
      const auto ps_b = rc::solve_path_stretch(zeroed.instance, models[0]);
      expect_identical(ps_a, ps_b);
    }
  }
}

TEST(RaceToIdle, ZeroSpecReturnsTheCrawlBitIdentically) {
  reclaim::util::Rng rng(137);
  const auto app = rg::make_layered(3, 3, 0.5, rng);
  const auto m = mapped(app, 2, 1.5, rm::make_power_model(3.0, 1.0));
  const auto crawl = rc::solve_continuous(m.instance, rm::ContinuousModel{2.0});
  const auto raced =
      rc::solve_race_to_idle(m.instance, rm::ContinuousModel{2.0}, m.mapping);
  EXPECT_FALSE(raced.raced);
  EXPECT_DOUBLE_EQ(raced.speedup, 1.0);
  expect_identical(crawl, raced.solution);
  EXPECT_EQ(raced.chosen.idle, 0.0);
  EXPECT_EQ(raced.chosen.total(), crawl.energy);
}

TEST(RaceToIdle, StrictlyBeatsCrawlOnInteriorGaps) {
  // Acceptance fixture: nonzero wake cost, interior gap below break-even.
  // Crawl platform energy 25.5 (busy 9 + idle 16.5, see PlatformEnergy
  // test); racing shrinks the idle-charged interior gap at first-order
  // zero busy cost (the s_crit floor binds), so it must strictly win.
  const auto fx = make_race_fixture(rm::make_sleep_spec(3.0, 0.0, 6.0));
  const auto r = rc::solve_race_to_idle(fx.instance, rm::ContinuousModel{kInf},
                                        fx.mapping);
  ASSERT_TRUE(r.solution.feasible);
  EXPECT_TRUE(r.raced);
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_EQ(r.solution.method, "race-to-idle");
  EXPECT_NEAR(r.crawl.total(), 25.5, 1e-6);
  EXPECT_LT(r.chosen.total(), r.crawl.total() * (1.0 - 1e-6));
  // The raced schedule still meets the deadline and its busy bookkeeping
  // is exact.
  rs::validate_constant_speeds(fx.instance.exec_graph, r.solution.speeds,
                               rm::ContinuousModel{kInf}, fx.instance.deadline);
  EXPECT_NEAR(r.solution.energy, rc::recompute_energy(fx.instance, r.solution),
              1e-9 * r.solution.energy);
  // All speeds scaled uniformly off the crawl's floor-bound speed 1.
  for (rg::NodeId v = 0; v < fx.instance.exec_graph.num_nodes(); ++v) {
    EXPECT_NEAR(r.solution.speeds[v], r.speedup, 1e-6 * r.speedup);
  }
}

TEST(RaceToIdle, NeverWorseThanTheCrawlProperty) {
  reclaim::util::Rng rng(139);
  const std::vector<rm::SleepSpec> specs = {
      rm::make_sleep_spec(0.5, 0.0, 0.5),
      rm::make_sleep_spec(2.0, 0.2, 4.0),
      rm::make_sleep_spec(6.0, 0.0, 12.0),
      rm::make_sleep_spec(1.0, 1.0, 0.0),  // sleeping never pays off
  };
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const auto app = rg::make_layered(3, 3, 0.5, rng);
    for (const auto& spec : specs) {
      const auto power = rm::make_power_model(3.0, 1.5).with_sleep(spec);
      const auto m = mapped(app, 2, 1.6, power);
      const auto r = rc::solve_race_to_idle(
          m.instance, rm::ContinuousModel{2.0}, m.mapping);
      if (!r.solution.feasible) continue;
      EXPECT_LE(r.chosen.total(), r.crawl.total() * (1.0 + 1e-12));
      rs::validate_constant_speeds(m.instance.exec_graph, r.solution.speeds,
                                   rm::ContinuousModel{2.0},
                                   m.instance.deadline);
      // The reported split matches an independent re-accounting.
      const auto split =
          rc::platform_energy(m.instance, r.solution, m.mapping);
      EXPECT_NEAR(split.total(), r.chosen.total(),
                  1e-9 * (1.0 + r.chosen.total()));
    }
  }
}
